//! Seeded property tests for the mux frame codec, mirroring the
//! `httpwire` property suite: serialize→parse round-trip identity over
//! randomly generated frames of every type, and no-panic robustness of
//! the incremental parser against mutated / truncated / garbage byte
//! streams. Everything is driven by the in-tree seeded PRNG, so all
//! cases are deterministic.

use httpmux::{
    Frame, FrameParser, FramePayload, FLAG_ACK, FLAG_END_STREAM, MAX_FRAME_PAYLOAD, PREFACE,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const ROUNDTRIP_CASES: usize = 4096;
const MUTATION_CASES: usize = 4096;
const TRUNCATION_CASES: usize = 1024;
const GARBAGE_CASES: usize = 2048;

fn field_name(rng: &mut SmallRng) -> String {
    const PSEUDO: [&str; 4] = [":method", ":path", ":status", ":scheme"];
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz-0123456789";
    if rng.gen_range(0..4usize) == 0 {
        return PSEUDO[rng.gen_range(0..PSEUDO.len())].to_string();
    }
    let mut s = String::new();
    for _ in 0..rng.gen_range(1..16usize) {
        s.push(CHARS[rng.gen_range(0..CHARS.len())] as char);
    }
    s
}

fn field_value(rng: &mut SmallRng) -> String {
    let mut s = String::new();
    for _ in 0..rng.gen_range(0..40usize) {
        s.push(rng.gen_range(b' '..=b'~') as char);
    }
    s
}

fn fields(rng: &mut SmallRng) -> Vec<(String, String)> {
    (0..rng.gen_range(0..12usize))
        .map(|_| (field_name(rng), field_value(rng)))
        .collect()
}

fn random_frame(rng: &mut SmallRng) -> Frame {
    let stream = rng.gen_range(0..512u32);
    match rng.gen_range(0..6u8) {
        0 => Frame {
            stream: stream + 1,
            flags: if rng.gen_range(0..2u8) == 0 {
                FLAG_END_STREAM
            } else {
                0
            },
            payload: FramePayload::Data(
                (0..rng.gen_range(0..2_000usize))
                    .map(|_| rng.gen())
                    .collect::<Vec<u8>>()
                    .into(),
            ),
        },
        1 => Frame {
            stream: stream + 1,
            flags: if rng.gen_range(0..2u8) == 0 {
                FLAG_END_STREAM
            } else {
                0
            },
            payload: FramePayload::Headers(fields(rng)),
        },
        2 => Frame {
            stream: stream + 1,
            flags: 0,
            payload: FramePayload::RstStream(rng.gen_range(0..16u32)),
        },
        3 => Frame {
            stream: 0,
            flags: if rng.gen_range(0..3u8) == 0 {
                FLAG_ACK
            } else {
                0
            },
            payload: FramePayload::Settings(
                (0..rng.gen_range(0..4usize))
                    .map(|_| (rng.gen_range(1..8u16), rng.gen_range(0..1 << 20)))
                    .collect(),
            ),
        },
        4 => Frame {
            stream: stream | 1,
            flags: 0,
            payload: FramePayload::PushPromise {
                promised: (stream + 2) & !1,
                fields: fields(rng),
            },
        },
        _ => Frame {
            stream,
            flags: 0,
            payload: FramePayload::WindowUpdate(rng.gen_range(1..1 << 24)),
        },
    }
}

/// Serialize a batch of random frames, feed the wire bytes back through
/// the parser in random-sized chunks, and require exact identity —
/// every stream id, flag, and payload field.
#[test]
fn roundtrip_identity() {
    let mut rng = SmallRng::seed_from_u64(0x6d75_785f_7274_5f31);
    let mut done = 0;
    while done < ROUNDTRIP_CASES {
        let batch: Vec<Frame> = (0..rng.gen_range(1..8usize))
            .map(|_| random_frame(&mut rng))
            .collect();
        let mut wire = Vec::new();
        for frame in &batch {
            frame.encode_into(&mut wire);
        }
        let mut parser = FrameParser::new();
        let mut parsed = Vec::new();
        let mut off = 0;
        while off < wire.len() {
            let step = rng.gen_range(1..=64usize).min(wire.len() - off);
            parser.feed(&wire[off..off + step]);
            off += step;
            while let Some(frame) = parser.next_frame().expect("clean wire must parse") {
                parsed.push(frame);
            }
        }
        assert_eq!(parsed, batch);
        assert_eq!(parser.buffered(), 0);
        done += batch.len();
    }
}

fn mutate(rng: &mut SmallRng, wire: &mut Vec<u8>) {
    for _ in 0..rng.gen_range(1..=4usize) {
        if wire.is_empty() {
            wire.push(rng.gen());
            continue;
        }
        match rng.gen_range(0..4u8) {
            0 => {
                let i = rng.gen_range(0..wire.len());
                wire[i] ^= 1 << rng.gen_range(0..8u32);
            }
            1 => {
                let i = rng.gen_range(0..wire.len());
                wire.truncate(i);
            }
            2 => {
                let i = rng.gen_range(0..=wire.len());
                wire.insert(i, rng.gen());
            }
            _ => {
                let i = rng.gen_range(0..wire.len());
                wire.remove(i);
            }
        }
    }
}

/// Randomly corrupted valid wire images never panic the parser: every
/// frame either parses or yields a sticky error.
#[test]
fn mutated_streams_never_panic() {
    let mut rng = SmallRng::seed_from_u64(0x6d75_785f_6d75_7431);
    for _ in 0..MUTATION_CASES {
        let mut wire = Vec::new();
        for _ in 0..rng.gen_range(1..6usize) {
            random_frame(&mut rng).encode_into(&mut wire);
        }
        mutate(&mut rng, &mut wire);
        let mut parser = FrameParser::new();
        parser.feed(&wire);
        for _ in 0..64 {
            match parser.next_frame() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => break,
            }
        }
    }
}

/// Every prefix of a valid stream is either incomplete or parses the
/// frames that fit — truncation is never an error mid-header.
#[test]
fn truncated_streams_parse_complete_prefix() {
    let mut rng = SmallRng::seed_from_u64(0x6d75_785f_7472_756e);
    for _ in 0..TRUNCATION_CASES {
        let frames: Vec<Frame> = (0..rng.gen_range(1..5usize))
            .map(|_| random_frame(&mut rng))
            .collect();
        let mut wire = Vec::new();
        let mut boundaries = Vec::new();
        for frame in &frames {
            frame.encode_into(&mut wire);
            boundaries.push(wire.len());
        }
        let cut = rng.gen_range(0..=wire.len());
        let complete = boundaries.iter().filter(|&&b| b <= cut).count();
        let mut parser = FrameParser::new();
        parser.feed(&wire[..cut]);
        let mut parsed = 0;
        while let Ok(Some(frame)) = parser.next_frame() {
            assert_eq!(frame, frames[parsed]);
            parsed += 1;
        }
        assert_eq!(parsed, complete);
    }
}

/// Pure garbage — including garbage that happens to start like the
/// preface — never panics either parser mode.
#[test]
fn garbage_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0x6d75_785f_6762_6721);
    for case in 0..GARBAGE_CASES {
        let len = rng.gen_range(0..400usize);
        let mut wire: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        if case % 3 == 0 {
            let keep = rng.gen_range(0..=PREFACE.len());
            wire.splice(0..0, PREFACE[..keep].iter().copied());
        }
        for preface in [false, true] {
            let mut parser = if preface {
                FrameParser::with_preface()
            } else {
                FrameParser::new()
            };
            parser.feed(&wire);
            for _ in 0..64 {
                match parser.next_frame() {
                    Ok(Some(_)) => {}
                    _ => break,
                }
            }
        }
    }
}

/// Encoded frames always fit the declared max payload, and the length
/// prefix always matches the body actually written.
#[test]
fn length_prefix_is_exact() {
    let mut rng = SmallRng::seed_from_u64(0x6d75_785f_6c65_6e21);
    for _ in 0..1024 {
        let frame = random_frame(&mut rng);
        let wire = frame.encode();
        let len = ((wire[0] as usize) << 16) | ((wire[1] as usize) << 8) | wire[2] as usize;
        assert_eq!(len, wire.len() - httpmux::FRAME_HEADER_LEN);
        assert!(len <= MAX_FRAME_PAYLOAD);
    }
}
