//! Wire format: a 9-byte frame header (u24 payload length, u8 type,
//! u8 flags, u32 stream id, all big-endian) followed by the payload.
//! Header blocks are length-prefixed name/value lists (u16 field count,
//! then per field u16 name length + name bytes + u16 value length +
//! value bytes). Pseudo-headers `:method` / `:path` / `:status` carry
//! the request/response line.

use bytes::{Bytes, BytesMut};

/// Client connection preface, sent before any frame. Chosen so the first
/// byte can never begin a valid HTTP/1.x method token parse on our
/// servers ("HMUX" is not a known method and the line ends without a
/// version), letting endpoints sniff the protocol family.
pub const PREFACE: &[u8] = b"HMUX/1\r\nSM\r\n";

/// Fixed frame header size in bytes.
pub const FRAME_HEADER_LEN: usize = 9;

/// Largest payload a single frame may carry. DATA above this is chunked
/// by the sender; anything larger on the wire is a framing error.
pub const MAX_FRAME_PAYLOAD: usize = 16 * 1024;

/// Initial per-stream and connection-level flow-control window.
pub const DEFAULT_WINDOW: u32 = 65_535;

/// HEADERS / DATA: no further frames from this direction on the stream.
pub const FLAG_END_STREAM: u8 = 0x1;
/// SETTINGS: acknowledges the peer's settings.
pub const FLAG_ACK: u8 = 0x1;

/// SETTINGS identifier: peer accepts PUSH_PROMISE (value 0 or 1).
pub const SETTING_ENABLE_PUSH: u16 = 0x2;
/// SETTINGS identifier: initial per-stream window for streams the
/// *sender of the setting* receives on.
pub const SETTING_INITIAL_WINDOW: u16 = 0x4;

/// RST_STREAM error codes.
pub const ERR_PROTOCOL: u32 = 0x1;
pub const ERR_FLOW_CONTROL: u32 = 0x3;
pub const ERR_CANCEL: u32 = 0x8;

/// Frame type octet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    Data,
    Headers,
    RstStream,
    Settings,
    PushPromise,
    WindowUpdate,
}

impl FrameType {
    pub fn code(self) -> u8 {
        match self {
            FrameType::Data => 0x0,
            FrameType::Headers => 0x1,
            FrameType::RstStream => 0x3,
            FrameType::Settings => 0x4,
            FrameType::PushPromise => 0x5,
            FrameType::WindowUpdate => 0x8,
        }
    }

    pub fn from_code(code: u8) -> Option<FrameType> {
        match code {
            0x0 => Some(FrameType::Data),
            0x1 => Some(FrameType::Headers),
            0x3 => Some(FrameType::RstStream),
            0x4 => Some(FrameType::Settings),
            0x5 => Some(FrameType::PushPromise),
            0x8 => Some(FrameType::WindowUpdate),
            _ => None,
        }
    }
}

/// A header block: ordered name/value pairs (no HPACK — insertion
/// order is the wire order).
pub type FieldList = Vec<(String, String)>;

/// A decoded frame payload. DATA keeps raw bytes in a pool-recycled
/// [`Bytes`] (one mux DATA frame arrives per TCP segment in steady
/// state, so its buffer rides the same free list as segment payloads);
/// the control frames are decoded into their structured forms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FramePayload {
    Data(Bytes),
    Headers(Vec<(String, String)>),
    RstStream(u32),
    Settings(Vec<(u16, u32)>),
    PushPromise {
        promised: u32,
        fields: Vec<(String, String)>,
    },
    WindowUpdate(u32),
}

impl FramePayload {
    pub fn frame_type(&self) -> FrameType {
        match self {
            FramePayload::Data(_) => FrameType::Data,
            FramePayload::Headers(_) => FrameType::Headers,
            FramePayload::RstStream(_) => FrameType::RstStream,
            FramePayload::Settings(_) => FrameType::Settings,
            FramePayload::PushPromise { .. } => FrameType::PushPromise,
            FramePayload::WindowUpdate(_) => FrameType::WindowUpdate,
        }
    }
}

/// One mux frame: stream id, flags, decoded payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub stream: u32,
    pub flags: u8,
    pub payload: FramePayload,
}

impl Frame {
    pub fn frame_type(&self) -> FrameType {
        self.payload.frame_type()
    }

    pub fn end_stream(&self) -> bool {
        matches!(
            self.payload.frame_type(),
            FrameType::Data | FrameType::Headers
        ) && self.flags & FLAG_END_STREAM != 0
    }

    /// Serialize onto `out`. Debug-asserts the payload fits one frame;
    /// callers chunk DATA and keep header blocks small.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let body_start = out.len() + FRAME_HEADER_LEN;
        out.extend_from_slice(&[0, 0, 0]); // length patched below
        out.push(self.frame_type().code());
        out.push(self.flags);
        out.extend_from_slice(&self.stream.to_be_bytes());
        match &self.payload {
            FramePayload::Data(data) => out.extend_from_slice(data),
            FramePayload::Headers(fields) => encode_fields(fields, out),
            FramePayload::RstStream(code) => out.extend_from_slice(&code.to_be_bytes()),
            FramePayload::Settings(items) => {
                for (id, value) in items {
                    out.extend_from_slice(&id.to_be_bytes());
                    out.extend_from_slice(&value.to_be_bytes());
                }
            }
            FramePayload::PushPromise { promised, fields } => {
                out.extend_from_slice(&promised.to_be_bytes());
                encode_fields(fields, out);
            }
            FramePayload::WindowUpdate(increment) => {
                out.extend_from_slice(&increment.to_be_bytes())
            }
        }
        let len = out.len() - body_start;
        debug_assert!(len <= MAX_FRAME_PAYLOAD, "frame payload {len} too large");
        let hdr = body_start - FRAME_HEADER_LEN;
        out[hdr] = (len >> 16) as u8;
        out[hdr + 1] = (len >> 8) as u8;
        out[hdr + 2] = len as u8;
    }

    pub fn encode(&self) -> Vec<u8> {
        // Convenience for tests and the conformance checker; the engine
        // appends with `encode_into`. xtask: allow(hot-path-alloc)
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Serialize a DATA frame whose payload is `head` followed by
    /// `tail`, straight onto `out`. This is the scheduler's hot path:
    /// the two slices come from a send queue's `VecDeque::as_slices`,
    /// so no intermediate payload vector is ever materialized.
    pub fn encode_data_into(stream: u32, flags: u8, head: &[u8], tail: &[u8], out: &mut Vec<u8>) {
        let len = head.len() + tail.len();
        debug_assert!(len <= MAX_FRAME_PAYLOAD, "frame payload {len} too large");
        out.extend_from_slice(&[(len >> 16) as u8, (len >> 8) as u8, len as u8]);
        out.push(FrameType::Data.code());
        out.push(flags);
        out.extend_from_slice(&stream.to_be_bytes());
        out.extend_from_slice(head);
        out.extend_from_slice(tail);
    }
}

fn encode_fields(fields: &[(String, String)], out: &mut Vec<u8>) {
    out.extend_from_slice(&(fields.len() as u16).to_be_bytes());
    for (name, value) in fields {
        out.extend_from_slice(&(name.len() as u16).to_be_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&(value.len() as u16).to_be_bytes());
        out.extend_from_slice(value.as_bytes());
    }
}

/// Why a byte stream failed to decode as frames. All errors are fatal to
/// the connection: framing has no resync point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Unknown frame type octet.
    UnknownType(u8),
    /// Declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversize(usize),
    /// Payload bytes do not decode as the declared type.
    BadPayload(FrameType),
    /// Expected the connection preface and saw something else.
    BadPreface,
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::UnknownType(t) => write!(f, "unknown frame type 0x{t:x}"),
            FrameError::Oversize(n) => write!(f, "frame payload {n} exceeds max"),
            FrameError::BadPayload(t) => write!(f, "malformed {t:?} payload"),
            FrameError::BadPreface => write!(f, "bad connection preface"),
        }
    }
}

/// Incremental frame decoder. Feed arbitrary byte chunks, pull complete
/// frames. Never panics on hostile input; the first error is sticky.
#[derive(Debug, Default)]
pub struct FrameParser {
    buf: BytesMut,
    expect_preface: bool,
    failed: bool,
}

impl FrameParser {
    /// Parser that expects raw frames from the first byte.
    pub fn new() -> FrameParser {
        FrameParser::default()
    }

    /// Parser that first consumes (and validates) the client preface.
    pub fn with_preface() -> FrameParser {
        FrameParser {
            expect_preface: true,
            ..FrameParser::default()
        }
    }

    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Next complete frame, `Ok(None)` if more bytes are needed.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        if self.failed {
            return Err(FrameError::BadPreface);
        }
        if self.expect_preface {
            let have = self.buf.len().min(PREFACE.len());
            if self.buf[..have] != PREFACE[..have] {
                self.failed = true;
                return Err(FrameError::BadPreface);
            }
            if self.buf.len() < PREFACE.len() {
                return Ok(None);
            }
            self.buf.advance(PREFACE.len());
            self.expect_preface = false;
        }
        if self.buf.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let head = &self.buf[..];
        let len = ((head[0] as usize) << 16) | ((head[1] as usize) << 8) | head[2] as usize;
        if len > MAX_FRAME_PAYLOAD {
            self.failed = true;
            return Err(FrameError::Oversize(len));
        }
        let Some(ftype) = FrameType::from_code(head[3]) else {
            self.failed = true;
            return Err(FrameError::UnknownType(head[3]));
        };
        if self.buf.len() < FRAME_HEADER_LEN + len {
            return Ok(None);
        }
        let flags = head[4];
        let stream = u32::from_be_bytes([head[5], head[6], head[7], head[8]]);
        let payload = &head[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len];
        let decoded = decode_payload(ftype, payload);
        self.buf.advance(FRAME_HEADER_LEN + len);
        match decoded {
            Some(payload) => Ok(Some(Frame {
                stream,
                flags,
                payload,
            })),
            None => {
                self.failed = true;
                Err(FrameError::BadPayload(ftype))
            }
        }
    }
}

fn decode_payload(ftype: FrameType, payload: &[u8]) -> Option<FramePayload> {
    match ftype {
        FrameType::Data => Some(FramePayload::Data(Bytes::pooled_copy_from_slice(payload))),
        FrameType::Headers => {
            decode_fields(payload).map(|(fields, _)| FramePayload::Headers(fields))
        }
        FrameType::RstStream => {
            let code = exact_u32(payload)?;
            Some(FramePayload::RstStream(code))
        }
        FrameType::Settings => {
            if payload.len() % 6 != 0 {
                return None;
            }
            let mut items = Vec::with_capacity(payload.len() / 6);
            for chunk in payload.chunks_exact(6) {
                let id = u16::from_be_bytes([chunk[0], chunk[1]]);
                let value = u32::from_be_bytes([chunk[2], chunk[3], chunk[4], chunk[5]]);
                items.push((id, value));
            }
            Some(FramePayload::Settings(items))
        }
        FrameType::PushPromise => {
            if payload.len() < 4 {
                return None;
            }
            let promised = u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]]);
            let (fields, _) = decode_fields(&payload[4..])?;
            Some(FramePayload::PushPromise { promised, fields })
        }
        FrameType::WindowUpdate => {
            let increment = exact_u32(payload)?;
            if increment == 0 {
                return None;
            }
            Some(FramePayload::WindowUpdate(increment))
        }
    }
}

fn exact_u32(payload: &[u8]) -> Option<u32> {
    if payload.len() != 4 {
        return None;
    }
    Some(u32::from_be_bytes([
        payload[0], payload[1], payload[2], payload[3],
    ]))
}

/// Decode a header block; `None` on any length overrun, trailing
/// garbage, or non-UTF-8 field bytes.
fn decode_fields(mut bytes: &[u8]) -> Option<(FieldList, &[u8])> {
    if bytes.len() < 2 {
        return None;
    }
    let count = u16::from_be_bytes([bytes[0], bytes[1]]) as usize;
    bytes = &bytes[2..];
    let mut fields = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        let (name, rest) = take_str(bytes)?;
        let (value, rest) = take_str(rest)?;
        bytes = rest;
        fields.push((name, value));
    }
    if !bytes.is_empty() {
        return None;
    }
    Some((fields, bytes))
}

fn take_str(bytes: &[u8]) -> Option<(String, &[u8])> {
    if bytes.len() < 2 {
        return None;
    }
    let len = u16::from_be_bytes([bytes[0], bytes[1]]) as usize;
    let rest = &bytes[2..];
    if rest.len() < len {
        return None;
    }
    let s = core::str::from_utf8(&rest[..len]).ok()?.to_string();
    Some((s, &rest[len..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let mut parser = FrameParser::new();
        parser.feed(&frame.encode());
        assert_eq!(parser.next_frame().unwrap().unwrap(), frame);
        assert!(parser.next_frame().unwrap().is_none());
    }

    #[test]
    fn roundtrips_every_frame_type() {
        roundtrip(Frame {
            stream: 1,
            flags: FLAG_END_STREAM,
            payload: FramePayload::Data(Bytes::copy_from_slice(b"hello")),
        });
        roundtrip(Frame {
            stream: 3,
            flags: 0,
            payload: FramePayload::Headers(vec![
                (":method".into(), "GET".into()),
                (":path".into(), "/index.html".into()),
            ]),
        });
        roundtrip(Frame {
            stream: 5,
            flags: 0,
            payload: FramePayload::RstStream(ERR_CANCEL),
        });
        roundtrip(Frame {
            stream: 0,
            flags: 0,
            payload: FramePayload::Settings(vec![
                (SETTING_ENABLE_PUSH, 1),
                (SETTING_INITIAL_WINDOW, 65_535),
            ]),
        });
        roundtrip(Frame {
            stream: 1,
            flags: 0,
            payload: FramePayload::PushPromise {
                promised: 2,
                fields: vec![(":path".into(), "/a.gif".into())],
            },
        });
        roundtrip(Frame {
            stream: 0,
            flags: 0,
            payload: FramePayload::WindowUpdate(32_768),
        });
    }

    #[test]
    fn split_data_encode_matches_whole_frame() {
        let body = b"the quick brown fox";
        for split in [0, 1, body.len() / 2, body.len()] {
            let mut direct = Vec::new();
            Frame::encode_data_into(
                7,
                FLAG_END_STREAM,
                &body[..split],
                &body[split..],
                &mut direct,
            );
            let whole = Frame {
                stream: 7,
                flags: FLAG_END_STREAM,
                payload: FramePayload::Data(Bytes::copy_from_slice(body)),
            }
            .encode();
            assert_eq!(direct, whole, "split at {split}");
        }
    }

    #[test]
    fn preface_is_consumed_then_frames_follow() {
        let mut parser = FrameParser::with_preface();
        let mut wire = PREFACE.to_vec();
        let frame = Frame {
            stream: 0,
            flags: 0,
            payload: FramePayload::Settings(vec![(SETTING_ENABLE_PUSH, 0)]),
        };
        frame.encode_into(&mut wire);
        // Feed one byte at a time: incremental parsing must hold.
        for b in wire {
            parser.feed(&[b]);
        }
        assert_eq!(parser.next_frame().unwrap().unwrap(), frame);
    }

    #[test]
    fn bad_preface_is_sticky() {
        let mut parser = FrameParser::with_preface();
        parser.feed(b"GET / HTTP/1.0\r\n");
        assert_eq!(parser.next_frame(), Err(FrameError::BadPreface));
        assert!(parser.next_frame().is_err());
    }

    #[test]
    fn rejects_unknown_type_oversize_and_bad_payloads() {
        let mut parser = FrameParser::new();
        parser.feed(&[0, 0, 0, 0x7, 0, 0, 0, 0, 1]);
        assert_eq!(parser.next_frame(), Err(FrameError::UnknownType(0x7)));

        let mut parser = FrameParser::new();
        parser.feed(&[0xff, 0xff, 0xff, 0x0, 0, 0, 0, 0, 1]);
        assert!(matches!(parser.next_frame(), Err(FrameError::Oversize(_))));

        // RST_STREAM payload must be exactly 4 bytes.
        let mut parser = FrameParser::new();
        parser.feed(&[0, 0, 2, 0x3, 0, 0, 0, 0, 1, 0xde, 0xad]);
        assert_eq!(
            parser.next_frame(),
            Err(FrameError::BadPayload(FrameType::RstStream))
        );

        // WINDOW_UPDATE increment of zero is meaningless.
        let mut wire = vec![0, 0, 4, 0x8, 0, 0, 0, 0, 0];
        wire.extend_from_slice(&0u32.to_be_bytes());
        let mut parser = FrameParser::new();
        parser.feed(&wire);
        assert_eq!(
            parser.next_frame(),
            Err(FrameError::BadPayload(FrameType::WindowUpdate))
        );
    }

    #[test]
    fn header_block_overrun_is_rejected() {
        // Declares 1 field with a 1000-byte name but supplies 2 bytes.
        let mut wire = vec![0, 0, 6, 0x1, 0, 0, 0, 0, 1];
        wire.extend_from_slice(&1u16.to_be_bytes());
        wire.extend_from_slice(&1000u16.to_be_bytes());
        wire.extend_from_slice(b"ab");
        let mut parser = FrameParser::new();
        parser.feed(&wire);
        assert_eq!(
            parser.next_frame(),
            Err(FrameError::BadPayload(FrameType::Headers))
        );
    }
}
