//! `MuxConn` — one endpoint's view of a multiplexed connection: stream
//! table, flow-control accounting, and the outgoing byte scheduler.
//!
//! The engine is sans-IO: callers `feed()` bytes received from the
//! socket, drain semantic [`MuxEvent`]s with `poll_event()`, enqueue
//! sends through the `send_*` methods, and pull wire bytes with
//! `take_output()`. Control frames (HEADERS, SETTINGS, WINDOW_UPDATE,
//! RST_STREAM, PUSH_PROMISE) are serialized immediately in call order —
//! which is what makes PUSH_PROMISE-before-parent-HEADERS ordering hold
//! — while DATA is queued per stream and drained round-robin in
//! [`MAX_FRAME_PAYLOAD`] chunks as the peer's windows allow.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::frame::{
    Frame, FrameError, FrameParser, FramePayload, DEFAULT_WINDOW, FLAG_ACK, FLAG_END_STREAM,
    MAX_FRAME_PAYLOAD, SETTING_ENABLE_PUSH, SETTING_INITIAL_WINDOW,
};

/// Which side of the connection this engine plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    Client,
    Server,
}

/// Fatal connection error surfaced through [`MuxEvent::ProtocolError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MuxError {
    Frame(FrameError),
    /// Peer violated framing semantics (bad stream id, window overflow).
    Protocol(&'static str),
}

/// Semantic events decoded from peer bytes, in arrival order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MuxEvent {
    /// Peer settings arrived (already applied to the engine).
    Settings { enable_push: bool },
    /// HEADERS on a stream (request on server, response on client).
    Headers {
        stream: u32,
        fields: Vec<(String, String)>,
        end_stream: bool,
    },
    /// DATA on a live stream. The payload buffer is pool-recycled:
    /// dropping the event returns it to the free list.
    Data {
        stream: u32,
        data: bytes::Bytes,
        end_stream: bool,
    },
    /// DATA that arrived for a stream we already reset (e.g. a cancelled
    /// push): delivered separately so callers can count wasted bytes.
    CancelledData { stream: u32, len: usize },
    /// Peer reserved `promised` for a push tied to our `stream`.
    PushPromise {
        stream: u32,
        promised: u32,
        fields: Vec<(String, String)>,
    },
    /// Peer reset a stream. `data_sent` is how many DATA payload bytes
    /// we had already emitted on it (waste accounting for pushes).
    Reset {
        stream: u32,
        code: u32,
        data_sent: u64,
    },
    /// Unrecoverable connection error; the caller should abort.
    ProtocolError(MuxError),
}

#[derive(Debug, Default)]
struct Stream {
    send_window: i64,
    sendq: VecDeque<u8>,
    /// Caller finished writing; emit END_STREAM with the last chunk.
    send_end: bool,
    /// END_STREAM has gone out in this direction.
    local_done: bool,
    /// Peer signalled END_STREAM.
    remote_done: bool,
    /// DATA payload bytes emitted on this stream so far.
    data_sent: u64,
    /// Received payload bytes not yet returned to the peer's window.
    recv_consumed: u32,
}

/// One multiplexed connection endpoint. See module docs for the I/O
/// contract.
#[derive(Debug)]
pub struct MuxConn {
    role: Role,
    parser: FrameParser,
    events: VecDeque<MuxEvent>,
    streams: BTreeMap<u32, Stream>,
    /// Streams we reset (or saw reset) — arriving DATA becomes
    /// [`MuxEvent::CancelledData`].
    cancelled: BTreeSet<u32>,
    next_local_id: u32,
    /// Highest remote-initiated id seen (for server: client streams).
    highest_remote: u32,
    conn_send_window: i64,
    conn_recv_consumed: u32,
    /// Peer's INITIAL_WINDOW_SIZE for streams we send on.
    peer_initial_window: u32,
    peer_enable_push: bool,
    outbuf: Vec<u8>,
    /// Round-robin cursor: next DATA scheduling pass starts above this id.
    rr_last: u32,
    dead: bool,
}

impl MuxConn {
    /// Client endpoint: queues the connection preface and a SETTINGS
    /// frame advertising whether pushes are welcome.
    pub fn client(accept_push: bool) -> MuxConn {
        let mut conn = MuxConn::new(Role::Client, FrameParser::new());
        conn.outbuf.extend_from_slice(crate::PREFACE);
        conn.queue_frame(&Frame {
            stream: 0,
            flags: 0,
            // Once per connection, off the per-frame path.
            // xtask: allow(hot-path-alloc)
            payload: FramePayload::Settings(vec![
                (SETTING_ENABLE_PUSH, accept_push as u32),
                (SETTING_INITIAL_WINDOW, DEFAULT_WINDOW),
            ]),
        });
        conn
    }

    /// Server endpoint: expects the preface at the head of the first
    /// `feed()` and answers with its own SETTINGS.
    pub fn server() -> MuxConn {
        let mut conn = MuxConn::new(Role::Server, FrameParser::with_preface());
        conn.queue_frame(&Frame {
            stream: 0,
            flags: 0,
            // Once per connection, off the per-frame path.
            // xtask: allow(hot-path-alloc)
            payload: FramePayload::Settings(vec![(SETTING_INITIAL_WINDOW, DEFAULT_WINDOW)]),
        });
        conn
    }

    fn new(role: Role, parser: FrameParser) -> MuxConn {
        MuxConn {
            role,
            parser,
            events: VecDeque::new(),
            streams: BTreeMap::new(),
            cancelled: BTreeSet::new(),
            next_local_id: match role {
                Role::Client => 1,
                Role::Server => 2,
            },
            highest_remote: 0,
            conn_send_window: DEFAULT_WINDOW as i64,
            conn_recv_consumed: 0,
            peer_initial_window: DEFAULT_WINDOW,
            peer_enable_push: false,
            outbuf: Vec::new(), // xtask: allow(hot-path-alloc) — constructor
            rr_last: 0,
            dead: false,
        }
    }

    /// Whether the peer advertised ENABLE_PUSH (meaningful on servers).
    pub fn peer_push_enabled(&self) -> bool {
        self.peer_enable_push
    }

    /// Streams with state still held (open in at least one direction).
    pub fn open_streams(&self) -> usize {
        self.streams.len()
    }

    /// True once every queued byte has been handed out via
    /// `take_output()` and no stream holds undrained DATA.
    pub fn idle(&self) -> bool {
        self.outbuf.is_empty() && self.streams.values().all(|s| s.sendq.is_empty())
    }

    /// DATA bytes queued or in flight that flow control is holding back.
    pub fn pending_send_bytes(&self) -> usize {
        self.streams.values().map(|s| s.sendq.len()).sum()
    }

    /// Wire bytes queued for `take_output()`.
    pub fn output_len(&self) -> usize {
        self.outbuf.len()
    }

    /// Whether a stream has been reset (locally or by the peer).
    pub fn is_cancelled(&self, stream: u32) -> bool {
        self.cancelled.contains(&stream)
    }

    // ---- sending ----------------------------------------------------

    /// Open a new locally-initiated stream with a HEADERS frame and
    /// return its id (odd for clients, even for servers).
    pub fn open_stream(&mut self, fields: &[(String, String)], end_stream: bool) -> u32 {
        let id = self.next_local_id;
        self.next_local_id += 2;
        self.insert_stream(id);
        self.send_headers(id, fields, end_stream);
        id
    }

    /// HEADERS on an existing stream (server response, or trailer-less
    /// pushed response headers).
    pub fn send_headers(&mut self, stream: u32, fields: &[(String, String)], end_stream: bool) {
        if self.cancelled.contains(&stream) {
            return; // stream was reset — don't resurrect it
        }
        if !self.streams.contains_key(&stream) {
            self.insert_stream(stream);
        }
        self.queue_frame(&Frame {
            stream,
            flags: if end_stream { FLAG_END_STREAM } else { 0 },
            payload: FramePayload::Headers(fields.to_vec()),
        });
        if end_stream {
            self.mark_local_done(stream);
        }
    }

    /// Reserve an even stream for a push tied to client stream
    /// `parent`; serialized before any later frames, so callers emit the
    /// promise before the parent response HEADERS.
    pub fn push_promise(&mut self, parent: u32, fields: &[(String, String)]) -> u32 {
        debug_assert_eq!(self.role, Role::Server, "only servers push");
        let promised = self.next_local_id;
        self.next_local_id += 2;
        self.insert_stream(promised);
        self.queue_frame(&Frame {
            stream: parent,
            flags: 0,
            payload: FramePayload::PushPromise {
                promised,
                fields: fields.to_vec(),
            },
        });
        promised
    }

    /// Queue body bytes on a stream; they drain through the round-robin
    /// scheduler as windows allow. `end_stream` closes our direction
    /// after the final queued byte is emitted.
    pub fn send_data(&mut self, stream: u32, data: &[u8], end_stream: bool) {
        let Some(st) = self.streams.get_mut(&stream) else {
            return; // stream already reset — drop silently
        };
        st.sendq.extend(data.iter().copied());
        st.send_end |= end_stream;
        self.pump_data();
    }

    /// Abort a stream. Unsent queued DATA is dropped; returns the DATA
    /// payload bytes that had already been emitted on it.
    pub fn reset_stream(&mut self, stream: u32, code: u32) -> u64 {
        let sent = self
            .streams
            .remove(&stream)
            .map(|s| s.data_sent)
            .unwrap_or(0);
        self.cancelled.insert(stream);
        self.queue_frame(&Frame {
            stream,
            flags: 0,
            payload: FramePayload::RstStream(code),
        });
        sent
    }

    // ---- receiving --------------------------------------------------

    /// Feed bytes received from the socket; semantic events become
    /// available via [`MuxConn::poll_event`].
    pub fn feed(&mut self, data: &[u8]) {
        if self.dead {
            return;
        }
        self.parser.feed(data);
        loop {
            match self.parser.next_frame() {
                Ok(Some(frame)) => self.handle_frame(frame),
                Ok(None) => break,
                Err(e) => {
                    self.dead = true;
                    self.events
                        .push_back(MuxEvent::ProtocolError(MuxError::Frame(e)));
                    break;
                }
            }
            if self.dead {
                break;
            }
        }
        self.pump_data();
    }

    /// Next decoded event, if any.
    pub fn poll_event(&mut self) -> Option<MuxEvent> {
        self.events.pop_front()
    }

    // ---- output -----------------------------------------------------

    /// True if wire bytes are waiting for `take_output()`.
    pub fn has_output(&self) -> bool {
        !self.outbuf.is_empty()
    }

    /// Move up to `max` queued wire bytes onto `out`.
    pub fn take_output(&mut self, max: usize, out: &mut Vec<u8>) -> usize {
        let n = self.outbuf.len().min(max);
        out.extend_from_slice(&self.outbuf[..n]);
        self.outbuf.drain(..n);
        n
    }

    // ---- internals --------------------------------------------------

    fn insert_stream(&mut self, id: u32) {
        self.streams.insert(
            id,
            Stream {
                send_window: self.peer_initial_window as i64,
                ..Stream::default()
            },
        );
    }

    fn queue_frame(&mut self, frame: &Frame) {
        frame.encode_into(&mut self.outbuf);
    }

    fn mark_local_done(&mut self, stream: u32) {
        if let Some(st) = self.streams.get_mut(&stream) {
            st.local_done = true;
            if st.remote_done {
                self.streams.remove(&stream);
            }
        }
    }

    fn mark_remote_done(&mut self, stream: u32) {
        if let Some(st) = self.streams.get_mut(&stream) {
            st.remote_done = true;
            if st.local_done {
                self.streams.remove(&stream);
            }
        }
    }

    fn fatal(&mut self, what: &'static str) {
        self.dead = true;
        self.events
            .push_back(MuxEvent::ProtocolError(MuxError::Protocol(what)));
    }

    fn handle_frame(&mut self, frame: Frame) {
        match frame.payload {
            FramePayload::Settings(ref items) => {
                if frame.flags & FLAG_ACK != 0 {
                    return; // our settings were acknowledged — nothing to do
                }
                for &(id, value) in items {
                    match id {
                        SETTING_ENABLE_PUSH => self.peer_enable_push = value != 0,
                        SETTING_INITIAL_WINDOW => {
                            let delta = value as i64 - self.peer_initial_window as i64;
                            self.peer_initial_window = value;
                            for st in self.streams.values_mut() {
                                st.send_window += delta;
                            }
                        }
                        _ => {} // unknown settings are ignored
                    }
                }
                self.queue_frame(&Frame {
                    stream: 0,
                    flags: FLAG_ACK,
                    // Empty Vec::new() never allocates.
                    // xtask: allow(hot-path-alloc)
                    payload: FramePayload::Settings(Vec::new()),
                });
                self.events.push_back(MuxEvent::Settings {
                    enable_push: self.peer_enable_push,
                });
            }
            FramePayload::Headers(fields) => {
                if frame.stream == 0 || !self.valid_remote_or_local(frame.stream) {
                    return self.fatal("HEADERS on invalid stream id");
                }
                let end = frame.flags & FLAG_END_STREAM != 0;
                if self.cancelled.contains(&frame.stream) {
                    return; // late headers on a stream we reset
                }
                if self.is_remote_initiated(frame.stream)
                    && !self.streams.contains_key(&frame.stream)
                {
                    if frame.stream <= self.highest_remote {
                        return self.fatal("remote stream id not increasing");
                    }
                    self.highest_remote = frame.stream;
                    self.insert_stream(frame.stream);
                }
                if end {
                    self.mark_remote_done(frame.stream);
                }
                self.events.push_back(MuxEvent::Headers {
                    stream: frame.stream,
                    fields,
                    end_stream: end,
                });
            }
            FramePayload::Data(data) => {
                if frame.stream == 0 {
                    return self.fatal("DATA on stream 0");
                }
                let len = data.len();
                // Connection-level receive accounting happens even for
                // cancelled streams — those bytes consumed the window.
                self.account_recv(frame.stream, len);
                if self.cancelled.contains(&frame.stream) {
                    self.events.push_back(MuxEvent::CancelledData {
                        stream: frame.stream,
                        len,
                    });
                    return;
                }
                if !self.streams.contains_key(&frame.stream) {
                    return; // DATA on a fully-closed stream: drop
                }
                let end = frame.flags & FLAG_END_STREAM != 0;
                if end {
                    self.mark_remote_done(frame.stream);
                }
                self.events.push_back(MuxEvent::Data {
                    stream: frame.stream,
                    data,
                    end_stream: end,
                });
            }
            FramePayload::PushPromise { promised, fields } => {
                if self.role != Role::Client {
                    return self.fatal("PUSH_PROMISE sent to server");
                }
                if promised % 2 != 0 || promised <= self.highest_remote {
                    return self.fatal("bad promised stream id");
                }
                self.highest_remote = promised;
                self.insert_stream(promised);
                self.events.push_back(MuxEvent::PushPromise {
                    stream: frame.stream,
                    promised,
                    fields,
                });
            }
            FramePayload::WindowUpdate(increment) => {
                if frame.stream == 0 {
                    self.conn_send_window += increment as i64;
                } else if let Some(st) = self.streams.get_mut(&frame.stream) {
                    st.send_window += increment as i64;
                }
                // Updates for unknown/closed streams are stale — ignore.
            }
            FramePayload::RstStream(code) => {
                let sent = self
                    .streams
                    .remove(&frame.stream)
                    .map(|s| s.data_sent)
                    .unwrap_or(0);
                self.cancelled.insert(frame.stream);
                self.events.push_back(MuxEvent::Reset {
                    stream: frame.stream,
                    code,
                    data_sent: sent,
                });
            }
        }
    }

    fn is_remote_initiated(&self, stream: u32) -> bool {
        match self.role {
            Role::Client => stream % 2 == 0,
            Role::Server => stream % 2 == 1,
        }
    }

    fn valid_remote_or_local(&self, stream: u32) -> bool {
        if self.is_remote_initiated(stream) {
            true
        } else {
            // HEADERS on a locally-initiated stream must reference one
            // we actually opened.
            stream < self.next_local_id
        }
    }

    /// Receiver-side flow control: track consumed bytes and hand the
    /// window back once half of it is used, per stream and connection.
    fn account_recv(&mut self, stream: u32, len: usize) {
        let len = len as u32;
        self.conn_recv_consumed += len;
        if self.conn_recv_consumed >= DEFAULT_WINDOW / 2 {
            let inc = self.conn_recv_consumed;
            self.conn_recv_consumed = 0;
            self.queue_frame(&Frame {
                stream: 0,
                flags: 0,
                payload: FramePayload::WindowUpdate(inc),
            });
        }
        let mut update = None;
        if let Some(st) = self.streams.get_mut(&stream) {
            st.recv_consumed += len;
            if st.recv_consumed >= DEFAULT_WINDOW / 2 && !st.remote_done {
                update = Some(st.recv_consumed);
                st.recv_consumed = 0;
            }
        }
        if let Some(inc) = update {
            self.queue_frame(&Frame {
                stream,
                flags: 0,
                payload: FramePayload::WindowUpdate(inc),
            });
        }
    }

    /// Round-robin DATA scheduler: starting after the last-served
    /// stream, emit one ≤[`MAX_FRAME_PAYLOAD`] frame per eligible stream
    /// per pass while connection and stream windows allow.
    fn pump_data(&mut self) {
        loop {
            let mut progressed = false;
            // One pass: every stream with queued data gets at most one
            // frame, in id order starting above the round-robin cursor.
            let ids: Vec<u32> = self
                .streams
                .iter()
                .filter(|(_, s)| !s.sendq.is_empty() || (s.send_end && !s.local_done))
                .map(|(&id, _)| id)
                .collect();
            if ids.is_empty() || self.conn_send_window <= 0 {
                // Bare END_STREAM frames (empty sendq) don't need window.
                if !self.flush_bare_fins(&ids) {
                    break;
                }
                continue;
            }
            let start = ids.partition_point(|&id| id <= self.rr_last);
            for idx in (start..ids.len()).chain(0..start) {
                let id = ids[idx];
                if self.emit_chunk(id) {
                    progressed = true;
                    self.rr_last = id;
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// Emit END_STREAM-only DATA frames for streams whose queue drained
    /// but whose fin hasn't gone out; these bypass flow control.
    fn flush_bare_fins(&mut self, ids: &[u32]) -> bool {
        let mut any = false;
        for &id in ids {
            let Some(st) = self.streams.get(&id) else {
                continue;
            };
            if st.sendq.is_empty() && st.send_end && !st.local_done {
                Frame::encode_data_into(id, FLAG_END_STREAM, &[], &[], &mut self.outbuf);
                self.mark_local_done(id);
                any = true;
            }
        }
        any
    }

    /// One scheduler step for `id`: emit up to one DATA frame within
    /// both windows. Returns whether bytes (or a fin) went out.
    fn emit_chunk(&mut self, id: u32) -> bool {
        let conn_window = self.conn_send_window;
        let Some(st) = self.streams.get_mut(&id) else {
            return false;
        };
        if st.sendq.is_empty() {
            if st.send_end && !st.local_done {
                Frame::encode_data_into(id, FLAG_END_STREAM, &[], &[], &mut self.outbuf);
                self.mark_local_done(id);
                return true;
            }
            return false;
        }
        let allow = st
            .sendq
            .len()
            .min(MAX_FRAME_PAYLOAD)
            .min(st.send_window.max(0) as usize)
            .min(conn_window.max(0) as usize);
        if allow == 0 {
            return false;
        }
        st.send_window -= allow as i64;
        st.data_sent += allow as u64;
        self.conn_send_window -= allow as i64;
        let fin = st.sendq.len() == allow && st.send_end;
        // Encode straight out of the send queue's two ring slices: the
        // scheduler emits one DATA frame per pass with zero payload
        // copies beyond the one onto the wire buffer.
        let (head, tail) = st.sendq.as_slices();
        let h = head.len().min(allow);
        Frame::encode_data_into(
            id,
            if fin { FLAG_END_STREAM } else { 0 },
            &head[..h],
            &tail[..allow - h],
            &mut self.outbuf,
        );
        st.sendq.drain(..allow);
        if fin {
            self.mark_local_done(id);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shuttle all pending bytes from `a` to `b`.
    fn pump(a: &mut MuxConn, b: &mut MuxConn) {
        loop {
            let mut wire = Vec::new();
            a.take_output(usize::MAX, &mut wire);
            if wire.is_empty() {
                break;
            }
            b.feed(&wire);
        }
    }

    fn drain(conn: &mut MuxConn) -> Vec<MuxEvent> {
        let mut out = Vec::new();
        while let Some(ev) = conn.poll_event() {
            out.push(ev);
        }
        out
    }

    fn req(path: &str) -> Vec<(String, String)> {
        vec![
            (":method".into(), "GET".into()),
            (":path".into(), path.into()),
        ]
    }

    #[test]
    fn request_response_over_one_stream() {
        let mut client = MuxConn::client(false);
        let mut server = MuxConn::server();
        let s = client.open_stream(&req("/index.html"), true);
        assert_eq!(s, 1);
        pump(&mut client, &mut server);
        let evs = drain(&mut server);
        assert!(matches!(evs[0], MuxEvent::Settings { enable_push: false }));
        assert!(
            matches!(&evs[1], MuxEvent::Headers { stream: 1, end_stream: true, fields } if fields[1].1 == "/index.html")
        );
        server.send_headers(1, &[(":status".into(), "200".into())], false);
        server.send_data(1, b"<html>hi</html>", true);
        pump(&mut server, &mut client);
        let evs = drain(&mut client);
        assert!(matches!(evs[0], MuxEvent::Settings { .. }));
        assert!(matches!(
            &evs[1],
            MuxEvent::Headers {
                stream: 1,
                end_stream: false,
                ..
            }
        ));
        assert!(
            matches!(&evs[2], MuxEvent::Data { stream: 1, data, end_stream: true } if data[..] == b"<html>hi</html>"[..])
        );
        assert_eq!(client.open_streams(), 0);
        assert_eq!(server.open_streams(), 0);
    }

    #[test]
    fn data_interleaves_round_robin_across_streams() {
        let mut client = MuxConn::client(false);
        let mut server = MuxConn::server();
        let a = client.open_stream(&req("/a"), true);
        let b = client.open_stream(&req("/b"), true);
        pump(&mut client, &mut server);
        drain(&mut server);
        server.send_headers(a, &[(":status".into(), "200".into())], false);
        server.send_headers(b, &[(":status".into(), "200".into())], false);
        // Both bodies exceed the 64 KiB connection window, so after the
        // first burst the scheduler serves the two streams round-robin
        // as WINDOW_UPDATEs come back.
        server.send_data(a, &vec![b'a'; 100_000], true);
        server.send_data(b, &vec![b'b'; 100_000], true);
        for _ in 0..16 {
            pump(&mut server, &mut client);
            pump(&mut client, &mut server);
        }
        let order: Vec<u32> = drain(&mut client)
            .iter()
            .filter_map(|e| match e {
                MuxEvent::Data { stream, data, .. } if !data.is_empty() => Some(*stream),
                _ => None,
            })
            .collect();
        let last_a = order.iter().rposition(|&s| s == a).unwrap();
        let last_b = order.iter().rposition(|&s| s == b).unwrap();
        let first_a = order.iter().position(|&s| s == a).unwrap();
        let first_b = order.iter().position(|&s| s == b).unwrap();
        assert!(
            first_b < last_a && first_a < last_b,
            "streams did not interleave: {order:?}"
        );
    }

    #[test]
    fn flow_control_stalls_and_window_update_resumes() {
        let mut client = MuxConn::client(false);
        let mut server = MuxConn::server();
        let s = client.open_stream(&req("/big"), true);
        pump(&mut client, &mut server);
        drain(&mut server);
        let body = vec![0u8; 200_000];
        server.send_headers(s, &[(":status".into(), "200".into())], false);
        server.send_data(s, &body, true);
        // Without feeding the client, the server can emit at most the
        // connection window's worth of DATA.
        let mut wire = Vec::new();
        server.take_output(usize::MAX, &mut wire);
        assert!(
            server.pending_send_bytes() > 0,
            "everything fit in one window?"
        );
        // Deliver to the client; its auto WINDOW_UPDATEs flow back.
        client.feed(&wire);
        pump(&mut client, &mut server);
        pump(&mut server, &mut client);
        // A few more round trips to fully drain.
        for _ in 0..8 {
            pump(&mut client, &mut server);
            pump(&mut server, &mut client);
        }
        let got: usize = drain(&mut client)
            .iter()
            .map(|e| match e {
                MuxEvent::Data { data, .. } => data.len(),
                _ => 0,
            })
            .sum();
        assert_eq!(got, body.len());
        assert!(server.idle());
    }

    #[test]
    fn push_promise_reserves_even_stream_and_cancel_reports_waste() {
        let mut client = MuxConn::client(true);
        let mut server = MuxConn::server();
        let s = client.open_stream(&req("/page"), true);
        pump(&mut client, &mut server);
        drain(&mut server);
        assert!(server.peer_push_enabled());
        let p = server.push_promise(s, &req("/style.css"));
        assert_eq!(p % 2, 0);
        server.send_headers(s, &[(":status".into(), "200".into())], true);
        server.send_headers(p, &[(":status".into(), "200".into())], false);
        server.send_data(p, &vec![b'c'; 5_000], false);
        pump(&mut server, &mut client);
        let evs = drain(&mut client);
        assert!(evs.iter().any(
            |e| matches!(e, MuxEvent::PushPromise { stream, promised, .. } if *stream == s && *promised == p)
        ));
        // Client cancels the push mid-flight.
        client.reset_stream(p, crate::ERR_CANCEL);
        pump(&mut client, &mut server);
        let evs = drain(&mut server);
        let waste = evs
            .iter()
            .find_map(|e| match e {
                MuxEvent::Reset {
                    stream, data_sent, ..
                } if *stream == p => Some(*data_sent),
                _ => None,
            })
            .unwrap();
        assert_eq!(waste, 5_000);
        // Server keeps (pointlessly) sending on the cancelled stream —
        // client reports it as cancelled data, not stream data.
        server.send_data(p, b"late", true);
        pump(&mut server, &mut client);
        let evs = drain(&mut client);
        assert!(
            evs.is_empty()
                || evs
                    .iter()
                    .all(|e| matches!(e, MuxEvent::CancelledData { .. }))
        );
    }

    #[test]
    fn protocol_errors_surface_and_kill_the_connection() {
        let mut server = MuxConn::server();
        server.feed(b"GET / HTTP/1.0\r\n\r\n");
        let evs = drain(&mut server);
        assert!(matches!(
            evs.last(),
            Some(MuxEvent::ProtocolError(MuxError::Frame(
                FrameError::BadPreface
            )))
        ));

        // Client receiving a PUSH_PROMISE with an odd promised id.
        let mut client = MuxConn::client(true);
        let bad = Frame {
            stream: 1,
            flags: 0,
            payload: FramePayload::PushPromise {
                promised: 7,
                fields: vec![],
            },
        };
        client.feed(&bad.encode());
        let evs = drain(&mut client);
        assert!(matches!(
            evs.last(),
            Some(MuxEvent::ProtocolError(MuxError::Protocol(_)))
        ));
    }

    #[test]
    fn deterministic_byte_stream() {
        let run = || {
            let mut client = MuxConn::client(true);
            let mut server = MuxConn::server();
            let s1 = client.open_stream(&req("/x"), true);
            let s2 = client.open_stream(&req("/y"), true);
            let mut wire = Vec::new();
            client.take_output(usize::MAX, &mut wire);
            server.feed(&wire);
            while server.poll_event().is_some() {}
            server.send_headers(s1, &[(":status".into(), "200".into())], false);
            server.send_headers(s2, &[(":status".into(), "200".into())], false);
            server.send_data(s1, &vec![1u8; 30_000], true);
            server.send_data(s2, &vec![2u8; 30_000], true);
            let mut out = wire;
            server.take_output(usize::MAX, &mut out);
            out
        };
        assert_eq!(run(), run());
    }
}
