//! `httpmux` — a deterministic, binary-framed stream-multiplexing layer
//! carried over one TCP connection, in the spirit of HTTP/2 but pared
//! down to what the experiments need:
//!
//! * length-prefixed frames: HEADERS / DATA / SETTINGS / WINDOW_UPDATE /
//!   RST_STREAM / PUSH_PROMISE (no HPACK — header blocks are plain
//!   length-prefixed name/value lists so traces stay inspectable),
//! * odd client / even server stream-ID allocation,
//! * per-stream **and** connection-level flow-control windows with
//!   WINDOW_UPDATE accounting,
//! * a round-robin DATA scheduler that interleaves concurrent streams
//!   fairly in `MAX_FRAME_PAYLOAD` chunks,
//! * server push: PUSH_PROMISE reserves an even stream referencing the
//!   client stream whose response the pushed resource was discovered in.
//!
//! Everything is deterministic: frame layout is fixed big-endian, header
//! fields keep their insertion order, and the scheduler state is plain
//! counters — two runs over identical inputs produce identical byte
//! streams.
//!
//! The connection preface [`PREFACE`] is sent by the client before any
//! frame. It is deliberately not parseable as an HTTP/1.x request line so
//! servers (and the conformance checker) can sniff which protocol family
//! a connection speaks from its first bytes.

mod conn;
mod frame;

pub use conn::{MuxConn, MuxError, MuxEvent, Role};
pub use frame::{
    Frame, FrameError, FrameParser, FramePayload, FrameType, DEFAULT_WINDOW, ERR_CANCEL,
    ERR_FLOW_CONTROL, ERR_PROTOCOL, FLAG_ACK, FLAG_END_STREAM, FRAME_HEADER_LEN, MAX_FRAME_PAYLOAD,
    PREFACE, SETTING_ENABLE_PUSH, SETTING_INITIAL_WINDOW,
};

/// True if `bytes` could still turn out to be (or already is) the mux
/// connection preface. `starts_with` for the undecided server case.
pub fn preface_candidate(bytes: &[u8]) -> bool {
    let n = bytes.len().min(PREFACE.len());
    bytes[..n] == PREFACE[..n]
}
