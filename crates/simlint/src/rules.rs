//! The rule catalog.
//!
//! Every rule walks the token stream of a [`ScopedFile`], so needles in
//! comments and string literals can never fire, reformatting cannot hide
//! a violation (`Instant::\n now()` still matches), and test-only code
//! is skipped via the scoper's per-token mask.
//!
//! To add a rule: pick an id, add it to [`RULE_IDS`], emit diagnostics
//! from [`lint_scoped`], and plant a violation for it in
//! `tests/mutations.rs` so the rule is proven live.

use crate::lexer::TokKind;
use crate::report::{Diagnostic, Severity};
use crate::scope::ScopedFile;
use crate::spec;

/// Every valid rule id. Allow markers naming anything else are treated
/// as prose and ignored.
pub const RULE_IDS: &[&str] = &[
    "hash-collections",
    "wall-clock",
    "thread-rng",
    "float-time-cmp",
    "unwrap-impair",
    "probe-determinism",
    "hot-path-alloc",
    "seq-wrap",
    "time-unit",
    "tcp-state-machine",
    "stale-allow",
];

/// Rules that cannot be suppressed by allow markers or the file
/// allowlist.
pub const UNSUPPRESSIBLE: &[&str] = &["probe-determinism", "tcp-state-machine", "stale-allow"];

/// Crates where nondeterministic hash iteration can change simulation
/// results or output ordering.
const HASH_CRATES: &[&str] = &["netsim", "core", "httpserver", "httpclient", "httpmux"];

/// Crates where raw nanosecond arithmetic must go through SimTime ops.
const TIME_CRATES: &[&str] = &["netsim", "httpmux"];

/// Files that are on the per-segment hot path.
const HOT_FILES: &[&str] = &[
    "tcp.rs", "cc.rs", "link.rs", "sim.rs", "frame.rs", "conn.rs",
];

/// Identifiers holding TCP sequence-space values in `tcp.rs` and the
/// congestion-control module `cc.rs`. Direct ordering or subtraction on
/// these must go through the `netsim::seq` wrapping helpers.
const SEQ_NAMES: &[&str] = &[
    "seq",
    "ack",
    "snd_nxt",
    "snd_una",
    "rcv_nxt",
    "buf_base",
    "fin_seq",
    "peer_fin_seq",
    "seq_end",
    "send_limit",
    "data_acked",
];

/// Crate name from a workspace-relative path ("crates/netsim/src/…" ->
/// "netsim"); empty when undeterminable (synthetic test inputs).
fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
}

fn file_of(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

/// True when `path` belongs to one of `crates`, or the crate cannot be
/// determined (keeps synthetic snippets lintable in tests).
fn crate_in(path: &str, crates: &[&str]) -> bool {
    let c = crate_of(path);
    c.is_empty() || crates.contains(&c)
}

/// Run every rule over one scoped file. Allow markers are NOT applied
/// here — the caller resolves suppression so it can also report stale
/// markers.
pub fn lint_scoped(sf: &ScopedFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let path = sf.path.as_str();
    let file = file_of(path);
    let toks = &sf.toks;
    let n = toks.len();

    let mut push = |rule: &'static str, line: u32, col: u32, message: String| {
        out.push(Diagnostic {
            rule,
            severity: Severity::Error,
            path: path.to_string(),
            line,
            col,
            message,
        });
    };

    let is_probe = file == "probe.rs";
    // The telemetry sink shares the probe's flight-recorder discipline.
    // Only netsim's telemetry.rs qualifies: the bench bin and the
    // experiments module of the same name are ordinary consumer code.
    let is_telemetry = file == "telemetry.rs" && crate_of(path) == "netsim";
    let is_recorder = is_probe || is_telemetry;

    for i in 0..n {
        if sf.is_test_tok(i) {
            continue;
        }
        let t = &toks[i];

        // --- probe-determinism: the flight recorders must be inert; even
        // imports of nondeterministic types are banned there.
        if is_recorder {
            let hit = (t.kind == TokKind::Ident
                && matches!(
                    t.text.as_str(),
                    "HashMap" | "HashSet" | "SystemTime" | "thread_rng"
                ))
                || (t.is_ident("Instant")
                    && i + 2 < n
                    && toks[i + 1].is_op("::")
                    && toks[i + 2].is_ident("now"));
            if hit {
                push(
                    "probe-determinism",
                    t.line,
                    t.col,
                    format!(
                        "`{}` in `{}`: the flight recorder must not perturb or reorder the simulation",
                        t.text, file
                    ),
                );
            }
            // The telemetry sink is stricter still: series are integer
            // ticks and raw values end to end, so any float type or
            // float sim-time conversion means a lossy representation
            // snuck into the recorder. (The probe is exempt — it owns
            // the float-seconds *rendering* at the report edge.)
            if is_telemetry
                && t.kind == TokKind::Ident
                && matches!(
                    t.text.as_str(),
                    "f32" | "f64" | "as_secs_f32" | "as_secs_f64"
                )
            {
                push(
                    "probe-determinism",
                    t.line,
                    t.col,
                    format!(
                        "`{}` in the telemetry sink: series are integer-only (ticks and raw values); render floats at the report edge",
                        t.text
                    ),
                );
            }
        }

        // --- hash-collections (the recorder files are covered by their
        // own stricter rule above; skip the generic ones there to avoid
        // duplicates)
        if !is_recorder
            && t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "HashMap" | "HashSet")
            && !sf.in_use[i]
            && crate_in(path, HASH_CRATES)
        {
            push(
                "hash-collections",
                t.line,
                t.col,
                format!(
                    "`{}` iteration order is nondeterministic; use BTreeMap/BTreeSet or a Vec",
                    t.text
                ),
            );
        }

        // --- wall-clock
        if !is_recorder && !sf.in_use[i] {
            if t.is_ident("Instant")
                && i + 2 < n
                && toks[i + 1].is_op("::")
                && toks[i + 2].is_ident("now")
            {
                push(
                    "wall-clock",
                    t.line,
                    t.col,
                    "`Instant::now()` reads the wall clock; simulation code must use SimTime"
                        .to_string(),
                );
            }
            if t.is_ident("SystemTime") {
                push(
                    "wall-clock",
                    t.line,
                    t.col,
                    "`SystemTime` reads the wall clock; simulation code must use SimTime"
                        .to_string(),
                );
            }
        }

        // --- thread-rng
        if !is_recorder && t.is_ident("thread_rng") {
            push(
                "thread-rng",
                t.line,
                t.col,
                "`thread_rng` is unseeded; use the run's seeded Rng".to_string(),
            );
        }

        // --- float-time-cmp: exact equality where an operand is a
        // float-seconds conversion, or a float literal compared in the
        // same statement as one.
        if t.kind == TokKind::Op && matches!(t.text.as_str(), "==" | "!=") {
            let left_conv = left_operand_name(sf, i) == Some("as_secs_f64");
            let right_conv = right_operand_name(sf, i) == Some("as_secs_f64");
            let adj_float = (i > 0 && is_float_literal(&toks[i - 1]))
                || (i + 1 < n && is_float_literal(&toks[i + 1]));
            let stmt_has_conv = || {
                let (lo, hi) = statement_bounds(sf, i);
                toks[lo..hi].iter().any(|t| t.is_ident("as_secs_f64"))
            };
            if left_conv || right_conv || (adj_float && stmt_has_conv()) {
                push(
                    "float-time-cmp",
                    t.line,
                    t.col,
                    "float equality on converted seconds; compare SimTime/SimDuration values instead"
                        .to_string(),
                );
            }
        }

        // --- unwrap-impair
        if file == "impair.rs" && t.is_ident("unwrap") && i + 1 < n && toks[i + 1].is_op("(") {
            push(
                "unwrap-impair",
                t.line,
                t.col,
                "`unwrap()` in the impairment layer; degrade deterministically instead of panicking"
                    .to_string(),
            );
        }

        // --- hot-path-alloc ("cc.rs" means the netsim congestion-control
        // module, not the experiments module of the same name).
        if HOT_FILES.contains(&file) && (file != "cc.rs" || crate_of(path) == "netsim") {
            let hit = (t.is_ident("Box")
                && i + 2 < n
                && toks[i + 1].is_op("::")
                && toks[i + 2].is_ident("new"))
                || (t.is_ident("Vec")
                    && i + 2 < n
                    && toks[i + 1].is_op("::")
                    && toks[i + 2].is_ident("new"))
                || (t.is_ident("vec") && i + 1 < n && toks[i + 1].is_op("!"))
                || (t.is_ident("payload")
                    && i + 2 < n
                    && toks[i + 1].is_op(".")
                    && toks[i + 2].is_ident("clone"));
            if hit {
                push(
                    "hot-path-alloc",
                    t.line,
                    t.col,
                    format!(
                        "`{}` allocates on the per-segment hot path; use the pools",
                        t.text
                    ),
                );
            }
        }

        // --- seq-wrap: direct ordering/subtraction on sequence-space
        // values must use the netsim::seq wrapping helpers.
        if (file == "tcp.rs" || (file == "cc.rs" && crate_of(path) == "netsim"))
            && t.kind == TokKind::Op
            && matches!(t.text.as_str(), "<" | ">" | "<=" | ">=" | "-")
            && is_binary_op(sf, i)
        {
            let left = left_operand_name(sf, i);
            let right = right_operand_name(sf, i);
            let seq_left = left.map(|s| SEQ_NAMES.contains(&s)).unwrap_or(false);
            let seq_right = right.map(|s| SEQ_NAMES.contains(&s)).unwrap_or(false);
            if seq_left || seq_right {
                push(
                    "seq-wrap",
                    t.line,
                    t.col,
                    format!(
                        "direct `{}` on sequence-space value; use netsim::seq wrapping helpers",
                        t.text
                    ),
                );
            }
        }

        // --- time-unit: raw nanosecond arithmetic mixed with float or
        // seconds constants outside the SimTime ops module.
        if file != "time.rs" && crate_in(path, TIME_CRATES) {
            // `as_nanos() as f64` — converting ticks to float by hand.
            if t.is_ident("as_nanos")
                && i + 4 < n
                && toks[i + 1].is_op("(")
                && toks[i + 2].is_op(")")
                && toks[i + 3].is_ident("as")
                && toks[i + 4].is_ident("f64")
            {
                push(
                    "time-unit",
                    t.line,
                    t.col,
                    "raw ns-to-float conversion; use SimTime/SimDuration::as_secs_f64".to_string(),
                );
            }
            // Float literal in the same statement as a tick extraction.
            if t.is_ident("as_nanos") {
                let (lo, hi) = statement_bounds(sf, i);
                for tok in &toks[lo..hi] {
                    if is_float_literal(tok) {
                        push(
                            "time-unit",
                            tok.line,
                            tok.col,
                            "float constant mixed with raw nanosecond ticks; use SimTime ops"
                                .to_string(),
                        );
                    }
                }
            }
            // A bare 10^9 literal is a hand-rolled seconds conversion.
            if t.kind == TokKind::Num && is_ns_per_sec_literal(&t.text) {
                push(
                    "time-unit",
                    t.line,
                    t.col,
                    "hand-rolled ns/sec constant; use SimTime/SimDuration conversions".to_string(),
                );
            }
        }
    }

    // Dedup time-unit hits that fired via more than one sub-pattern on
    // the same token position.
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out.dedup_by(|a, b| a.rule == b.rule && a.line == b.line && a.col == b.col);

    // --- tcp-state-machine (netsim's cc.rs holds no state paths today,
    // but any recovery state machine grown there inherits the spec check).
    if file == "tcp.rs" || (file == "cc.rs" && crate_of(path) == "netsim") {
        let ex = spec::extract(sf);
        if ex.has_state_paths {
            out.extend(spec::check(path, &ex, spec::RFC793_SPEC));
        }
    }

    out
}

/// Token range [lo, hi) of the statement containing token `i`, bounded
/// by `;`, `{`, or `}`.
fn statement_bounds(sf: &ScopedFile, i: usize) -> (usize, usize) {
    let toks = &sf.toks;
    let mut lo = i;
    while lo > 0 {
        let t = &toks[lo - 1];
        if t.kind == TokKind::Op && matches!(t.text.as_str(), ";" | "{" | "}") {
            break;
        }
        lo -= 1;
    }
    let mut hi = i;
    while hi < toks.len() {
        let t = &toks[hi];
        if t.kind == TokKind::Op && matches!(t.text.as_str(), ";" | "{" | "}") {
            break;
        }
        hi += 1;
    }
    (lo, hi)
}

fn is_float_literal(t: &crate::lexer::Tok) -> bool {
    t.kind == TokKind::Num
        && !t.text.starts_with("0x")
        && (t.text.contains('.') || t.text.contains('e') || t.text.contains('E'))
}

fn is_ns_per_sec_literal(text: &str) -> bool {
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    clean == "1000000000" || clean == "1e9" || clean == "1e9f64"
}

/// Is the operator at `i` binary (has a value-producing token on its
/// left)? Filters out unary minus and generics-free noise.
fn is_binary_op(sf: &ScopedFile, i: usize) -> bool {
    if i == 0 {
        return false;
    }
    let p = &sf.toks[i - 1];
    match p.kind {
        TokKind::Ident | TokKind::Num | TokKind::Str | TokKind::Char => true,
        TokKind::Op => matches!(p.text.as_str(), ")" | "]"),
        TokKind::Lifetime => false,
    }
}

/// Name of the value immediately left of operator `i`: a plain
/// identifier, or for a call chain `foo(…) OP`, the called identifier.
fn left_operand_name(sf: &ScopedFile, i: usize) -> Option<&str> {
    let toks = &sf.toks;
    let mut j = i.checked_sub(1)?;
    if toks[j].is_op(")") {
        // Walk back to the matching `(`, then the ident before it.
        let mut depth = 0i32;
        loop {
            let t = &toks[j];
            if t.is_op(")") {
                depth += 1;
            } else if t.is_op("(") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j = j.checked_sub(1)?;
        }
        j = j.checked_sub(1)?;
    }
    if toks[j].kind == TokKind::Ident {
        Some(toks[j].text.as_str())
    } else {
        None
    }
}

/// Name of the value immediately right of operator `i`, walking
/// through `self .`-style field chains to the final identifier.
fn right_operand_name(sf: &ScopedFile, i: usize) -> Option<&str> {
    let toks = &sf.toks;
    let mut j = i + 1;
    while j + 2 < toks.len() && toks[j].kind == TokKind::Ident && toks[j + 1].is_op(".") {
        j += 2;
    }
    if j < toks.len() && toks[j].kind == TokKind::Ident {
        Some(toks[j].text.as_str())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::scope_file;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_scoped(&scope_file(path, lex(src), RULE_IDS))
    }

    #[test]
    fn needle_in_string_or_comment_never_fires() {
        let src = "fn f() {\n    // HashMap and Instant::now in prose\n    let s = \"HashMap Instant::now thread_rng\";\n}\n";
        assert!(diags("crates/netsim/src/lib.rs", src).is_empty());
    }

    #[test]
    fn reformatted_call_still_fires() {
        let src = "fn f() {\n    let t = Instant::\n        now();\n}\n";
        let d = diags("crates/netsim/src/lib.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "wall-clock");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let m = HashMap::new(); }\n}\n";
        assert!(diags("crates/netsim/src/lib.rs", src).is_empty());
    }

    #[test]
    fn use_lines_are_exempt_except_in_probe() {
        let src = "use std::collections::HashMap;\n";
        assert!(diags("crates/netsim/src/store.rs", src).is_empty());
        let d = diags("crates/netsim/src/probe.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "probe-determinism");
    }

    #[test]
    fn telemetry_sink_shares_the_probe_discipline() {
        // Banned nondeterminism fires in netsim's telemetry.rs...
        let src = "use std::collections::HashMap;\n";
        let d = diags("crates/netsim/src/telemetry.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "probe-determinism");
        // ...but the bench bin and experiments module of the same name
        // are ordinary code (generic rules still apply there).
        assert!(diags("crates/bench/src/bin/telemetry.rs", src).is_empty());
        assert!(diags("crates/core/src/experiments/telemetry.rs", src).is_empty());
    }

    #[test]
    fn telemetry_sink_bans_floats_but_probe_keeps_them() {
        let src = "fn f(v: u64) -> f64 {\n    v as f64\n}\n";
        let d = diags("crates/netsim/src/telemetry.rs", src);
        // One hit per `f64` token (return type + cast).
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|x| x.rule == "probe-determinism"));
        // The probe renders float seconds at the report edge; no ban.
        assert!(diags("crates/netsim/src/probe.rs", src).is_empty());
    }

    #[test]
    fn seq_wrap_sees_call_chain_and_field_chain() {
        let src = "fn f(&self) {\n    let a = self.send_limit() - self.snd_nxt;\n    if seq < self.rcv_nxt {}\n}\n";
        let d = diags("crates/netsim/src/tcp.rs", src);
        let rules: Vec<&str> = d.iter().map(|x| x.rule).collect();
        assert_eq!(rules, vec!["seq-wrap", "seq-wrap"]);
    }

    #[test]
    fn seq_wrap_covers_cc_module() {
        let src = "fn f(&self, ctx: &CcContext) {\n    let gap = ctx.snd_nxt - ctx.snd_una;\n}\n";
        let d = diags("crates/netsim/src/cc.rs", src);
        assert!(d.iter().any(|x| x.rule == "seq-wrap"));
    }

    #[test]
    fn cc_module_is_on_the_hot_path() {
        let src = "fn f(&mut self) {\n    let v: Vec<u64> = Vec::new();\n}\n";
        assert!(diags("crates/netsim/src/cc.rs", src)
            .iter()
            .any(|x| x.rule == "hot-path-alloc"));
    }

    #[test]
    fn seq_wrap_ignores_unary_minus_and_generics() {
        let src = "fn f(x: Option<u64>) {\n    let y = -(1i64);\n    let z: Vec<u64> = Vec::with_capacity(0);\n}\n";
        assert!(diags("crates/netsim/src/tcp.rs", src)
            .iter()
            .all(|d| d.rule != "seq-wrap"));
    }

    #[test]
    fn float_cmp_is_statement_bounded() {
        // Conversion and comparison in different statements: clean.
        let src =
            "fn f(d: SimDuration) {\n    let secs = d.as_secs_f64();\n    if secs == 0.0 {}\n}\n";
        assert!(diags("crates/bench/src/lib.rs", src).is_empty());
        // Same statement: fires.
        let src2 = "fn f(d: SimDuration) {\n    let b = d.as_secs_f64() == 0.0;\n}\n";
        let d = diags("crates/bench/src/lib.rs", src2);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "float-time-cmp");
    }

    #[test]
    fn time_unit_subpatterns_fire_once_per_site() {
        let src = "fn f(d: SimDuration) {\n    let x = d.as_nanos() as f64 / 1e9;\n}\n";
        let d = diags("crates/netsim/src/impair.rs", src);
        let tu: Vec<_> = d.iter().filter(|x| x.rule == "time-unit").collect();
        // One hit at as_nanos (pattern A), one at the 1e9 literal.
        assert_eq!(tu.len(), 2);
    }

    #[test]
    fn time_unit_exempts_time_rs() {
        let src = "fn f(self) -> f64 { self.0 as f64 / 1e9 }\n";
        assert!(diags("crates/netsim/src/time.rs", src).is_empty());
    }
}
