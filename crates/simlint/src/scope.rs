//! Brace/item-aware scoping on top of the token stream.
//!
//! The scoper turns a [`Lexed`] file into a [`ScopedFile`]: every token
//! knows whether it sits inside test-only code (`#[cfg(test)]` items or a
//! `mod tests` block), inside a `use` item, and which function body (if
//! any) encloses it. Allow markers are extracted from comments here too,
//! because their meaning ("this line", "this function") depends on scope.

use crate::lexer::{Comment, Lexed, Tok, TokKind};

/// One function found in the file. `item_start_line` includes the
/// attributes and qualifiers above the `fn` keyword so a marker placed
/// on the signature (or its doc block) covers the whole body.
#[derive(Debug, Clone)]
pub struct FnScope {
    pub name: String,
    pub item_start_line: u32,
    pub body_start_line: u32,
    pub end_line: u32,
    /// Token index of the body's opening `{`.
    pub body_start_tok: usize,
    /// Token index of the body's closing `}`.
    pub body_end_tok: usize,
}

/// Where an allow marker applies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllowScope {
    /// The single source line (for trailing markers and markers above a
    /// plain statement).
    Line(u32),
    /// A whole function body, by index into `ScopedFile::fns`.
    Fn(usize),
}

#[derive(Debug, Clone)]
pub struct AllowMarker {
    pub rule: String,
    /// Line of the comment that carries the marker (for stale reporting).
    pub line: u32,
    pub scope: AllowScope,
    pub in_test: bool,
}

pub struct ScopedFile {
    pub path: String,
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
    pub fns: Vec<FnScope>,
    /// Per-token: true when the token is inside test-only code.
    pub test: Vec<bool>,
    /// Per-token: true when the token belongs to a `use` item.
    pub in_use: Vec<bool>,
    pub allows: Vec<AllowMarker>,
}

impl ScopedFile {
    /// Index into `fns` of the innermost function containing token `ti`.
    pub fn enclosing_fn(&self, ti: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (fi, f) in self.fns.iter().enumerate() {
            if f.body_start_tok < ti && ti < f.body_end_tok {
                let better = match best {
                    None => true,
                    Some(b) => self.fns[b].body_start_tok < f.body_start_tok,
                };
                if better {
                    best = Some(fi);
                }
            }
        }
        best
    }

    pub fn is_test_tok(&self, ti: usize) -> bool {
        self.test.get(ti).copied().unwrap_or(false)
    }
}

/// For each `{` token index, the index of its matching `}` (usize::MAX
/// when unbalanced).
pub fn brace_partners(toks: &[Tok]) -> Vec<usize> {
    let mut close = vec![usize::MAX; toks.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_op("{") {
            stack.push(i);
        } else if t.is_op("}") {
            if let Some(open) = stack.pop() {
                close[open] = i;
            }
        }
    }
    close
}

/// Qualifier identifiers that may precede `fn` in an item signature.
const FN_QUALIFIERS: &[&str] = &[
    "pub", "const", "unsafe", "async", "extern", "crate", "in", "self", "super",
];

pub fn scope_file(path: &str, lexed: Lexed, known_rules: &[&str]) -> ScopedFile {
    let toks = lexed.toks;
    let comments = lexed.comments;
    let n = toks.len();

    let match_close = brace_partners(&toks);

    // --- Function detection ---------------------------------------------
    let mut fns: Vec<FnScope> = Vec::new();
    for i in 0..n {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "fn") {
            continue;
        }
        // Name follows `fn`.
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        // Walk forward to the body `{`, skipping the parameter list,
        // generics, return type, and where-clause. Angle depth tracks
        // generics; `->`/`=>` are not closers. A `;` at depth 0 means a
        // bodyless declaration (trait method / extern), so skip it.
        let mut j = i + 2;
        let mut paren = 0i32;
        let mut angle = 0i32;
        let mut body_open: Option<usize> = None;
        while j < n {
            let t = &toks[j];
            if t.kind == TokKind::Op {
                match t.text.as_str() {
                    "(" | "[" => paren += 1,
                    ")" | "]" => paren -= 1,
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "<<" => angle += 2,
                    ">>" => angle -= 2,
                    ";" if paren == 0 && angle <= 0 => break,
                    "{" if paren == 0 && angle <= 0 => {
                        body_open = Some(j);
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        let Some(open) = body_open else { continue };
        let close = match_close[open];
        if close == usize::MAX {
            continue;
        }
        // Walk back over qualifiers and attributes to find the item start
        // line, so markers above the signature cover the body.
        let mut k = i;
        while k > 0 {
            let p = &toks[k - 1];
            let is_qual = p.kind == TokKind::Ident && FN_QUALIFIERS.contains(&p.text.as_str());
            // `pub(crate)` / `pub(in path)` pieces.
            let is_vis_punct =
                p.kind == TokKind::Op && (p.text == ")" || p.text == "(" || p.text == "::");
            let is_vis_path = p.kind == TokKind::Ident
                && k >= 2
                && toks[k - 2].kind == TokKind::Op
                && (toks[k - 2].text == "(" || toks[k - 2].text == "::");
            if is_qual || is_vis_punct || is_vis_path {
                k -= 1;
                continue;
            }
            // Attribute `#[…]` directly above: include it.
            if p.is_op("]") {
                // Scan back to the matching `#[`.
                let mut depth = 0i32;
                let mut m = k - 1;
                loop {
                    let t = &toks[m];
                    if t.is_op("]") {
                        depth += 1;
                    } else if t.is_op("[") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if m == 0 {
                        break;
                    }
                    m -= 1;
                }
                if m > 0 && toks[m - 1].is_op("#") {
                    k = m - 1;
                    continue;
                }
            }
            break;
        }
        fns.push(FnScope {
            name: name_tok.text.clone(),
            item_start_line: toks[k].line,
            body_start_line: toks[open].line,
            end_line: toks[close].line,
            body_start_tok: open,
            body_end_tok: close,
        });
    }

    // --- Test masking ----------------------------------------------------
    // `#[cfg(test)]` marks the next item's brace range as test-only;
    // `mod tests {` likewise.
    let mut test = vec![false; n];
    let mut i = 0;
    while i < n {
        let mut test_range: Option<(usize, usize)> = None;
        // #[cfg(test)] — tokens: # [ cfg ( test ) ]
        if toks[i].is_op("#")
            && i + 6 < n
            && toks[i + 1].is_op("[")
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_op("(")
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is_op(")")
            && toks[i + 6].is_op("]")
        {
            // Find the next `{` at this item level and take its range.
            let mut j = i + 7;
            let mut paren = 0i32;
            while j < n {
                let t = &toks[j];
                if t.kind == TokKind::Op {
                    match t.text.as_str() {
                        "(" | "[" => paren += 1,
                        ")" | "]" => paren -= 1,
                        ";" if paren == 0 => break, // e.g. `#[cfg(test)] use …;`
                        "{" if paren == 0 => {
                            let close = match_close[j];
                            if close != usize::MAX {
                                test_range = Some((i, close));
                            }
                            break;
                        }
                        _ => {}
                    }
                }
                j += 1;
            }
            if test_range.is_none() {
                // Bodyless item (a test-only use/decl): mask to the `;`.
                test_range = Some((i, j.min(n - 1)));
            }
        }
        // `mod tests {` without the attribute (belt and braces).
        if toks[i].is_ident("mod")
            && i + 2 < n
            && toks[i + 1].is_ident("tests")
            && toks[i + 2].is_op("{")
        {
            let close = match_close[i + 2];
            if close != usize::MAX {
                test_range = Some((i, close));
            }
        }
        if let Some((a, bnd)) = test_range {
            for m in test.iter_mut().take(bnd + 1).skip(a) {
                *m = true;
            }
        }
        i += 1;
    }

    // --- `use` items ------------------------------------------------------
    let mut in_use = vec![false; n];
    let mut i = 0;
    while i < n {
        if toks[i].is_ident("use") {
            let mut j = i;
            while j < n && !toks[j].is_op(";") {
                in_use[j] = true;
                j += 1;
            }
            if j < n {
                in_use[j] = true;
            }
            i = j;
        }
        i += 1;
    }

    // --- Allow markers ----------------------------------------------------
    // Syntax inside any comment: `simlint: allow(rule)` (legacy spelling
    // with the old tool name is accepted too). Unknown rule names are
    // treated as prose and ignored.
    let mut allows: Vec<AllowMarker> = Vec::new();
    // Last code line per line number: we need "next code line after L".
    let code_lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
    let mut sf = ScopedFile {
        path: path.to_string(),
        toks,
        comments,
        fns,
        test,
        in_use,
        allows: Vec::new(),
    };
    for c in &sf.comments {
        for rule in extract_marker_rules(&c.text, known_rules) {
            let target_line = if c.trailing {
                c.line
            } else {
                // Standalone comment: applies to the next code line after
                // the comment block ends.
                match code_lines.iter().copied().find(|&l| l > c.end_line) {
                    Some(l) => l,
                    None => continue,
                }
            };
            // If the target line is a function's signature/attribute
            // region (at or above its body brace), the marker is
            // function-granular.
            let mut scope = AllowScope::Line(target_line);
            for (fi, f) in sf.fns.iter().enumerate() {
                if target_line >= f.item_start_line && target_line <= f.body_start_line {
                    scope = AllowScope::Fn(fi);
                    break;
                }
            }
            // Is the marker inside test code? Use the nearest token at or
            // after the target line.
            let in_test = sf
                .toks
                .iter()
                .position(|t| t.line >= target_line)
                .map(|ti| sf.is_test_tok(ti))
                .unwrap_or(false);
            allows.push(AllowMarker {
                rule,
                line: c.line,
                scope,
                in_test,
            });
        }
    }
    sf.allows = allows;
    sf
}

/// Pull every `allow(rule)` marker out of one comment's text. The rule
/// name must match a known rule id; anything else is prose.
fn extract_marker_rules(text: &str, known_rules: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    let markers = ["simlint:", "xtask:"];
    for m in markers {
        let mut rest = text;
        while let Some(pos) = rest.find(m) {
            rest = &rest[pos + m.len()..];
            let after = rest.trim_start();
            if let Some(args) = after.strip_prefix("allow(") {
                if let Some(end) = args.find(')') {
                    for part in args[..end].split(',') {
                        let rule = part.trim();
                        if known_rules.contains(&rule) {
                            out.push(rule.to_string());
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const RULES: &[&str] = &["wall-clock", "hot-path-alloc"];

    fn scoped(src: &str) -> ScopedFile {
        scope_file("test.rs", lex(src), RULES)
    }

    #[test]
    fn finds_function_bounds() {
        let sf = scoped("pub fn alpha<T: Ord>(x: T) -> bool {\n    x < x\n}\nfn beta() {}\n");
        assert_eq!(sf.fns.len(), 2);
        assert_eq!(sf.fns[0].name, "alpha");
        assert_eq!(sf.fns[0].body_start_line, 1);
        assert_eq!(sf.fns[0].end_line, 3);
        assert_eq!(sf.fns[1].name, "beta");
    }

    #[test]
    fn nested_fn_resolves_to_innermost() {
        let sf = scoped("fn outer() {\n    fn inner() {\n        work();\n    }\n}\n");
        let ti = sf.toks.iter().position(|t| t.is_ident("work")).unwrap();
        let fi = sf.enclosing_fn(ti).unwrap();
        assert_eq!(sf.fns[fi].name, "inner");
    }

    #[test]
    fn cfg_test_masks_tokens() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { boom(); }\n}\n";
        let sf = scoped(src);
        let boom = sf.toks.iter().position(|t| t.is_ident("boom")).unwrap();
        assert!(sf.is_test_tok(boom));
        let live = sf.toks.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(!sf.is_test_tok(live));
    }

    #[test]
    fn mod_tests_without_attr_is_masked() {
        let sf = scoped("mod tests {\n    fn t() { boom(); }\n}\n");
        let boom = sf.toks.iter().position(|t| t.is_ident("boom")).unwrap();
        assert!(sf.is_test_tok(boom));
    }

    #[test]
    fn use_items_are_masked() {
        let sf = scoped("use std::collections::HashMap;\nfn f() { let m = HashMap::new(); }\n");
        let first = sf.toks.iter().position(|t| t.is_ident("HashMap")).unwrap();
        assert!(sf.in_use[first]);
        let second = sf
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("HashMap"))
            .nth(1)
            .unwrap()
            .0;
        assert!(!sf.in_use[second]);
    }

    #[test]
    fn trailing_marker_is_line_scoped() {
        let sf = scoped("fn f() {\n    let t = now(); // simlint: allow(wall-clock)\n}\n");
        assert_eq!(sf.allows.len(), 1);
        assert_eq!(sf.allows[0].rule, "wall-clock");
        assert_eq!(sf.allows[0].scope, AllowScope::Line(2));
    }

    #[test]
    fn marker_above_fn_is_fn_scoped() {
        let src = "// Timing harness, exempt by design.\n// simlint: allow(wall-clock)\npub fn bench() {\n    let t = now();\n}\n";
        let sf = scoped(src);
        assert_eq!(sf.allows.len(), 1);
        assert_eq!(sf.allows[0].scope, AllowScope::Fn(0));
    }

    #[test]
    fn marker_above_statement_is_next_line_scoped() {
        let src = "fn f() {\n    // simlint: allow(hot-path-alloc)\n    let v = Vec::new();\n}\n";
        let sf = scoped(src);
        assert_eq!(sf.allows.len(), 1);
        assert_eq!(sf.allows[0].scope, AllowScope::Line(3));
    }

    #[test]
    fn unknown_rule_names_are_prose() {
        let sf = scoped("// simlint: allow(made-up-rule)\nfn f() {}\n");
        assert!(sf.allows.is_empty());
    }

    #[test]
    fn legacy_marker_spelling_accepted() {
        let sf = scoped("fn f() {\n    let v = Vec::new(); // xtask: allow(hot-path-alloc)\n}\n");
        assert_eq!(sf.allows.len(), 1);
        assert_eq!(sf.allows[0].rule, "hot-path-alloc");
    }
}
