//! Diagnostics and the machine-readable report.
//!
//! The JSON writer is hand-rolled (the build is fully offline, so no
//! serde) and deterministic: diagnostics are sorted by path, line, col,
//! rule before serialization.

use std::fmt;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warn,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub severity: Severity,
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} [{}] {}",
            self.path,
            self.line,
            self.col,
            self.severity.as_str(),
            self.rule,
            self.message
        )
    }
}

#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// True when nothing at severity >= warn fired (i.e. nothing at all:
    /// warn is the lowest severity we emit).
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
        });
    }

    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!(
            "  \"diagnostic_count\": {},\n",
            self.diagnostics.len()
        ));
        s.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            s.push_str(&format!("\"rule\": {}, ", json_str(d.rule)));
            s.push_str(&format!(
                "\"severity\": {}, ",
                json_str(d.severity.as_str())
            ));
            s.push_str(&format!("\"path\": {}, ", json_str(&d.path)));
            s.push_str(&format!("\"line\": {}, ", d.line));
            s.push_str(&format!("\"col\": {}, ", d.col));
            s.push_str(&format!("\"message\": {}}}", json_str(&d.message)));
        }
        if !self.diagnostics.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_and_serialized() {
        let mut r = Report {
            files_scanned: 2,
            diagnostics: vec![
                Diagnostic {
                    rule: "b-rule",
                    severity: Severity::Warn,
                    path: "b.rs".into(),
                    line: 1,
                    col: 1,
                    message: "second".into(),
                },
                Diagnostic {
                    rule: "a-rule",
                    severity: Severity::Error,
                    path: "a.rs".into(),
                    line: 9,
                    col: 3,
                    message: "first \"quoted\"".into(),
                },
            ],
        };
        r.sort();
        assert_eq!(r.diagnostics[0].path, "a.rs");
        let json = r.to_json();
        assert!(json.contains("\"diagnostic_count\": 2"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(!r.clean());
    }

    #[test]
    fn empty_report_is_clean() {
        let r = Report::default();
        assert!(r.clean());
        assert!(r.to_json().contains("\"diagnostics\": []"));
    }
}
