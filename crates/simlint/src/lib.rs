//! simlint: scope-aware static analysis for the simulator workspace.
//!
//! A dependency-free lint engine built from a minimal Rust lexer
//! ([`lexer`]), a brace/item-aware scoper ([`scope`]), a typed rule
//! catalog ([`rules`]), and an embedded RFC 793 transition spec
//! ([`spec`]). Because rules run over tokens — not lines — needles in
//! comments and string literals never fire, reformatting cannot hide a
//! violation, and allow markers can be function-granular.
//!
//! Entry points: [`lint_workspace`] for the real tree (invoked by
//! `cargo run -p xtask -- lint`), [`lint_sources`] for in-memory inputs
//! (used by the mutation tests).

pub mod lexer;
pub mod report;
pub mod rules;
pub mod scope;
pub mod spec;

use std::fs;
use std::io;
use std::path::Path;

use report::{Diagnostic, Report, Severity};
use scope::AllowScope;

/// An in-memory source file, path workspace-relative with `/` separators.
pub struct SourceFile {
    pub path: String,
    pub text: String,
}

/// One entry of the file-granular allowlist (`xtask-allow.txt`):
/// suppresses every diagnostic of `rule` in `path`.
pub struct FileAllow {
    pub rule: String,
    pub path: String,
    /// Line in the allowlist file, for stale reporting.
    pub line: u32,
}

pub const ALLOWLIST_FILE: &str = "xtask-allow.txt";

/// Parse the file-granular allowlist. Lines are `<rule> <path>`; `#`
/// comments and blank lines are skipped.
pub fn parse_allowlist(text: &str) -> Vec<FileAllow> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if let (Some(rule), Some(path)) = (parts.next(), parts.next()) {
            out.push(FileAllow {
                rule: rule.to_string(),
                path: path.to_string(),
                line: (i + 1) as u32,
            });
        }
    }
    out
}

/// Lint a set of in-memory sources, applying inline allow markers and
/// the file allowlist, and reporting stale allows of either kind.
pub fn lint_sources(files: &[SourceFile], file_allows: &[FileAllow]) -> Report {
    let mut report = Report {
        files_scanned: files.len(),
        diagnostics: Vec::new(),
    };
    let mut file_allow_used = vec![false; file_allows.len()];

    for f in files {
        let sf = scope::scope_file(&f.path, lexer::lex(&f.text), rules::RULE_IDS);
        let raw = rules::lint_scoped(&sf);
        let mut marker_used = vec![false; sf.allows.len()];

        for d in raw {
            let suppressible = !rules::UNSUPPRESSIBLE.contains(&d.rule);
            let mut suppressed = false;
            if suppressible {
                for (mi, m) in sf.allows.iter().enumerate() {
                    if m.rule != d.rule {
                        continue;
                    }
                    let covers = match m.scope {
                        AllowScope::Line(l) => l == d.line,
                        AllowScope::Fn(fi) => {
                            let f = &sf.fns[fi];
                            f.item_start_line <= d.line && d.line <= f.end_line
                        }
                    };
                    if covers {
                        marker_used[mi] = true;
                        suppressed = true;
                    }
                }
                if !suppressed {
                    for (ai, a) in file_allows.iter().enumerate() {
                        if a.rule == d.rule && a.path == d.path {
                            file_allow_used[ai] = true;
                            suppressed = true;
                        }
                    }
                }
            }
            if !suppressed {
                report.diagnostics.push(d);
            }
        }

        // Markers that suppressed nothing are themselves violations —
        // they would silently mask future regressions. Test code is not
        // linted, so markers there are ignored rather than stale.
        for (mi, m) in sf.allows.iter().enumerate() {
            if !marker_used[mi] && !m.in_test {
                report.diagnostics.push(Diagnostic {
                    rule: "stale-allow",
                    severity: Severity::Warn,
                    path: f.path.clone(),
                    line: m.line,
                    col: 1,
                    message: format!(
                        "allow({}) marker no longer suppresses anything; remove it",
                        m.rule
                    ),
                });
            }
        }
    }

    for (ai, a) in file_allows.iter().enumerate() {
        if !file_allow_used[ai] {
            report.diagnostics.push(Diagnostic {
                rule: "stale-allow",
                severity: Severity::Error,
                path: ALLOWLIST_FILE.to_string(),
                line: a.line,
                col: 1,
                message: format!(
                    "allowlist entry `{} {}` no longer suppresses anything; remove it",
                    a.rule, a.path
                ),
            });
        }
    }

    report.sort();
    report
}

/// Lint every `crates/**/*.rs` file under `root` (skipping `target/`
/// and integration-test `tests/` directories), honoring
/// `root/xtask-allow.txt` when present.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut stack = vec![crates_dir];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = fs::read_dir(&dir)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.file_name());
        for e in entries {
            let path = e.path();
            let name = e.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if name == "target" || name == "tests" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                files.push(SourceFile {
                    path: rel,
                    text: fs::read_to_string(&path)?,
                });
            }
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));

    let allow_path = root.join(ALLOWLIST_FILE);
    let file_allows = if allow_path.exists() {
        parse_allowlist(&fs::read_to_string(&allow_path)?)
    } else {
        Vec::new()
    };

    Ok(lint_sources(&files, &file_allows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(path: &str, text: &str) -> SourceFile {
        SourceFile {
            path: path.to_string(),
            text: text.to_string(),
        }
    }

    #[test]
    fn line_marker_suppresses_and_is_not_stale() {
        let f = src(
            "crates/netsim/src/sim.rs",
            "fn f() {\n    let v: Vec<u8> = Vec::new(); // simlint: allow(hot-path-alloc)\n}\n",
        );
        let r = lint_sources(&[f], &[]);
        assert!(r.clean(), "unexpected: {:?}", r.diagnostics);
    }

    #[test]
    fn fn_marker_suppresses_whole_body() {
        let f = src(
            "crates/bench/src/lib.rs",
            "// Timing harness: real clocks are the point here.\n// simlint: allow(wall-clock)\npub fn bench() {\n    let a = Instant::now();\n    let b = Instant::now();\n}\n",
        );
        let r = lint_sources(&[f], &[]);
        assert!(r.clean(), "unexpected: {:?}", r.diagnostics);
    }

    #[test]
    fn unused_marker_is_stale() {
        let f = src(
            "crates/netsim/src/sim.rs",
            "fn f() {\n    let x = 1; // simlint: allow(hot-path-alloc)\n}\n",
        );
        let r = lint_sources(&[f], &[]);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, "stale-allow");
        assert_eq!(r.diagnostics[0].severity, Severity::Warn);
    }

    #[test]
    fn file_allow_suppresses_and_stale_entry_errors() {
        let f = src(
            "crates/bench/src/bin/x.rs",
            "fn main() {\n    let t = Instant::now();\n}\n",
        );
        let allows = vec![
            FileAllow {
                rule: "wall-clock".into(),
                path: "crates/bench/src/bin/x.rs".into(),
                line: 1,
            },
            FileAllow {
                rule: "wall-clock".into(),
                path: "crates/bench/src/bin/gone.rs".into(),
                line: 2,
            },
        ];
        let r = lint_sources(&[f], &allows);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, "stale-allow");
        assert_eq!(r.diagnostics[0].severity, Severity::Error);
        assert_eq!(r.diagnostics[0].line, 2);
    }

    #[test]
    fn probe_rule_is_unsuppressible() {
        let f = src(
            "crates/netsim/src/probe.rs",
            "fn f() {\n    let t = Instant::now(); // simlint: allow(probe-determinism)\n}\n",
        );
        let r = lint_sources(&[f], &[]);
        assert!(r.diagnostics.iter().any(|d| d.rule == "probe-determinism"));
    }

    #[test]
    fn allowlist_parser_skips_comments() {
        let allows = parse_allowlist("# comment\n\nwall-clock crates/bench/src/lib.rs\n");
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "wall-clock");
        assert_eq!(allows[0].line, 3);
    }
}
