//! A minimal Rust lexer: just enough token structure for the lint rules.
//!
//! The old xtask lint worked on raw lines with comments stripped, which
//! meant a violation could hide behind reformatting (`Instant::` on one
//! line, `now()` on the next) and a needle inside a string literal was a
//! false positive waiting to happen. The lexer removes both failure
//! modes: rules see a token stream in which comments and string/char
//! literals are first-class, separate entities.
//!
//! It handles the syntax this workspace actually uses: line and
//! (nested) block comments, string / raw string / byte string / char
//! literals, lifetimes, numbers with underscores and exponents, and the
//! multi-character operators. It does not try to be a full Rust lexer —
//! unknown bytes degrade to single-character operator tokens, which is
//! safe for linting (worst case a rule sees an extra punct token).

/// Classification of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `_`).
    Ident,
    /// Numeric literal (`1460`, `1_000_000_000`, `1e9`, `0xfff`).
    Num,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Operator / punctuation, possibly multi-character (`::`, `=>`).
    Op,
}

/// One code token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token's exact source text.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

impl Tok {
    /// Shorthand: is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Shorthand: is this an operator with exactly this text?
    pub fn is_op(&self, s: &str) -> bool {
        self.kind == TokKind::Op && self.text == s
    }
}

/// A comment, kept separately from the code tokens so rules never see
/// it but the allow-marker scanner still can.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the `//` / `/*` introducer.
    pub text: String,
    /// 1-based line where the comment starts.
    pub line: u32,
    /// 1-based line where the comment ends (same as `line` for `//`).
    pub end_line: u32,
    /// True if a code token precedes the comment on its start line.
    pub trailing: bool,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order, comments excluded.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Operators longer than one character, longest-match-first.
const MULTI_OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Lex `src` into tokens and comments. Never fails: malformed input
/// degrades to operator tokens rather than aborting the lint.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    // Line of the most recently emitted code token, for `trailing`.
    let mut last_code_line: u32 = 0;

    macro_rules! advance {
        ($n:expr) => {{
            for _ in 0..$n {
                if i < b.len() {
                    if b[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        }};
    }

    while i < b.len() {
        let c = b[i];
        let (tline, tcol) = (line, col);

        // Whitespace.
        if c.is_ascii_whitespace() {
            advance!(1);
            continue;
        }

        // Line comment.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start = i;
            while i < b.len() && b[i] != b'\n' {
                advance!(1);
            }
            out.comments.push(Comment {
                text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                line: tline,
                end_line: tline,
                trailing: last_code_line == tline,
            });
            continue;
        }

        // Block comment (nested).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let start = i;
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    advance!(2);
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    advance!(2);
                    if depth == 0 {
                        break;
                    }
                } else {
                    advance!(1);
                }
            }
            out.comments.push(Comment {
                text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                line: tline,
                end_line: line,
                trailing: last_code_line == tline,
            });
            continue;
        }

        // Raw / byte string prefixes: r"…", r#"…"#, br"…", b"…". Decide
        // without consuming anything, so `rst`/`bits`/`r#raw_ident`
        // still lex as identifiers.
        if c == b'r' || c == b'b' {
            let mut j = i;
            if b[j] == b'b' {
                j += 1;
            }
            let has_r = j < b.len() && b[j] == b'r';
            if has_r {
                j += 1;
            }
            let mut hashes = 0usize;
            while has_r && j < b.len() && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            let is_string = j < b.len() && b[j] == b'"' && (has_r || c == b'b');
            if is_string {
                let start = i;
                advance!(j - i + 1); // prefix plus the opening quote
                if has_r {
                    // Scan to `"` followed by `hashes` hash marks.
                    'scan: while i < b.len() {
                        if b[i] == b'"' {
                            let mut k = 0usize;
                            while k < hashes && i + 1 + k < b.len() && b[i + 1 + k] == b'#' {
                                k += 1;
                            }
                            if k == hashes {
                                advance!(1 + hashes);
                                break 'scan;
                            }
                        }
                        advance!(1);
                    }
                } else {
                    while i < b.len() && b[i] != b'"' {
                        if b[i] == b'\\' {
                            advance!(1);
                        }
                        advance!(1);
                    }
                    advance!(1); // closing quote
                }
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                    line: tline,
                    col: tcol,
                });
                last_code_line = line;
                continue;
            }
        }

        // Plain string literal.
        if c == b'"' {
            let start = i;
            advance!(1);
            while i < b.len() && b[i] != b'"' {
                if b[i] == b'\\' {
                    advance!(1);
                }
                advance!(1);
            }
            advance!(1);
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                line: tline,
                col: tcol,
            });
            last_code_line = line;
            continue;
        }

        // Char literal vs lifetime.
        if c == b'\'' {
            let start = i;
            // Lifetime: `'ident` not followed by a closing quote.
            let is_lifetime = i + 1 < b.len()
                && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_')
                && !(i + 2 < b.len() && b[i + 2] == b'\'');
            if is_lifetime {
                advance!(1);
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    advance!(1);
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                    line: tline,
                    col: tcol,
                });
            } else {
                advance!(1);
                if i < b.len() && b[i] == b'\\' {
                    advance!(1);
                    // Escapes may span several chars (\n, \u{..}, \x41).
                    while i < b.len() && b[i] != b'\'' {
                        advance!(1);
                    }
                } else if i < b.len() {
                    // One scalar, which may be multi-byte UTF-8 ('▁'):
                    // consume the lead byte plus its continuation bytes.
                    advance!(1);
                    while i < b.len() && (b[i] & 0xC0) == 0x80 {
                        advance!(1);
                    }
                }
                if i < b.len() && b[i] == b'\'' {
                    advance!(1);
                }
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                    line: tline,
                    col: tcol,
                });
            }
            last_code_line = line;
            continue;
        }

        // Number.
        if c.is_ascii_digit() {
            let start = i;
            advance!(1);
            while i < b.len() {
                let d = b[i];
                if d.is_ascii_alphanumeric() || d == b'_' {
                    advance!(1);
                } else if d == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                    // `1.5` continues the number; `1..2` / `1.max()` do not.
                    advance!(1);
                } else if (d == b'+' || d == b'-')
                    && i > start
                    && (b[i - 1] == b'e' || b[i - 1] == b'E')
                    && !String::from_utf8_lossy(&b[start..i]).starts_with("0x")
                {
                    // Signed exponent: 1e-9.
                    advance!(1);
                } else {
                    break;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                line: tline,
                col: tcol,
            });
            last_code_line = line;
            continue;
        }

        // Identifier / keyword.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                advance!(1);
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                line: tline,
                col: tcol,
            });
            last_code_line = line;
            continue;
        }

        // Multi-char operator, longest match first. Matched on bytes so
        // a cursor resting on a stray non-ASCII byte cannot panic the
        // `&str` slice on a char boundary.
        let rest = &b[i..];
        let mut matched = false;
        for op in MULTI_OPS {
            if rest.starts_with(op.as_bytes()) {
                out.toks.push(Tok {
                    kind: TokKind::Op,
                    text: (*op).to_string(),
                    line: tline,
                    col: tcol,
                });
                advance!(op.len());
                matched = true;
                break;
            }
        }
        if matched {
            last_code_line = line;
            continue;
        }

        // Single-char operator / punctuation (also any stray byte).
        out.toks.push(Tok {
            kind: TokKind::Op,
            text: (c as char).to_string(),
            line: tline,
            col: tcol,
        });
        last_code_line = tline;
        advance!(1);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_ops_and_positions() {
        let l = lex("let x = a::b;\nx += 1;");
        let t: Vec<&str> = l.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            t,
            ["let", "x", "=", "a", "::", "b", ";", "x", "+=", "1", ";"]
        );
        assert_eq!(l.toks[7].line, 2);
        assert_eq!(l.toks[7].col, 1);
    }

    #[test]
    fn strings_are_single_tokens() {
        assert_eq!(
            texts(r#"f("HashMap :: new { }")"#),
            ["f", "(", "\"HashMap :: new { }\"", ")"]
        );
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r#\"a \" b\"#; done";
        let t = texts(src);
        assert_eq!(t[3], "r#\"a \" b\"#");
        assert_eq!(t[5], "done");
    }

    #[test]
    fn nested_block_comments_excluded() {
        let l = lex("a /* x /* y */ z */ b");
        let t: Vec<&str> = l.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(t, ["a", "b"]);
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].trailing);
    }

    #[test]
    fn lifetime_vs_char() {
        let l = lex("fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars: Vec<&Tok> = l.toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].text, "'x'");
    }

    #[test]
    fn multibyte_char_literal_lexes_whole_scalar() {
        // Sparkline block chars are 3-byte UTF-8 scalars; the char
        // literal must consume the whole scalar, not one byte of it.
        let l = lex("const B: [char; 2] = ['▁', '█'];\nlet x = HashMap::new();");
        let chars: Vec<&Tok> = l.toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].text, "'▁'");
        assert_eq!(chars[1].text, "'█'");
        // Lexing continues correctly past the literals.
        assert!(l.toks.iter().any(|t| t.is_ident("HashMap")));
    }

    #[test]
    fn numbers_with_underscores_and_exponents() {
        let l = lex("1_000_000_000 + 1e9 + 1.5e-3 + 0xff_u64 + 1..2");
        let nums: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(
            nums,
            ["1_000_000_000", "1e9", "1.5e-3", "0xff_u64", "1", "2"]
        );
    }

    #[test]
    fn trailing_vs_standalone_comment() {
        let l = lex("code(); // trailing\n// standalone\nmore();");
        assert!(l.comments[0].trailing);
        assert!(!l.comments[1].trailing);
    }

    #[test]
    fn split_across_lines_still_tokenizes() {
        // The reformatting trick that beat the old line lint.
        let t = texts("Instant::\n    now()");
        assert_eq!(t, ["Instant", "::", "now", "(", ")"]);
    }
}
