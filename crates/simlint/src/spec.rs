//! TCP state-machine extraction and the embedded RFC 793 spec table.
//!
//! The extractor walks `crates/netsim/src/tcp.rs` (or any file that
//! assigns to a `state` field) and recovers the implemented transition
//! graph: every `match` over a state field contributes arm context, and
//! every `.state = …` assignment contributes edges from the enclosing
//! arm's pattern states to each `State::X` mentioned on the right-hand
//! side. Assignments with no enclosing state-match (RST handling, abort
//! paths, timer-driven teardown) become wildcard `Any -> X` edges.
//!
//! The check then diffs the graph against the spec table: no undeclared
//! transitions, every required transition implemented, start states
//! declared, and no explicit arm for a terminal state performing sends.

use crate::report::{Diagnostic, Severity};
use crate::scope::{brace_partners, ScopedFile};

pub const RULE: &str = "tcp-state-machine";

/// States the simulator's close semantics treat as fully terminal: once
/// here the TCB must not transmit.
const TERMINAL_STATES: &[&str] = &["Closed"];

/// One row of the spec table.
#[derive(Debug, Clone, Copy)]
pub struct SpecEntry {
    pub from: &'static str,
    pub to: &'static str,
    /// Must exist in the implementation.
    pub required: bool,
    /// A state-independent (`Any -> to`) implementation satisfies this
    /// entry — used for teardown paths that legitimately ignore the
    /// current state.
    pub wildcard_ok: bool,
    /// The RFC 793 event that drives the transition (for messages).
    pub why: &'static str,
}

const fn entry(
    from: &'static str,
    to: &'static str,
    required: bool,
    wildcard_ok: bool,
    why: &'static str,
) -> SpecEntry {
    SpecEntry {
        from,
        to,
        required,
        wildcard_ok,
        why,
    }
}

/// The RFC 793 §3.2 transition diagram, restricted to the paths this
/// simulator models (no LISTEN state: passive opens materialize the TCB
/// directly in SYN-RECEIVED; no simultaneous open).
pub const RFC793_SPEC: &[SpecEntry] = &[
    entry(
        "SynSent",
        "Established",
        true,
        false,
        "SYN-ACK received, ACK sent",
    ),
    entry(
        "SynRcvd",
        "Established",
        true,
        false,
        "ACK of SYN-ACK received",
    ),
    entry(
        "Established",
        "FinWait1",
        true,
        false,
        "local close, FIN sent",
    ),
    entry("Established", "CloseWait", true, false, "FIN received"),
    entry("CloseWait", "LastAck", true, false, "local close, FIN sent"),
    entry("FinWait1", "FinWait2", true, false, "our FIN acked"),
    entry(
        "FinWait1",
        "Closing",
        true,
        false,
        "FIN received before our FIN acked",
    ),
    entry(
        "FinWait1",
        "TimeWait",
        true,
        false,
        "FIN acked and peer FIN already seen",
    ),
    entry("FinWait2", "TimeWait", true, false, "FIN received"),
    entry("Closing", "TimeWait", true, false, "our FIN acked"),
    entry("LastAck", "Closed", true, false, "our FIN acked"),
    entry("TimeWait", "Closed", true, true, "2MSL timer expiry"),
    entry(
        "Any",
        "Closed",
        false,
        true,
        "RST received or local abort (RFC 793 3.4)",
    ),
];

/// Start states the spec permits a TCB to be created in.
pub const SPEC_STARTS: &[&str] = &["SynSent", "SynRcvd"];

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// `"Any"` for wildcard (no enclosing state-match) edges.
    pub from: String,
    pub to: String,
    pub line: u32,
    pub col: u32,
}

#[derive(Debug, Default)]
pub struct Extraction {
    pub edges: Vec<Edge>,
    pub starts: Vec<(String, u32, u32)>,
    /// Explicit state-match arms over a terminal state whose body
    /// transmits: (state, line, col).
    pub terminal_sends: Vec<(String, u32, u32)>,
    /// File defines `enum State` — gate for whole-machine checks
    /// (required transitions, start states).
    pub has_enum: bool,
    /// File mentions `State::` paths at all — gate for the rule.
    pub has_state_paths: bool,
}

struct Arm {
    pat_states: Vec<String>,
    body_start: usize,
    body_end: usize,
}

/// Identifiers that transmit when they appear in an arm body.
const SEND_IDENTS: &[&str] = &["emit_data_segment", "emit_ack", "retransmit", "try_send"];

pub fn extract(sf: &ScopedFile) -> Extraction {
    let toks = &sf.toks;
    let n = toks.len();
    let close = brace_partners(toks);
    let mut ex = Extraction::default();

    for i in 0..n {
        if sf.is_test_tok(i) {
            continue;
        }
        if toks[i].is_ident("enum") && i + 1 < n && toks[i + 1].is_ident("State") {
            ex.has_enum = true;
        }
        if toks[i].is_ident("State") && i + 1 < n && toks[i + 1].is_op("::") {
            ex.has_state_paths = true;
        }
    }

    // --- State-match regions and their arms -----------------------------
    let mut arms: Vec<Arm> = Vec::new();
    for i in 0..n {
        if !toks[i].is_ident("match") || sf.is_test_tok(i) {
            continue;
        }
        // Scan the scrutinee to the body `{` at depth 0.
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut open = None;
        while j < n {
            let t = &toks[j];
            if t.kind == crate::lexer::TokKind::Op {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        open = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        if !(open > i + 1 && toks[open - 1].is_ident("state")) {
            continue; // not a match over a state field
        }
        let end = close[open];
        if end == usize::MAX {
            continue;
        }
        // Parse arms: `pattern => body` separated by `,` (block bodies
        // need no comma).
        let mut k = open + 1;
        while k < end {
            let mut pat_states = Vec::new();
            let mut depth = 0i32;
            while k < end {
                let t = &toks[k];
                if t.is_op("=>") && depth == 0 {
                    break;
                }
                if t.kind == crate::lexer::TokKind::Op {
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        _ => {}
                    }
                }
                if t.is_ident("State")
                    && k + 2 < end
                    && toks[k + 1].is_op("::")
                    && toks[k + 2].kind == crate::lexer::TokKind::Ident
                {
                    pat_states.push(toks[k + 2].text.clone());
                }
                k += 1;
            }
            if k >= end {
                break;
            }
            k += 1; // past `=>`
            let (body_start, body_end) = if k < end && toks[k].is_op("{") {
                let b = close[k];
                let b = if b == usize::MAX { end } else { b };
                let r = (k, b);
                k = b + 1;
                r
            } else {
                let s = k;
                let mut depth = 0i32;
                while k < end {
                    let t = &toks[k];
                    if t.kind == crate::lexer::TokKind::Op {
                        match t.text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            "," if depth == 0 => break,
                            _ => {}
                        }
                    }
                    k += 1;
                }
                (s, k)
            };
            if k < end && toks[k].is_op(",") {
                k += 1;
            }
            arms.push(Arm {
                pat_states,
                body_start,
                body_end,
            });
        }
    }

    // --- Terminal-state arms that transmit -------------------------------
    for arm in &arms {
        for st in &arm.pat_states {
            if !TERMINAL_STATES.contains(&st.as_str()) {
                continue;
            }
            for m in arm.body_start..=arm.body_end.min(n.saturating_sub(1)) {
                let t = &toks[m];
                let sends = (t.kind == crate::lexer::TokKind::Ident
                    && SEND_IDENTS.contains(&t.text.as_str()))
                    || (t.is_ident("segments")
                        && m + 2 < n
                        && toks[m + 1].is_op(".")
                        && toks[m + 2].is_ident("push"));
                if sends {
                    ex.terminal_sends.push((st.clone(), t.line, t.col));
                    break;
                }
            }
        }
    }

    // --- Assignments to a state field ------------------------------------
    for i in 1..n {
        if !(toks[i].is_ident("state")
            && toks[i - 1].is_op(".")
            && i + 1 < n
            && toks[i + 1].is_op("="))
        {
            continue;
        }
        if sf.is_test_tok(i) {
            continue;
        }
        // Collect every State::X on the RHS up to the statement end.
        let mut targets: Vec<(String, u32, u32)> = Vec::new();
        let mut m = i + 2;
        let mut depth = 0i32;
        while m < n {
            let t = &toks[m];
            if t.kind == crate::lexer::TokKind::Op {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "}" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    ";" | "," if depth == 0 => break,
                    _ => {}
                }
            }
            if t.is_ident("State")
                && m + 2 < n
                && toks[m + 1].is_op("::")
                && toks[m + 2].kind == crate::lexer::TokKind::Ident
            {
                targets.push((toks[m + 2].text.clone(), toks[m + 2].line, toks[m + 2].col));
            }
            m += 1;
        }
        // Attribute to the innermost enclosing state-match arm.
        let mut from_states: Vec<String> = vec!["Any".to_string()];
        let mut best: Option<usize> = None;
        for (ai, arm) in arms.iter().enumerate() {
            if arm.body_start <= i && i <= arm.body_end {
                let better = match best {
                    None => true,
                    Some(b) => arms[b].body_start < arm.body_start,
                };
                if better {
                    best = Some(ai);
                }
            }
        }
        if let Some(ai) = best {
            let arm = &arms[ai];
            if !arm.pat_states.is_empty() {
                from_states = arm.pat_states.clone();
            }
        }
        for (to, line, col) in targets {
            for from in &from_states {
                ex.edges.push(Edge {
                    from: from.clone(),
                    to: to.clone(),
                    line,
                    col,
                });
            }
        }
    }

    // --- Start states from Tcb::new(…, State::X) -------------------------
    for i in 0..n {
        if !(toks[i].is_ident("Tcb")
            && i + 3 < n
            && toks[i + 1].is_op("::")
            && toks[i + 2].is_ident("new")
            && toks[i + 3].is_op("("))
        {
            continue;
        }
        if sf.is_test_tok(i) {
            continue;
        }
        let mut m = i + 4;
        let mut depth = 0i32;
        while m < n {
            let t = &toks[m];
            if t.kind == crate::lexer::TokKind::Op {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" if depth == 0 => break,
                    ")" | "]" | "}" => depth -= 1,
                    _ => {}
                }
            }
            if t.is_ident("State")
                && m + 2 < n
                && toks[m + 1].is_op("::")
                && toks[m + 2].kind == crate::lexer::TokKind::Ident
            {
                ex.starts
                    .push((toks[m + 2].text.clone(), toks[m + 2].line, toks[m + 2].col));
            }
            m += 1;
        }
    }

    ex
}

/// Diff an extraction against a spec table.
pub fn check(path: &str, ex: &Extraction, spec: &[SpecEntry]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let diag = |line: u32, col: u32, message: String| Diagnostic {
        rule: RULE,
        severity: Severity::Error,
        path: path.to_string(),
        line,
        col,
        message,
    };

    // 1. Every implemented edge must be declared.
    for e in &ex.edges {
        let declared = if e.from == "Any" {
            spec.iter()
                .any(|s| s.to == e.to && (s.from == "Any" || s.wildcard_ok))
        } else {
            spec.iter().any(|s| s.from == e.from && s.to == e.to)
        };
        if !declared {
            out.push(diag(
                e.line,
                e.col,
                format!(
                    "undeclared transition {} -> {}: not in the RFC 793 spec table",
                    e.from, e.to
                ),
            ));
        }
    }

    // Whole-machine checks only make sense on a file that defines the
    // state enum (i.e. the real TCB, not a synthetic snippet).
    if ex.has_enum {
        // 2. Every required transition must be implemented.
        for s in spec.iter().filter(|s| s.required) {
            let implemented = ex.edges.iter().any(|e| {
                (e.from == s.from && e.to == s.to)
                    || (s.wildcard_ok && e.from == "Any" && e.to == s.to)
            });
            if !implemented {
                out.push(diag(
                    1,
                    1,
                    format!(
                        "required transition {} -> {} ({}) is not implemented",
                        s.from, s.to, s.why
                    ),
                ));
            }
        }

        // 3. Start states must be declared.
        for (s, line, col) in &ex.starts {
            if !SPEC_STARTS.contains(&s.as_str()) {
                out.push(diag(
                    *line,
                    *col,
                    format!("TCB created in undeclared start state {s}"),
                ));
            }
        }
    }

    // 4. Terminal states must not transmit.
    for (st, line, col) in &ex.terminal_sends {
        out.push(diag(
            *line,
            *col,
            format!("terminal state {st} has a match arm that transmits"),
        ));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::scope_file;

    fn extract_src(src: &str) -> Extraction {
        extract(&scope_file("tcp.rs", lex(src), &[]))
    }

    #[test]
    fn arm_attribution_and_conditional_rhs() {
        let src = "
fn handle(&mut self) {
    match self.state {
        State::FinWait1 => {
            self.state = if self.peer_fin_seq.is_some() {
                State::TimeWait
            } else {
                State::FinWait2
            }
        }
        State::LastAck => self.state = State::Closed,
        _ => {}
    }
}";
        let ex = extract_src(src);
        let pairs: Vec<(String, String)> = ex
            .edges
            .iter()
            .map(|e| (e.from.clone(), e.to.clone()))
            .collect();
        assert!(pairs.contains(&("FinWait1".into(), "TimeWait".into())));
        assert!(pairs.contains(&("FinWait1".into(), "FinWait2".into())));
        assert!(pairs.contains(&("LastAck".into(), "Closed".into())));
        assert_eq!(pairs.len(), 3);
    }

    #[test]
    fn assignment_outside_state_match_is_wildcard() {
        let src = "fn handle_rst(&mut self) {\n    self.state = State::Closed;\n}";
        let ex = extract_src(src);
        assert_eq!(ex.edges.len(), 1);
        assert_eq!(ex.edges[0].from, "Any");
        assert_eq!(ex.edges[0].to, "Closed");
    }

    #[test]
    fn match_over_other_scrutinee_does_not_bind_arms() {
        // The enclosing match is over a timer kind, not the state field,
        // so the assignment must stay a wildcard edge.
        let src = "
fn on_timer(&mut self, kind: TimerKind) {
    match kind {
        TimerKind::TimeWait => {
            self.state = State::Closed;
        }
        _ => {}
    }
}";
        let ex = extract_src(src);
        assert_eq!(ex.edges.len(), 1);
        assert_eq!(ex.edges[0].from, "Any");
    }

    #[test]
    fn starts_extracted_from_tcb_new() {
        let src =
            "fn open_active() {\n    let tcb = Tcb::new(local, remote, cfg, State::SynSent);\n}";
        let ex = extract_src(src);
        assert_eq!(ex.starts.len(), 1);
        assert_eq!(ex.starts[0].0, "SynSent");
    }

    #[test]
    fn terminal_arm_that_transmits_is_recorded() {
        let src = "
fn bad(&mut self, fx: &mut Effects) {
    match self.state {
        State::Closed => self.emit_ack(fx),
        _ => {}
    }
}";
        let ex = extract_src(src);
        assert_eq!(ex.terminal_sends.len(), 1);
        assert_eq!(ex.terminal_sends[0].0, "Closed");
    }

    #[test]
    fn undeclared_transition_fires() {
        let src = "
fn weird(&mut self) {
    match self.state {
        State::Established => self.state = State::TimeWait,
        _ => {}
    }
}";
        let ex = extract_src(src);
        let diags = check("tcp.rs", &ex, RFC793_SPEC);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("Established -> TimeWait"));
    }

    #[test]
    fn required_missing_fires_only_with_enum() {
        // Snippet without the enum: no required-transition spam.
        let src = "fn f(&mut self) {\n    self.state = State::Closed;\n}";
        let ex = extract_src(src);
        assert!(check("tcp.rs", &ex, RFC793_SPEC).is_empty());
        // With the enum declared, the missing machine is reported.
        let src2 = "enum State { Closed }\nfn f(&mut self) {\n    self.state = State::Closed;\n}";
        let ex2 = extract_src(src2);
        let diags = check("tcp.rs", &ex2, RFC793_SPEC);
        assert!(diags.iter().any(|d| d
            .message
            .contains("required transition SynSent -> Established")));
    }

    #[test]
    fn wildcard_satisfies_wildcard_ok_requirement() {
        let src = "
enum State { TimeWait, Closed }
fn on_timer(&mut self) {
    self.state = State::Closed;
}";
        let ex = extract_src(src);
        let diags = check("tcp.rs", &ex, RFC793_SPEC);
        // TimeWait -> Closed is satisfied by the Any -> Closed edge; the
        // other required transitions are still reported.
        assert!(!diags
            .iter()
            .any(|d| d.message.contains("TimeWait -> Closed")));
        assert!(diags
            .iter()
            .any(|d| d.message.contains("SynSent -> Established")));
    }

    #[test]
    fn test_code_is_ignored() {
        let src = "
#[cfg(test)]
mod tests {
    fn t(&mut self) {
        match self.state {
            State::Established => self.state = State::SynSent,
            _ => {}
        }
    }
}";
        let ex = extract_src(src);
        assert!(ex.edges.is_empty());
    }
}
