//! The state-machine check against the real TCB, with teeth tests: the
//! extracted transition graph of `crates/netsim/src/tcp.rs` must match
//! the embedded RFC 793 table exactly, and deliberately perturbing the
//! table must make the rule fire on the real file — proving the check
//! would catch a regression in either direction.

use simlint::scope::scope_file;
use simlint::spec::{self, SpecEntry, RFC793_SPEC};
use simlint::{lexer, rules};

fn real_tcp() -> (String, simlint::spec::Extraction) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../netsim/src/tcp.rs");
    let text = std::fs::read_to_string(path).expect("read crates/netsim/src/tcp.rs");
    let sf = scope_file(
        "crates/netsim/src/tcp.rs",
        lexer::lex(&text),
        rules::RULE_IDS,
    );
    let ex = spec::extract(&sf);
    ("crates/netsim/src/tcp.rs".to_string(), ex)
}

#[test]
fn real_tcb_matches_the_spec_table() {
    let (path, ex) = real_tcp();
    assert!(ex.has_enum, "tcp.rs defines the State enum");
    let diags = spec::check(&path, &ex, RFC793_SPEC);
    assert!(
        diags.is_empty(),
        "tcp.rs diverges from RFC 793 table: {diags:?}"
    );
}

#[test]
fn real_tcb_implements_every_exact_transition() {
    // Spot-check the extraction itself, not just the diff: all eleven
    // state-dependent transitions plus the wildcard teardown edges.
    let (_, ex) = real_tcp();
    let has = |from: &str, to: &str| ex.edges.iter().any(|e| e.from == from && e.to == to);
    for (from, to) in [
        ("SynSent", "Established"),
        ("SynRcvd", "Established"),
        ("Established", "FinWait1"),
        ("Established", "CloseWait"),
        ("CloseWait", "LastAck"),
        ("FinWait1", "FinWait2"),
        ("FinWait1", "Closing"),
        ("FinWait1", "TimeWait"),
        ("FinWait2", "TimeWait"),
        ("Closing", "TimeWait"),
        ("LastAck", "Closed"),
    ] {
        assert!(has(from, to), "missing extracted edge {from} -> {to}");
    }
    // RST handling, local abort, and the 2MSL timer all tear down
    // state-independently.
    let wildcards = ex
        .edges
        .iter()
        .filter(|e| e.from == "Any" && e.to == "Closed")
        .count();
    assert_eq!(
        wildcards, 3,
        "expected rst/abort/2msl wildcard teardown edges"
    );
    // Both open paths are declared start states.
    let starts: Vec<&str> = ex.starts.iter().map(|(s, _, _)| s.as_str()).collect();
    assert!(starts.contains(&"SynSent") && starts.contains(&"SynRcvd"));
    assert!(
        ex.terminal_sends.is_empty(),
        "terminal states must not transmit"
    );
}

#[test]
fn removing_a_transition_from_the_table_fires_on_real_tcp() {
    // Teeth: drop FinWait2 -> TimeWait from the spec. The implemented
    // transition in tcp.rs is now undeclared and must be reported at its
    // real location.
    let (path, ex) = real_tcp();
    let pruned: Vec<SpecEntry> = RFC793_SPEC
        .iter()
        .copied()
        .filter(|e| !(e.from == "FinWait2" && e.to == "TimeWait"))
        .collect();
    let diags = spec::check(&path, &ex, &pruned);
    assert_eq!(
        diags.len(),
        1,
        "expected exactly the pruned edge: {diags:?}"
    );
    let d = &diags[0];
    assert_eq!(d.rule, "tcp-state-machine");
    assert_eq!(d.path, "crates/netsim/src/tcp.rs");
    assert!(d
        .message
        .contains("undeclared transition FinWait2 -> TimeWait"));
    assert!(d.line > 0, "diagnostic carries the real source line");
}

#[test]
fn requiring_an_unimplemented_transition_fires_on_real_tcp() {
    // Teeth in the other direction: demand a transition tcp.rs does not
    // implement and the required-missing arm must fire.
    let (path, ex) = real_tcp();
    let mut extended: Vec<SpecEntry> = RFC793_SPEC.to_vec();
    extended.push(SpecEntry {
        from: "SynRcvd",
        to: "FinWait1",
        required: true,
        wildcard_ok: false,
        why: "close from SYN-RECEIVED (not modeled)",
    });
    let diags = spec::check(&path, &ex, &extended);
    assert_eq!(
        diags.len(),
        1,
        "expected exactly the missing requirement: {diags:?}"
    );
    assert!(diags[0]
        .message
        .contains("required transition SynRcvd -> FinWait1"));
}
