//! Mutation tests: every rule is proven live by planting one violation
//! in a synthetic snippet and asserting the exact diagnostic (rule id,
//! file, line). A rule that silently stops firing fails here before it
//! can fail to protect the tree.

use simlint::{lint_sources, FileAllow, SourceFile};

fn one(path: &str, text: &str) -> Vec<simlint::report::Diagnostic> {
    lint_sources(
        &[SourceFile {
            path: path.to_string(),
            text: text.to_string(),
        }],
        &[],
    )
    .diagnostics
}

/// Assert exactly one diagnostic with the given rule, path and line.
fn assert_fires(path: &str, text: &str, rule: &str, line: u32) {
    let diags = one(path, text);
    assert_eq!(
        diags.len(),
        1,
        "expected exactly one diagnostic for {rule}, got {diags:?}"
    );
    let d = &diags[0];
    assert_eq!(d.rule, rule);
    assert_eq!(d.path, path);
    assert_eq!(d.line, line, "wrong line for {rule}: {d}");
}

#[test]
fn hash_collections_fires() {
    assert_fires(
        "crates/netsim/src/store.rs",
        "fn f() {\n    let m = HashMap::with_capacity(4);\n    let _ = m;\n}\n",
        "hash-collections",
        2,
    );
}

#[test]
fn wall_clock_fires() {
    assert_fires(
        "crates/core/src/robot.rs",
        "fn f() {\n    let t = Instant::now();\n}\n",
        "wall-clock",
        2,
    );
}

#[test]
fn thread_rng_fires() {
    assert_fires(
        "crates/netsim/src/impair2.rs",
        "fn f() {\n    let r = thread_rng();\n}\n",
        "thread-rng",
        2,
    );
}

#[test]
fn float_time_cmp_fires() {
    assert_fires(
        "crates/netsim/src/trace2.rs",
        "fn f(d: SimDuration) {\n    if d.as_secs_f64() == 1.5 {}\n}\n",
        "float-time-cmp",
        2,
    );
}

#[test]
fn unwrap_impair_fires() {
    assert_fires(
        "crates/netsim/src/impair.rs",
        "fn f(x: Option<u8>) {\n    let v = x.unwrap();\n}\n",
        "unwrap-impair",
        2,
    );
}

#[test]
fn probe_determinism_fires() {
    assert_fires(
        "crates/netsim/src/probe.rs",
        "use std::collections::HashSet;\n",
        "probe-determinism",
        1,
    );
}

#[test]
fn probe_determinism_fires_in_telemetry() {
    assert_fires(
        "crates/netsim/src/telemetry.rs",
        "fn f() {\n    let t = Instant::now();\n}\n",
        "probe-determinism",
        2,
    );
}

#[test]
fn probe_determinism_float_ban_fires_in_telemetry() {
    assert_fires(
        "crates/netsim/src/telemetry.rs",
        "fn f(d: SimDuration) {\n    let s = d.as_secs_f64();\n    let _ = s;\n}\n",
        "probe-determinism",
        2,
    );
}

#[test]
fn telemetry_float_ban_is_unsuppressible() {
    // An allow marker cannot bless a float in the telemetry sink.
    let diags = one(
        "crates/netsim/src/telemetry.rs",
        "// simlint: allow(probe-determinism)\nfn f(v: u64) -> f64 {\n    v as f64\n}\n",
    );
    assert!(
        diags.iter().any(|d| d.rule == "probe-determinism"),
        "allow marker must not suppress: {diags:?}"
    );
}

#[test]
fn hot_path_alloc_fires() {
    assert_fires(
        "crates/netsim/src/link.rs",
        "fn f(seg: &Segment) {\n    let p = seg.payload.clone();\n}\n",
        "hot-path-alloc",
        2,
    );
}

#[test]
fn seq_wrap_fires() {
    assert_fires(
        "crates/netsim/src/tcp.rs",
        "fn f(&self, ack: u64) -> bool {\n    ack > self.snd_una\n}\n",
        "seq-wrap",
        2,
    );
}

#[test]
fn time_unit_fires() {
    assert_fires(
        "crates/netsim/src/link.rs",
        "fn f(d: SimDuration) -> f64 {\n    d.as_nanos() as f64\n}\n",
        "time-unit",
        2,
    );
}

#[test]
fn tcp_state_machine_fires() {
    // An undeclared transition in a state-match over the TCB state.
    assert_fires(
        "crates/netsim/src/tcp.rs",
        "fn f(&mut self) {\n    match self.state {\n        State::Established => self.state = State::SynSent,\n        _ => {}\n    }\n}\n",
        "tcp-state-machine",
        3,
    );
}

#[test]
fn stale_allow_fires_for_marker() {
    assert_fires(
        "crates/netsim/src/sim.rs",
        "fn f() {\n    let x = 1; // simlint: allow(hot-path-alloc)\n}\n",
        "stale-allow",
        2,
    );
}

#[test]
fn stale_allow_fires_for_allowlist_entry() {
    let diags = lint_sources(
        &[SourceFile {
            path: "crates/netsim/src/sim.rs".to_string(),
            text: "fn f() {}\n".to_string(),
        }],
        &[FileAllow {
            rule: "wall-clock".to_string(),
            path: "crates/netsim/src/gone.rs".to_string(),
            line: 7,
        }],
    )
    .diagnostics;
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, "stale-allow");
    assert_eq!(diags[0].path, "xtask-allow.txt");
    assert_eq!(diags[0].line, 7);
}

// --- Scoper precision: the properties the regex lint could not have ---

#[test]
fn violation_hidden_by_reformatting_still_fires() {
    // Split across lines, extra whitespace, and a comment in between.
    assert_fires(
        "crates/netsim/src/sim.rs",
        "fn f() {\n    let t = Instant\n        :: /* sneaky */\n        now();\n}\n",
        "wall-clock",
        2,
    );
}

#[test]
fn needle_inside_string_or_comment_is_silent() {
    let diags = one(
        "crates/netsim/src/sim.rs",
        "fn f() {\n    // Instant::now() HashMap thread_rng\n    let s = \"Instant::now() HashMap\";\n    let r = r#\"SystemTime\"#;\n}\n",
    );
    assert!(diags.is_empty(), "unexpected: {diags:?}");
}

#[test]
fn fn_granular_allow_covers_body_but_not_neighbors() {
    let text = "\
// Timing the real run is this helper's purpose.
// simlint: allow(wall-clock)
fn timed() {
    let a = Instant::now();
    let b = Instant::now();
}

fn unblessed() {
    let c = Instant::now();
}
";
    let diags = one("crates/bench/src/lib.rs", text);
    assert_eq!(
        diags.len(),
        1,
        "only the unblessed fn should fire: {diags:?}"
    );
    assert_eq!(diags[0].rule, "wall-clock");
    assert_eq!(diags[0].line, 9);
}

#[test]
fn test_code_never_fires() {
    let diags = one(
        "crates/netsim/src/sim.rs",
        "#[cfg(test)]\nmod tests {\n    fn t() {\n        let t = Instant::now();\n        let m = HashMap::new();\n    }\n}\n",
    );
    assert!(diags.is_empty(), "unexpected: {diags:?}");
}
