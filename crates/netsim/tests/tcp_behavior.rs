//! Behavioural integration tests for the TCP implementation: the timing
//! phenomena the paper's analysis depends on (slow start pacing, delayed
//! ACKs, Nagle stalls, connection teardown packet counts).

use netsim::sim::{App, AppEvent, Ctx};
use netsim::{LinkConfig, SimDuration, Simulator, SockAddr, SocketId, TcpConfig, TraceStats};

/// Sends `total` bytes as fast as the socket accepts, then half-closes.
struct Blaster {
    server: SockAddr,
    total: usize,
    sent: usize,
}

impl App for Blaster {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::Start => {
                ctx.connect(self.server);
            }
            AppEvent::Connected(s) | AppEvent::SendSpace(s) => {
                while self.sent < self.total {
                    let n = ctx.send(s, &vec![0x42u8; (self.total - self.sent).min(8192)]);
                    if n == 0 {
                        return;
                    }
                    self.sent += n;
                }
                ctx.shutdown_write(s);
            }
            _ => {}
        }
    }
}

struct Sink {
    got: usize,
}

impl App for Sink {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::Start => ctx.listen(80),
            AppEvent::Readable(s) => {
                self.got += ctx.recv(s, usize::MAX).len();
            }
            AppEvent::PeerFin(s) => ctx.shutdown_write(s),
            _ => {}
        }
    }
}

fn transfer(link: LinkConfig, bytes: usize) -> (TraceStats, u64) {
    let mut sim = Simulator::new();
    let c = sim.add_host("c");
    let s = sim.add_host("s");
    sim.add_link(c, s, link);
    sim.install_app(s, Box::new(Sink { got: 0 }));
    sim.install_app(
        c,
        Box::new(Blaster {
            server: SockAddr::new(s, 80),
            total: bytes,
            sent: 0,
        }),
    );
    sim.run_until_idle();
    assert_eq!(sim.app_mut::<Sink>(s).unwrap().got, bytes);
    let stats = sim.stats(c, s);
    (stats, sim.socket_stats(c).sockets_used)
}

#[test]
fn slow_start_paces_wan_transfers() {
    // 64 KB over a 90 ms-RTT link: slow start needs several round trips
    // (cwnd 2, 3.. doubling per RTT: ~5-6 RTTs), so elapsed must be at
    // least ~4 RTTs and much more than the serialization time (~52 ms).
    let (stats, _) = transfer(LinkConfig::wan(), 64 * 1024);
    assert!(
        stats.elapsed_secs() > 0.35,
        "slow start should cost >4 RTTs, got {:.3}s",
        stats.elapsed_secs()
    );
    assert!(
        stats.elapsed_secs() < 1.5,
        "but not absurdly long: {:.3}s",
        stats.elapsed_secs()
    );
}

#[test]
fn small_transfer_finishes_in_couple_rtts() {
    // 1 KB fits in the initial window: handshake + data + close ≈ 2-3
    // RTTs on the WAN.
    let (stats, _) = transfer(LinkConfig::wan(), 1024);
    assert!(
        stats.elapsed_secs() < 0.40,
        "small object should not slow-start: {:.3}s",
        stats.elapsed_secs()
    );
}

#[test]
fn delayed_acks_halve_ack_count() {
    // Bulk transfer: roughly one pure ACK per two data segments.
    let (stats, _) = transfer(LinkConfig::lan(), 300 * 1024);
    let data_segments = (300 * 1024) / 1460 + 1;
    assert!(
        stats.pure_acks < data_segments as u64 * 3 / 4,
        "delayed acks: {} acks for {} segments",
        stats.pure_acks,
        data_segments
    );
    assert!(stats.pure_acks > data_segments as u64 / 4);
}

#[test]
fn connection_costs_seven_packets_minimum() {
    // SYN, SYN-ACK, ACK(+data), data ack, FIN/ACK exchanges: the classic
    // minimal HTTP/1.0 exchange is 7-10 packets — the paper's core
    // complaint about per-request connections.
    let (stats, _) = transfer(LinkConfig::lan(), 100);
    assert!(
        (7..=11).contains(&stats.total_packets()),
        "tiny transfer took {} packets",
        stats.total_packets()
    );
    assert_eq!(stats.syns, 2);
    assert_eq!(stats.fins, 2);
}

/// A chatty app that writes small messages with pauses, demonstrating
/// the Nagle + delayed-ACK stall.
struct Chatty {
    server: SockAddr,
    writes_left: u32,
    sock: Option<SocketId>,
}

impl App for Chatty {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::Start => {
                self.sock = Some(ctx.connect(self.server));
            }
            AppEvent::Connected(s) => {
                ctx.send(s, b"first-small-message");
                ctx.send(s, b"second-small-message");
                ctx.send(s, b"third-small-message");
                self.writes_left = 0;
                // Keep the connection open (a FIN would legally flush the
                // Nagle-held tail); close much later.
                ctx.set_timer(1, SimDuration::from_millis(900));
            }
            AppEvent::Timer(1) => {
                if let Some(s) = self.sock {
                    ctx.shutdown_write(s);
                }
            }
            _ => {}
        }
    }
}

/// Time from the first packet to the last *data-bearing* packet arrival.
fn chatty_data_elapsed(nodelay: bool) -> f64 {
    let mut sim = Simulator::new();
    let c = sim.add_host("c");
    let s = sim.add_host("s");
    let cfg = TcpConfig {
        nodelay,
        ..TcpConfig::default()
    };
    sim.set_tcp_config(c, cfg);
    sim.add_link(c, s, LinkConfig::lan());
    sim.install_app(s, Box::new(Sink { got: 0 }));
    sim.install_app(
        c,
        Box::new(Chatty {
            server: SockAddr::new(s, 80),
            writes_left: 3,
            sock: None,
        }),
    );
    sim.run_until_idle();
    let records = sim.trace().records();
    let first = records.first().map(|r| r.sent).unwrap();
    let last_data = records
        .iter()
        .filter(|r| r.segment.has_payload())
        .map(|r| r.received)
        .max()
        .unwrap();
    last_data.since(first).as_secs_f64()
}

#[test]
fn nagle_stalls_small_writes_behind_delayed_acks() {
    let with_nagle = chatty_data_elapsed(false);
    let without = chatty_data_elapsed(true);
    // The second small write waits for the first's ACK, which the
    // receiver delays up to 200 ms: a visible stall.
    assert!(
        with_nagle > without + 0.15,
        "nagle {with_nagle:.3}s vs nodelay {without:.3}s"
    );
    assert!(without < 0.05, "nodelay sends immediately: {without:.3}s");
}

#[test]
fn retransmission_recovers_within_backoff() {
    // Deterministic loss of every 5th data packet: the transfer still
    // completes, with retransmissions visible as extra packets.
    let clean = transfer(LinkConfig::lan(), 100 * 1024).0;
    let lossy = transfer(LinkConfig::lan().with_drop_every(5), 100 * 1024).0;
    assert!(lossy.total_packets() > clean.total_packets());
    assert!(lossy.elapsed_secs() > clean.elapsed_secs());
}

#[test]
fn mss_is_respected() {
    let (stats, _) = transfer(LinkConfig::lan(), 50 * 1024);
    let _ = stats;
    // Re-run capturing the trace to check per-packet sizes.
    let mut sim = Simulator::new();
    let c = sim.add_host("c");
    let s = sim.add_host("s");
    sim.add_link(c, s, LinkConfig::lan());
    sim.install_app(s, Box::new(Sink { got: 0 }));
    sim.install_app(
        c,
        Box::new(Blaster {
            server: SockAddr::new(s, 80),
            total: 50 * 1024,
            sent: 0,
        }),
    );
    sim.run_until_idle();
    for rec in sim.trace().records() {
        assert!(
            rec.segment.payload.len() <= 1460,
            "segment exceeds MSS: {}",
            rec.segment.payload.len()
        );
    }
}

#[test]
fn half_close_allows_continued_receive() {
    /// Client half-closes immediately but still receives the server's
    /// response afterwards.
    struct EarlyCloser {
        server: SockAddr,
        received: usize,
    }
    impl App for EarlyCloser {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
            match ev {
                AppEvent::Start => {
                    ctx.connect(self.server);
                }
                AppEvent::Connected(s) => {
                    ctx.send(s, b"request");
                    ctx.shutdown_write(s);
                }
                AppEvent::Readable(s) => {
                    self.received += ctx.recv(s, usize::MAX).len();
                }
                _ => {}
            }
        }
    }
    struct LateResponder;
    impl App for LateResponder {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
            match ev {
                AppEvent::Start => ctx.listen(80),
                AppEvent::PeerFin(s) => {
                    // Respond only after the peer has half-closed.
                    ctx.send(s, &vec![9u8; 5000]);
                    ctx.shutdown_write(s);
                }
                AppEvent::Readable(s) => {
                    let _ = ctx.recv(s, usize::MAX);
                }
                _ => {}
            }
        }
    }

    let mut sim = Simulator::new();
    let c = sim.add_host("c");
    let s = sim.add_host("s");
    sim.add_link(c, s, LinkConfig::lan());
    sim.install_app(s, Box::new(LateResponder));
    sim.install_app(
        c,
        Box::new(EarlyCloser {
            server: SockAddr::new(s, 80),
            received: 0,
        }),
    );
    sim.run_until_idle();
    assert_eq!(
        sim.app_mut::<EarlyCloser>(c).unwrap().received,
        5000,
        "data flows to a half-closed sender"
    );
}
