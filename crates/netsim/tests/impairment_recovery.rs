//! TCP loss-recovery behaviour under the impairment pipeline: RTO
//! exponential backoff with Karn's algorithm, fast retransmit provoked by
//! network reordering, outage/flap survival, duplication and queue-drop
//! tolerance. These are the mechanisms that determine how the paper's
//! protocol comparisons shift once the link is no longer perfect.

use netsim::sim::{App, AppEvent, Ctx};
use netsim::tcp::{Effects, State, Tcb, TcpConfig, TimerKind};
use netsim::{
    HostId, ImpairConfig, JitterModel, LinkConfig, LossModel, SimDuration, SimTime, Simulator,
    SockAddr,
};

const CLIENT: SockAddr = SockAddr::new(HostId(0), 40_000);
const SERVER: SockAddr = SockAddr::new(HostId(1), 80);

fn fx() -> Effects {
    Effects::default()
}

/// Handshake two TCBs at t=0.
fn handshake() -> (Tcb, Tcb) {
    let now = SimTime::ZERO;
    let mut cfx = fx();
    let mut client = Tcb::open_active(CLIENT, SERVER, TcpConfig::default(), now, &mut cfx);
    let syn = cfx.segments.pop().unwrap();
    let mut sfx = fx();
    let mut server = Tcb::open_passive(SERVER, CLIENT, TcpConfig::default(), &syn, now, &mut sfx);
    let synack = sfx.segments.pop().unwrap();
    let mut cfx = fx();
    client.on_segment(now, &synack, &mut cfx);
    let ack = cfx.segments.pop().unwrap();
    let mut sfx = fx();
    server.on_segment(now, &ack, &mut sfx);
    assert_eq!(client.state, State::Established);
    assert_eq!(server.state, State::Established);
    (client, server)
}

fn rto_timer(e: &Effects) -> (TimerKind, SimTime, u64) {
    *e.timers
        .iter()
        .rev()
        .find(|(k, _, _)| *k == TimerKind::Rto)
        .expect("RTO timer armed")
}

fn ms(v: u64) -> SimTime {
    SimTime::from_nanos(v * 1_000_000)
}

/// Repeated timeouts double the retransmission timer (up to the cap) and
/// Karn's algorithm keeps the ambiguous ACK of a retransmitted segment
/// from polluting the RTT estimate.
#[test]
fn rto_backs_off_exponentially_and_karn_ignores_ambiguous_ack() {
    let (mut c, mut s) = handshake();
    // No RTT sample exists yet (the handshake does not take one), so the
    // base timeout is the configured initial RTO of 3 s.
    let base = TcpConfig::default().initial_rto;
    assert_eq!(base, SimDuration::from_millis(3_000));

    // t=1s: send one segment; the network eats it.
    let t0 = ms(1_000);
    let mut e = fx();
    c.app_send(t0, b"lost in transit", &mut e);
    assert_eq!(e.segments.len(), 1);
    let original = e.segments.pop().unwrap();
    let (kind, at, epoch) = rto_timer(&e);
    assert_eq!(at, t0 + base, "first RTO uses the un-backed-off timeout");

    // First timeout: retransmit, and the next deadline doubles.
    let mut e = fx();
    c.on_timer(at, kind, epoch, &mut e);
    assert_eq!(c.segments_retransmitted, 1);
    let rexmit = e.segments.pop().expect("timeout retransmits");
    assert_eq!(rexmit.seq, original.seq);
    assert_eq!(rexmit.payload, original.payload);
    let (kind2, at2, epoch2) = rto_timer(&e);
    assert_eq!(at2, at + base.saturating_mul(2), "backoff doubles: 2x");

    // Second timeout: doubles again (4x base).
    let mut e = fx();
    c.on_timer(at2, kind2, epoch2, &mut e);
    assert_eq!(c.segments_retransmitted, 2);
    let rexmit2 = e.segments.pop().expect("second retransmission");
    assert_eq!(rexmit2.seq, original.seq);
    let (_, at3, _) = rto_timer(&e);
    assert_eq!(at3, at2 + base.saturating_mul(4), "backoff doubles: 4x");

    // The second retransmission finally gets through, 19 s after the
    // original send. Karn's algorithm must NOT take that span (or any
    // span) as an RTT sample — the ACK is ambiguous.
    let t_ack = ms(20_000);
    let mut sfx = fx();
    s.on_segment(t_ack, &rexmit2, &mut sfx);
    let ack = sfx
        .segments
        .iter()
        .find(|seg| seg.ack > original.seq)
        .cloned()
        .or_else(|| {
            // Delayed-ACK path: force it out via the timer.
            let (k, at, ep) = sfx
                .timers
                .iter()
                .rev()
                .find(|(k, _, _)| *k == TimerKind::DelAck)
                .copied()?;
            let mut e = fx();
            s.on_timer(at, k, ep, &mut e);
            e.segments.pop()
        })
        .expect("retransmitted data is acknowledged");
    let mut e = fx();
    c.on_segment(t_ack, &ack, &mut e);
    assert_eq!(c.unacked_bytes(), 0);

    // New data after recovery: the ACK also reset the backoff, and because
    // the ambiguous sample was discarded the timeout is still exactly
    // `base` — not something derived from the 19 s ambiguous span.
    let t1 = ms(21_000);
    let mut e = fx();
    c.app_send(t1, b"fresh", &mut e);
    let (_, at_fresh, _) = rto_timer(&e);
    assert_eq!(
        at_fresh,
        t1 + base,
        "Karn: ambiguous ACK must not inflate the RTO, and backoff resets"
    );
}

// ---------------------------------------------------------------------
// End-to-end transfers through an impaired link
// ---------------------------------------------------------------------

struct Sender {
    server: SockAddr,
    payload: Vec<u8>,
    offset: usize,
}

impl Sender {
    fn pump(&mut self, ctx: &mut Ctx<'_>, s: netsim::SocketId) {
        while self.offset < self.payload.len() {
            let n = ctx.send(s, &self.payload[self.offset..]);
            if n == 0 {
                return;
            }
            self.offset += n;
        }
        ctx.shutdown_write(s);
    }
}

impl App for Sender {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::Start => {
                ctx.connect(self.server);
            }
            AppEvent::Connected(s) | AppEvent::SendSpace(s) => self.pump(ctx, s),
            _ => {}
        }
    }
}

struct Receiver {
    received: Vec<u8>,
    peer_closed: bool,
}

impl App for Receiver {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::Start => ctx.listen(80),
            AppEvent::Readable(s) => {
                let data = ctx.recv(s, usize::MAX);
                self.received.extend_from_slice(&data);
            }
            AppEvent::PeerFin(s) => {
                let data = ctx.recv(s, usize::MAX);
                self.received.extend_from_slice(&data);
                self.peer_closed = true;
                ctx.shutdown_write(s);
            }
            _ => {}
        }
    }
}

/// Runs a one-way transfer over `link`; returns (received, peer_closed,
/// stats).
fn transfer(payload: &[u8], link: LinkConfig) -> (Vec<u8>, bool, netsim::TraceStats) {
    let mut sim = Simulator::new();
    let client = sim.add_host("client");
    let server = sim.add_host("server");
    sim.add_link(client, server, link);
    sim.install_app(
        server,
        Box::new(Receiver {
            received: Vec::new(),
            peer_closed: false,
        }),
    );
    sim.install_app(
        client,
        Box::new(Sender {
            server: SockAddr::new(server, 80),
            payload: payload.to_vec(),
            offset: 0,
        }),
    );
    sim.run_until_idle();
    let stats = sim.stats(client, server);
    let rx = sim.app_mut::<Receiver>(server).unwrap();
    (rx.received.clone(), rx.peer_closed, stats)
}

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i % 251) as u8).collect()
}

/// Bursty (Gilbert–Elliott) loss at 5% mean: data still arrives intact
/// and in order, and the trace shows both the drops and the recovery
/// retransmissions.
#[test]
fn bursty_loss_recovers_with_retransmissions() {
    // Big enough that the Gilbert–Elliott chain is all but certain to
    // visit its bad state at 5% mean loss.
    let data = payload(250_000);
    let link = LinkConfig::wan().with_impairment(
        ImpairConfig::none()
            .with_seed(0x000B_00B5)
            .with_loss(LossModel::bursty(0.05, 4.0)),
    );
    let (received, closed, stats) = transfer(&data, link);
    assert_eq!(received, data);
    assert!(closed);
    assert!(stats.drops_loss > 0, "bursty model must actually drop");
    assert!(
        stats.retransmitted_packets > 0,
        "drops must be repaired by retransmissions"
    );
    assert_eq!(stats.drops_outage, 0);
    assert_eq!(stats.drops_queue, 0);
}

/// Jitter with reordering enabled but zero loss: enough packets overtake
/// each other to trigger dup-ACK fast retransmits, yet delivery stays
/// correct and nothing is counted as dropped.
#[test]
fn reordering_triggers_fast_retransmit_without_loss() {
    let data = payload(120_000);
    let link = LinkConfig {
        bits_per_sec: Some(10_000_000),
        propagation: SimDuration::from_millis(5),
        impair: ImpairConfig::none()
            .with_seed(0x0DD5EED)
            .with_jitter(JitterModel::Uniform {
                min: SimDuration::ZERO,
                max: SimDuration::from_millis(12),
            })
            .with_reorder(true),
        discipline: netsim::QueueDiscipline::Fifo,
        buffer_bytes: None,
    };
    let (received, closed, stats) = transfer(&data, link);
    assert_eq!(received, data);
    assert!(closed);
    assert_eq!(stats.drops(), 0, "no packets were dropped");
    assert!(stats.reordered_packets > 0, "jitter must actually reorder");
    assert!(
        stats.retransmitted_packets > 0,
        "reorder-induced dup ACKs must trigger fast retransmit"
    );
}

/// A mid-transfer outage stalls the connection; RTO backoff rides it out
/// and the transfer completes once the link returns.
#[test]
fn outage_is_survived_by_backoff() {
    let data = payload(40_000);
    let link = LinkConfig::wan().with_impairment(
        ImpairConfig::none()
            .with_seed(1)
            .with_outage(ms(100), ms(2_000)),
    );
    let (received, closed, stats) = transfer(&data, link);
    assert_eq!(received, data);
    assert!(closed);
    assert!(stats.drops_outage > 0, "outage window must swallow packets");
    assert!(stats.retransmitted_packets > 0);
}

/// Repeated short flaps: every outage loses packets, every recovery makes
/// progress, and the transfer still completes exactly.
#[test]
fn link_flaps_are_survived() {
    let data = payload(40_000);
    let link = LinkConfig::wan().with_impairment(ImpairConfig::none().with_seed(2).with_flaps(
        ms(50),
        SimDuration::from_millis(400),
        SimDuration::from_millis(1_500),
        4,
    ));
    let (received, closed, stats) = transfer(&data, link);
    assert_eq!(received, data);
    assert!(closed);
    assert!(stats.drops_outage > 0);
}

/// Network-level duplication is invisible to the application: duplicates
/// are counted in the trace as duplicates (never as drops) and the byte
/// stream is unaffected. Note that, as in real TCP, a burst of duplicate
/// segments can still provoke *spurious* fast retransmits — each stale
/// copy elicits a duplicate ACK — so `retransmitted_packets` may be
/// nonzero even though nothing was lost.
#[test]
fn duplication_is_harmless() {
    let data = payload(30_000);
    let link =
        LinkConfig::lan().with_impairment(ImpairConfig::none().with_seed(3).with_duplication(0.2));
    let (received, closed, stats) = transfer(&data, link);
    assert_eq!(received, data);
    assert!(closed);
    assert!(stats.dup_packets > 0, "duplication must actually duplicate");
    assert_eq!(stats.drops(), 0);
}

/// A tight queue bound on a slow link tail-drops bursts; TCP recovers and
/// the stream is still delivered intact.
#[test]
fn queue_overflow_drops_are_recovered() {
    let data = payload(60_000);
    let link = LinkConfig {
        bits_per_sec: Some(1_000_000),
        propagation: SimDuration::from_millis(10),
        impair: ImpairConfig::none().with_seed(4).with_queue_limit(6_000),
        discipline: netsim::QueueDiscipline::Fifo,
        buffer_bytes: None,
    };
    let (received, closed, stats) = transfer(&data, link);
    assert_eq!(received, data);
    assert!(closed);
    assert!(stats.drops_queue > 0, "queue bound must tail-drop");
    assert!(stats.retransmitted_packets > 0);
    assert_eq!(stats.drops_loss, 0);
}

/// The full gauntlet at once — bursty loss, jitter+reorder, duplication
/// and a flap — still yields exact in-order delivery, and identical seeds
/// give identical traces.
#[test]
fn combined_impairments_deterministic_and_reliable() {
    let data = payload(50_000);
    let mk = || {
        LinkConfig::wan().with_impairment(
            ImpairConfig::none()
                .with_seed(0xC0FFEE)
                .with_loss(LossModel::bursty(0.02, 3.0))
                .with_jitter(JitterModel::Exponential {
                    mean: SimDuration::from_millis(4),
                    cap: SimDuration::from_millis(40),
                })
                .with_reorder(true)
                .with_duplication(0.05)
                .with_flaps(
                    ms(500),
                    SimDuration::from_millis(200),
                    SimDuration::from_millis(3_000),
                    2,
                ),
        )
    };
    let (rx1, closed1, stats1) = transfer(&data, mk());
    let (rx2, closed2, stats2) = transfer(&data, mk());
    assert_eq!(rx1, data);
    assert_eq!(rx2, data);
    assert!(closed1 && closed2);
    assert!(stats1.drops() > 0);
    assert_eq!(stats1, stats2, "identical seeds give identical traces");
}
