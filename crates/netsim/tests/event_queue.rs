//! Differential tests for the timer-wheel event queue: every sequence
//! of operations must produce *exactly* the pop order of the binary-heap
//! reference implementation — same times, same items, same tie-breaks.
//! Driven by a deterministic seeded PRNG (the build environment has no
//! crates.io access, so `proptest` is unavailable).

use netsim::queue::EventQueue;
use netsim::sim::{App, AppEvent, Ctx};
use netsim::{LinkConfig, SimTime, Simulator, SockAddr};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Drive a wheel and a heap through the same operations, asserting the
/// pop streams match step for step.
struct Pair {
    wheel: EventQueue<u64>,
    heap: EventQueue<u64>,
}

impl Pair {
    fn new() -> Self {
        Pair {
            wheel: EventQueue::wheel(),
            heap: EventQueue::heap(),
        }
    }

    fn push(&mut self, at: SimTime, item: u64) {
        self.wheel.push(at, item);
        self.heap.push(at, item);
        assert_eq!(self.wheel.len(), self.heap.len());
    }

    fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, u64)> {
        let w = self.wheel.pop_before(deadline);
        let h = self.heap.pop_before(deadline);
        assert_eq!(w, h, "wheel and heap disagree at deadline {deadline:?}");
        assert_eq!(self.wheel.len(), self.heap.len());
        w
    }

    fn pop(&mut self) -> Option<(SimTime, u64)> {
        let w = self.wheel.pop();
        let h = self.heap.pop();
        assert_eq!(w, h, "wheel and heap disagree on pop");
        w
    }

    fn drain(&mut self) {
        while self.pop().is_some() {}
        assert!(self.wheel.is_empty() && self.heap.is_empty());
    }
}

#[test]
fn randomized_interleavings_match_heap_reference() {
    for seed in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(0x0007_E001 + seed);
        let mut pair = Pair::new();
        let mut now = 0u64;
        for _ in 0..2_000 {
            if rng.gen_bool(0.6) || pair.wheel.is_empty() {
                // Push at a time spread across wheel levels: nearby,
                // mid-range, or far future.
                let delta = match rng.gen_range(0u32..10) {
                    0..=5 => rng.gen_range(0u64..4_096),
                    6..=8 => rng.gen_range(0u64..10_000_000),
                    _ => rng.gen_range(0u64..30_000_000_000),
                };
                pair.push(SimTime::from_nanos(now + delta), rng.gen());
            } else if rng.gen_bool(0.5) {
                if let Some((at, _)) = pair.pop() {
                    now = now.max(at.as_nanos());
                }
            } else {
                let deadline = SimTime::from_nanos(now + rng.gen_range(0u64..5_000_000));
                if let Some((at, _)) = pair.pop_before(deadline) {
                    now = now.max(at.as_nanos());
                }
            }
        }
        pair.drain();
    }
}

#[test]
fn equal_timestamp_bursts_pop_fifo() {
    // Clean check first: one burst at one instant drains in push order.
    let mut pair = Pair::new();
    let at = SimTime::from_nanos(42);
    for i in 0..100u64 {
        pair.push(at, i);
    }
    for i in 0..100u64 {
        assert_eq!(
            pair.pop(),
            Some((at, i)),
            "equal-timestamp events popped out of push order"
        );
    }
    // Then randomized bursts, including repeat bursts at instants used
    // in earlier rounds (a late push at an already-drained-past time):
    // global order is enforced by the step-for-step heap comparison in
    // `Pair`.
    let mut rng = SmallRng::seed_from_u64(0x0007_E002);
    let mut pair = Pair::new();
    let mut now = 0u64;
    let mut next_item = 0u64;
    let mut instants: Vec<u64> = Vec::new();
    for _ in 0..200 {
        let at = if !instants.is_empty() && rng.gen_bool(0.3) {
            instants[rng.gen_range(0..instants.len())]
        } else {
            now + rng.gen_range(0u64..1_000_000)
        };
        instants.push(at);
        let burst = rng.gen_range(1usize..24);
        for _ in 0..burst {
            pair.push(SimTime::from_nanos(at), next_item);
            next_item += 1;
        }
        let take = rng.gen_range(0usize..=burst);
        for _ in 0..take {
            let (got_at, _) = pair.pop().expect("burst entry");
            now = now.max(got_at.as_nanos());
        }
    }
    pair.drain();
}

#[test]
fn far_future_rto_timers_order_correctly() {
    let mut pair = Pair::new();
    // The kernel's worst spread: per-packet events nanoseconds apart
    // with retransmission timers seconds out (top wheel levels), plus
    // one far outlier.
    for i in 0..64u64 {
        pair.push(SimTime::from_nanos(i * 7), i);
        pair.push(SimTime::from_nanos(3_000_000_000 + i * 13), 1_000 + i);
    }
    pair.push(SimTime::from_nanos(u64::MAX / 2), 9_999);
    // Pops before a deadline between the clusters take only the near
    // ones, in order.
    let mut last = None;
    while let Some((at, _)) = pair.pop_before(SimTime::from_nanos(1_000_000)) {
        if let Some(prev) = last {
            assert!(at >= prev);
        }
        last = Some(at);
    }
    assert_eq!(last, Some(SimTime::from_nanos(63 * 7)));
    // The RTO cluster and the outlier drain in order too.
    pair.drain();
}

#[test]
fn cancel_and_rearm_pattern_matches_reference() {
    // The kernel cancels timers by epoch (a stale entry pops and is
    // ignored), then re-arms at a new time: both the superseded and the
    // replacement entry coexist in the queue. The queue must keep exact
    // order among all of them.
    let mut rng = SmallRng::seed_from_u64(0x0007_E003);
    let mut pair = Pair::new();
    let mut now = 0u64;
    let mut armed: Vec<u64> = Vec::new();
    for round in 0..500u64 {
        // Arm a timer.
        let at = now + rng.gen_range(1u64..5_000_000);
        pair.push(SimTime::from_nanos(at), round);
        armed.push(at);
        // Sometimes "cancel and re-arm": push a replacement at a
        // different time while the stale entry is still queued.
        if rng.gen_bool(0.4) {
            let again = now + rng.gen_range(1u64..10_000_000);
            pair.push(SimTime::from_nanos(again), round | 1 << 32);
        }
        // Fire everything due in the next half-millisecond.
        let deadline = SimTime::from_nanos(now + 500_000);
        while let Some((at, _)) = pair.pop_before(deadline) {
            now = now.max(at.as_nanos());
        }
        now += rng.gen_range(0u64..250_000);
    }
    pair.drain();
}

#[test]
fn pushes_behind_the_current_time_keep_heap_order() {
    // A failed pop_before can leave the wheel's internal cursor ahead of
    // the last popped time; pushes behind it (tests and apps schedule
    // "now") must still drain in exact (time, push-order) order.
    let mut pair = Pair::new();
    pair.push(SimTime::from_nanos(1_000_000), 1);
    // Deadline miss: nothing due, but the wheel may cascade internally.
    assert_eq!(pair.pop_before(SimTime::from_nanos(500)), None);
    pair.push(SimTime::from_nanos(10), 2);
    pair.push(SimTime::from_nanos(10), 3);
    pair.push(SimTime::ZERO, 4);
    assert_eq!(pair.pop(), Some((SimTime::ZERO, 4)));
    assert_eq!(pair.pop(), Some((SimTime::from_nanos(10), 2)));
    assert_eq!(pair.pop(), Some((SimTime::from_nanos(10), 3)));
    assert_eq!(pair.pop(), Some((SimTime::from_nanos(1_000_000), 1)));
    assert_eq!(pair.pop(), None);
}

// ---------------------------------------------------------------------
// Simulator-level differential run
// ---------------------------------------------------------------------

struct Echo {
    port: u16,
    pending: Vec<u8>,
    peer_done: bool,
}
impl Echo {
    fn flush(&mut self, ctx: &mut Ctx<'_>, s: netsim::SocketId) {
        while !self.pending.is_empty() {
            let n = ctx.send(s, &self.pending);
            if n == 0 {
                return;
            }
            self.pending.drain(..n);
        }
        if self.peer_done {
            ctx.shutdown_write(s);
        }
    }
}
impl App for Echo {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::Start => ctx.listen(self.port),
            AppEvent::Readable(s) => {
                let data = ctx.recv(s, usize::MAX);
                self.pending.extend_from_slice(&data);
                self.flush(ctx, s);
            }
            AppEvent::SendSpace(s) => self.flush(ctx, s),
            AppEvent::PeerFin(s) => {
                self.peer_done = true;
                self.flush(ctx, s);
            }
            _ => {}
        }
    }
}

struct Blaster {
    server: SockAddr,
    to_send: usize,
    sent: usize,
    got: usize,
}
impl Blaster {
    fn pump(&mut self, ctx: &mut Ctx<'_>, s: netsim::SocketId) {
        while self.sent < self.to_send {
            let n = ctx.send(s, &vec![0x5A; (self.to_send - self.sent).min(8192)]);
            if n == 0 {
                return;
            }
            self.sent += n;
        }
    }
}
impl App for Blaster {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::Start => {
                ctx.connect(self.server);
            }
            AppEvent::Connected(s) | AppEvent::SendSpace(s) => self.pump(ctx, s),
            AppEvent::Readable(s) => {
                self.got += ctx.recv(s, usize::MAX).len();
                if self.got >= self.to_send {
                    ctx.shutdown_write(s);
                }
            }
            _ => {}
        }
    }
}

/// Run one echo transfer and return (events processed, client stats
/// debug, bytes echoed back).
fn echo_run(reference_queue: bool) -> (u64, String, usize) {
    let mut sim = Simulator::new();
    if reference_queue {
        sim.use_reference_queue();
    }
    let client = sim.add_host("client");
    let server = sim.add_host("server");
    sim.add_link(client, server, LinkConfig::wan());
    sim.install_app(
        server,
        Box::new(Echo {
            port: 80,
            pending: Vec::new(),
            peer_done: false,
        }),
    );
    sim.install_app(
        client,
        Box::new(Blaster {
            server: SockAddr::new(server, 80),
            to_send: 256 * 1024,
            sent: 0,
            got: 0,
        }),
    );
    let events = sim.run_until_idle();
    let stats = format!("{:?}", sim.stats(client, server));
    let got = sim.app_mut::<Blaster>(client).unwrap().got;
    (events, stats, got)
}

#[test]
fn simulator_identical_under_wheel_and_reference_heap() {
    let wheel = echo_run(false);
    let heap = echo_run(true);
    assert_eq!(wheel, heap, "wheel and heap queues diverge at sim level");
    assert_eq!(wheel.2, 256 * 1024, "transfer incomplete");
}
