//! Property-style tests for the TCP simulator, driven by a deterministic
//! seeded PRNG (the build environment has no crates.io access, so
//! `proptest` is unavailable): reliable in-order delivery must hold for
//! arbitrary payloads, arbitrary link parameters, deterministic loss
//! patterns, and arbitrary application write chunkings.

use netsim::sim::{App, AppEvent, Ctx};
use netsim::{LinkConfig, SimDuration, Simulator, SockAddr, TcpConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Sends `payload` in the given chunk sizes, then half-closes.
struct ChunkSender {
    server: SockAddr,
    payload: Vec<u8>,
    chunks: Vec<usize>,
    offset: usize,
    chunk_idx: usize,
}

impl ChunkSender {
    fn pump(&mut self, ctx: &mut Ctx<'_>, s: netsim::SocketId) {
        while self.offset < self.payload.len() {
            let chunk = self
                .chunks
                .get(self.chunk_idx)
                .copied()
                .unwrap_or(1024)
                .max(1)
                .min(self.payload.len() - self.offset);
            let n = ctx.send(s, &self.payload[self.offset..self.offset + chunk]);
            if n == 0 {
                return;
            }
            self.offset += n;
            self.chunk_idx += 1;
        }
        ctx.shutdown_write(s);
    }
}

impl App for ChunkSender {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::Start => {
                ctx.connect(self.server);
            }
            AppEvent::Connected(s) | AppEvent::SendSpace(s) => self.pump(ctx, s),
            _ => {}
        }
    }
}

/// Collects everything it reads; half-closes back on FIN.
struct Collector {
    received: Vec<u8>,
    peer_closed: bool,
}

impl App for Collector {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::Start => ctx.listen(80),
            AppEvent::Readable(s) => {
                let data = ctx.recv(s, usize::MAX);
                self.received.extend_from_slice(&data);
            }
            AppEvent::PeerFin(s) => {
                self.peer_closed = true;
                // Drain anything still buffered, then close.
                let data = ctx.recv(s, usize::MAX);
                self.received.extend_from_slice(&data);
                ctx.shutdown_write(s);
            }
            _ => {}
        }
    }
}

fn run_transfer(
    payload: Vec<u8>,
    chunks: Vec<usize>,
    link: LinkConfig,
    tcp: TcpConfig,
) -> (Vec<u8>, bool) {
    let mut sim = Simulator::new();
    let client = sim.add_host("client");
    let server = sim.add_host("server");
    sim.set_tcp_config(client, tcp.clone());
    sim.set_tcp_config(server, tcp);
    sim.add_link(client, server, link);
    sim.install_app(
        server,
        Box::new(Collector {
            received: Vec::new(),
            peer_closed: false,
        }),
    );
    sim.install_app(
        client,
        Box::new(ChunkSender {
            server: SockAddr::new(server, 80),
            payload,
            chunks,
            offset: 0,
            chunk_idx: 0,
        }),
    );
    sim.run_until_idle();
    let collector = sim.app_mut::<Collector>(server).unwrap();
    (collector.received.clone(), collector.peer_closed)
}

fn random_bytes(rng: &mut SmallRng, lo: usize, hi: usize) -> Vec<u8> {
    let len = rng.gen_range(lo..hi);
    (0..len).map(|_| rng.gen()).collect()
}

#[test]
fn reliable_delivery_arbitrary_payload() {
    let mut rng = SmallRng::seed_from_u64(0x0007_C901);
    for case in 0..48 {
        let payload = random_bytes(&mut rng, 0, 40_000);
        let chunks: Vec<usize> = (0..rng.gen_range(0..40usize))
            .map(|_| rng.gen_range(1..4096usize))
            .collect();
        let tcp = TcpConfig {
            nodelay: rng.gen(),
            ..TcpConfig::default()
        };
        let (received, closed) = run_transfer(payload.clone(), chunks, LinkConfig::lan(), tcp);
        assert_eq!(received, payload, "case {case}");
        assert!(closed, "case {case}");
    }
}

#[test]
fn reliable_delivery_under_loss() {
    let mut rng = SmallRng::seed_from_u64(0x0007_C902);
    for case in 0..48 {
        let payload = random_bytes(&mut rng, 1, 20_000);
        let drop_every = rng.gen_range(2u64..40);
        let link = LinkConfig::lan().with_drop_every(drop_every);
        let (received, closed) = run_transfer(payload.clone(), vec![], link, TcpConfig::default());
        assert_eq!(received, payload, "case {case} drop_every {drop_every}");
        assert!(closed, "case {case}");
    }
}

#[test]
fn reliable_delivery_any_link_speed() {
    let mut rng = SmallRng::seed_from_u64(0x0007_C903);
    for case in 0..48 {
        let payload = random_bytes(&mut rng, 1, 8_000);
        let kbps = rng.gen_range(16u64..10_000);
        let delay_ms = rng.gen_range(0u64..300);
        let link = LinkConfig {
            bits_per_sec: Some(kbps * 1000),
            propagation: SimDuration::from_millis(delay_ms),
            impair: netsim::ImpairConfig::none(),
            discipline: netsim::QueueDiscipline::Fifo,
            buffer_bytes: None,
        };
        let (received, _) = run_transfer(payload.clone(), vec![], link, TcpConfig::default());
        assert_eq!(
            received, payload,
            "case {case} kbps {kbps} delay {delay_ms}"
        );
    }
}

#[test]
fn reliable_delivery_small_windows() {
    let mut rng = SmallRng::seed_from_u64(0x0007_C904);
    for case in 0..48 {
        let payload = random_bytes(&mut rng, 1, 10_000);
        let window_kb = rng.gen_range(2usize..32);
        let mss = if rng.gen() { 536usize } else { 1460 };
        let tcp = TcpConfig {
            recv_window: window_kb * 1024,
            send_buffer: window_kb * 1024,
            mss,
            ..TcpConfig::default()
        };
        let (received, _) = run_transfer(payload.clone(), vec![], LinkConfig::lan(), tcp);
        assert_eq!(
            received, payload,
            "case {case} window {window_kb}K mss {mss}"
        );
    }
}

#[test]
fn reliable_delivery_under_impairment() {
    use netsim::{ImpairConfig, JitterModel, LossModel};
    let mut rng = SmallRng::seed_from_u64(0x0007_C906);
    for case in 0..32 {
        let payload = random_bytes(&mut rng, 1, 25_000);
        let loss = match rng.gen_range(0u32..3) {
            0 => LossModel::None,
            1 => LossModel::Bernoulli {
                p: rng.gen_range(1u64..100) as f64 / 1000.0, // up to 10%
            },
            _ => LossModel::bursty(rng.gen_range(1u64..80) as f64 / 1000.0, 4.0),
        };
        let mut impair = ImpairConfig::none()
            .with_seed(rng.gen())
            .with_loss(loss)
            .with_duplication(rng.gen_range(0u64..100) as f64 / 1000.0);
        if rng.gen() {
            impair = impair
                .with_jitter(JitterModel::Uniform {
                    min: SimDuration::ZERO,
                    max: SimDuration::from_millis(rng.gen_range(1u64..30)),
                })
                .with_reorder(rng.gen());
        }
        let link = LinkConfig::wan().with_impairment(impair.clone());
        let (received, closed) = run_transfer(payload.clone(), vec![], link, TcpConfig::default());
        assert_eq!(received, payload, "case {case} impair {impair:?}");
        assert!(closed, "case {case} impair {impair:?}");
    }
}

#[test]
fn determinism() {
    let mut rng = SmallRng::seed_from_u64(0x0007_C905);
    for case in 0..48 {
        let payload = random_bytes(&mut rng, 0, 5_000);
        let a = run_transfer(
            payload.clone(),
            vec![],
            LinkConfig::wan(),
            TcpConfig::default(),
        );
        let b = run_transfer(payload, vec![], LinkConfig::wan(), TcpConfig::default());
        assert_eq!(a, b, "case {case}");
    }
}
