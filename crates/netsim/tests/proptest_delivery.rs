//! Property tests for the TCP simulator: reliable in-order delivery must
//! hold for arbitrary payloads, arbitrary link parameters, deterministic
//! loss patterns, and arbitrary application write chunkings.

use netsim::sim::{App, AppEvent, Ctx};
use netsim::{LinkConfig, SimDuration, Simulator, SockAddr, TcpConfig};
use proptest::prelude::*;

/// Sends `payload` in the given chunk sizes, then half-closes.
struct ChunkSender {
    server: SockAddr,
    payload: Vec<u8>,
    chunks: Vec<usize>,
    offset: usize,
    chunk_idx: usize,
}

impl ChunkSender {
    fn pump(&mut self, ctx: &mut Ctx<'_>, s: netsim::SocketId) {
        while self.offset < self.payload.len() {
            let chunk = self
                .chunks
                .get(self.chunk_idx)
                .copied()
                .unwrap_or(1024)
                .max(1)
                .min(self.payload.len() - self.offset);
            let n = ctx.send(s, &self.payload[self.offset..self.offset + chunk]);
            if n == 0 {
                return;
            }
            self.offset += n;
            self.chunk_idx += 1;
        }
        ctx.shutdown_write(s);
    }
}

impl App for ChunkSender {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::Start => {
                ctx.connect(self.server);
            }
            AppEvent::Connected(s) | AppEvent::SendSpace(s) => self.pump(ctx, s),
            _ => {}
        }
    }
}

/// Collects everything it reads; half-closes back on FIN.
struct Collector {
    received: Vec<u8>,
    peer_closed: bool,
}

impl App for Collector {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::Start => ctx.listen(80),
            AppEvent::Readable(s) => {
                let data = ctx.recv(s, usize::MAX);
                self.received.extend_from_slice(&data);
            }
            AppEvent::PeerFin(s) => {
                self.peer_closed = true;
                // Drain anything still buffered, then close.
                let data = ctx.recv(s, usize::MAX);
                self.received.extend_from_slice(&data);
                ctx.shutdown_write(s);
            }
            _ => {}
        }
    }
}

fn run_transfer(
    payload: Vec<u8>,
    chunks: Vec<usize>,
    link: LinkConfig,
    tcp: TcpConfig,
) -> (Vec<u8>, bool) {
    let mut sim = Simulator::new();
    let client = sim.add_host("client");
    let server = sim.add_host("server");
    sim.set_tcp_config(client, tcp.clone());
    sim.set_tcp_config(server, tcp);
    sim.add_link(client, server, link);
    sim.install_app(
        server,
        Box::new(Collector {
            received: Vec::new(),
            peer_closed: false,
        }),
    );
    sim.install_app(
        client,
        Box::new(ChunkSender {
            server: SockAddr::new(server, 80),
            payload,
            chunks,
            offset: 0,
            chunk_idx: 0,
        }),
    );
    sim.run_until_idle();
    let collector = sim.app_mut::<Collector>(server).unwrap();
    (collector.received.clone(), collector.peer_closed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reliable_delivery_arbitrary_payload(
        payload in proptest::collection::vec(any::<u8>(), 0..40_000),
        chunks in proptest::collection::vec(1usize..4096, 0..40),
        nodelay in any::<bool>(),
    ) {
        let mut tcp = TcpConfig::default();
        tcp.nodelay = nodelay;
        let (received, closed) = run_transfer(payload.clone(), chunks, LinkConfig::lan(), tcp);
        prop_assert_eq!(received, payload);
        prop_assert!(closed);
    }

    #[test]
    fn reliable_delivery_under_loss(
        payload in proptest::collection::vec(any::<u8>(), 1..20_000),
        drop_every in 2u64..40,
    ) {
        let link = LinkConfig::lan().with_drop_every(drop_every);
        let (received, closed) =
            run_transfer(payload.clone(), vec![], link, TcpConfig::default());
        prop_assert_eq!(received, payload);
        prop_assert!(closed);
    }

    #[test]
    fn reliable_delivery_any_link_speed(
        payload in proptest::collection::vec(any::<u8>(), 1..8_000),
        kbps in 16u64..10_000,
        delay_ms in 0u64..300,
    ) {
        let link = LinkConfig {
            bits_per_sec: Some(kbps * 1000),
            propagation: SimDuration::from_millis(delay_ms),
            drop_every: None,
        };
        let (received, _) = run_transfer(payload.clone(), vec![], link, TcpConfig::default());
        prop_assert_eq!(received, payload);
    }

    #[test]
    fn reliable_delivery_small_windows(
        payload in proptest::collection::vec(any::<u8>(), 1..10_000),
        window_kb in 2usize..32,
        mss in prop_oneof![Just(536usize), Just(1460usize)],
    ) {
        let mut tcp = TcpConfig::default();
        tcp.recv_window = window_kb * 1024;
        tcp.send_buffer = window_kb * 1024;
        tcp.mss = mss;
        let (received, _) = run_transfer(payload.clone(), vec![], LinkConfig::lan(), tcp);
        prop_assert_eq!(received, payload);
    }

    #[test]
    fn determinism(payload in proptest::collection::vec(any::<u8>(), 0..5_000)) {
        let a = run_transfer(payload.clone(), vec![], LinkConfig::wan(), TcpConfig::default());
        let b = run_transfer(payload, vec![], LinkConfig::wan(), TcpConfig::default());
        prop_assert_eq!(a, b);
    }
}
