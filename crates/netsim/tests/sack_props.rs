//! Property-style tests for SACK block generation and wire encoding,
//! driven by a deterministic seeded PRNG (the build environment has no
//! crates.io access, so `proptest` is unavailable).
//!
//! Invariants checked for arbitrary out-of-order span sets:
//! * [`netsim::cc::merged_spans`] yields disjoint, strictly ascending
//!   ranges that cover exactly the input octets above `rcv_nxt`;
//! * [`netsim::cc::wire_sack_blocks`] equals the first four merged
//!   spans (the option-space cap) and never exceeds four blocks;
//! * [`SackBlocks::encode`]/[`SackBlocks::decode`] round-trip, and the
//!   encoded length matches [`SackBlocks::wire_bytes`].

use netsim::cc::{merged_spans, wire_sack_blocks};
use netsim::SackBlocks;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Random receiver state: a `rcv_nxt` and up to `max_spans` out-of-order
/// spans sorted by start, exactly as the receiver's `BTreeMap` iteration
/// yields them. Octet values stay small so exhaustive coverage checks
/// stay cheap and far from sequence wrap.
fn random_spans(rng: &mut SmallRng, max_spans: usize) -> (Vec<(u64, u64)>, u64) {
    let rcv_nxt = rng.gen_range(0..500u64);
    let n = rng.gen_range(0..=max_spans);
    let mut spans: Vec<(u64, u64)> = (0..n)
        .map(|_| {
            let start = rng.gen_range(0..2_000u64);
            let len = rng.gen_range(0..60u64);
            (start, start + len)
        })
        .collect();
    spans.sort();
    (spans, rcv_nxt)
}

/// Every octet of `spans` above `rcv_nxt`, as an explicit set.
fn octets_above(spans: &[(u64, u64)], rcv_nxt: u64) -> BTreeSet<u64> {
    spans
        .iter()
        .flat_map(|&(s, e)| s..e)
        .filter(|&o| o >= rcv_nxt)
        .collect()
}

#[test]
fn merged_spans_disjoint_ordered_exact_cover() {
    let mut rng = SmallRng::seed_from_u64(0x5ac1);
    for _ in 0..2_000 {
        let (spans, rcv_nxt) = random_spans(&mut rng, 12);
        let merged = merged_spans(spans.iter().copied(), rcv_nxt);

        // Non-empty, strictly ascending, disjoint (no touching ranges
        // survive the merge).
        for &(s, e) in &merged {
            assert!(s < e, "empty merged span ({s}, {e})");
        }
        for w in merged.windows(2) {
            assert!(
                w[0].1 < w[1].0,
                "spans {:?} and {:?} overlap or touch unmerged",
                w[0],
                w[1]
            );
        }

        // Exact cover: the merged octet set equals the input octet set
        // above rcv_nxt — except octets of a span straddling rcv_nxt,
        // which the generator keeps whole (the cumulative ACK trims
        // them on the wire, not here).
        let covered: BTreeSet<u64> = merged.iter().flat_map(|&(s, e)| s..e).collect();
        let expected = octets_above(&spans, rcv_nxt);
        assert!(
            covered.is_superset(&expected),
            "merged spans lost octets: spans {spans:?} rcv_nxt {rcv_nxt}"
        );
        let input_all: BTreeSet<u64> = spans.iter().flat_map(|&(s, e)| s..e).collect();
        assert!(
            covered.is_subset(&input_all),
            "merged spans invented octets: spans {spans:?} rcv_nxt {rcv_nxt}"
        );
        // Every surviving span must carry at least one octet above
        // rcv_nxt (fully-acknowledged spans are dropped).
        for &(s, e) in &merged {
            assert!(
                (s..e).any(|o| o >= rcv_nxt),
                "span ({s}, {e}) is entirely at or below rcv_nxt {rcv_nxt}"
            );
        }
    }
}

#[test]
fn wire_blocks_are_first_four_merged_spans() {
    let mut rng = SmallRng::seed_from_u64(0x5ac2);
    let mut saw_capped = false;
    for _ in 0..2_000 {
        let (spans, rcv_nxt) = random_spans(&mut rng, 12);
        let merged = merged_spans(spans.iter().copied(), rcv_nxt);
        let wire = wire_sack_blocks(spans.iter().copied(), rcv_nxt);

        assert!(wire.len() <= 4);
        let expect: Vec<(u64, u64)> = merged.iter().copied().take(4).collect();
        let got: Vec<(u64, u64)> = wire.iter().collect();
        assert_eq!(
            got, expect,
            "wire option disagrees with merged spans: spans {spans:?} rcv_nxt {rcv_nxt}"
        );
        saw_capped |= merged.len() > 4;
    }
    assert!(
        saw_capped,
        "generator never produced more than four merged spans; cap untested"
    );
}

#[test]
fn wire_roundtrip_and_length() {
    let mut rng = SmallRng::seed_from_u64(0x5ac3);
    for _ in 0..2_000 {
        let (spans, rcv_nxt) = random_spans(&mut rng, 12);
        let wire = wire_sack_blocks(spans.iter().copied(), rcv_nxt);

        let mut bytes = Vec::new();
        wire.encode(&mut bytes);
        assert_eq!(
            bytes.len(),
            wire.wire_bytes(),
            "encoded length disagrees with wire_bytes()"
        );
        if !wire.is_empty() {
            // 4-byte option alignment (NOP padding).
            assert_eq!(bytes.len() % 4, 0);
        }
        let decoded = SackBlocks::decode(&bytes).expect("own encoding must parse");
        assert_eq!(decoded, wire, "encode/decode round trip");
    }
}

#[test]
fn decode_rejects_malformed() {
    // Truncated, wrong kind, non-block length: all rejected, while the
    // empty option stays accepted.
    assert_eq!(SackBlocks::decode(&[]), Some(SackBlocks::NONE));
    assert_eq!(SackBlocks::decode(&[SackBlocks::KIND]), None);
    assert_eq!(SackBlocks::decode(&[0x02, 18]), None);
    let mut good = Vec::new();
    let mut one = SackBlocks::NONE;
    one.push(10, 20);
    one.encode(&mut good);
    assert_eq!(SackBlocks::decode(&good), Some(one));
    // Length byte claiming more than the buffer holds.
    let mut short = good.clone();
    short.truncate(10);
    assert_eq!(SackBlocks::decode(&short), None);
    // Length not of the form 2 + 16·n.
    let mut crooked = good.clone();
    crooked[1] = 17;
    assert_eq!(SackBlocks::decode(&crooked), None);
}
