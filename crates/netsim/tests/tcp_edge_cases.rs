//! Edge-case tests for the TCP machine: zero-window persistence, duplicate
//! SYNs, TIME_WAIT accounting, window updates after reads, and abortive
//! closes — the corners a long-lived simulator must get right.

use bytes::Bytes;
use netsim::sim::{App, AppEvent, Ctx};
use netsim::tcp::{Effects, SockNotify, State, Tcb, TcpConfig, TimerKind};
use netsim::{
    HostId, LinkConfig, SackBlocks, Segment, SimDuration, SimTime, Simulator, SockAddr, SocketId,
    TcpFlags,
};

const CLIENT: SockAddr = SockAddr::new(HostId(0), 40_000);
const SERVER: SockAddr = SockAddr::new(HostId(1), 80);

fn fx() -> Effects {
    Effects::default()
}

fn handshake(client_cfg: TcpConfig, server_cfg: TcpConfig) -> (Tcb, Tcb) {
    let now = SimTime::ZERO;
    let mut cfx = fx();
    let mut client = Tcb::open_active(CLIENT, SERVER, client_cfg, now, &mut cfx);
    let syn = cfx.segments.pop().unwrap();
    let mut sfx = fx();
    let mut server = Tcb::open_passive(SERVER, CLIENT, server_cfg, &syn, now, &mut sfx);
    let synack = sfx.segments.pop().unwrap();
    let mut cfx = fx();
    client.on_segment(now, &synack, &mut cfx);
    let ack = cfx.segments.pop().unwrap();
    let mut sfx = fx();
    server.on_segment(now, &ack, &mut sfx);
    assert_eq!(client.state, State::Established);
    assert_eq!(server.state, State::Established);
    (client, server)
}

#[test]
fn zero_window_stalls_then_persist_probe_resumes() {
    // A receiver that never reads: its advertised window shrinks to zero
    // and the sender must stop, then probe.
    let recv_cfg = TcpConfig {
        recv_window: 4096, // tiny receive buffer
        ..TcpConfig::default()
    };
    let (mut c, mut s) = handshake(TcpConfig::default(), recv_cfg);
    let now = SimTime::ZERO;

    // Client floods 16 KB; server never reads.
    let mut e = fx();
    c.app_send(now, &vec![9u8; 16_384], &mut e);
    let mut outgoing: Vec<Segment> = e.segments.drain(..).collect();
    let mut acks: Vec<Segment> = Vec::new();
    for _ in 0..20 {
        let mut sfx = fx();
        for seg in outgoing.drain(..) {
            s.on_segment(now, &seg, &mut sfx);
        }
        acks.append(&mut sfx.segments);
        let mut cfx = fx();
        for ack in acks.drain(..) {
            c.on_segment(now, &ack, &mut cfx);
        }
        outgoing.append(&mut cfx.segments);
        if outgoing.is_empty() {
            break;
        }
    }
    // The server buffered at most its receive window.
    assert!(s.readable_bytes() <= 4096);
    assert!(
        c.unacked_bytes() > 0 || s.readable_bytes() == 4096,
        "sender must be window-blocked"
    );

    // Server app finally reads everything: its window update lets the
    // sender resume (possibly via the persist path).
    let mut sfx = fx();
    let drained = s.app_recv(usize::MAX, &mut sfx);
    assert!(!drained.is_empty());
    assert!(
        !sfx.segments.is_empty(),
        "reading after a closed window must emit a window update"
    );
}

#[test]
fn duplicate_syn_retransmits_synack() {
    let now = SimTime::ZERO;
    let mut cfx = fx();
    let mut _client = Tcb::open_active(CLIENT, SERVER, TcpConfig::default(), now, &mut cfx);
    let syn = cfx.segments.pop().unwrap();
    let mut sfx = fx();
    let mut server = Tcb::open_passive(SERVER, CLIENT, TcpConfig::default(), &syn, now, &mut sfx);
    let first_synack = sfx.segments.pop().unwrap();

    // The SYN is retransmitted (client's RTO fired, say).
    let mut sfx = fx();
    server.on_segment(now, &syn, &mut sfx);
    let second_synack = sfx.segments.pop().expect("dup SYN re-answered");
    assert!(second_synack.flags.syn && second_synack.flags.ack);
    assert_eq!(second_synack.seq, first_synack.seq);
}

#[test]
fn time_wait_expires_and_closes_socket() {
    let (mut c, mut s) = handshake(TcpConfig::default(), TcpConfig::default());
    let now = SimTime::ZERO;
    // Full graceful close initiated by the client.
    let mut e = fx();
    c.app_shutdown_write(now, &mut e);
    let fin1 = e.segments.pop().unwrap();
    let mut sfx = fx();
    s.on_segment(now, &fin1, &mut sfx);
    let ack1 = sfx.segments.pop().unwrap();
    let mut e = fx();
    c.on_segment(now, &ack1, &mut e);
    let mut sfx = fx();
    s.app_shutdown_write(now, &mut sfx);
    let fin2 = sfx.segments.pop().unwrap();
    let mut e = fx();
    c.on_segment(now, &fin2, &mut e);
    assert_eq!(c.state, State::TimeWait);
    let (kind, at, epoch) = *e
        .timers
        .iter()
        .find(|(k, _, _)| *k == TimerKind::TimeWait)
        .expect("time-wait timer armed");
    // A retransmitted FIN during TIME_WAIT is re-acked.
    let mut e2 = fx();
    c.on_segment(now, &fin2, &mut e2);
    assert_eq!(e2.segments.len(), 1);
    assert!(e2.segments[0].flags.ack);
    // Expiry closes the socket.
    let mut e3 = fx();
    c.on_timer(at, kind, epoch, &mut e3);
    assert_eq!(c.state, State::Closed);
    assert!(e3.notifications.contains(&SockNotify::Closed));
}

#[test]
fn abort_sends_rst_and_peer_discards() {
    let (mut c, mut s) = handshake(TcpConfig::default(), TcpConfig::default());
    let now = SimTime::ZERO;
    let mut sfx = fx();
    s.app_send(now, b"already received but unread", &mut sfx);
    let data = sfx.segments.pop().unwrap();
    let mut cfx = fx();
    c.on_segment(now, &data, &mut cfx);
    assert!(c.readable_bytes() > 0);

    let mut cfx = fx();
    c.app_abort(&mut cfx);
    let rst = cfx.segments.pop().unwrap();
    assert!(rst.flags.rst);
    assert_eq!(c.state, State::Closed);

    let mut sfx = fx();
    s.on_segment(now, &rst, &mut sfx);
    assert!(s.was_reset);
    assert!(sfx.notifications.contains(&SockNotify::Reset));
}

#[test]
fn stale_timer_epochs_are_ignored() {
    let (mut c, _s) = handshake(TcpConfig::default(), TcpConfig::default());
    let now = SimTime::ZERO;
    let mut e = fx();
    c.app_send(now, b"payload", &mut e);
    let (kind, at, epoch) = *e
        .timers
        .iter()
        .find(|(k, _, _)| *k == TimerKind::Rto)
        .unwrap();
    // Ack everything; the RTO should be lazily cancelled.
    let ack = Segment {
        src: SERVER,
        dst: CLIENT,
        seq: 1,
        ack: 8,
        flags: TcpFlags::ACK,
        window: 65_535,
        sack: SackBlocks::NONE,
        payload: Bytes::new(),
    };
    let mut e2 = fx();
    c.on_segment(now, &ack, &mut e2);
    let mut e3 = fx();
    c.on_timer(at, kind, epoch, &mut e3);
    assert!(
        e3.segments.is_empty(),
        "stale RTO must not retransmit after the data was acked"
    );
    assert_eq!(c.segments_retransmitted, 0);
}

/// Both ends close at once: the crossing FINs take each side through
/// CLOSING into TIME_WAIT — neither sees the other's ACK first.
#[test]
fn simultaneous_close_passes_through_closing() {
    let (mut c, mut s) = handshake(TcpConfig::default(), TcpConfig::default());
    let now = SimTime::ZERO;
    let mut cfx = fx();
    c.app_shutdown_write(now, &mut cfx);
    let fin_c = cfx.segments.pop().unwrap();
    let mut sfx = fx();
    s.app_shutdown_write(now, &mut sfx);
    let fin_s = sfx.segments.pop().unwrap();
    assert!(fin_c.flags.fin && fin_s.flags.fin);
    assert_eq!(c.state, State::FinWait1);
    assert_eq!(s.state, State::FinWait1);

    // The FINs cross in flight: each side sees the peer's FIN before any
    // ACK of its own.
    let mut cfx = fx();
    c.on_segment(now, &fin_s, &mut cfx);
    assert_eq!(c.state, State::Closing);
    let ack_c = cfx.segments.pop().expect("peer FIN is acked");
    let mut sfx = fx();
    s.on_segment(now, &fin_c, &mut sfx);
    assert_eq!(s.state, State::Closing);
    let ack_s = sfx.segments.pop().expect("peer FIN is acked");

    // The crossing ACKs complete both closes into TIME_WAIT.
    let mut cfx = fx();
    c.on_segment(now, &ack_s, &mut cfx);
    assert_eq!(c.state, State::TimeWait);
    let mut sfx = fx();
    s.on_segment(now, &ack_c, &mut sfx);
    assert_eq!(s.state, State::TimeWait);
}

/// After a zero-window stall, the receiver's window update must actually
/// restart transmission, and the rest of the stream must arrive.
#[test]
fn window_update_reopens_zero_window_and_sender_resumes() {
    let recv_cfg = TcpConfig {
        recv_window: 4096,
        ..TcpConfig::default()
    };
    let (mut c, mut s) = handshake(TcpConfig::default(), recv_cfg);
    let now = SimTime::ZERO;
    let total = 8192usize;

    let mut e = fx();
    c.app_send(now, &vec![5u8; total], &mut e);
    let mut outgoing: Vec<Segment> = e.segments.drain(..).collect();
    for _ in 0..20 {
        let mut sfx = fx();
        for seg in outgoing.drain(..) {
            s.on_segment(now, &seg, &mut sfx);
        }
        let mut cfx = fx();
        for ack in sfx.segments.drain(..) {
            c.on_segment(now, &ack, &mut cfx);
        }
        outgoing = cfx.segments.drain(..).collect();
        if outgoing.is_empty() {
            break;
        }
    }
    assert_eq!(s.readable_bytes(), 4096, "receiver buffer filled exactly");

    // The application drains the buffer; the resulting window update must
    // make the blocked sender transmit the remainder.
    let mut sfx = fx();
    let drained = s.app_recv(usize::MAX, &mut sfx);
    assert_eq!(drained.len(), 4096);
    let update = sfx.segments.pop().expect("window update emitted");
    assert!(!update.has_payload());
    assert!(
        update.window >= 4096,
        "window reopened, got {}",
        update.window
    );

    let mut cfx = fx();
    c.on_segment(now, &update, &mut cfx);
    assert!(
        cfx.segments.iter().any(|g| g.has_payload()),
        "sender must resume after the window update"
    );
    let mut delivered = drained.len();
    let mut outgoing: Vec<Segment> = cfx.segments.drain(..).collect();
    for _ in 0..20 {
        let mut sfx = fx();
        for seg in outgoing.drain(..) {
            s.on_segment(now, &seg, &mut sfx);
        }
        let mut rfx = fx();
        delivered += s.app_recv(usize::MAX, &mut rfx).len();
        let mut cfx = fx();
        for ack in sfx.segments.drain(..).chain(rfx.segments.drain(..)) {
            c.on_segment(now, &ack, &mut cfx);
        }
        outgoing = cfx.segments.drain(..).collect();
        if outgoing.is_empty() {
            break;
        }
    }
    assert_eq!(delivered, total, "entire stream arrives after the reopen");
}

/// A RST answering our SYN (closed port, admission-control abort) must kill
/// the attempt in SYN-SENT: no reply, no retransmissions, a Reset
/// notification to the application.
#[test]
fn rst_in_syn_sent_aborts_the_attempt() {
    let now = SimTime::ZERO;
    let mut cfx = fx();
    let mut client = Tcb::open_active(CLIENT, SERVER, TcpConfig::default(), now, &mut cfx);
    let syn = cfx.segments.pop().unwrap();
    assert_eq!(client.state, State::SynSent);
    let (kind, at, epoch) = *cfx
        .timers
        .iter()
        .find(|(k, _, _)| *k == TimerKind::Rto)
        .expect("SYN retransmission timer armed");

    let rst = Segment::rst(SERVER, CLIENT, syn.seq + 1);
    let mut cfx = fx();
    client.on_segment(now, &rst, &mut cfx);
    assert_eq!(client.state, State::Closed);
    assert!(client.was_reset);
    assert!(cfx.notifications.contains(&SockNotify::Reset));
    assert!(cfx.segments.is_empty(), "an RST draws no reply");

    // The already-armed SYN RTO is stale and must stay silent.
    let mut cfx = fx();
    client.on_timer(at, kind, epoch, &mut cfx);
    assert!(cfx.segments.is_empty(), "no SYN retransmit after the reset");
}

/// End-to-end: sockets_used and max_simultaneous reflect reality for a
/// burst of short connections.
struct Burst {
    server: SockAddr,
    remaining: u32,
    active: u32,
}

impl App for Burst {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::Start => {
                for _ in 0..4u32.min(self.remaining) {
                    ctx.connect(self.server);
                    self.remaining -= 1;
                    self.active += 1;
                }
            }
            AppEvent::Connected(s) => {
                ctx.send(s, b"x");
                ctx.shutdown_write(s);
            }
            AppEvent::PeerFin(_) => {}
            AppEvent::Closed(_) => {
                self.active -= 1;
                if self.remaining > 0 {
                    ctx.connect(self.server);
                    self.remaining -= 1;
                    self.active += 1;
                }
            }
            _ => {}
        }
    }
}

struct OneByteEcho;

impl App for OneByteEcho {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::Start => ctx.listen(80),
            AppEvent::Readable(s) => {
                let _ = ctx.recv(s, usize::MAX);
            }
            AppEvent::PeerFin(s) => ctx.shutdown_write(s),
            _ => {}
        }
    }
}

/// Opens connections strictly one after another, starting the next as soon
/// as the server's FIN arrives — so finished sockets still sit in
/// TIME_WAIT (with live demux claims on their ports) while new ones open.
struct Serial {
    server: SockAddr,
    remaining: u32,
    completed: u32,
}

impl App for Serial {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::Start => {
                ctx.connect(self.server);
                self.remaining -= 1;
            }
            AppEvent::Connected(s) => {
                ctx.send(s, b"x");
                ctx.shutdown_write(s);
            }
            AppEvent::PeerFin(_) if self.remaining > 0 => {
                ctx.connect(self.server);
                self.remaining -= 1;
            }
            AppEvent::Closed(_) => self.completed += 1,
            _ => {}
        }
    }
}

/// Regression for fleet-scale port allocation: >4k sequential connections
/// from one host must all establish and close cleanly, with the allocator
/// skipping ports still held by TIME_WAIT sockets instead of colliding or
/// exhausting.
#[test]
fn four_thousand_sequential_connections_allocate_cleanly() {
    const CONNS: u32 = 4200;
    let mut sim = Simulator::new();
    let c = sim.add_host("client");
    let s = sim.add_host("server");
    let cfg = TcpConfig {
        time_wait: SimDuration::from_millis(50),
        ..TcpConfig::default()
    };
    sim.set_tcp_config(c, cfg.clone());
    sim.set_tcp_config(s, cfg);
    sim.add_link(c, s, LinkConfig::lan());
    sim.install_app(s, Box::new(OneByteEcho));
    sim.install_app(
        c,
        Box::new(Serial {
            server: SockAddr::new(s, 80),
            remaining: CONNS,
            completed: 0,
        }),
    );
    sim.run_until_idle();
    assert_eq!(sim.app_mut::<Serial>(c).unwrap().completed, CONNS);
    let stats = sim.socket_stats(c);
    assert_eq!(stats.sockets_used as u32, CONNS);
    assert_eq!(sim.socket_stats(s).sockets_used as u32, CONNS);
}

#[test]
fn socket_accounting_over_connection_burst() {
    let mut sim = Simulator::new();
    let c = sim.add_host("client");
    let s = sim.add_host("server");
    // Short TIME_WAIT so sockets actually close during the run.
    let cfg = TcpConfig {
        time_wait: SimDuration::from_millis(50),
        ..TcpConfig::default()
    };
    sim.set_tcp_config(c, cfg.clone());
    sim.set_tcp_config(s, cfg);
    sim.add_link(c, s, LinkConfig::lan());
    sim.install_app(s, Box::new(OneByteEcho));
    sim.install_app(
        c,
        Box::new(Burst {
            server: SockAddr::new(s, 80),
            remaining: 12,
            active: 0,
        }),
    );
    sim.run_until_idle();
    let stats = sim.socket_stats(c);
    assert_eq!(stats.sockets_used, 12, "every connection counted");
    assert!(
        stats.max_simultaneous <= 6,
        "at most 4 active plus closing stragglers, got {}",
        stats.max_simultaneous
    );
    let _ = SocketId { host: c, slot: 0 };
}
