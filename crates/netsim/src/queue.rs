//! The kernel's event queue: a hierarchical timer wheel with an exact
//! `(time, push-order)` contract, plus the original binary heap kept as
//! a reference implementation for differential testing.
//!
//! # Ordering contract
//!
//! Both variants of [`EventQueue`] pop events in strictly increasing
//! `(at, seq)` order, where `seq` is the push sequence number the queue
//! assigns internally: earlier deadlines first, FIFO among events with
//! the same deadline. This is exactly the order the simulator's former
//! `BinaryHeap<Reverse<QueuedEvent>>` produced, so swapping the wheel in
//! changes *how* events are stored, never the order the kernel sees —
//! every digest-gated artifact stays bit-identical.
//!
//! # Wheel shape
//!
//! Eleven levels of 64 slots each (6 bits per level) cover the full
//! `u64` nanosecond range with no overflow list:
//!
//! * level 0: 64 slots × 1 ns — one slot per nanosecond,
//! * level 1: 64 slots × 64 ns,
//! * level k: 64 slots × 64ᵏ ns.
//!
//! An event is filed at the level of the highest bit in which its
//! deadline differs from the wheel's current time (`elapsed`): far
//! deadlines sit high, near deadlines sit low. As `elapsed` advances to
//! a higher-level slot's start, that slot *cascades*: its events are
//! re-filed relative to the new `elapsed`, landing at strictly lower
//! levels, until the next event is resolved to a level-0 slot. A level-0
//! slot spans exactly one nanosecond, so every event in it shares one
//! deadline and slot FIFO order *is* `seq` order (pushes only ever
//! append, and later pushes carry larger `seq`).
//!
//! Two invariants make the bottom-up slot scan exact (proved by the
//! placement rule, relied on by `resolve`):
//!
//! * occupied slots never sit behind a level's cursor — a deadline in
//!   the past of `elapsed` is never *placed* in the wheel (see below);
//! * at levels ≥ 1 the cursor slot itself is empty, so the first
//!   occupied slot of the lowest non-empty level is the global minimum.
//!
//! # Deadlines behind the wheel
//!
//! `elapsed` only advances toward the next stored event (slot starts
//! during a cascade, the popped deadline on a pop), never past it. A
//! *later* push can still carry an earlier deadline — e.g. a test
//! driving the kernel directly after a bounded `run_until` whose scan
//! cascaded ahead of `Kernel::now`. Rather than clamp (which would
//! reorder ties), such events go to a tiny side heap ordered by
//! `(at, seq)`, and every pop compares the side heap's head with the
//! wheel's. The side heap is empty in steady state — the kernel pushes
//! at or after the event being processed — so the hot path pays one
//! `is_empty` check.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

const BITS: u32 = 6;
const SLOTS: usize = 1 << BITS; // 64
const LEVELS: usize = 11; // 11 × 6 bits ≥ 64 bits of nanoseconds
const SLOT_MASK: u64 = (SLOTS as u64) - 1;

/// One stored event: deadline, push sequence, payload.
struct Entry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

/// A queue of `(deadline, payload)` events popped in `(at, seq)` order.
///
/// [`EventQueue::wheel`] is the production hierarchical timer wheel;
/// [`EventQueue::heap`] is the original binary-heap implementation, kept
/// as the ordering oracle for differential tests.
pub enum EventQueue<T> {
    /// Hierarchical timer wheel (production).
    Wheel(Wheel<T>),
    /// Binary-heap reference (differential testing).
    Heap(RefHeap<T>),
}

impl<T> EventQueue<T> {
    /// The production timer wheel.
    pub fn wheel() -> Self {
        EventQueue::Wheel(Wheel::new())
    }

    /// The reference binary heap.
    pub fn heap() -> Self {
        EventQueue::Heap(RefHeap::new())
    }

    /// Schedule `item` at `at`. Events with equal `at` pop in push order.
    #[inline]
    pub fn push(&mut self, at: SimTime, item: T) {
        match self {
            EventQueue::Wheel(w) => w.push(at, item),
            EventQueue::Heap(h) => h.push(at, item),
        }
    }

    /// Pop the earliest event, or `None` if empty.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.pop_before(SimTime::MAX)
    }

    /// Pop the earliest event only if its deadline is `<= deadline`.
    #[inline]
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, T)> {
        match self {
            EventQueue::Wheel(w) => w.pop_before(deadline),
            EventQueue::Heap(h) => h.pop_before(deadline),
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        match self {
            EventQueue::Wheel(w) => w.len,
            EventQueue::Heap(h) => h.heap.len(),
        }
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------
// Reference implementation: the original binary heap
// ---------------------------------------------------------------------

/// The simulator's original event queue: a `BinaryHeap` of
/// `Reverse<(at, seq, item)>` compared on `(at, seq)` only.
pub struct RefHeap<T> {
    heap: BinaryHeap<Reverse<HeapEntry<T>>>,
    next_seq: u64,
}

struct HeapEntry<T>(Entry<T>);

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0.at, self.0.seq).cmp(&(other.0.at, other.0.seq))
    }
}

impl<T> RefHeap<T> {
    fn new() -> Self {
        RefHeap {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    fn push(&mut self, at: SimTime, item: T) {
        self.next_seq += 1;
        self.heap.push(Reverse(HeapEntry(Entry {
            at,
            seq: self.next_seq,
            item,
        })));
    }

    fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, T)> {
        if self.heap.peek()?.0 .0.at > deadline {
            return None;
        }
        let Reverse(HeapEntry(e)) = self.heap.pop().expect("peeked entry");
        Some((e.at, e.item))
    }
}

// ---------------------------------------------------------------------
// Production implementation: the hierarchical timer wheel
// ---------------------------------------------------------------------

/// Hierarchical timer wheel. See the module docs for the shape and the
/// ordering argument.
pub struct Wheel<T> {
    /// Current wheel time, in nanoseconds. Advances monotonically, and
    /// never past the earliest stored event.
    elapsed: u64,
    /// `slots[level][slot]`: FIFO of entries filed there.
    slots: Vec<Vec<VecDeque<Entry<T>>>>,
    /// Per-level occupancy bitmaps (bit `s` set ⇔ `slots[level][s]`
    /// non-empty).
    occupied: [u64; LEVELS],
    /// Events pushed with deadlines behind `elapsed` (rare; see module
    /// docs). Ordered by `(at, seq)` like everything else.
    past: BinaryHeap<Reverse<HeapEntry<T>>>,
    next_seq: u64,
    len: usize,
    /// Scratch for cascades: spare deques with retained capacity, so a
    /// steady-state wheel allocates nothing.
    spare: Vec<VecDeque<Entry<T>>>,
}

impl<T> Wheel<T> {
    fn new() -> Self {
        Wheel {
            elapsed: 0,
            slots: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| VecDeque::new()).collect())
                .collect(),
            occupied: [0; LEVELS],
            past: BinaryHeap::new(),
            next_seq: 0,
            len: 0,
            spare: Vec::new(),
        }
    }

    /// The level an event at `at` files under, relative to `elapsed`:
    /// the level of the highest differing bit.
    #[inline]
    fn level_for(elapsed: u64, at: u64) -> usize {
        let masked = at ^ elapsed;
        debug_assert!(masked != 0, "same-nanosecond events are level 0");
        ((63 - masked.leading_zeros()) / BITS) as usize
    }

    #[inline]
    fn push(&mut self, at: SimTime, item: T) {
        self.next_seq += 1;
        let e = Entry {
            at,
            seq: self.next_seq,
            item,
        };
        self.len += 1;
        if at.as_nanos() < self.elapsed {
            self.past.push(Reverse(HeapEntry(e)));
            return;
        }
        self.file(e);
    }

    /// File an entry at its level/slot relative to `elapsed`.
    /// Precondition: `at >= elapsed`.
    #[inline]
    fn file(&mut self, e: Entry<T>) {
        let at = e.at.as_nanos();
        debug_assert!(at >= self.elapsed);
        let (level, slot) = if at == self.elapsed {
            (0, (at & SLOT_MASK) as usize)
        } else {
            let level = Self::level_for(self.elapsed, at);
            (level, ((at >> (BITS * level as u32)) & SLOT_MASK) as usize)
        };
        self.slots[level][slot].push_back(e);
        self.occupied[level] |= 1 << slot;
    }

    /// Resolve the earliest stored wheel event down to its level-0 slot,
    /// cascading higher-level slots as `elapsed` reaches them. Returns
    /// the slot index, or `None` when the wheel holds no events. Does
    /// not consider `past`.
    fn resolve(&mut self) -> Option<usize> {
        loop {
            let level = (0..LEVELS).find(|&l| self.occupied[l] != 0)?;
            let cursor = ((self.elapsed >> (BITS * level as u32)) & SLOT_MASK) as u32;
            let ahead = self.occupied[level] & (!0u64 << cursor);
            debug_assert!(
                ahead != 0,
                "occupied slot behind the level-{level} cursor (cursor {cursor}, bitmap {:#x})",
                self.occupied[level]
            );
            let slot = ahead.trailing_zeros() as usize;
            if level == 0 {
                // All entries in a level-0 slot share one nanosecond.
                return Some(slot);
            }
            // Cascade: advance to the slot's start and re-file its
            // entries relative to the new `elapsed`. Every entry lands
            // at a strictly lower level, and FIFO re-filing keeps equal
            // deadlines in seq order.
            let shift = BITS * (level as u32 + 1);
            let base = if shift >= 64 {
                0
            } else {
                (self.elapsed >> shift) << shift
            };
            let slot_start = base | ((slot as u64) << (BITS * level as u32));
            debug_assert!(slot_start >= self.elapsed);
            self.elapsed = slot_start;
            self.occupied[level] &= !(1 << slot);
            let mut moved = std::mem::replace(
                &mut self.slots[level][slot],
                self.spare.pop().unwrap_or_default(),
            );
            for e in moved.drain(..) {
                self.file(e);
            }
            self.spare.push(moved);
        }
    }

    fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, T)> {
        let slot = self.resolve();
        // Earliest wheel candidate, as an `(at, seq)` key.
        let wheel_key = slot.map(|s| {
            let head = self.slots[0][s].front().expect("occupied level-0 slot");
            (head.at, head.seq)
        });
        let past_key = self.past.peek().map(|Reverse(HeapEntry(e))| (e.at, e.seq));
        let use_past = match (wheel_key, past_key) {
            (None, None) => return None,
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (Some(w), Some(p)) => p < w,
        };
        let e = if use_past {
            let (at, _) = past_key.expect("past candidate");
            if at > deadline {
                return None;
            }
            let Reverse(HeapEntry(e)) = self.past.pop().expect("peeked past entry");
            e
        } else {
            let s = slot.expect("wheel candidate");
            if self.slots[0][s].front().expect("occupied slot").at > deadline {
                return None;
            }
            let e = self.slots[0][s].pop_front().expect("occupied slot");
            if self.slots[0][s].is_empty() {
                self.occupied[0] &= !(1 << s);
            }
            // Advance to the popped deadline so same-nanosecond pushes
            // made while the caller processes this event file into the
            // same (still-front) slot, behind it in FIFO order.
            self.elapsed = e.at.as_nanos();
            e
        };
        self.len -= 1;
        Some((e.at, e.item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn fifo_at_equal_timestamps() {
        let mut q = EventQueue::wheel();
        for i in 0..10 {
            q.push(t(500), i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((t(500), i)));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn orders_across_levels() {
        let mut q = EventQueue::wheel();
        q.push(t(1_000_000_000), "far");
        q.push(t(3), "near");
        q.push(t(70_000), "mid");
        assert_eq!(q.pop(), Some((t(3), "near")));
        assert_eq!(q.pop(), Some((t(70_000), "mid")));
        assert_eq!(q.pop(), Some((t(1_000_000_000), "far")));
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::wheel();
        q.push(t(100), 1);
        q.push(t(200), 2);
        assert_eq!(q.pop_before(t(150)), Some((t(100), 1)));
        assert_eq!(q.pop_before(t(150)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_before(t(200)), Some((t(200), 2)));
    }

    #[test]
    fn push_behind_elapsed_still_pops_in_heap_order() {
        let mut q = EventQueue::wheel();
        q.push(t(1_000_000), 1);
        // Cascading a failed bounded pop may advance the wheel ahead of
        // the caller's clock.
        assert_eq!(q.pop_before(t(500_000)), None);
        q.push(t(10), 2);
        q.push(t(5), 3);
        assert_eq!(q.pop(), Some((t(5), 3)));
        assert_eq!(q.pop(), Some((t(10), 2)));
        assert_eq!(q.pop(), Some((t(1_000_000), 1)));
    }

    #[test]
    fn push_during_drain_of_same_nanosecond() {
        let mut q = EventQueue::wheel();
        q.push(t(64), 1);
        q.push(t(64), 2);
        assert_eq!(q.pop(), Some((t(64), 1)));
        // Pushed mid-drain at the nanosecond being drained: pops after
        // already-queued peers (it has the larger seq).
        q.push(t(64), 3);
        assert_eq!(q.pop(), Some((t(64), 2)));
        assert_eq!(q.pop(), Some((t(64), 3)));
    }

    #[test]
    fn heap_reference_same_order() {
        let mut w = EventQueue::wheel();
        let mut h = EventQueue::heap();
        let times = [5u64, 5, 900_000_000_000, 64, 65, 64, 0, 1 << 40, 5];
        for (i, &ns) in times.iter().enumerate() {
            w.push(t(ns), i);
            h.push(t(ns), i);
        }
        loop {
            let (a, b) = (w.pop(), h.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn len_tracks_both_stores() {
        let mut q = EventQueue::wheel();
        assert!(q.is_empty());
        q.push(t(1000), 1);
        let _ = q.pop_before(t(10));
        q.push(t(1), 2); // behind elapsed only if the wheel advanced
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
    }
}
