//! pcapng export of simulated captures, plus an in-tree reader for
//! round-trip tests.
//!
//! The paper's evidence was tcpdump captures read in packet analyzers;
//! this module closes that loop for the simulator: a [`Trace`] captured
//! in [`TraceMode::Full`] exports to a pcapng file that Wireshark,
//! tshark and tcptrace open directly, with Ethernet/IPv4/TCP framing
//! synthesized around the simulator's abstract [`Segment`]s.
//!
//! ## Mapping (and its caveats)
//!
//! * **Addresses.** [`HostId`] `n` becomes IPv4 address `10.0.hi.lo`
//!   (`hi = n >> 8`, `lo = n & 0xff`) and MAC `02:00:00:00:hi:lo`; TCP
//!   ports carry over verbatim. The mapping is a bijection, so the
//!   reader recovers host ids exactly.
//! * **Timestamps.** The capture point is the *receiving* NIC: each
//!   packet is stamped with [`TraceRecord::received`] in nanoseconds
//!   (the interface block declares `if_tsresol = 9`). Trace records are
//!   appended in delivery order, so timestamps are already monotone.
//!   One-way delay is therefore visible as gaps between data and ACK
//!   streams, but a Wireshark RTT graph measures sim RTT, not a
//!   sender-side capture's RTT.
//! * **Sequence numbers.** The simulator tracks 64-bit sequence space;
//!   on the wire seq/ack truncate mod 2³². Analyzers handle wrap the
//!   same way they do for real traces.
//! * **Windows.** The simulated window is bytes without scaling; values
//!   above 65535 clamp to 65535 on the wire (no SYN window-scale option
//!   is synthesized).
//! * **SACK.** The simulator models up to four 64-bit SACK ranges per
//!   segment; they re-encode as standard RFC 2018 blocks (two NOPs, then
//!   kind 5 with 32-bit boundaries), so Wireshark dissects them.
//! * **Checksums.** IPv4 and TCP checksums are computed for real —
//!   strict analyzers see a clean capture.

use crate::packet::{HostId, Segment, SockAddr, TcpFlags};
use crate::trace::{Trace, TraceMode, TraceModeError, TraceRecord};

const ETHERTYPE_IPV4: u16 = 0x0800;
const LINKTYPE_ETHERNET: u16 = 1;
const BYTE_ORDER_MAGIC: u32 = 0x1A2B_3C4D;

/// IPv4 address for a simulated host: `10.0.hi.lo`.
pub fn host_ip(host: HostId) -> [u8; 4] {
    [10, 0, (host.0 >> 8) as u8, (host.0 & 0xff) as u8]
}

/// Locally-administered MAC for a simulated host: `02:00:00:00:hi:lo`.
pub fn host_mac(host: HostId) -> [u8; 6] {
    [0x02, 0, 0, 0, (host.0 >> 8) as u8, (host.0 & 0xff) as u8]
}

fn ip_to_host(ip: [u8; 4]) -> Option<HostId> {
    if ip[0] == 10 && ip[1] == 0 {
        Some(HostId(((ip[2] as u16) << 8) | ip[3] as u16))
    } else {
        None
    }
}

/// RFC 1071 ones-complement sum over 16-bit words.
fn checksum(chunks: &[&[u8]]) -> u16 {
    let mut sum: u32 = 0;
    let mut carry: Option<u8> = None;
    for chunk in chunks {
        let mut bytes = chunk.iter().copied();
        if let Some(hi) = carry.take() {
            let lo = bytes.next().unwrap_or(0);
            sum += u32::from(u16::from_be_bytes([hi, lo]));
        }
        while let Some(hi) = bytes.next() {
            match bytes.next() {
                Some(lo) => sum += u32::from(u16::from_be_bytes([hi, lo])),
                None => {
                    carry = Some(hi);
                    break;
                }
            }
        }
    }
    if let Some(hi) = carry {
        sum += u32::from(u16::from_be_bytes([hi, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

fn flags_byte(f: TcpFlags) -> u8 {
    let mut b = 0u8;
    if f.fin {
        b |= 0x01;
    }
    if f.syn {
        b |= 0x02;
    }
    if f.rst {
        b |= 0x04;
    }
    if f.psh {
        b |= 0x08;
    }
    if f.ack {
        b |= 0x10;
    }
    b
}

fn flags_from_byte(b: u8) -> TcpFlags {
    TcpFlags {
        fin: b & 0x01 != 0,
        syn: b & 0x02 != 0,
        rst: b & 0x04 != 0,
        psh: b & 0x08 != 0,
        ack: b & 0x10 != 0,
    }
}

/// Synthesize one Ethernet frame for a segment. `ip_id` is the value for
/// the IPv4 identification field.
fn frame(seg: &Segment, ip_id: u16) -> Vec<u8> {
    // TCP options: SACK re-encoded as RFC 2018 (NOP NOP kind=5 len 8·n+2).
    let mut options = Vec::new();
    let n_blocks = seg.sack.len();
    if n_blocks > 0 {
        options.push(1); // NOP
        options.push(1); // NOP
        options.push(5); // kind: SACK
        options.push(2 + 8 * n_blocks as u8);
        for (start, end) in seg.sack.iter() {
            options.extend_from_slice(&(start as u32).to_be_bytes());
            options.extend_from_slice(&(end as u32).to_be_bytes());
        }
    }
    debug_assert_eq!(options.len() % 4, 0);
    let data_offset_words = 5 + options.len() / 4;

    let mut tcp = Vec::with_capacity(20 + options.len());
    tcp.extend_from_slice(&seg.src.port.to_be_bytes());
    tcp.extend_from_slice(&seg.dst.port.to_be_bytes());
    tcp.extend_from_slice(&(seg.seq as u32).to_be_bytes());
    tcp.extend_from_slice(&(seg.ack as u32).to_be_bytes());
    tcp.push((data_offset_words as u8) << 4);
    tcp.push(flags_byte(seg.flags));
    let window = seg.window.min(0xffff) as u16;
    tcp.extend_from_slice(&window.to_be_bytes());
    tcp.extend_from_slice(&[0, 0]); // checksum placeholder
    tcp.extend_from_slice(&[0, 0]); // urgent pointer
    tcp.extend_from_slice(&options);

    let src_ip = host_ip(seg.src.host);
    let dst_ip = host_ip(seg.dst.host);
    let tcp_len = tcp.len() + seg.payload.len();
    let pseudo = {
        let mut p = [0u8; 12];
        p[..4].copy_from_slice(&src_ip);
        p[4..8].copy_from_slice(&dst_ip);
        p[9] = 6;
        p[10..].copy_from_slice(&(tcp_len as u16).to_be_bytes());
        p
    };
    let tcp_csum = checksum(&[&pseudo, &tcp, &seg.payload]);
    tcp[16..18].copy_from_slice(&tcp_csum.to_be_bytes());

    let mut ip = Vec::with_capacity(20);
    ip.push(0x45); // version 4, IHL 5
    ip.push(0); // DSCP/ECN
    ip.extend_from_slice(&((20 + tcp_len) as u16).to_be_bytes());
    ip.extend_from_slice(&ip_id.to_be_bytes());
    ip.extend_from_slice(&0x4000u16.to_be_bytes()); // DF
    ip.push(64); // TTL
    ip.push(6); // protocol: TCP
    ip.extend_from_slice(&[0, 0]); // checksum placeholder
    ip.extend_from_slice(&src_ip);
    ip.extend_from_slice(&dst_ip);
    let ip_csum = checksum(&[&ip]);
    ip[10..12].copy_from_slice(&ip_csum.to_be_bytes());

    let mut out = Vec::with_capacity(14 + ip.len() + tcp_len);
    out.extend_from_slice(&host_mac(seg.dst.host));
    out.extend_from_slice(&host_mac(seg.src.host));
    out.extend_from_slice(&ETHERTYPE_IPV4.to_be_bytes());
    out.extend_from_slice(&ip);
    out.extend_from_slice(&tcp);
    out.extend_from_slice(&seg.payload);
    out
}

fn push_block(out: &mut Vec<u8>, block_type: u32, body: &[u8]) {
    let pad = (4 - body.len() % 4) % 4;
    let total = 12 + body.len() + pad;
    out.extend_from_slice(&block_type.to_le_bytes());
    out.extend_from_slice(&(total as u32).to_le_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(&[0u8; 3][..pad]);
    out.extend_from_slice(&(total as u32).to_le_bytes());
}

/// Serialize trace records to a pcapng capture (little-endian section,
/// one Ethernet interface with nanosecond timestamps).
pub fn export(records: &[TraceRecord]) -> Vec<u8> {
    let mut out = Vec::new();

    // Section Header Block.
    let mut shb = Vec::new();
    shb.extend_from_slice(&BYTE_ORDER_MAGIC.to_le_bytes());
    shb.extend_from_slice(&1u16.to_le_bytes()); // major
    shb.extend_from_slice(&0u16.to_le_bytes()); // minor
    shb.extend_from_slice(&(-1i64).to_le_bytes()); // section length: unknown
    push_block(&mut out, 0x0A0D_0D0A, &shb);

    // Interface Description Block: Ethernet, unlimited snaplen,
    // if_tsresol option (code 9) = 9 → timestamps in nanoseconds.
    let mut idb = Vec::new();
    idb.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
    idb.extend_from_slice(&0u16.to_le_bytes()); // reserved
    idb.extend_from_slice(&0u32.to_le_bytes()); // snaplen: no limit
    idb.extend_from_slice(&9u16.to_le_bytes()); // option: if_tsresol
    idb.extend_from_slice(&1u16.to_le_bytes()); // length 1
    idb.extend_from_slice(&[9, 0, 0, 0]); // value 9, padded
    idb.extend_from_slice(&0u16.to_le_bytes()); // opt_endofopt
    idb.extend_from_slice(&0u16.to_le_bytes());
    push_block(&mut out, 0x0000_0001, &idb);

    // Enhanced Packet Blocks. The IPv4 id is a per-capture wrapping
    // counter, like a real stack's.
    let mut ip_id: u16 = 0;
    for rec in records {
        let data = frame(&rec.segment, ip_id);
        ip_id = ip_id.wrapping_add(1);
        let ts = rec.received.as_nanos();
        let mut epb = Vec::with_capacity(20 + data.len());
        epb.extend_from_slice(&0u32.to_le_bytes()); // interface 0
        epb.extend_from_slice(&((ts >> 32) as u32).to_le_bytes());
        epb.extend_from_slice(&(ts as u32).to_le_bytes());
        epb.extend_from_slice(&(data.len() as u32).to_le_bytes()); // captured
        epb.extend_from_slice(&(data.len() as u32).to_le_bytes()); // original
        epb.extend_from_slice(&data);
        push_block(&mut out, 0x0000_0006, &epb);
    }
    out
}

/// Export a [`Trace`]'s packet records. Errors when the trace was
/// captured in [`TraceMode::StatsOnly`] and holds no per-packet records.
pub fn export_trace(trace: &Trace) -> Result<Vec<u8>, TraceModeError> {
    if trace.mode() == TraceMode::StatsOnly {
        return Err(TraceModeError);
    }
    Ok(export(trace.records()))
}

/// One packet decoded from a pcapng capture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapPacket {
    /// Capture timestamp, nanoseconds.
    pub ts_ns: u64,
    /// Source endpoint (host recovered from the `10.0.x.y` mapping).
    pub src: SockAddr,
    /// Destination endpoint.
    pub dst: SockAddr,
    /// Wire sequence number (32-bit).
    pub seq: u32,
    /// Wire acknowledgment number (32-bit).
    pub ack: u32,
    /// Decoded TCP flags.
    pub flags: TcpFlags,
    /// Advertised window as carried on the wire.
    pub window: u16,
    /// TCP payload length in bytes.
    pub payload_len: usize,
    /// SACK blocks decoded from options, as 32-bit `(start, end)` pairs.
    pub sack: Vec<(u32, u32)>,
}

/// Why a capture failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcapError {
    /// The byte stream is not a well-formed little-endian pcapng section.
    Malformed(&'static str),
    /// A frame inside the capture is not the Ethernet/IPv4/TCP shape
    /// this exporter produces.
    UnsupportedFrame(&'static str),
    /// An IPv4 or TCP checksum failed verification.
    BadChecksum(&'static str),
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Malformed(what) => write!(f, "malformed pcapng: {what}"),
            PcapError::UnsupportedFrame(what) => write!(f, "unsupported frame: {what}"),
            PcapError::BadChecksum(what) => write!(f, "checksum mismatch: {what}"),
        }
    }
}

impl std::error::Error for PcapError {}

fn take<'a>(buf: &mut &'a [u8], n: usize, what: &'static str) -> Result<&'a [u8], PcapError> {
    if buf.len() < n {
        return Err(PcapError::Malformed(what));
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn u32le(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn parse_frame(data: &[u8]) -> Result<PcapPacket, PcapError> {
    if data.len() < 14 + 20 + 20 {
        return Err(PcapError::UnsupportedFrame("frame shorter than headers"));
    }
    let (eth, rest) = data.split_at(14);
    if u16::from_be_bytes([eth[12], eth[13]]) != ETHERTYPE_IPV4 {
        return Err(PcapError::UnsupportedFrame("not IPv4"));
    }
    if rest[0] != 0x45 {
        return Err(PcapError::UnsupportedFrame("IPv4 options unexpected"));
    }
    let (ip, after_ip) = rest.split_at(20);
    if checksum(&[ip]) != 0 {
        return Err(PcapError::BadChecksum("IPv4 header"));
    }
    if ip[9] != 6 {
        return Err(PcapError::UnsupportedFrame("not TCP"));
    }
    let tot_len = u16::from_be_bytes([ip[2], ip[3]]) as usize;
    if tot_len < 40 || tot_len - 20 > after_ip.len() {
        return Err(PcapError::Malformed("IPv4 total length"));
    }
    let src_ip = [ip[12], ip[13], ip[14], ip[15]];
    let dst_ip = [ip[16], ip[17], ip[18], ip[19]];
    let src_host =
        ip_to_host(src_ip).ok_or(PcapError::UnsupportedFrame("source IP outside 10.0.0.0/16"))?;
    let dst_host = ip_to_host(dst_ip).ok_or(PcapError::UnsupportedFrame(
        "destination IP outside 10.0.0.0/16",
    ))?;

    let tcp_seg = &after_ip[..tot_len - 20];
    let pseudo = {
        let mut p = [0u8; 12];
        p[..4].copy_from_slice(&src_ip);
        p[4..8].copy_from_slice(&dst_ip);
        p[9] = 6;
        p[10..].copy_from_slice(&(tcp_seg.len() as u16).to_be_bytes());
        p
    };
    if checksum(&[&pseudo, tcp_seg]) != 0 {
        return Err(PcapError::BadChecksum("TCP segment"));
    }
    let data_offset = (tcp_seg[12] >> 4) as usize * 4;
    if data_offset < 20 || data_offset > tcp_seg.len() {
        return Err(PcapError::Malformed("TCP data offset"));
    }

    // Walk options for SACK (kind 5); skip NOPs and any other option.
    let mut sack = Vec::new();
    let mut opts = &tcp_seg[20..data_offset];
    while let Some(&kind) = opts.first() {
        match kind {
            0 => break,
            1 => opts = &opts[1..],
            5 => {
                let len = *opts
                    .get(1)
                    .ok_or(PcapError::Malformed("truncated SACK option"))?
                    as usize;
                if len < 2 || len > opts.len() || (len - 2) % 8 != 0 {
                    return Err(PcapError::Malformed("SACK option length"));
                }
                for pair in opts[2..len].chunks_exact(8) {
                    sack.push((
                        u32::from_be_bytes([pair[0], pair[1], pair[2], pair[3]]),
                        u32::from_be_bytes([pair[4], pair[5], pair[6], pair[7]]),
                    ));
                }
                opts = &opts[len..];
            }
            _ => {
                let len = *opts
                    .get(1)
                    .ok_or(PcapError::Malformed("truncated TCP option"))?
                    as usize;
                if len < 2 || len > opts.len() {
                    return Err(PcapError::Malformed("TCP option length"));
                }
                opts = &opts[len..];
            }
        }
    }

    Ok(PcapPacket {
        ts_ns: 0, // filled by the block parser
        src: SockAddr::new(src_host, u16::from_be_bytes([tcp_seg[0], tcp_seg[1]])),
        dst: SockAddr::new(dst_host, u16::from_be_bytes([tcp_seg[2], tcp_seg[3]])),
        seq: u32::from_be_bytes([tcp_seg[4], tcp_seg[5], tcp_seg[6], tcp_seg[7]]),
        ack: u32::from_be_bytes([tcp_seg[8], tcp_seg[9], tcp_seg[10], tcp_seg[11]]),
        flags: flags_from_byte(tcp_seg[13]),
        window: u16::from_be_bytes([tcp_seg[14], tcp_seg[15]]),
        payload_len: tcp_seg.len() - data_offset,
        sack,
    })
}

/// Parse a little-endian pcapng capture produced by [`export`],
/// verifying IPv4 and TCP checksums along the way.
pub fn parse(bytes: &[u8]) -> Result<Vec<PcapPacket>, PcapError> {
    let mut buf = bytes;
    let mut packets = Vec::new();
    let mut saw_shb = false;
    while !buf.is_empty() {
        let header = take(&mut buf, 8, "block header")?;
        let block_type = u32le(&header[..4]);
        let total = u32le(&header[4..]) as usize;
        if total < 12 || total % 4 != 0 {
            return Err(PcapError::Malformed("block length"));
        }
        let body = take(&mut buf, total - 12, "block body")?;
        let trailer = take(&mut buf, 4, "block trailer")?;
        if u32le(trailer) as usize != total {
            return Err(PcapError::Malformed("trailing block length"));
        }
        match block_type {
            0x0A0D_0D0A => {
                if body.len() < 16 || u32le(&body[..4]) != BYTE_ORDER_MAGIC {
                    return Err(PcapError::Malformed("section header"));
                }
                saw_shb = true;
            }
            0x0000_0006 => {
                if !saw_shb {
                    return Err(PcapError::Malformed("packet before section header"));
                }
                if body.len() < 20 {
                    return Err(PcapError::Malformed("packet block"));
                }
                let ts = (u64::from(u32le(&body[4..8])) << 32) | u64::from(u32le(&body[8..12]));
                let captured = u32le(&body[12..16]) as usize;
                if 20 + captured > body.len() {
                    return Err(PcapError::Malformed("captured length"));
                }
                let mut pkt = parse_frame(&body[20..20 + captured])?;
                pkt.ts_ns = ts;
                packets.push(pkt);
            }
            _ => {} // IDB and anything else: skipped
        }
    }
    if !saw_shb {
        return Err(PcapError::Malformed("no section header"));
    }
    Ok(packets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use bytes::Bytes;

    fn record(
        src: SockAddr,
        dst: SockAddr,
        seq: u64,
        ack: u64,
        flags: TcpFlags,
        payload_len: usize,
        at_ns: u64,
    ) -> TraceRecord {
        let segment = Segment {
            src,
            dst,
            seq,
            ack,
            flags,
            window: 32 * 1024,
            sack: Default::default(),
            payload: Bytes::from(vec![0xA5u8; payload_len]),
        };
        TraceRecord {
            sent: SimTime::from_nanos(at_ns.saturating_sub(1_000_000)),
            received: SimTime::from_nanos(at_ns),
            physical_bytes: segment.wire_len(),
            segment,
        }
    }

    #[test]
    fn checksum_matches_rfc1071_example() {
        // Classic example from RFC 1071 §3.
        let words = [0x0001u16, 0xf203, 0xf4f5, 0xf6f7];
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
        assert_eq!(checksum(&[&bytes]), !0xddf2);
    }

    #[test]
    fn checksum_handles_odd_and_split_chunks() {
        let whole = [1u8, 2, 3, 4, 5];
        let split: &[&[u8]] = &[&whole[..3], &whole[3..]];
        assert_eq!(checksum(&[&whole]), checksum(split));
    }

    #[test]
    fn round_trip_preserves_headers() {
        let c = SockAddr::new(HostId(2), 40_000);
        let s = SockAddr::new(HostId(0), 80);
        let records = vec![
            record(c, s, 0, 0, TcpFlags::SYN, 0, 5_000_000),
            record(s, c, 0, 1, TcpFlags::SYN_ACK, 0, 10_000_000),
            record(c, s, 1, 1, TcpFlags::ACK, 0, 15_000_000),
            record(c, s, 1, 1, TcpFlags::ACK, 120, 16_000_000),
            record(s, c, 1, 121, TcpFlags::ACK, 1460, 22_000_000),
            record(
                s,
                c,
                1461,
                121,
                TcpFlags {
                    fin: true,
                    ack: true,
                    psh: true,
                    ..Default::default()
                },
                500,
                30_000_000,
            ),
        ];
        let bytes = export(&records);
        let packets = parse(&bytes).expect("capture parses");
        assert_eq!(packets.len(), records.len());
        for (pkt, rec) in packets.iter().zip(&records) {
            assert_eq!(pkt.ts_ns, rec.received.as_nanos());
            assert_eq!(pkt.src, rec.segment.src);
            assert_eq!(pkt.dst, rec.segment.dst);
            assert_eq!(pkt.seq, rec.segment.seq as u32);
            assert_eq!(pkt.ack, rec.segment.ack as u32);
            assert_eq!(pkt.flags, rec.segment.flags);
            assert_eq!(pkt.payload_len, rec.segment.payload.len());
            assert_eq!(pkt.window, rec.segment.window.min(0xffff) as u16);
        }
    }

    #[test]
    fn sack_blocks_survive_the_wire() {
        let c = SockAddr::new(HostId(1), 40_000);
        let s = SockAddr::new(HostId(0), 80);
        let mut rec = record(c, s, 100, 5000, TcpFlags::ACK, 0, 1_000_000);
        assert!(rec.segment.sack.push(7300, 8760));
        assert!(rec.segment.sack.push(11_680, 13_140));
        let packets = parse(&export(&[rec])).expect("capture parses");
        assert_eq!(packets[0].sack, vec![(7300, 8760), (11_680, 13_140)]);
    }

    #[test]
    fn seq_truncates_mod_2_pow_32() {
        let c = SockAddr::new(HostId(1), 40_000);
        let s = SockAddr::new(HostId(0), 80);
        let seq = (1u64 << 32) + 77;
        let rec = record(c, s, seq, 0, TcpFlags::ACK, 0, 1_000_000);
        let packets = parse(&export(&[rec])).expect("capture parses");
        assert_eq!(packets[0].seq, 77);
    }

    #[test]
    fn window_clamps_to_u16() {
        let c = SockAddr::new(HostId(1), 40_000);
        let s = SockAddr::new(HostId(0), 80);
        let mut rec = record(c, s, 0, 0, TcpFlags::ACK, 0, 1_000_000);
        rec.segment.window = 1 << 20;
        let packets = parse(&export(&[rec])).expect("capture parses");
        assert_eq!(packets[0].window, 0xffff);
    }

    #[test]
    fn corrupted_byte_fails_checksum() {
        let c = SockAddr::new(HostId(1), 40_000);
        let s = SockAddr::new(HostId(0), 80);
        let rec = record(c, s, 0, 0, TcpFlags::ACK, 64, 1_000_000);
        let mut bytes = export(&[rec]);
        // Flip one payload byte inside the packet block.
        let last = bytes.len() - 8;
        bytes[last] ^= 0xff;
        assert!(matches!(parse(&bytes), Err(PcapError::BadChecksum(_))));
    }

    #[test]
    fn stats_only_trace_is_rejected() {
        let mut trace = Trace::default();
        trace.set_mode(TraceMode::StatsOnly);
        assert!(export_trace(&trace).is_err());
    }

    #[test]
    fn export_is_deterministic() {
        let c = SockAddr::new(HostId(1), 40_000);
        let s = SockAddr::new(HostId(0), 80);
        let recs = vec![
            record(c, s, 0, 0, TcpFlags::SYN, 0, 1_000_000),
            record(s, c, 0, 1, TcpFlags::SYN_ACK, 0, 2_000_000),
        ];
        assert_eq!(export(&recs), export(&recs));
    }
}
