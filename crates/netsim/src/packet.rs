//! The wire unit of the simulator: a TCP segment with an IP-level address.
//!
//! The simulator does not serialize real byte-level headers; instead each
//! [`Segment`] carries structured fields and the byte accounting assumes the
//! classic 40-byte TCP/IP header (20 bytes IPv4 + 20 bytes TCP, no options),
//! which is how the paper computes its `%ov` overhead column.

use bytes::Bytes;
use std::fmt;

/// Identifies a simulated host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u16);

/// A transport address: host plus TCP port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SockAddr {
    /// The host part of the address.
    pub host: HostId,
    /// The TCP port.
    pub port: u16,
}

impl SockAddr {
    /// Construct from host and port.
    pub const fn new(host: HostId, port: u16) -> Self {
        SockAddr { host, port }
    }
}

impl fmt::Display for SockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}:{}", self.host.0, self.port)
    }
}

/// TCP header flags carried by a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// Synchronize: opens a connection.
    pub syn: bool,
    /// The acknowledgement number is valid.
    pub ack: bool,
    /// No more data from the sender (half-close).
    pub fin: bool,
    /// Abort the connection.
    pub rst: bool,
    /// Push: deliver promptly to the application.
    pub psh: bool,
}

impl TcpFlags {
    /// A bare SYN (active open).
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
        psh: false,
    };
    /// SYN+ACK (passive-open reply).
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    /// A plain acknowledgement.
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    /// FIN piggybacked on an acknowledgement.
    pub const FIN_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: true,
        rst: false,
        psh: false,
    };
    /// A bare reset.
    pub const RST: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
        psh: false,
    };
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut any = false;
        for (set, c) in [
            (self.syn, 'S'),
            (self.fin, 'F'),
            (self.rst, 'R'),
            (self.psh, 'P'),
            (self.ack, '.'),
        ] {
            if set {
                write!(f, "{c}")?;
                any = true;
            }
        }
        if !any {
            write!(f, "-")?;
        }
        Ok(())
    }
}

/// Size in bytes of the combined IPv4 + TCP headers without options.
pub const TCP_IP_HEADER_BYTES: usize = 40;

/// A simulated TCP segment in flight.
///
/// Sequence and acknowledgement numbers are absolute `u64` offsets from the
/// connection's initial sequence number; a simulator has no need to model
/// 32-bit wraparound and absolute numbers make traces easy to read.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Sender address.
    pub src: SockAddr,
    /// Destination address.
    pub dst: SockAddr,
    /// First sequence number this segment occupies.
    pub seq: u64,
    /// Cumulative acknowledgement (next expected octet).
    pub ack: u64,
    /// Control flags.
    pub flags: TcpFlags,
    /// Receive window advertised by the sender, in bytes.
    pub window: usize,
    /// Application bytes carried.
    pub payload: Bytes,
}

impl Segment {
    /// Total bytes this segment occupies on the wire, headers included.
    pub fn wire_len(&self) -> usize {
        TCP_IP_HEADER_BYTES + self.payload.len()
    }

    /// The amount of sequence space this segment consumes
    /// (payload bytes, plus one for SYN and one for FIN).
    pub fn seq_space(&self) -> u64 {
        self.payload.len() as u64 + u64::from(self.flags.syn) + u64::from(self.flags.fin)
    }

    /// The sequence number of the octet just past this segment.
    pub fn seq_end(&self) -> u64 {
        self.seq + self.seq_space()
    }

    /// True if the segment carries application payload.
    pub fn has_payload(&self) -> bool {
        !self.payload.is_empty()
    }

    /// A pure RST segment aborting the connection identified by `src`/`dst`.
    pub fn rst(src: SockAddr, dst: SockAddr, seq: u64) -> Segment {
        Segment {
            src,
            dst,
            seq,
            ack: 0,
            flags: TcpFlags::RST,
            window: 0,
            payload: Bytes::new(),
        }
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} > {} [{}] seq {} ack {} win {} len {}",
            self.src,
            self.dst,
            self.flags,
            self.seq,
            self.ack,
            self.window,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(flags: TcpFlags, len: usize) -> Segment {
        Segment {
            src: SockAddr::new(HostId(0), 1000),
            dst: SockAddr::new(HostId(1), 80),
            seq: 100,
            ack: 0,
            flags,
            window: 32768,
            payload: Bytes::from(vec![0u8; len]),
        }
    }

    #[test]
    fn wire_len_includes_headers() {
        assert_eq!(seg(TcpFlags::ACK, 0).wire_len(), 40);
        assert_eq!(seg(TcpFlags::ACK, 1460).wire_len(), 1500);
    }

    #[test]
    fn seq_space_counts_syn_and_fin() {
        assert_eq!(seg(TcpFlags::SYN, 0).seq_space(), 1);
        assert_eq!(seg(TcpFlags::FIN_ACK, 0).seq_space(), 1);
        assert_eq!(seg(TcpFlags::ACK, 10).seq_space(), 10);
        let mut s = seg(TcpFlags::FIN_ACK, 10);
        s.flags.syn = false;
        assert_eq!(s.seq_space(), 11);
        assert_eq!(s.seq_end(), 111);
    }

    #[test]
    fn flags_display() {
        assert_eq!(format!("{}", TcpFlags::SYN), "S");
        assert_eq!(format!("{}", TcpFlags::SYN_ACK), "S.");
        assert_eq!(format!("{}", TcpFlags::FIN_ACK), "F.");
        assert_eq!(format!("{}", TcpFlags::default()), "-");
    }

    #[test]
    fn segment_display_is_tcpdump_like() {
        let s = seg(TcpFlags::SYN, 0);
        assert_eq!(
            format!("{s}"),
            "h0:1000 > h1:80 [S] seq 100 ack 0 win 32768 len 0"
        );
    }
}
