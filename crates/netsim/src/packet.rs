//! The wire unit of the simulator: a TCP segment with an IP-level address.
//!
//! The simulator does not serialize real byte-level headers; instead each
//! [`Segment`] carries structured fields and the byte accounting assumes the
//! classic 40-byte TCP/IP header (20 bytes IPv4 + 20 bytes TCP, no options),
//! which is how the paper computes its `%ov` overhead column.

use bytes::Bytes;
use std::fmt;

/// Identifies a simulated host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u16);

/// A transport address: host plus TCP port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SockAddr {
    /// The host part of the address.
    pub host: HostId,
    /// The TCP port.
    pub port: u16,
}

impl SockAddr {
    /// Construct from host and port.
    pub const fn new(host: HostId, port: u16) -> Self {
        SockAddr { host, port }
    }
}

impl fmt::Display for SockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}:{}", self.host.0, self.port)
    }
}

/// TCP header flags carried by a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// Synchronize: opens a connection.
    pub syn: bool,
    /// The acknowledgement number is valid.
    pub ack: bool,
    /// No more data from the sender (half-close).
    pub fin: bool,
    /// Abort the connection.
    pub rst: bool,
    /// Push: deliver promptly to the application.
    pub psh: bool,
}

impl TcpFlags {
    /// A bare SYN (active open).
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
        psh: false,
    };
    /// SYN+ACK (passive-open reply).
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    /// A plain acknowledgement.
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    /// FIN piggybacked on an acknowledgement.
    pub const FIN_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: true,
        rst: false,
        psh: false,
    };
    /// A bare reset.
    pub const RST: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
        psh: false,
    };
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut any = false;
        for (set, c) in [
            (self.syn, 'S'),
            (self.fin, 'F'),
            (self.rst, 'R'),
            (self.psh, 'P'),
            (self.ack, '.'),
        ] {
            if set {
                write!(f, "{c}")?;
                any = true;
            }
        }
        if !any {
            write!(f, "-")?;
        }
        Ok(())
    }
}

/// Size in bytes of the combined IPv4 + TCP headers without options.
pub const TCP_IP_HEADER_BYTES: usize = 40;

/// Selective-acknowledgement blocks carried as a TCP option (RFC 2018).
///
/// Up to four `[start, end)` ranges of sequence space the receiver holds
/// above its cumulative ACK, ascending and disjoint. The simulator's
/// sequence numbers are 64-bit, so the modelled option is kind 5 with
/// 16-byte blocks (2 + 16·n option bytes, NOP-padded to a 4-byte
/// boundary) rather than the wire's 8-byte blocks — the byte accounting
/// in [`Segment::wire_len`] reflects that. Empty on every segment unless
/// the sender's congestion control is `CcVariant::Sack`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SackBlocks {
    len: u8,
    blocks: [(u64, u64); 4],
}

impl SackBlocks {
    /// No blocks: the option is absent from the segment.
    pub const NONE: SackBlocks = SackBlocks {
        len: 0,
        blocks: [(0, 0); 4],
    };

    /// TCP option kind byte for SACK (RFC 2018).
    pub const KIND: u8 = 5;

    /// True when no blocks are carried.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of blocks carried (0..=4).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Append a block, keeping ascending order; returns false (and drops
    /// the block) once four are held — the option space is full.
    pub fn push(&mut self, start: u64, end: u64) -> bool {
        debug_assert!(start < end, "empty SACK block");
        if self.len as usize == self.blocks.len() {
            return false;
        }
        self.blocks[self.len as usize] = (start, end);
        self.len += 1;
        true
    }

    /// The carried `[start, end)` ranges, in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.blocks[..self.len as usize].iter().copied()
    }

    /// Bytes of TCP option space this option occupies on the wire:
    /// zero when empty, otherwise 2 + 16·n rounded up to the 4-byte
    /// option boundary with NOP padding.
    pub fn wire_bytes(&self) -> usize {
        if self.len == 0 {
            return 0;
        }
        let raw = 2 + 16 * self.len as usize;
        raw.div_ceil(4) * 4
    }

    /// Serialize as option bytes: kind, length, big-endian `u64` pairs,
    /// NOP (0x01) padding to the 4-byte boundary.
    pub fn encode(&self, out: &mut Vec<u8>) {
        if self.len == 0 {
            return;
        }
        let raw = 2 + 16 * self.len as usize;
        out.push(Self::KIND);
        out.push(raw as u8);
        for (start, end) in self.iter() {
            out.extend_from_slice(&start.to_be_bytes());
            out.extend_from_slice(&end.to_be_bytes());
        }
        for _ in raw..self.wire_bytes() {
            out.push(0x01); // NOP
        }
    }

    /// Parse option bytes produced by [`SackBlocks::encode`]. Returns
    /// `None` on a malformed option (bad kind, length not 2 + 16·n,
    /// n > 4, or truncated input).
    pub fn decode(bytes: &[u8]) -> Option<SackBlocks> {
        if bytes.is_empty() {
            return Some(SackBlocks::NONE);
        }
        if bytes.len() < 2 || bytes[0] != Self::KIND {
            return None;
        }
        let raw = bytes[1] as usize;
        if raw < 2 + 16 || (raw - 2) % 16 != 0 || raw > bytes.len() {
            return None;
        }
        let n = (raw - 2) / 16;
        if n > 4 {
            return None;
        }
        let mut out = SackBlocks::NONE;
        for i in 0..n {
            let at = 2 + 16 * i;
            let start = u64::from_be_bytes(bytes[at..at + 8].try_into().ok()?);
            let end = u64::from_be_bytes(bytes[at + 8..at + 16].try_into().ok()?);
            out.push(start, end);
        }
        Some(out)
    }
}

impl fmt::Display for SackBlocks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (start, end)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{start}-{end}")?;
        }
        Ok(())
    }
}

/// A simulated TCP segment in flight.
///
/// Sequence and acknowledgement numbers are absolute `u64` offsets from the
/// connection's initial sequence number; a simulator has no need to model
/// 32-bit wraparound and absolute numbers make traces easy to read.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Sender address.
    pub src: SockAddr,
    /// Destination address.
    pub dst: SockAddr,
    /// First sequence number this segment occupies.
    pub seq: u64,
    /// Cumulative acknowledgement (next expected octet).
    pub ack: u64,
    /// Control flags.
    pub flags: TcpFlags,
    /// Receive window advertised by the sender, in bytes.
    pub window: usize,
    /// Selective-acknowledgement option blocks (empty unless the sender
    /// runs SACK congestion control).
    pub sack: SackBlocks,
    /// Application bytes carried.
    pub payload: Bytes,
}

impl Segment {
    /// Total bytes this segment occupies on the wire, headers included
    /// (plus SACK option bytes when the option is present).
    pub fn wire_len(&self) -> usize {
        TCP_IP_HEADER_BYTES + self.sack.wire_bytes() + self.payload.len()
    }

    /// The amount of sequence space this segment consumes
    /// (payload bytes, plus one for SYN and one for FIN).
    pub fn seq_space(&self) -> u64 {
        self.payload.len() as u64 + u64::from(self.flags.syn) + u64::from(self.flags.fin)
    }

    /// The sequence number of the octet just past this segment.
    pub fn seq_end(&self) -> u64 {
        self.seq + self.seq_space()
    }

    /// True if the segment carries application payload.
    pub fn has_payload(&self) -> bool {
        !self.payload.is_empty()
    }

    /// A pure RST segment aborting the connection identified by `src`/`dst`.
    pub fn rst(src: SockAddr, dst: SockAddr, seq: u64) -> Segment {
        Segment {
            src,
            dst,
            seq,
            ack: 0,
            flags: TcpFlags::RST,
            window: 0,
            sack: SackBlocks::NONE,
            payload: Bytes::new(),
        }
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} > {} [{}] seq {} ack {} win {} len {}",
            self.src,
            self.dst,
            self.flags,
            self.seq,
            self.ack,
            self.window,
            self.payload.len()
        )?;
        if !self.sack.is_empty() {
            write!(f, " sack {}", self.sack)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(flags: TcpFlags, len: usize) -> Segment {
        Segment {
            src: SockAddr::new(HostId(0), 1000),
            dst: SockAddr::new(HostId(1), 80),
            seq: 100,
            ack: 0,
            flags,
            window: 32768,
            sack: SackBlocks::NONE,
            payload: Bytes::from(vec![0u8; len]),
        }
    }

    #[test]
    fn wire_len_includes_headers() {
        assert_eq!(seg(TcpFlags::ACK, 0).wire_len(), 40);
        assert_eq!(seg(TcpFlags::ACK, 1460).wire_len(), 1500);
    }

    #[test]
    fn seq_space_counts_syn_and_fin() {
        assert_eq!(seg(TcpFlags::SYN, 0).seq_space(), 1);
        assert_eq!(seg(TcpFlags::FIN_ACK, 0).seq_space(), 1);
        assert_eq!(seg(TcpFlags::ACK, 10).seq_space(), 10);
        let mut s = seg(TcpFlags::FIN_ACK, 10);
        s.flags.syn = false;
        assert_eq!(s.seq_space(), 11);
        assert_eq!(s.seq_end(), 111);
    }

    #[test]
    fn flags_display() {
        assert_eq!(format!("{}", TcpFlags::SYN), "S");
        assert_eq!(format!("{}", TcpFlags::SYN_ACK), "S.");
        assert_eq!(format!("{}", TcpFlags::FIN_ACK), "F.");
        assert_eq!(format!("{}", TcpFlags::default()), "-");
    }

    #[test]
    fn segment_display_is_tcpdump_like() {
        let s = seg(TcpFlags::SYN, 0);
        assert_eq!(
            format!("{s}"),
            "h0:1000 > h1:80 [S] seq 100 ack 0 win 32768 len 0"
        );
    }

    #[test]
    fn sack_wire_bytes_follow_option_padding() {
        let mut b = SackBlocks::NONE;
        assert_eq!(b.wire_bytes(), 0);
        b.push(100, 200);
        assert_eq!(b.wire_bytes(), 20); // 2 + 16, padded to 20
        b.push(300, 400);
        assert_eq!(b.wire_bytes(), 36); // 2 + 32, padded to 36
        b.push(500, 600);
        assert_eq!(b.wire_bytes(), 52);
        assert!(b.push(700, 800));
        assert_eq!(b.wire_bytes(), 68);
        assert!(!b.push(900, 1000), "fifth block must be rejected");
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn sack_option_encodes_and_decodes_round_trip() {
        let mut b = SackBlocks::NONE;
        b.push(1461, 2921);
        b.push(4381, 5841);
        let mut wire = Vec::new();
        b.encode(&mut wire);
        assert_eq!(wire.len(), b.wire_bytes());
        assert_eq!(wire[0], SackBlocks::KIND);
        assert_eq!(SackBlocks::decode(&wire), Some(b));
        assert_eq!(SackBlocks::decode(&[]), Some(SackBlocks::NONE));
        assert_eq!(SackBlocks::decode(&[7, 18]), None, "wrong option kind");
        assert_eq!(SackBlocks::decode(&wire[..10]), None, "truncated");
    }

    #[test]
    fn sack_segment_accounting_and_display() {
        let mut s = seg(TcpFlags::ACK, 0);
        s.sack.push(1461, 2921);
        assert_eq!(s.wire_len(), 60); // 40 header + 20 option
        assert_eq!(
            format!("{s}"),
            "h0:1000 > h1:80 [.] seq 100 ack 0 win 32768 len 0 sack 1461-2921"
        );
    }
}
