//! The flight recorder: deterministic observability for simulation runs.
//!
//! The paper's headline findings — the Nagle/pipelining deadlock, the
//! delayed-ACK interaction with slow start, the buffer-flush bug that cost
//! a full RTT — were all discovered by a human staring at tcpdump/xplot
//! output. This module automates that analysis:
//!
//! * **instrumentation** — a zero-overhead-when-disabled [`ProbeSink`]
//!   collects [`ProbeRecord`]s from the TCP state machine (congestion
//!   samples, Nagle holds, delayed-ACK deadlines, zero-window events,
//!   timer fires), from the kernel (connection opens, wire serialization
//!   intervals) and from the HTTP layers (request lifecycle spans);
//! * **analysis** — [`attribute`] walks the event stream and decomposes
//!   the run's wall-clock time into the named [`StallBuckets`], plus
//!   automatic detection of the paper's pathologies as typed
//!   [`Diagnosis`] values;
//! * **reporting** — [`ProbeAnalysis::render_json`] emits a stable,
//!   machine-readable document; the `Copy` summary [`ProbeReport`] rides
//!   along with cell results.
//!
//! Everything here is deterministic: records are appended in event-queue
//! order, every collection iterated for output is a `Vec` or `BTreeMap`,
//! and no wall-clock time is ever read.
//!
//! ## Attribution model
//!
//! [`attribute`] reduces the record stream to *intervals* (a Nagle hold
//! from the blocked send to the next payload segment leaving that socket;
//! a delayed-ACK wait from timer arm to ack emission; a wire-serialization
//! busy period; …), splits `[start, end]` at every interval endpoint, and
//! assigns each resulting gap to exactly **one** bucket by fixed priority:
//!
//! 1. RTO recovery, 2. link serialization, 3. Nagle hold,
//! 4. receiver-window/backpressure, 5. connection setup, 6. server think,
//! 7. delayed-ACK wait (only while no payload is in flight),
//! 8. slow-start/round-trip wait (payload in flight or cwnd-blocked),
//! 9. idle (client CPU, inter-request gaps).
//!
//! Because the gaps are disjoint and exhaustive, the buckets sum to the
//! elapsed time exactly (up to floating-point rounding in the final
//! nanosecond→second conversions) — the 1%-tolerance cross-check in the
//! test suite is a guard against accounting bugs, not an approximation.

use crate::packet::{HostId, SockAddr};
use crate::tcp::TimerKind;
use crate::time::{SimDuration, SimTime};

/// Why a sender with pending data did not emit a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// Sub-MSS data held back by the Nagle algorithm while earlier data
    /// is unacknowledged.
    Nagle,
    /// The congestion window is full (waiting for acknowledgements).
    Cwnd,
    /// The peer's advertised receive window is full (backpressure).
    PeerWindow,
}

impl BlockReason {
    /// Stable lower-case name used in traces and JSON.
    pub fn name(self) -> &'static str {
        match self {
            BlockReason::Nagle => "nagle",
            BlockReason::Cwnd => "cwnd",
            BlockReason::PeerWindow => "peer_window",
        }
    }
}

/// An event emitted by the TCP state machine into [`crate::tcp::Effects`].
///
/// These carry no timestamp or address: the kernel stamps them with the
/// current simulated time and the owning socket's four-tuple when it
/// drains the effects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpProbeEvent {
    /// The connection reached the `Established` state.
    Established,
    /// A congestion-control sample, emitted whenever cwnd, ssthresh, the
    /// RTT estimate or the amount in flight changes.
    Sample {
        /// Congestion window, bytes.
        cwnd: u64,
        /// Slow-start threshold, bytes.
        ssthresh: u64,
        /// Smoothed RTT estimate in nanoseconds, if a sample exists.
        srtt_ns: Option<u64>,
        /// Current retransmission timeout, nanoseconds.
        rto_ns: u64,
        /// Unacknowledged bytes in flight.
        in_flight: u64,
    },
    /// The sender has pending data but emitted nothing.
    SendBlocked {
        /// What is holding the data back.
        reason: BlockReason,
        /// Buffered bytes not yet sent.
        pending: u64,
    },
    /// A delayed-ACK timer was armed.
    DelAckArm {
        /// When the timer will force the acknowledgement out.
        deadline: SimTime,
    },
    /// The pending delayed ACK left (piggybacked, forced by a second
    /// segment, or cancelled); the wait is over.
    DelAckFlush,
    /// A TCP timer fired and was acted upon (stale epochs never reach
    /// this point).
    TimerFired {
        /// Which timer fired.
        kind: TimerKind,
    },
    /// The retransmission timeout fired: slow start restarts.
    RtoFire,
    /// Three duplicate ACKs triggered a fast retransmit.
    FastRetransmit,
    /// The peer advertised a zero receive window.
    ZeroWindow,
}

/// A request-lifecycle span mark emitted by the HTTP layers via
/// [`crate::sim::Ctx::probe_span`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanEvent {
    /// The client generated a request and appended it to the connection's
    /// output buffer.
    RequestQueued {
        /// Request target path.
        path: String,
    },
    /// Buffered requests were handed to the socket.
    RequestWritten {
        /// How many queued-but-unwritten requests this write covers.
        count: u32,
        /// Which policy triggered the flush.
        cause: FlushCause,
    },
    /// The first response byte for the connection's oldest outstanding
    /// request arrived.
    FirstByte,
    /// A full response was parsed off the wire.
    BodyComplete {
        /// Request target path the response answers.
        path: String,
    },
    /// The server CPU will be busy servicing a request over the given
    /// interval (emitted at scheduling time; `start` may be later than
    /// the emission time when requests queue behind one CPU).
    ServerThink {
        /// When the CPU starts on this request.
        start: SimTime,
        /// When the response is generated.
        end: SimTime,
    },
}

/// What triggered a client-side request flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushCause {
    /// The pipeline buffer threshold was reached.
    Buffer,
    /// The application forced the flush (first request, or discovery
    /// complete with nothing pending).
    App,
    /// The backstop flush timer fired — the application *missed* a flush
    /// and paid the timer latency (the paper's extra-RTT bug).
    Timer,
}

impl FlushCause {
    /// Stable lower-case name used in traces and JSON.
    pub fn name(self) -> &'static str {
        match self {
            FlushCause::Buffer => "buffer",
            FlushCause::App => "app",
            FlushCause::Timer => "timer",
        }
    }
}

/// The payload of one probe record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeEventKind {
    /// An active open was initiated (client side; the SYN leaves now).
    ConnOpen,
    /// A passive open accepted a SYN (server side).
    ConnAccepted,
    /// An event from the TCP state machine.
    Tcp(TcpProbeEvent),
    /// A segment was handed to the link.
    WireTx {
        /// Bytes occupied on the physical wire (after link compression).
        bytes: usize,
        /// Whether the segment carries application payload.
        payload: bool,
        /// When the link starts serializing the segment.
        serialize_start: SimTime,
        /// When the last bit leaves the transmitter.
        serialize_end: SimTime,
        /// When the segment reaches the far end.
        arrival: SimTime,
    },
    /// An HTTP-layer span mark.
    Span(SpanEvent),
}

/// One timestamped, addressed probe event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeRecord {
    /// When the event happened (simulated clock).
    pub at: SimTime,
    /// The host the event belongs to (the sender for [`ProbeEventKind::WireTx`]).
    pub host: HostId,
    /// Local address of the owning socket.
    pub local: SockAddr,
    /// Remote address of the owning socket.
    pub remote: SockAddr,
    /// What happened.
    pub kind: ProbeEventKind,
}

/// The kernel-owned event collector. Disabled by default: recording a
/// disabled sink is a single branch and the record vector never
/// allocates, so runs without the probe are bit-identical to builds
/// before it existed.
#[derive(Debug, Default)]
pub struct ProbeSink {
    enabled: bool,
    records: Vec<ProbeRecord>,
}

impl ProbeSink {
    /// Whether the sink is collecting.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Start collecting.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Append a record (no-op while disabled).
    pub fn record(&mut self, rec: ProbeRecord) {
        if self.enabled {
            self.records.push(rec);
        }
    }

    /// The records collected so far, in event order.
    pub fn records(&self) -> &[ProbeRecord] {
        &self.records
    }
}

/// Elapsed seconds decomposed by cause. Buckets are disjoint and sum to
/// the attributed window (see the module docs for the priority order).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StallBuckets {
    /// SYN handshakes: active open to `Established`.
    pub connection_setup: f64,
    /// Round-trip waits with payload in flight or the congestion window
    /// exhausted — the slow-start ramp and steady-state RTT cost.
    pub slow_start: f64,
    /// Sub-MSS data held by the Nagle algorithm.
    pub nagle_hold: f64,
    /// A receiver sat on an acknowledgement (delayed-ACK timer armed,
    /// nothing in flight).
    pub delayed_ack_wait: f64,
    /// Retransmission-timeout and fast-retransmit recovery.
    pub rto_recovery: f64,
    /// Sender blocked on the peer's advertised window (backpressure).
    pub recv_window: f64,
    /// The server CPU was the bottleneck.
    pub server_think: f64,
    /// The wire was actually busy serializing bits.
    pub serialization: f64,
    /// None of the above: client CPU and genuine idle gaps.
    pub idle: f64,
}

impl StallBuckets {
    /// Sum of all buckets (should equal the attributed elapsed time).
    pub fn sum(&self) -> f64 {
        self.connection_setup
            + self.slow_start
            + self.nagle_hold
            + self.delayed_ack_wait
            + self.rto_recovery
            + self.recv_window
            + self.server_think
            + self.serialization
            + self.idle
    }

    /// `(name, seconds)` pairs in the fixed reporting order.
    pub fn entries(&self) -> [(&'static str, f64); 9] {
        [
            ("connection_setup", self.connection_setup),
            ("slow_start", self.slow_start),
            ("nagle_hold", self.nagle_hold),
            ("delayed_ack_wait", self.delayed_ack_wait),
            ("rto_recovery", self.rto_recovery),
            ("recv_window", self.recv_window),
            ("server_think", self.server_think),
            ("serialization", self.serialization),
            ("idle", self.idle),
        ]
    }
}

/// An automatically detected pathology from the paper.
#[derive(Debug, Clone, PartialEq)]
pub enum Diagnosis {
    /// The Nagle algorithm held sub-MSS pipelined data while the peer's
    /// delayed-ACK timer counted down — the paper's pipelining deadlock.
    NaglePipelining {
        /// Local address of the held socket.
        local: SockAddr,
        /// Remote address of the held socket.
        remote: SockAddr,
        /// Total time the hold overlapped a pending delayed ACK, seconds.
        stall_secs: f64,
    },
    /// A request sat in the output buffer until the backstop flush timer
    /// fired — the application missed a flush and paid the timer latency
    /// (the paper's "lost" RTT).
    MissedFlushExtraRtt {
        /// How many timer-triggered flushes occurred.
        count: u32,
        /// The worst queued→written gap over those flushes, seconds.
        worst_gap_secs: f64,
    },
}

/// The fixed-size, `Copy` summary that rides along with a cell result.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProbeReport {
    /// The stall decomposition.
    pub buckets: StallBuckets,
    /// The attributed window, seconds (equals the trace's elapsed time).
    pub elapsed: f64,
    /// Connections observed (active opens).
    pub connections: u32,
    /// Requests observed (queue marks).
    pub requests: u32,
    /// Number of [`Diagnosis::NaglePipelining`] findings.
    pub nagle_pipelining: u32,
    /// Number of timer-triggered (missed) flushes.
    pub missed_flushes: u32,
}

/// Lifecycle of one request as seen by the probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestSpan {
    /// Request target path.
    pub path: String,
    /// Local address of the connection that carried it.
    pub local: SockAddr,
    /// Remote address of the connection that carried it.
    pub remote: SockAddr,
    /// When the client generated the request.
    pub queued: SimTime,
    /// When it was handed to the socket.
    pub written: Option<SimTime>,
    /// When the first response byte arrived.
    pub first_byte: Option<SimTime>,
    /// When the full response was parsed.
    pub complete: Option<SimTime>,
}

/// Per-connection summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnSummary {
    /// Local address.
    pub local: SockAddr,
    /// Remote address.
    pub remote: SockAddr,
    /// When the active open was initiated.
    pub opened: SimTime,
    /// When the connection established, if it did.
    pub established: Option<SimTime>,
}

/// The full output of [`attribute`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeAnalysis {
    /// The `Copy` summary.
    pub report: ProbeReport,
    /// Start of the attributed window.
    pub start: SimTime,
    /// End of the attributed window.
    pub end: SimTime,
    /// Client connections, in open order.
    pub connections: Vec<ConnSummary>,
    /// Request spans, in queue order.
    pub requests: Vec<RequestSpan>,
    /// Detected pathologies.
    pub diagnoses: Vec<Diagnosis>,
}

/// A set of half-open `[start, end)` nanosecond intervals with merge and
/// point-membership queries.
#[derive(Debug, Default)]
struct Intervals(Vec<(u64, u64)>);

impl Intervals {
    fn push(&mut self, s: u64, e: u64, lo: u64, hi: u64) {
        let s = s.clamp(lo, hi);
        let e = e.clamp(lo, hi);
        if e > s {
            self.0.push((s, e));
        }
    }

    /// Sort and merge into disjoint intervals.
    fn normalize(&mut self) {
        self.0.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.0.len());
        for &(s, e) in &self.0 {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        self.0 = merged;
    }

    /// Whether `t` falls inside any interval (requires `normalize`).
    fn covers(&self, t: u64) -> bool {
        match self.0.partition_point(|&(s, _)| s <= t) {
            0 => false,
            i => t < self.0[i - 1].1,
        }
    }

    fn endpoints<'a>(&'a self) -> impl Iterator<Item = u64> + 'a {
        self.0.iter().flat_map(|&(s, e)| [s, e])
    }
}

/// A socket identity as the probe keys it: owner host plus four-tuple.
type ConnKey = (HostId, SockAddr, SockAddr);

/// A small deterministic map over the handful of live connections.
#[derive(Debug, Default)]
struct PendingMap(Vec<(ConnKey, u64)>);

impl PendingMap {
    /// Set the start mark unless one is already pending.
    fn set(&mut self, key: ConnKey, at: u64) {
        if !self.0.iter().any(|(k, _)| *k == key) {
            self.0.push((key, at));
        }
    }

    /// Remove and return the pending start, if any.
    fn clear(&mut self, key: ConnKey) -> Option<u64> {
        let i = self.0.iter().position(|(k, _)| *k == key)?;
        Some(self.0.swap_remove(i).1)
    }

    /// Drain everything (used to extend unresolved holds to window end).
    fn drain(&mut self) -> Vec<(ConnKey, u64)> {
        std::mem::take(&mut self.0)
    }
}

/// Decompose the window `[start, end]` of a finished run into
/// [`StallBuckets`], request spans, connection summaries and
/// [`Diagnosis`] findings. `records` must be in recording order (as
/// [`ProbeSink`] yields them).
pub fn attribute(records: &[ProbeRecord], start: SimTime, end: SimTime) -> ProbeAnalysis {
    let lo = start.as_nanos();
    let hi = end.as_nanos().max(lo);

    let mut handshake = Intervals::default();
    let mut nagle = Intervals::default();
    let mut rwnd = Intervals::default();
    let mut rto = Intervals::default();
    let mut delack = Intervals::default();
    let mut server = Intervals::default();
    let mut wire = Intervals::default();
    let mut flight = Intervals::default();

    // Per-connection interval lists kept for the Nagle×delayed-ACK
    // overlap diagnosis.
    let mut nagle_per_conn: Vec<(ConnKey, u64, u64)> = Vec::new();
    let mut delack_per_conn: Vec<(ConnKey, u64, u64)> = Vec::new();

    let mut pending_handshake = PendingMap::default();
    let mut pending_nagle = PendingMap::default();
    let mut pending_rwnd = PendingMap::default();
    let mut pending_cwnd = PendingMap::default();
    let mut pending_rto = PendingMap::default();
    let mut pending_delack = PendingMap::default();
    // Sample-driven in-flight spans: (key, since) while in_flight > 0.
    let mut pending_flight = PendingMap::default();

    let mut connections: Vec<ConnSummary> = Vec::new();
    let mut requests: Vec<RequestSpan> = Vec::new();
    let mut missed_flushes = 0u32;
    let mut worst_missed_gap = 0u64;

    for rec in records {
        let t = rec.at.as_nanos();
        let key: ConnKey = (rec.host, rec.local, rec.remote);
        match &rec.kind {
            ProbeEventKind::ConnOpen => {
                pending_handshake.set(key, t);
                connections.push(ConnSummary {
                    local: rec.local,
                    remote: rec.remote,
                    opened: rec.at,
                    established: None,
                });
            }
            ProbeEventKind::ConnAccepted => {}
            ProbeEventKind::Tcp(ev) => match ev {
                TcpProbeEvent::Established => {
                    if let Some(s) = pending_handshake.clear(key) {
                        handshake.push(s, t, lo, hi);
                        if let Some(c) = connections
                            .iter_mut()
                            .rev()
                            .find(|c| c.local == rec.local && c.remote == rec.remote)
                        {
                            c.established = Some(rec.at);
                        }
                    }
                }
                TcpProbeEvent::Sample { in_flight, .. } => {
                    // A new acknowledgement (or send) sample ends any
                    // recovery period and refreshes the in-flight span.
                    if let Some(s) = pending_rto.clear(key) {
                        rto.push(s, t, lo, hi);
                    }
                    if let Some(s) = pending_cwnd.clear(key) {
                        flight.push(s, t, lo, hi);
                    }
                    if *in_flight > 0 {
                        pending_flight.set(key, t);
                    } else if let Some(s) = pending_flight.clear(key) {
                        flight.push(s, t, lo, hi);
                    }
                }
                TcpProbeEvent::SendBlocked { reason, .. } => match reason {
                    BlockReason::Nagle => pending_nagle.set(key, t),
                    BlockReason::Cwnd => pending_cwnd.set(key, t),
                    BlockReason::PeerWindow => pending_rwnd.set(key, t),
                },
                TcpProbeEvent::ZeroWindow => pending_rwnd.set(key, t),
                TcpProbeEvent::DelAckArm { .. } => pending_delack.set(key, t),
                TcpProbeEvent::DelAckFlush => {
                    if let Some(s) = pending_delack.clear(key) {
                        delack.push(s, t, lo, hi);
                        delack_per_conn.push((key, s, t));
                    }
                }
                TcpProbeEvent::TimerFired { kind } => {
                    if *kind == TimerKind::DelAck {
                        if let Some(s) = pending_delack.clear(key) {
                            delack.push(s, t, lo, hi);
                            delack_per_conn.push((key, s, t));
                        }
                    }
                }
                TcpProbeEvent::RtoFire | TcpProbeEvent::FastRetransmit => {
                    pending_rto.set(key, t);
                }
            },
            ProbeEventKind::WireTx {
                payload,
                serialize_start,
                serialize_end,
                arrival,
                ..
            } => {
                wire.push(serialize_start.as_nanos(), serialize_end.as_nanos(), lo, hi);
                if *payload {
                    flight.push(serialize_start.as_nanos(), arrival.as_nanos(), lo, hi);
                    // A payload segment leaving this socket ends any
                    // send-side hold on it.
                    if let Some(s) = pending_nagle.clear(key) {
                        nagle.push(s, t, lo, hi);
                        nagle_per_conn.push((key, s, t));
                    }
                    if let Some(s) = pending_rwnd.clear(key) {
                        rwnd.push(s, t, lo, hi);
                    }
                    if let Some(s) = pending_cwnd.clear(key) {
                        flight.push(s, t, lo, hi);
                    }
                }
            }
            ProbeEventKind::Span(span) => match span {
                SpanEvent::RequestQueued { path } => requests.push(RequestSpan {
                    path: path.clone(),
                    local: rec.local,
                    remote: rec.remote,
                    queued: rec.at,
                    written: None,
                    first_byte: None,
                    complete: None,
                }),
                SpanEvent::RequestWritten { count, cause } => {
                    let mut oldest_gap = 0u64;
                    let mut left = *count;
                    for r in requests.iter_mut() {
                        if left == 0 {
                            break;
                        }
                        if r.local == rec.local && r.remote == rec.remote && r.written.is_none() {
                            r.written = Some(rec.at);
                            oldest_gap = oldest_gap.max(t - r.queued.as_nanos().min(t));
                            left -= 1;
                        }
                    }
                    if *cause == FlushCause::Timer {
                        missed_flushes += 1;
                        worst_missed_gap = worst_missed_gap.max(oldest_gap);
                    }
                }
                SpanEvent::FirstByte => {
                    if let Some(r) = requests.iter_mut().find(|r| {
                        r.local == rec.local && r.remote == rec.remote && r.complete.is_none()
                    }) {
                        if r.first_byte.is_none() {
                            r.first_byte = Some(rec.at);
                        }
                    }
                }
                SpanEvent::BodyComplete { .. } => {
                    if let Some(r) = requests.iter_mut().find(|r| {
                        r.local == rec.local && r.remote == rec.remote && r.complete.is_none()
                    }) {
                        if r.first_byte.is_none() {
                            r.first_byte = Some(rec.at);
                        }
                        r.complete = Some(rec.at);
                    }
                }
                SpanEvent::ServerThink { start, end } => {
                    server.push(start.as_nanos(), end.as_nanos(), lo, hi);
                }
            },
        }
    }

    // Unresolved holds extend to the end of the window.
    for (_, s) in pending_handshake.drain() {
        handshake.push(s, hi, lo, hi);
    }
    for (key, s) in pending_nagle.drain() {
        nagle.push(s, hi, lo, hi);
        nagle_per_conn.push((key, s, hi));
    }
    for (_, s) in pending_rwnd.drain() {
        rwnd.push(s, hi, lo, hi);
    }
    for (_, s) in pending_cwnd.drain() {
        flight.push(s, hi, lo, hi);
    }
    for (_, s) in pending_rto.drain() {
        rto.push(s, hi, lo, hi);
    }
    for (key, s) in pending_delack.drain() {
        delack.push(s, hi, lo, hi);
        delack_per_conn.push((key, s, hi));
    }
    for (_, s) in pending_flight.drain() {
        flight.push(s, hi, lo, hi);
    }

    for iv in [
        &mut handshake,
        &mut nagle,
        &mut rwnd,
        &mut rto,
        &mut delack,
        &mut server,
        &mut wire,
        &mut flight,
    ] {
        iv.normalize();
    }

    // Split the window at every interval endpoint and classify each gap.
    let mut bounds: Vec<u64> = Vec::new();
    bounds.push(lo);
    bounds.push(hi);
    for iv in [
        &handshake, &nagle, &rwnd, &rto, &delack, &server, &wire, &flight,
    ] {
        bounds.extend(iv.endpoints().filter(|&t| t >= lo && t <= hi));
    }
    bounds.sort_unstable();
    bounds.dedup();

    let mut buckets = StallBuckets::default();
    for w in bounds.windows(2) {
        let (a, b) = (w[0], w[1]);
        let mid = a + (b - a) / 2;
        let secs = SimDuration::from_nanos(b - a).as_secs_f64();
        if rto.covers(mid) {
            buckets.rto_recovery += secs;
        } else if wire.covers(mid) {
            buckets.serialization += secs;
        } else if nagle.covers(mid) {
            buckets.nagle_hold += secs;
        } else if rwnd.covers(mid) {
            buckets.recv_window += secs;
        } else if handshake.covers(mid) {
            buckets.connection_setup += secs;
        } else if server.covers(mid) {
            buckets.server_think += secs;
        } else if delack.covers(mid) && !flight.covers(mid) {
            buckets.delayed_ack_wait += secs;
        } else if flight.covers(mid) {
            buckets.slow_start += secs;
        } else {
            buckets.idle += secs;
        }
    }

    // Diagnoses. Nagle×delayed-ACK: a send-side hold overlapping a
    // pending delayed ACK on the *peer* side of the same connection.
    let mut diagnoses: Vec<Diagnosis> = Vec::new();
    let mut nagle_conns: Vec<(ConnKey, u64)> = Vec::new();
    for &((host, local, remote), s, e) in &nagle_per_conn {
        let mut overlap = 0u64;
        for &((peer_host, peer_local, peer_remote), s2, e2) in &delack_per_conn {
            if peer_host != host && peer_local == remote && peer_remote == local {
                let o = e.min(e2).saturating_sub(s.max(s2));
                overlap += o;
            }
        }
        if overlap > 0 {
            match nagle_conns
                .iter_mut()
                .find(|(k, _)| k.1 == local && k.2 == remote)
            {
                Some((_, total)) => *total += overlap,
                None => nagle_conns.push(((host, local, remote), overlap)),
            }
        }
    }
    for ((_, local, remote), total) in nagle_conns {
        diagnoses.push(Diagnosis::NaglePipelining {
            local,
            remote,
            stall_secs: SimDuration::from_nanos(total).as_secs_f64(),
        });
    }
    if missed_flushes > 0 {
        diagnoses.push(Diagnosis::MissedFlushExtraRtt {
            count: missed_flushes,
            worst_gap_secs: SimDuration::from_nanos(worst_missed_gap).as_secs_f64(),
        });
    }

    let report = ProbeReport {
        buckets,
        elapsed: SimDuration::from_nanos(hi - lo).as_secs_f64(),
        connections: connections.len() as u32,
        requests: requests.len() as u32,
        nagle_pipelining: diagnoses
            .iter()
            .filter(|d| matches!(d, Diagnosis::NaglePipelining { .. }))
            .count() as u32,
        missed_flushes,
    };

    ProbeAnalysis {
        report,
        start,
        end,
        connections,
        requests,
        diagnoses,
    }
}

use crate::json::escape as json_escape;

/// Seconds as a JSON number: shortest representation that round-trips
/// exactly (see [`crate::json::number`]).
fn json_secs(secs: f64) -> String {
    crate::json::number(secs)
}

fn json_time(t: SimTime) -> String {
    json_secs(t.as_secs_f64())
}

fn json_opt_time(t: Option<SimTime>) -> String {
    match t {
        Some(t) => json_time(t),
        None => "null".to_string(),
    }
}

impl ProbeAnalysis {
    /// Render the analysis as a stable, hand-rolled JSON document.
    /// Field order and float formatting are fixed, so identical runs
    /// produce byte-identical output.
    pub fn render_json(&self, label: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"cell\": \"{}\",\n", json_escape(label)));
        out.push_str(&format!(
            "  \"elapsed_secs\": {},\n",
            json_secs(self.report.elapsed)
        ));
        out.push_str("  \"buckets\": {\n");
        let entries = self.report.buckets.entries();
        for (i, (name, secs)) in entries.iter().enumerate() {
            let comma = if i + 1 < entries.len() { "," } else { "" };
            out.push_str(&format!("    \"{name}\": {}{comma}\n", json_secs(*secs)));
        }
        out.push_str("  },\n");
        out.push_str(&format!(
            "  \"bucket_sum_secs\": {},\n",
            json_secs(self.report.buckets.sum())
        ));
        out.push_str("  \"connections\": [\n");
        for (i, c) in self.connections.iter().enumerate() {
            let comma = if i + 1 < self.connections.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!(
                "    {{\"local\": \"{}\", \"remote\": \"{}\", \"opened\": {}, \"established\": {}}}{comma}\n",
                c.local,
                c.remote,
                json_time(c.opened),
                json_opt_time(c.established),
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"requests\": [\n");
        for (i, r) in self.requests.iter().enumerate() {
            let comma = if i + 1 < self.requests.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"path\": \"{}\", \"conn\": \"{}>{}\", \"queued\": {}, \"written\": {}, \"first_byte\": {}, \"complete\": {}}}{comma}\n",
                json_escape(&r.path),
                r.local,
                r.remote,
                json_time(r.queued),
                json_opt_time(r.written),
                json_opt_time(r.first_byte),
                json_opt_time(r.complete),
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"diagnoses\": [\n");
        for (i, d) in self.diagnoses.iter().enumerate() {
            let comma = if i + 1 < self.diagnoses.len() {
                ","
            } else {
                ""
            };
            match d {
                Diagnosis::NaglePipelining {
                    local,
                    remote,
                    stall_secs,
                } => out.push_str(&format!(
                    "    {{\"kind\": \"nagle_pipelining\", \"conn\": \"{local}>{remote}\", \"stall_secs\": {}}}{comma}\n",
                    json_secs(*stall_secs)
                )),
                Diagnosis::MissedFlushExtraRtt {
                    count,
                    worst_gap_secs,
                } => out.push_str(&format!(
                    "    {{\"kind\": \"missed_flush_extra_rtt\", \"count\": {count}, \"worst_gap_secs\": {}}}{comma}\n",
                    json_secs(*worst_gap_secs)
                )),
            }
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    fn key() -> (HostId, SockAddr, SockAddr) {
        (
            HostId(0),
            SockAddr::new(HostId(0), 1000),
            SockAddr::new(HostId(1), 80),
        )
    }

    fn rec(at: SimTime, kind: ProbeEventKind) -> ProbeRecord {
        let (host, local, remote) = key();
        ProbeRecord {
            at,
            host,
            local,
            remote,
            kind,
        }
    }

    fn peer_rec(at: SimTime, kind: ProbeEventKind) -> ProbeRecord {
        let (_, local, remote) = key();
        ProbeRecord {
            at,
            host: remote.host,
            local: remote,
            remote: local,
            kind,
        }
    }

    #[test]
    fn intervals_merge_and_cover() {
        let mut iv = Intervals::default();
        iv.push(10, 20, 0, 100);
        iv.push(15, 30, 0, 100);
        iv.push(50, 60, 0, 100);
        iv.normalize();
        assert_eq!(iv.0, vec![(10, 30), (50, 60)]);
        assert!(iv.covers(10));
        assert!(iv.covers(29));
        assert!(!iv.covers(30));
        assert!(!iv.covers(40));
        assert!(iv.covers(55));
        assert!(!iv.covers(60));
        assert!(!iv.covers(5));
    }

    #[test]
    fn buckets_sum_to_elapsed_on_synthetic_stream() {
        // 0–10ms handshake, 10–20ms serialization, 20–120ms Nagle hold,
        // rest idle.
        let records = vec![
            rec(t(0), ProbeEventKind::ConnOpen),
            rec(t(10), ProbeEventKind::Tcp(TcpProbeEvent::Established)),
            rec(
                t(10),
                ProbeEventKind::WireTx {
                    bytes: 100,
                    payload: false,
                    serialize_start: t(10),
                    serialize_end: t(20),
                    arrival: t(20),
                },
            ),
            rec(
                t(20),
                ProbeEventKind::Tcp(TcpProbeEvent::SendBlocked {
                    reason: BlockReason::Nagle,
                    pending: 100,
                }),
            ),
            rec(
                t(120),
                ProbeEventKind::WireTx {
                    bytes: 140,
                    payload: true,
                    serialize_start: t(120),
                    serialize_end: t(120),
                    arrival: t(120),
                },
            ),
        ];
        let a = attribute(&records, t(0), t(200));
        let b = a.report.buckets;
        assert!((b.sum() - 0.2).abs() < 1e-9, "sum {} != 0.2", b.sum());
        assert!((b.connection_setup - 0.01).abs() < 1e-9);
        assert!((b.serialization - 0.01).abs() < 1e-9);
        assert!((b.nagle_hold - 0.1).abs() < 1e-9);
        assert!((b.idle - 0.08).abs() < 1e-9);
        assert_eq!(a.report.connections, 1);
    }

    #[test]
    fn nagle_delack_overlap_diagnosed() {
        let records = vec![
            rec(t(0), ProbeEventKind::ConnOpen),
            rec(t(1), ProbeEventKind::Tcp(TcpProbeEvent::Established)),
            // Client holds sub-MSS data from 10ms.
            rec(
                t(10),
                ProbeEventKind::Tcp(TcpProbeEvent::SendBlocked {
                    reason: BlockReason::Nagle,
                    pending: 190,
                }),
            ),
            // Server's delayed-ACK timer armed over the same period.
            peer_rec(
                t(12),
                ProbeEventKind::Tcp(TcpProbeEvent::DelAckArm { deadline: t(212) }),
            ),
            peer_rec(
                t(212),
                ProbeEventKind::Tcp(TcpProbeEvent::TimerFired {
                    kind: TimerKind::DelAck,
                }),
            ),
            rec(
                t(213),
                ProbeEventKind::WireTx {
                    bytes: 230,
                    payload: true,
                    serialize_start: t(213),
                    serialize_end: t(213),
                    arrival: t(214),
                },
            ),
        ];
        let a = attribute(&records, t(0), t(250));
        assert_eq!(a.report.nagle_pipelining, 1);
        let Some(Diagnosis::NaglePipelining { stall_secs, .. }) = a
            .diagnoses
            .iter()
            .find(|d| matches!(d, Diagnosis::NaglePipelining { .. }))
        else {
            panic!("expected a NaglePipelining diagnosis: {:?}", a.diagnoses);
        };
        assert!((stall_secs - 0.2).abs() < 1e-6, "overlap ~200ms");
        assert!(a.report.buckets.nagle_hold > 0.19);
    }

    #[test]
    fn delack_wait_without_flight_is_bucketed() {
        let records = vec![
            rec(
                t(10),
                ProbeEventKind::Tcp(TcpProbeEvent::DelAckArm { deadline: t(210) }),
            ),
            rec(
                t(210),
                ProbeEventKind::Tcp(TcpProbeEvent::TimerFired {
                    kind: TimerKind::DelAck,
                }),
            ),
        ];
        let a = attribute(&records, t(0), t(300));
        assert!((a.report.buckets.delayed_ack_wait - 0.2).abs() < 1e-9);
        assert!((a.report.buckets.sum() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn missed_flush_diagnosed_from_timer_cause() {
        let records = vec![
            rec(
                t(0),
                ProbeEventKind::Span(SpanEvent::RequestQueued { path: "/a".into() }),
            ),
            rec(
                t(1000),
                ProbeEventKind::Span(SpanEvent::RequestWritten {
                    count: 1,
                    cause: FlushCause::Timer,
                }),
            ),
        ];
        let a = attribute(&records, t(0), t(1500));
        assert_eq!(a.report.missed_flushes, 1);
        let Some(Diagnosis::MissedFlushExtraRtt {
            count,
            worst_gap_secs,
        }) = a.diagnoses.first()
        else {
            panic!("expected MissedFlushExtraRtt");
        };
        assert_eq!(*count, 1);
        assert!((worst_gap_secs - 1.0).abs() < 1e-9);
        assert_eq!(a.requests.len(), 1);
        assert_eq!(a.requests[0].written, Some(t(1000)));
    }

    #[test]
    fn request_spans_pair_in_order() {
        let records = vec![
            rec(
                t(0),
                ProbeEventKind::Span(SpanEvent::RequestQueued { path: "/a".into() }),
            ),
            rec(
                t(1),
                ProbeEventKind::Span(SpanEvent::RequestQueued { path: "/b".into() }),
            ),
            rec(
                t(2),
                ProbeEventKind::Span(SpanEvent::RequestWritten {
                    count: 2,
                    cause: FlushCause::App,
                }),
            ),
            rec(t(5), ProbeEventKind::Span(SpanEvent::FirstByte)),
            rec(
                t(6),
                ProbeEventKind::Span(SpanEvent::BodyComplete { path: "/a".into() }),
            ),
            rec(
                t(8),
                ProbeEventKind::Span(SpanEvent::BodyComplete { path: "/b".into() }),
            ),
        ];
        let a = attribute(&records, t(0), t(10));
        assert_eq!(a.requests.len(), 2);
        assert_eq!(a.requests[0].first_byte, Some(t(5)));
        assert_eq!(a.requests[0].complete, Some(t(6)));
        assert_eq!(a.requests[1].written, Some(t(2)));
        // The second response's arrival doubles as its first byte.
        assert_eq!(a.requests[1].first_byte, Some(t(8)));
        assert_eq!(a.requests[1].complete, Some(t(8)));
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut sink = ProbeSink::default();
        assert!(!sink.enabled());
        sink.record(rec(t(0), ProbeEventKind::ConnOpen));
        assert!(sink.records().is_empty());
        sink.enable();
        sink.record(rec(t(0), ProbeEventKind::ConnOpen));
        assert_eq!(sink.records().len(), 1);
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let records = vec![
            rec(t(0), ProbeEventKind::ConnOpen),
            rec(t(1), ProbeEventKind::Tcp(TcpProbeEvent::Established)),
            rec(
                t(2),
                ProbeEventKind::Span(SpanEvent::RequestQueued {
                    path: "/we\"ird".into(),
                }),
            ),
        ];
        let a = attribute(&records, t(0), t(10));
        let one = a.render_json("lan/pipelined");
        let two = a.render_json("lan/pipelined");
        assert_eq!(one, two);
        assert!(one.contains("\"cell\": \"lan/pipelined\""));
        assert!(one.contains("/we\\\"ird"));
        assert!(one.contains("\"bucket_sum_secs\""));
    }
}
