//! Deterministic network impairment and fault injection.
//!
//! The paper measures protocols over clean links, but the interesting
//! protocol mechanics (slow start, fast retransmit, RTO backoff) only show
//! their character when the network misbehaves. This module provides a
//! composable impairment pipeline attached to each link direction:
//!
//! * **loss** — deterministic every-n-th, independent Bernoulli, or
//!   Gilbert–Elliott two-state bursty loss ([`LossModel`]);
//! * **jitter** — seeded random extra delay with a configurable
//!   distribution ([`JitterModel`]), optionally allowed to reorder packets;
//! * **duplication** — a delivered packet occasionally arrives twice;
//! * **outages** — scheduled down intervals during which every packet is
//!   dropped ([`Outage`]), including periodic link flaps;
//! * **queue overflow** — an optional bound on the serialization backlog,
//!   modelling a tail-drop buffer in front of the link.
//!
//! ## Determinism contract
//!
//! All randomness comes from one xoshiro256++ generator per link direction,
//! seeded from [`ImpairConfig::seed`] (each direction derives its own
//! stream, so forward and reverse impairments are independent but both
//! reproducible). Identical seeds and identical traffic yield byte-identical
//! traces — impairment decisions are part of the discrete-event state, never
//! wall-clock dependent. A configuration where every model is disabled draws
//! no random numbers at all and leaves packet timing bit-identical to an
//! unimpaired link.

use crate::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Why the link dropped a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// The configured [`LossModel`] discarded it.
    Loss,
    /// It was sent while the link was inside a scheduled [`Outage`].
    Outage,
    /// The serialization backlog exceeded the configured queue bound.
    Queue,
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DropReason::Loss => "loss",
            DropReason::Outage => "outage",
            DropReason::Queue => "queue",
        })
    }
}

/// Packet-loss models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// No loss.
    None,
    /// Drop every `n`-th **data-bearing** packet per direction; pure ACKs
    /// are never dropped. This is the deterministic counting model the
    /// retransmission tests rely on (see `LinkConfig::with_drop_every`).
    EveryNth {
        /// The drop interval (`n = 1` drops every data packet).
        n: u64,
    },
    /// Independent (uniform) loss: every packet is dropped with
    /// probability `p`, ACKs included.
    Bernoulli {
        /// Per-packet drop probability in `[0, 1]`.
        p: f64,
    },
    /// Gilbert–Elliott two-state bursty loss. The chain starts in the good
    /// state, takes one transition step per packet, then drops the packet
    /// with the loss probability of the current state.
    GilbertElliott {
        /// Per-packet probability of moving good → bad.
        p_enter_bad: f64,
        /// Per-packet probability of moving bad → good.
        p_exit_bad: f64,
        /// Drop probability while in the good state (usually 0).
        loss_good: f64,
        /// Drop probability while in the bad state (1.0 for hard bursts).
        loss_bad: f64,
    },
}

impl LossModel {
    /// A Gilbert–Elliott parameterization from two intuitive knobs: the
    /// long-run mean loss fraction and the mean burst length in packets.
    /// Losses happen only in the bad state (with probability 1), so
    /// `p_exit_bad = 1 / mean_burst` and the stationary bad-state
    /// probability equals `mean_loss`.
    pub fn bursty(mean_loss: f64, mean_burst: f64) -> LossModel {
        assert!(
            (0.0..1.0).contains(&mean_loss),
            "mean loss must be in [0, 1)"
        );
        assert!(mean_burst >= 1.0, "mean burst length must be >= 1 packet");
        if mean_loss == 0.0 {
            return LossModel::None;
        }
        let p_exit_bad = 1.0 / mean_burst;
        let p_enter_bad = p_exit_bad * mean_loss / (1.0 - mean_loss);
        assert!(
            p_enter_bad <= 1.0,
            "mean loss {mean_loss} unreachable with burst length {mean_burst}"
        );
        LossModel::GilbertElliott {
            p_enter_bad,
            p_exit_bad,
            loss_good: 0.0,
            loss_bad: 1.0,
        }
    }

    fn is_none(&self) -> bool {
        matches!(self, LossModel::None)
    }
}

/// Distributions for the extra delay added to each delivered packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JitterModel {
    /// No extra delay.
    None,
    /// Uniform extra delay in `[min, max]`.
    Uniform {
        /// Smallest extra delay.
        min: SimDuration,
        /// Largest extra delay.
        max: SimDuration,
    },
    /// Exponentially distributed extra delay with the given mean,
    /// truncated at `cap` (a heavy-ish tail without unbounded stalls).
    Exponential {
        /// Mean of the untruncated distribution.
        mean: SimDuration,
        /// Hard upper bound on one sample.
        cap: SimDuration,
    },
}

impl JitterModel {
    fn is_none(&self) -> bool {
        matches!(self, JitterModel::None)
    }
}

/// One scheduled link-down window: packets submitted at `start <= t < end`
/// are dropped with [`DropReason::Outage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// First instant of the outage.
    pub start: SimTime,
    /// First instant after the outage.
    pub end: SimTime,
}

/// The full impairment description for one link. The same configuration is
/// applied to both directions, each with an independent random stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ImpairConfig {
    /// Seed for the per-direction random streams.
    pub seed: u64,
    /// The loss model.
    pub loss: LossModel,
    /// The jitter (extra delay) model.
    pub jitter: JitterModel,
    /// When false (the default), jittered arrivals are clamped so the link
    /// stays FIFO; when true, a lightly delayed packet may overtake a
    /// heavily delayed predecessor, producing genuine reordering.
    pub reorder: bool,
    /// Probability that a delivered packet arrives twice.
    pub duplicate: f64,
    /// Tail-drop bound on the serialization backlog, in bytes; `None`
    /// models an unbounded buffer (the historical behaviour).
    pub queue_bytes: Option<u64>,
    /// Scheduled down windows, sorted by start time.
    pub outages: Vec<Outage>,
}

impl Default for ImpairConfig {
    fn default() -> Self {
        ImpairConfig {
            seed: 0,
            loss: LossModel::None,
            jitter: JitterModel::None,
            reorder: false,
            duplicate: 0.0,
            queue_bytes: None,
            outages: Vec::new(),
        }
    }
}

impl ImpairConfig {
    /// An impairment-free configuration (every model disabled).
    pub fn none() -> Self {
        ImpairConfig::default()
    }

    /// True when every model is disabled: the pipeline is a no-op, draws
    /// no random numbers and never perturbs packet timing.
    pub fn is_passthrough(&self) -> bool {
        self.loss.is_none()
            && self.jitter.is_none()
            && self.duplicate == 0.0
            && self.queue_bytes.is_none()
            && self.outages.is_empty()
    }

    /// Replace the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the loss model.
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        if let LossModel::Bernoulli { p } = loss {
            assert!(
                (0.0..=1.0).contains(&p),
                "loss probability must be in [0,1]"
            );
        }
        self.loss = loss;
        self
    }

    /// Replace the jitter model.
    pub fn with_jitter(mut self, jitter: JitterModel) -> Self {
        if let JitterModel::Uniform { min, max } = jitter {
            assert!(min <= max, "jitter min must not exceed max");
        }
        self.jitter = jitter;
        self
    }

    /// Allow (or forbid) jitter-induced packet reordering.
    pub fn with_reorder(mut self, reorder: bool) -> Self {
        self.reorder = reorder;
        self
    }

    /// Set the per-packet duplication probability.
    pub fn with_duplication(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplication probability must be in [0,1]"
        );
        self.duplicate = p;
        self
    }

    /// Bound the serialization backlog at `bytes` (tail drop beyond it).
    pub fn with_queue_limit(mut self, bytes: u64) -> Self {
        self.queue_bytes = Some(bytes);
        self
    }

    /// Append one scheduled outage window.
    pub fn with_outage(mut self, start: SimTime, end: SimTime) -> Self {
        assert!(start < end, "outage must have positive length");
        self.outages.push(Outage { start, end });
        self.outages.sort_by_key(|o| (o.start, o.end));
        self
    }

    /// Append `count` periodic link flaps: the link goes down for `down`
    /// starting at `first`, then again every `period`.
    pub fn with_flaps(
        mut self,
        first: SimTime,
        down: SimDuration,
        period: SimDuration,
        count: u32,
    ) -> Self {
        assert!(down < period, "flap down-time must be shorter than period");
        let mut start = first;
        for _ in 0..count {
            self = self.with_outage(start, start + down);
            start += period;
        }
        self
    }
}

/// Per-direction runtime state of the impairment pipeline.
#[derive(Debug)]
pub(crate) struct ImpairState {
    rng: SmallRng,
    /// Gilbert–Elliott chain state: currently in the bad state?
    bad: bool,
    /// Data-bearing packets seen (drives [`LossModel::EveryNth`]).
    data_packets: u64,
    /// Latest scheduled arrival, for FIFO clamping when reordering is off.
    last_arrival: SimTime,
    /// Cursor into the (sorted) outage list; submission times are
    /// monotone, so expired windows are skipped exactly once.
    outage_idx: usize,
}

impl ImpairState {
    /// Build the runtime state for one direction, or `None` when the
    /// configuration is a pass-through (the hot path skips the pipeline
    /// entirely and no RNG is ever seeded).
    pub(crate) fn new(cfg: &ImpairConfig, direction: u64) -> Option<ImpairState> {
        if cfg.is_passthrough() {
            return None;
        }
        // Give each direction its own stream: mix the direction index in
        // with an odd constant so seeds 0/1 don't collide with each other.
        let stream = cfg.seed ^ direction.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Some(ImpairState {
            rng: SmallRng::seed_from_u64(stream),
            bad: false,
            data_packets: 0,
            last_arrival: SimTime::ZERO,
            outage_idx: 0,
        })
    }

    /// Decisions made before the packet touches the wire: outage, queue
    /// overflow, loss. Returns the drop reason, or `None` to deliver.
    pub(crate) fn pre_wire(
        &mut self,
        cfg: &ImpairConfig,
        now: SimTime,
        has_payload: bool,
        backlog_bytes: u64,
    ) -> Option<DropReason> {
        while self.outage_idx < cfg.outages.len() && cfg.outages[self.outage_idx].end <= now {
            self.outage_idx += 1;
        }
        if let Some(o) = cfg.outages.get(self.outage_idx) {
            if o.start <= now && now < o.end {
                return Some(DropReason::Outage);
            }
        }

        if let Some(limit) = cfg.queue_bytes {
            if backlog_bytes > limit {
                return Some(DropReason::Queue);
            }
        }

        let lost = match cfg.loss {
            LossModel::None => false,
            LossModel::EveryNth { n } => {
                if has_payload {
                    self.data_packets += 1;
                    self.data_packets % n == 0
                } else {
                    false
                }
            }
            LossModel::Bernoulli { p } => p > 0.0 && self.rng.gen_bool(p),
            LossModel::GilbertElliott {
                p_enter_bad,
                p_exit_bad,
                loss_good,
                loss_bad,
            } => {
                if self.bad {
                    if p_exit_bad > 0.0 && self.rng.gen_bool(p_exit_bad) {
                        self.bad = false;
                    }
                } else if p_enter_bad > 0.0 && self.rng.gen_bool(p_enter_bad) {
                    self.bad = true;
                }
                let p = if self.bad { loss_bad } else { loss_good };
                p > 0.0 && self.rng.gen_bool(p)
            }
        };
        lost.then_some(DropReason::Loss)
    }

    /// Decisions made after serialization: jitter the nominal arrival time
    /// (clamped to FIFO order unless reordering is enabled) and roll for
    /// duplication. Returns the arrival time plus the optional time a
    /// duplicate copy arrives (`dup_gap` spaces the two copies).
    pub(crate) fn post_wire(
        &mut self,
        cfg: &ImpairConfig,
        nominal: SimTime,
        dup_gap: SimDuration,
    ) -> (SimTime, Option<SimTime>) {
        let mut arrival = nominal;
        if !cfg.jitter.is_none() {
            arrival += self.jitter_sample(&cfg.jitter);
            if !cfg.reorder {
                arrival = arrival.max(self.last_arrival);
            }
            self.last_arrival = self.last_arrival.max(arrival);
        }
        let dup = if cfg.duplicate > 0.0 && self.rng.gen_bool(cfg.duplicate) {
            let at = arrival + dup_gap;
            self.last_arrival = self.last_arrival.max(at);
            Some(at)
        } else {
            None
        };
        (arrival, dup)
    }

    // Inverse-transform sampling needs the mean in float ticks: the
    // sampler IS the ns<->float boundary, and rewriting it through
    // SimTime ops would change the sampled values and every seeded
    // digest downstream. simlint: allow(time-unit)
    fn jitter_sample(&mut self, jitter: &JitterModel) -> SimDuration {
        match *jitter {
            JitterModel::None => SimDuration::ZERO,
            JitterModel::Uniform { min, max } => {
                SimDuration::from_nanos(self.rng.gen_range(min.as_nanos()..=max.as_nanos()))
            }
            JitterModel::Exponential { mean, cap } => {
                let u: f64 = self.rng.gen();
                let ns = -(mean.as_nanos() as f64) * (1.0 - u).ln();
                SimDuration::from_nanos((ns as u64).min(cap.as_nanos()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(cfg: &ImpairConfig) -> ImpairState {
        ImpairState::new(cfg, 0).expect("active config")
    }

    #[test]
    fn passthrough_detection() {
        assert!(ImpairConfig::none().is_passthrough());
        assert!(ImpairConfig::default().with_seed(7).is_passthrough());
        assert!(!ImpairConfig::default()
            .with_loss(LossModel::Bernoulli { p: 0.01 })
            .is_passthrough());
        assert!(ImpairState::new(&ImpairConfig::none(), 0).is_none());
    }

    #[test]
    fn bernoulli_rate_roughly_matches() {
        let cfg = ImpairConfig::default()
            .with_seed(42)
            .with_loss(LossModel::Bernoulli { p: 0.1 });
        let mut st = state(&cfg);
        let dropped = (0..100_000)
            .filter(|_| st.pre_wire(&cfg, SimTime::ZERO, true, 0).is_some())
            .count();
        assert!((8_000..12_000).contains(&dropped), "dropped {dropped}");
    }

    #[test]
    fn bursty_loss_clusters() {
        // 10% loss in bursts of mean length 8: the number of distinct
        // burst starts must be far below the number of losses.
        let cfg = ImpairConfig::default()
            .with_seed(9)
            .with_loss(LossModel::bursty(0.10, 8.0));
        let mut st = state(&cfg);
        let outcomes: Vec<bool> = (0..200_000)
            .map(|_| st.pre_wire(&cfg, SimTime::ZERO, true, 0).is_some())
            .collect();
        let losses = outcomes.iter().filter(|&&l| l).count();
        let bursts = outcomes.windows(2).filter(|w| !w[0] && w[1]).count().max(1);
        let mean_burst = losses as f64 / bursts as f64;
        assert!(
            (0.06..0.14).contains(&(losses as f64 / outcomes.len() as f64)),
            "loss rate off: {losses}"
        );
        assert!(mean_burst > 4.0, "bursts too short: {mean_burst}");
    }

    #[test]
    fn identical_seeds_identical_streams() {
        let cfg = ImpairConfig::default()
            .with_seed(0xFEED)
            .with_loss(LossModel::Bernoulli { p: 0.2 })
            .with_jitter(JitterModel::Uniform {
                min: SimDuration::ZERO,
                max: SimDuration::from_millis(5),
            })
            .with_reorder(true)
            .with_duplication(0.05);
        let run = |cfg: &ImpairConfig| {
            let mut st = state(cfg);
            (0..1000)
                .map(|i| {
                    let drop = st.pre_wire(cfg, SimTime::from_nanos(i), true, 0);
                    let (at, dup) =
                        st.post_wire(cfg, SimTime::from_nanos(i), SimDuration::from_micros(1));
                    (drop, at, dup)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(&cfg), run(&cfg));
    }

    #[test]
    fn directions_have_independent_streams() {
        let cfg = ImpairConfig::default()
            .with_seed(1)
            .with_loss(LossModel::Bernoulli { p: 0.5 });
        let mut fwd = ImpairState::new(&cfg, 0).unwrap();
        let mut rev = ImpairState::new(&cfg, 1).unwrap();
        let a: Vec<bool> = (0..64)
            .map(|_| fwd.pre_wire(&cfg, SimTime::ZERO, true, 0).is_some())
            .collect();
        let b: Vec<bool> = (0..64)
            .map(|_| rev.pre_wire(&cfg, SimTime::ZERO, true, 0).is_some())
            .collect();
        assert_ne!(a, b, "directions must not share one stream");
    }

    #[test]
    fn outage_windows_drop_everything_inside() {
        let cfg =
            ImpairConfig::default().with_outage(SimTime::from_nanos(100), SimTime::from_nanos(200));
        let mut st = state(&cfg);
        assert_eq!(st.pre_wire(&cfg, SimTime::from_nanos(50), true, 0), None);
        assert_eq!(
            st.pre_wire(&cfg, SimTime::from_nanos(100), false, 0),
            Some(DropReason::Outage)
        );
        assert_eq!(
            st.pre_wire(&cfg, SimTime::from_nanos(199), true, 0),
            Some(DropReason::Outage)
        );
        assert_eq!(st.pre_wire(&cfg, SimTime::from_nanos(200), true, 0), None);
    }

    #[test]
    fn flaps_expand_to_periodic_outages() {
        let cfg = ImpairConfig::default().with_flaps(
            SimTime::from_nanos(1_000),
            SimDuration::from_nanos(100),
            SimDuration::from_nanos(500),
            3,
        );
        assert_eq!(cfg.outages.len(), 3);
        assert_eq!(cfg.outages[1].start, SimTime::from_nanos(1_500));
        assert_eq!(cfg.outages[2].end, SimTime::from_nanos(2_100));
        let mut st = state(&cfg);
        assert_eq!(
            st.pre_wire(&cfg, SimTime::from_nanos(1_550), true, 0),
            Some(DropReason::Outage)
        );
        // After the last flap the link stays up.
        assert_eq!(st.pre_wire(&cfg, SimTime::from_nanos(9_999), true, 0), None);
    }

    #[test]
    fn queue_limit_tail_drops() {
        let cfg = ImpairConfig::default().with_queue_limit(10_000);
        let mut st = state(&cfg);
        assert_eq!(st.pre_wire(&cfg, SimTime::ZERO, true, 9_999), None);
        assert_eq!(
            st.pre_wire(&cfg, SimTime::ZERO, true, 10_001),
            Some(DropReason::Queue)
        );
    }

    #[test]
    fn fifo_clamp_prevents_reordering() {
        let cfg = ImpairConfig::default()
            .with_seed(3)
            .with_jitter(JitterModel::Uniform {
                min: SimDuration::ZERO,
                max: SimDuration::from_millis(50),
            });
        let mut st = state(&cfg);
        let mut last = SimTime::ZERO;
        for i in 0..500u64 {
            let nominal = SimTime::from_nanos(i * 1_000);
            let (at, _) = st.post_wire(&cfg, nominal, SimDuration::from_micros(1));
            assert!(at >= last, "FIFO violated at packet {i}");
            last = at;
        }
    }

    #[test]
    fn reorder_allows_overtaking() {
        let cfg = ImpairConfig::default()
            .with_seed(3)
            .with_jitter(JitterModel::Uniform {
                min: SimDuration::ZERO,
                max: SimDuration::from_millis(50),
            })
            .with_reorder(true);
        let mut st = state(&cfg);
        let mut last = SimTime::ZERO;
        let mut overtakes = 0;
        for i in 0..500u64 {
            let nominal = SimTime::from_nanos(i * 1_000);
            let (at, _) = st.post_wire(&cfg, nominal, SimDuration::from_micros(1));
            if at < last {
                overtakes += 1;
            }
            last = at;
        }
        assert!(
            overtakes > 50,
            "expected frequent reordering, got {overtakes}"
        );
    }

    #[test]
    fn duplication_emits_later_copy() {
        let cfg = ImpairConfig::default().with_seed(5).with_duplication(1.0);
        let mut st = state(&cfg);
        let (at, dup) = st.post_wire(&cfg, SimTime::from_nanos(100), SimDuration::from_nanos(7));
        assert_eq!(at, SimTime::from_nanos(100));
        assert_eq!(dup, Some(SimTime::from_nanos(107)));
    }

    #[test]
    fn exponential_jitter_capped() {
        let cfg = ImpairConfig::default()
            .with_seed(11)
            .with_jitter(JitterModel::Exponential {
                mean: SimDuration::from_millis(2),
                cap: SimDuration::from_millis(10),
            })
            .with_reorder(true);
        let mut st = state(&cfg);
        for _ in 0..10_000 {
            let (at, _) = st.post_wire(&cfg, SimTime::ZERO, SimDuration::ZERO);
            assert!(at.as_nanos() <= SimDuration::from_millis(10).as_nanos());
        }
    }

    #[test]
    fn bursty_constructor_zero_loss_is_none() {
        assert_eq!(LossModel::bursty(0.0, 4.0), LossModel::None);
    }
}
