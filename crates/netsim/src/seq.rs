//! Wrapping sequence-space arithmetic.
//!
//! TCP sequence numbers live on a circle (RFC 793 §3.3; RFC 1982 serial
//! arithmetic): `a < b` must mean "a is behind b on the circle", which a
//! direct integer comparison gets wrong once the counter wraps. The sim
//! uses 64-bit sequence numbers, so a wrap takes ~2^63 bytes and these
//! helpers are behavior-identical to the direct operators for every
//! reachable distance — but the `seq-wrap` simlint rule still requires
//! them in `tcp.rs` so the TCB stays correct if sequence numbers are
//! ever narrowed to the wire's 32 bits (ROADMAP item 1 moves the TCB
//! into a packed per-client layout where that is the plan of record).
//!
//! All comparisons are strict serial-number comparisons: `a` is "less
//! than" `b` when the signed distance `a - b` is negative, i.e. `a` is
//! at most half the space behind `b`.

/// `a` precedes `b` on the sequence circle.
#[inline]
pub fn seq_lt(a: u64, b: u64) -> bool {
    (a.wrapping_sub(b) as i64) < 0
}

/// `a` precedes or equals `b` on the sequence circle.
#[inline]
pub fn seq_le(a: u64, b: u64) -> bool {
    !seq_gt(a, b)
}

/// `a` follows `b` on the sequence circle.
#[inline]
pub fn seq_gt(a: u64, b: u64) -> bool {
    (b.wrapping_sub(a) as i64) < 0
}

/// `a` follows or equals `b` on the sequence circle.
#[inline]
pub fn seq_ge(a: u64, b: u64) -> bool {
    !seq_lt(a, b)
}

/// Distance from `b` forward to `a` (callers guarantee `seq_ge(a, b)`).
#[inline]
pub fn seq_sub(a: u64, b: u64) -> u64 {
    a.wrapping_sub(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agrees_with_direct_ops_in_normal_range() {
        let pairs = [
            (0u64, 0u64),
            (0, 1),
            (1, 0),
            (5, 1_000_000),
            (u64::MAX / 2, 3),
        ];
        for (a, b) in pairs {
            assert_eq!(seq_lt(a, b), a < b, "lt {a} {b}");
            assert_eq!(seq_le(a, b), a <= b, "le {a} {b}");
            assert_eq!(seq_gt(a, b), a > b, "gt {a} {b}");
            assert_eq!(seq_ge(a, b), a >= b, "ge {a} {b}");
        }
        assert_eq!(seq_sub(7, 3), 4);
    }

    #[test]
    fn correct_across_wraparound() {
        // Just past the wrap: MAX is "behind" 1.
        let before = u64::MAX;
        let after = 1u64;
        assert!(seq_lt(before, after));
        assert!(seq_gt(after, before));
        assert!(!seq_ge(before, after));
        // Distance still measures forward across the wrap.
        assert_eq!(seq_sub(after, before), 2);
        // Direct operators get all of these wrong — that is the point.
        assert!(before > after);
    }

    #[test]
    fn equality_is_symmetric() {
        assert!(seq_le(9, 9));
        assert!(seq_ge(9, 9));
        assert!(!seq_lt(9, 9));
        assert!(!seq_gt(9, 9));
    }
}
