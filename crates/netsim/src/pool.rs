//! Pooled storage with generation-checked handles.
//!
//! A [`Slab`] hands out stable [`Handle`]s to values while reusing
//! vacated slots through an intrusive free list, so a churning
//! population (armed timers, in-flight buffers) stops allocating once
//! the slab reaches its high-water mark. Each slot carries a generation
//! counter bumped on every removal; a handle embeds the generation it
//! was issued under, so a stale handle to a recycled slot is detected
//! (`get` returns `None`) instead of silently aliasing the new
//! occupant — the classic slab-ABA hazard.
//!
//! Determinism note: slot assignment depends only on the sequence of
//! `insert`/`remove` calls, never on addresses or hashes, so pooling is
//! invisible to digest-gated runs.

/// A generation-checked reference to a value in a [`Slab`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Handle {
    index: u32,
    generation: u32,
}

impl Handle {
    /// The raw slot index (stable for the value's lifetime).
    pub fn index(&self) -> u32 {
        self.index
    }
}

enum Slot<T> {
    /// Next free slot index, or `u32::MAX` for the list end.
    Vacant {
        next_free: u32,
        generation: u32,
    },
    Occupied {
        value: T,
        generation: u32,
    },
}

/// A slab allocator: `Vec`-backed storage with O(1) insert/remove and
/// generation-checked handles. See the module docs.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free_head: u32,
    len: usize,
}

const NIL: u32 = u32::MAX;

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab (no allocation until the first insert).
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free_head: NIL,
            len: 0,
        }
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slots ever created (live + pooled); the slab's high-water mark.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Store `value`, reusing a vacated slot when one exists.
    pub fn insert(&mut self, value: T) -> Handle {
        self.len += 1;
        if self.free_head != NIL {
            let index = self.free_head;
            let slot = &mut self.slots[index as usize];
            let Slot::Vacant {
                next_free,
                generation,
            } = *slot
            else {
                unreachable!("free list points at an occupied slot");
            };
            self.free_head = next_free;
            *slot = Slot::Occupied { value, generation };
            Handle { index, generation }
        } else {
            let index = self.slots.len() as u32;
            assert!(index != NIL, "slab exhausted u32 index space");
            self.slots.push(Slot::Occupied {
                value,
                generation: 0,
            });
            Handle {
                index,
                generation: 0,
            }
        }
    }

    /// The value behind `handle`, or `None` if it was removed (stale
    /// generation) or never existed.
    pub fn get(&self, handle: Handle) -> Option<&T> {
        match self.slots.get(handle.index as usize) {
            Some(Slot::Occupied { value, generation }) if *generation == handle.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Mutable access to the value behind `handle`, with the same
    /// staleness check as [`Slab::get`].
    pub fn get_mut(&mut self, handle: Handle) -> Option<&mut T> {
        match self.slots.get_mut(handle.index as usize) {
            Some(Slot::Occupied { value, generation }) if *generation == handle.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Remove and return the value behind `handle`; the slot joins the
    /// free list with a bumped generation. Stale handles return `None`
    /// and change nothing.
    pub fn remove(&mut self, handle: Handle) -> Option<T> {
        let slot = self.slots.get_mut(handle.index as usize)?;
        match slot {
            Slot::Occupied { generation, .. } if *generation == handle.generation => {
                let vacant = Slot::Vacant {
                    next_free: self.free_head,
                    generation: handle.generation.wrapping_add(1),
                };
                let Slot::Occupied { value, .. } = std::mem::replace(slot, vacant) else {
                    unreachable!("matched occupied above");
                };
                self.free_head = handle.index;
                self.len -= 1;
                Some(value)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(a), None);
    }

    #[test]
    fn stale_handle_detected_after_reuse() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        let b = s.insert(2);
        // Slot reused, generation bumped: the old handle is dead.
        assert_eq!(b.index(), a.index());
        assert_ne!(a, b);
        assert_eq!(s.get(a), None);
        assert_eq!(s.remove(a), None);
        assert_eq!(s.get(b), Some(&2));
    }

    #[test]
    fn slots_reused_lifo_without_growth() {
        let mut s = Slab::new();
        let handles: Vec<_> = (0..8).map(|i| s.insert(i)).collect();
        for h in &handles {
            s.remove(*h);
        }
        let cap = s.capacity();
        for i in 0..8 {
            s.insert(i * 10);
        }
        assert_eq!(s.capacity(), cap, "churn must not grow the slab");
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut s = Slab::new();
        let h = s.insert(5);
        *s.get_mut(h).unwrap() += 1;
        assert_eq!(s.get(h), Some(&6));
    }
}
