//! Packet trace capture and the statistics the paper reports.
//!
//! Every packet that arrives (i.e. was not dropped) is recorded, mimicking a
//! `tcpdump` capture on a shared medium. The paper's tables report, per run:
//! packets client→server, packets server→client, total packets, total bytes
//! on the wire, elapsed seconds, and the percentage of bytes that are TCP/IP
//! header overhead — [`TraceStats`] computes all of these.

use crate::packet::{HostId, Segment, TCP_IP_HEADER_BYTES};
use crate::time::SimTime;
use std::fmt;

/// One captured packet.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Time the packet was handed to the link (departure).
    pub sent: SimTime,
    /// Time the packet arrived at the receiving host.
    pub received: SimTime,
    /// The captured segment itself.
    pub segment: Segment,
    /// Bytes the packet occupied on the physical wire (after any link
    /// compression); equals `segment.wire_len()` on uncompressed links.
    pub physical_bytes: usize,
}

/// A full capture of a simulation run.
#[derive(Debug, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Create a new, empty instance.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append a captured packet.
    pub fn record(&mut self, rec: TraceRecord) {
        self.records.push(rec);
    }

    /// True when nothing is contained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of contained elements.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// All captured packets in arrival order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Drop all accumulated contents.
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Statistics over all packets flowing in either direction between the
    /// two hosts, with `client` defining the "client → server" direction.
    pub fn stats(&self, client: HostId, server: HostId) -> TraceStats {
        let mut s = TraceStats::default();
        for rec in &self.records {
            let seg = &rec.segment;
            let (from, to) = (seg.src.host, seg.dst.host);
            if (from, to) == (client, server) {
                s.packets_c2s += 1;
            } else if (from, to) == (server, client) {
                s.packets_s2c += 1;
            } else {
                continue;
            }
            s.bytes += seg.wire_len() as u64;
            s.physical_bytes += rec.physical_bytes as u64;
            s.header_bytes += TCP_IP_HEADER_BYTES as u64;
            s.payload_bytes += seg.payload.len() as u64;
            if seg.flags.syn {
                s.syns += 1;
            }
            if seg.flags.fin {
                s.fins += 1;
            }
            if seg.flags.rst {
                s.rsts += 1;
            }
            if seg.payload.is_empty() && !seg.flags.syn && !seg.flags.fin && !seg.flags.rst {
                s.pure_acks += 1;
            }
            s.first = Some(s.first.map_or(rec.sent, |f: SimTime| f.min(rec.sent)));
            s.last = Some(s.last.map_or(rec.received, |l: SimTime| l.max(rec.received)));
        }
        s
    }

    /// Renders the capture in a compact tcpdump-like text form (useful when
    /// debugging protocol behaviour in tests).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for rec in &self.records {
            out.push_str(&format!("{} {}\n", rec.sent, rec.segment));
        }
        out
    }

    /// Time-sequence points for data flowing out of `from`: one
    /// `(seconds, sequence-end)` pair per data-bearing segment, in
    /// departure order — the series Shepard's `xplot` draws and the paper
    /// used to find its implementation bugs.
    pub fn time_sequence(&self, from: HostId) -> Vec<(f64, u64)> {
        self.records
            .iter()
            .filter(|r| r.segment.src.host == from && r.segment.has_payload())
            .map(|r| (r.sent.as_secs_f64(), r.segment.seq_end()))
            .collect()
    }

    /// Serialize the capture in xplot(1) format: data segments from
    /// `from` as green lines (retransmissions in red) and the returning
    /// ACK series as yellow ticks.
    pub fn xplot(&self, from: HostId, title: &str) -> String {
        use std::collections::HashSet;
        let mut out = String::new();
        out.push_str("timeval unsigned\n");
        out.push_str(&format!("title\n{title}\n"));
        out.push_str("xlabel\ntime\nylabel\nsequence number\n");
        let mut seen: HashSet<(u64, u64)> = HashSet::new();
        for rec in &self.records {
            let seg = &rec.segment;
            if seg.src.host == from && seg.has_payload() {
                let fresh = seen.insert((seg.seq, seg.seq_end()));
                let color = if fresh { "green" } else { "red" };
                out.push_str(&format!(
                    "{color}\nline {:.6} {} {:.6} {}\n",
                    rec.sent.as_secs_f64(),
                    seg.seq,
                    rec.sent.as_secs_f64(),
                    seg.seq_end(),
                ));
            } else if seg.dst.host == from && seg.flags.ack {
                out.push_str(&format!(
                    "yellow\ntick {:.6} {}\n",
                    rec.received.as_secs_f64(),
                    seg.ack
                ));
            }
        }
        out.push_str("go\n");
        out
    }
}

/// Aggregate statistics for one client/server pair — the paper's metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TraceStats {
    /// Packets from the client toward the server.
    pub packets_c2s: u64,
    /// Packets from the server toward the client.
    pub packets_s2c: u64,
    /// Total bytes including 40-byte TCP/IP headers (pre-link-compression).
    pub bytes: u64,
    /// Bytes after link-level (modem) compression, if any.
    pub physical_bytes: u64,
    /// TCP/IP header bytes across all packets.
    pub header_bytes: u64,
    /// Application payload bytes across all packets.
    pub payload_bytes: u64,
    /// Segments carrying SYN.
    pub syns: u64,
    /// Segments carrying FIN.
    pub fins: u64,
    /// Segments carrying RST.
    pub rsts: u64,
    /// Bare acknowledgements (no payload, no flags).
    pub pure_acks: u64,
    /// Departure time of the first packet.
    pub first: Option<SimTime>,
    /// Arrival time of the last packet.
    pub last: Option<SimTime>,
}

impl TraceStats {
    /// Packets in both directions.
    pub fn total_packets(&self) -> u64 {
        self.packets_c2s + self.packets_s2c
    }

    /// Percentage of wire bytes that are TCP/IP header overhead — the
    /// paper's `%ov` column.
    pub fn overhead_pct(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.header_bytes as f64 * 100.0 / self.bytes as f64
        }
    }

    /// Wall-clock span from the first departure to the last arrival.
    pub fn elapsed_secs(&self) -> f64 {
        match (self.first, self.last) {
            (Some(f), Some(l)) => l.since(f).as_secs_f64(),
            _ => 0.0,
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} pkts ({} c2s / {} s2c), {} bytes, {:.1}% ov, {:.2}s",
            self.total_packets(),
            self.packets_c2s,
            self.packets_s2c,
            self.bytes,
            self.overhead_pct(),
            self.elapsed_secs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{SockAddr, TcpFlags};
    use bytes::Bytes;

    fn rec(from: u16, to: u16, flags: TcpFlags, len: usize, t_ns: u64) -> TraceRecord {
        let seg = Segment {
            src: SockAddr::new(HostId(from), 1000),
            dst: SockAddr::new(HostId(to), 80),
            seq: 0,
            ack: 0,
            flags,
            window: 0,
            payload: Bytes::from(vec![0u8; len]),
        };
        let physical = seg.wire_len();
        TraceRecord {
            sent: SimTime::from_nanos(t_ns),
            received: SimTime::from_nanos(t_ns + 100),
            segment: seg,
            physical_bytes: physical,
        }
    }

    #[test]
    fn stats_count_directions() {
        let mut t = Trace::new();
        t.record(rec(0, 1, TcpFlags::SYN, 0, 0));
        t.record(rec(1, 0, TcpFlags::SYN_ACK, 0, 10));
        t.record(rec(0, 1, TcpFlags::ACK, 100, 20));
        let s = t.stats(HostId(0), HostId(1));
        assert_eq!(s.packets_c2s, 2);
        assert_eq!(s.packets_s2c, 1);
        assert_eq!(s.total_packets(), 3);
        assert_eq!(s.bytes, 40 + 40 + 140);
        assert_eq!(s.syns, 2);
        assert_eq!(s.payload_bytes, 100);
    }

    #[test]
    fn overhead_percentage() {
        let mut t = Trace::new();
        t.record(rec(0, 1, TcpFlags::ACK, 360, 0)); // 400 wire bytes, 40 header
        let s = t.stats(HostId(0), HostId(1));
        assert!((s.overhead_pct() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn elapsed_spans_first_to_last() {
        let mut t = Trace::new();
        t.record(rec(0, 1, TcpFlags::ACK, 1, 1_000_000_000));
        t.record(rec(1, 0, TcpFlags::ACK, 1, 3_000_000_000));
        let s = t.stats(HostId(0), HostId(1));
        assert!((s.elapsed_secs() - 2.0000001).abs() < 1e-6);
    }

    #[test]
    fn other_host_pairs_excluded() {
        let mut t = Trace::new();
        t.record(rec(0, 1, TcpFlags::ACK, 1, 0));
        t.record(rec(2, 1, TcpFlags::ACK, 1, 0));
        let s = t.stats(HostId(0), HostId(1));
        assert_eq!(s.total_packets(), 1);
    }

    #[test]
    fn time_sequence_monotone_without_loss() {
        let mut t = Trace::new();
        for (i, len) in [(0u64, 100usize), (1, 200), (2, 300)] {
            t.record(rec(0, 1, TcpFlags::ACK, len, i * 1000));
        }
        let ts = t.time_sequence(HostId(0));
        assert_eq!(ts.len(), 3);
        assert!(ts.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn xplot_marks_retransmissions_red() {
        let mut t = Trace::new();
        let mut seg = rec(0, 1, TcpFlags::ACK, 100, 0);
        seg.segment.seq = 50;
        t.record(seg.clone());
        seg.sent = SimTime::from_nanos(5_000_000);
        t.record(seg); // identical sequence range: a retransmission
        let plot = t.xplot(HostId(0), "demo");
        assert!(plot.contains("green
"));
        assert!(plot.contains("red
"), "{plot}");
        assert!(plot.starts_with("timeval unsigned
"));
        assert!(plot.ends_with("go
"));
    }

    #[test]
    fn pure_ack_classification() {
        let mut t = Trace::new();
        t.record(rec(0, 1, TcpFlags::ACK, 0, 0));
        t.record(rec(0, 1, TcpFlags::ACK, 5, 0));
        t.record(rec(0, 1, TcpFlags::FIN_ACK, 0, 0));
        let s = t.stats(HostId(0), HostId(1));
        assert_eq!(s.pure_acks, 1);
        assert_eq!(s.fins, 1);
    }
}
