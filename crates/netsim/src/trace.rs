//! Packet trace capture and the statistics the paper reports.
//!
//! Every packet that arrives (i.e. was not dropped) is recorded, mimicking a
//! `tcpdump` capture on a shared medium. The paper's tables report, per run:
//! packets client→server, packets server→client, total packets, total bytes
//! on the wire, elapsed seconds, and the percentage of bytes that are TCP/IP
//! header overhead — [`TraceStats`] computes all of these.
//!
//! Capture runs in one of two [`TraceMode`]s. [`TraceMode::Full`] keeps every
//! packet as a [`TraceRecord`] (required for [`Trace::dump`],
//! [`Trace::xplot`] and [`Trace::time_sequence`]). [`TraceMode::StatsOnly`]
//! folds each packet into per-host-pair [`TraceStats`] at arrival time and
//! stores nothing else: no `Segment` clone, no unbounded record vector —
//! the memory cost is O(host pairs) instead of O(packets), which is what the
//! batch experiment matrix wants.

use crate::impair::DropReason;
use crate::packet::{HostId, Segment, SockAddr, TCP_IP_HEADER_BYTES};
use crate::time::SimTime;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// How much of each captured packet the trace retains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum TraceMode {
    /// Keep every packet as a [`TraceRecord`] (tcpdump-style capture).
    #[default]
    Full,
    /// Keep only per-host-pair aggregate [`TraceStats`], updated online.
    StatsOnly,
}

/// One captured packet.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Time the packet was handed to the link (departure).
    pub sent: SimTime,
    /// Time the packet arrived at the receiving host.
    pub received: SimTime,
    /// The captured segment itself.
    pub segment: Segment,
    /// Bytes the packet occupied on the physical wire (after any link
    /// compression); equals `segment.wire_len()` on uncompressed links.
    pub physical_bytes: usize,
}

/// One packet the link refused to deliver (retained in
/// [`TraceMode::Full`] so dumps can show the loss pattern).
#[derive(Debug, Clone)]
pub struct DropRecord {
    /// Time the packet was submitted to the link.
    pub at: SimTime,
    /// The discarded segment.
    pub segment: Segment,
    /// Why the link dropped it.
    pub reason: DropReason,
}

/// Per-host-pair impairment event counters, maintained online in **both**
/// trace modes (they cannot be recomputed from arrival records alone).
#[derive(Debug, Default)]
struct PairEvents {
    drops_loss: u64,
    drops_outage: u64,
    drops_queue: u64,
    dup_packets: u64,
    reordered: u64,
    retransmitted: u64,
    /// Latest departure time seen per direction (index 0 = low→high
    /// host); an arrival whose departure precedes it was reordered.
    last_sent: [Option<SimTime>; 2],
    /// Highest sequence-space end seen per flow; a data segment starting
    /// below it re-covers already-sent octets: a retransmission.
    // xtask: allow(hash-collections): keyed lookup only; never iterated.
    max_seq: HashMap<(SockAddr, SockAddr), u64>,
}

/// A full capture of a simulation run.
#[derive(Debug, Default)]
pub struct Trace {
    mode: TraceMode,
    records: Vec<TraceRecord>,
    /// Online per-pair aggregates, keyed by the (low, high) host pair;
    /// `packets_c2s` counts the low→high direction. Only populated in
    /// [`TraceMode::StatsOnly`].
    // xtask: allow(hash-collections): read per-pair via `stats()`,
    // never iterated.
    pair_stats: HashMap<(HostId, HostId), TraceStats>,
    /// Impairment counters per (low, high) host pair, kept in both modes.
    // xtask: allow(hash-collections): read per-pair, never iterated.
    net_events: HashMap<(HostId, HostId), PairEvents>,
    /// Dropped packets, retained only in [`TraceMode::Full`].
    dropped: Vec<DropRecord>,
    /// Packets observed regardless of mode.
    observed: u64,
}

impl Trace {
    /// Create a new, empty instance in [`TraceMode::Full`].
    pub fn new() -> Self {
        Trace::default()
    }

    /// Create a new, empty instance in the given mode.
    pub fn with_mode(mode: TraceMode) -> Self {
        Trace {
            mode,
            ..Trace::default()
        }
    }

    /// The capture mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Switch capture mode. Affects packets observed from now on; anything
    /// already captured is kept as-is.
    pub fn set_mode(&mut self, mode: TraceMode) {
        self.mode = mode;
    }

    /// Observe one packet without taking ownership of it. In
    /// [`TraceMode::Full`] this clones the segment into a stored
    /// [`TraceRecord`]; in [`TraceMode::StatsOnly`] it only folds the packet
    /// into the per-pair aggregates — the hot path the simulator uses.
    pub fn observe(
        &mut self,
        sent: SimTime,
        received: SimTime,
        segment: &Segment,
        physical_bytes: usize,
    ) {
        self.observed += 1;
        self.track_wire(sent, segment, false);
        match self.mode {
            TraceMode::Full => self.records.push(TraceRecord {
                sent,
                received,
                segment: segment.clone(),
                physical_bytes,
            }),
            TraceMode::StatsOnly => self.accumulate(sent, received, segment, physical_bytes),
        }
    }

    /// Observe the second arrival of a network-duplicated packet. Counted
    /// as a normal on-the-wire packet, plus a duplication event; excluded
    /// from reorder/retransmission detection (the copy is not a TCP-level
    /// retransmission).
    pub fn observe_dup(
        &mut self,
        sent: SimTime,
        received: SimTime,
        segment: &Segment,
        physical_bytes: usize,
    ) {
        self.observed += 1;
        self.track_wire(sent, segment, true);
        match self.mode {
            TraceMode::Full => self.records.push(TraceRecord {
                sent,
                received,
                segment: segment.clone(),
                physical_bytes,
            }),
            TraceMode::StatsOnly => self.accumulate(sent, received, segment, physical_bytes),
        }
    }

    /// Record a packet the link dropped instead of delivering. Feeds the
    /// per-pair drop counters in both modes; [`TraceMode::Full`]
    /// additionally retains a [`DropRecord`] for [`Trace::dump`].
    pub fn observe_drop(&mut self, at: SimTime, segment: &Segment, reason: DropReason) {
        let ev = self.pair_events(segment);
        match reason {
            DropReason::Loss => ev.drops_loss += 1,
            DropReason::Outage => ev.drops_outage += 1,
            DropReason::Queue => ev.drops_queue += 1,
        }
        if self.mode == TraceMode::Full {
            self.dropped.push(DropRecord {
                at,
                segment: segment.clone(),
                reason,
            });
        }
    }

    fn pair_events(&mut self, seg: &Segment) -> &mut PairEvents {
        let (from, to) = (seg.src.host, seg.dst.host);
        let key = if from <= to { (from, to) } else { (to, from) };
        self.net_events.entry(key).or_default()
    }

    /// Online reorder / retransmission / duplication detection, shared by
    /// both modes (arrival records alone cannot distinguish a network
    /// duplicate from a TCP retransmission).
    fn track_wire(&mut self, sent: SimTime, seg: &Segment, dup: bool) {
        let forward = (seg.src.host <= seg.dst.host) as usize;
        let ev = self.pair_events(seg);
        if dup {
            ev.dup_packets += 1;
            return;
        }
        // Arrivals are observed in arrival order: a packet that departed
        // before the latest departure already seen arrived out of order.
        let reordered = match ev.last_sent[forward] {
            Some(prev) if sent < prev => {
                ev.reordered += 1;
                true
            }
            _ => {
                ev.last_sent[forward] = Some(sent);
                false
            }
        };
        // Sequence-space tracking per flow (SYN/FIN octets included). A
        // reordered fresh segment also starts below the high-water mark,
        // so only in-order arrivals count as retransmissions.
        if seg.seq_space() > 0 {
            let end = seg.seq_end();
            let high = ev.max_seq.entry((seg.src, seg.dst)).or_insert(0);
            if !reordered && seg.seq < *high {
                ev.retransmitted += 1;
            }
            if end > *high {
                *high = end;
            }
        }
    }

    /// Append a captured packet (ownership-taking variant of [`observe`],
    /// kept for tests and external captures).
    ///
    /// [`observe`]: Trace::observe
    pub fn record(&mut self, rec: TraceRecord) {
        match self.mode {
            TraceMode::Full => {
                self.observed += 1;
                self.track_wire(rec.sent, &rec.segment, false);
                self.records.push(rec);
            }
            TraceMode::StatsOnly => {
                self.observe(rec.sent, rec.received, &rec.segment, rec.physical_bytes)
            }
        }
    }

    fn accumulate(
        &mut self,
        sent: SimTime,
        received: SimTime,
        seg: &Segment,
        physical_bytes: usize,
    ) {
        let (from, to) = (seg.src.host, seg.dst.host);
        let (key, forward) = if from <= to {
            ((from, to), true)
        } else {
            ((to, from), false)
        };
        self.pair_stats.entry(key).or_default().fold_packet(
            seg,
            forward,
            sent,
            received,
            physical_bytes,
        );
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.observed == 0
    }

    /// Number of packets observed (in either mode).
    pub fn len(&self) -> usize {
        self.observed as usize
    }

    /// All captured packets in arrival order. Empty in
    /// [`TraceMode::StatsOnly`], which does not retain records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Dropped packets in submission order (retained only in
    /// [`TraceMode::Full`]; the per-pair drop *counters* in
    /// [`TraceStats`] work in both modes).
    pub fn drop_records(&self) -> &[DropRecord] {
        &self.dropped
    }

    /// Drop all accumulated contents.
    pub fn clear(&mut self) {
        self.records.clear();
        self.pair_stats.clear();
        self.net_events.clear();
        self.dropped.clear();
        self.observed = 0;
    }

    /// Statistics over all packets flowing in either direction between the
    /// two hosts, with `client` defining the "client → server" direction.
    /// Works in both modes and produces identical results.
    pub fn stats(&self, client: HostId, server: HostId) -> TraceStats {
        let mut s = match self.mode {
            TraceMode::Full => {
                let mut s = TraceStats::default();
                for rec in &self.records {
                    let seg = &rec.segment;
                    let (from, to) = (seg.src.host, seg.dst.host);
                    let c2s = if (from, to) == (client, server) {
                        true
                    } else if (from, to) == (server, client) {
                        false
                    } else {
                        continue;
                    };
                    s.fold_packet(seg, c2s, rec.sent, rec.received, rec.physical_bytes);
                }
                s
            }
            TraceMode::StatsOnly => {
                let (key, forward) = if client <= server {
                    ((client, server), true)
                } else {
                    ((server, client), false)
                };
                let mut s = self.pair_stats.get(&key).copied().unwrap_or_default();
                if !forward {
                    std::mem::swap(&mut s.packets_c2s, &mut s.packets_s2c);
                    std::mem::swap(&mut s.first_payload_c2s, &mut s.first_payload_s2c);
                }
                s
            }
        };
        let key = if client <= server {
            (client, server)
        } else {
            (server, client)
        };
        if let Some(ev) = self.net_events.get(&key) {
            s.drops_loss = ev.drops_loss;
            s.drops_outage = ev.drops_outage;
            s.drops_queue = ev.drops_queue;
            s.dup_packets = ev.dup_packets;
            s.reordered_packets = ev.reordered;
            s.retransmitted_packets = ev.retransmitted;
        }
        s
    }

    /// Renders the capture in a compact tcpdump-like text form (useful when
    /// debugging protocol behaviour in tests). Requires [`TraceMode::Full`];
    /// empty otherwise.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for rec in &self.records {
            let _ = writeln!(out, "{} {}", rec.sent, rec.segment);
        }
        if !self.dropped.is_empty() {
            let _ = writeln!(out, "--- {} dropped ---", self.dropped.len());
            for d in &self.dropped {
                let _ = writeln!(out, "{} DROP({}) {}", d.at, d.reason, d.segment);
            }
        }
        out
    }

    /// Error unless the capture retains per-packet records.
    fn require_full(&self) -> Result<(), TraceModeError> {
        match self.mode {
            TraceMode::Full => Ok(()),
            TraceMode::StatsOnly => Err(TraceModeError),
        }
    }

    /// Time-sequence points for data flowing out of `from`: one
    /// `(seconds, sequence-end)` pair per data-bearing segment, in
    /// departure order — the series Shepard's `xplot` draws and the paper
    /// used to find its implementation bugs.
    ///
    /// # Errors
    /// [`TraceModeError`] when the capture ran in [`TraceMode::StatsOnly`],
    /// which retains no records — the result would be silently empty.
    pub fn time_sequence(&self, from: HostId) -> Result<Vec<(f64, u64)>, TraceModeError> {
        self.require_full()?;
        Ok(self
            .records
            .iter()
            .filter(|r| r.segment.src.host == from && r.segment.has_payload())
            .map(|r| (r.sent.as_secs_f64(), r.segment.seq_end()))
            .collect())
    }

    /// Serialize the capture in xplot(1) format: data segments from
    /// `from` as green lines (retransmissions in red) and the returning
    /// ACK series as yellow ticks.
    ///
    /// # Errors
    /// [`TraceModeError`] when the capture ran in [`TraceMode::StatsOnly`]
    /// (no records: the plot would be an empty frame).
    pub fn xplot(&self, from: HostId, title: &str) -> Result<String, TraceModeError> {
        self.require_full()?;
        use std::collections::HashSet;
        let mut out = String::new();
        out.push_str("timeval unsigned\n");
        let _ = writeln!(out, "title\n{title}");
        out.push_str("xlabel\ntime\nylabel\nsequence number\n");
        // xtask: allow(hash-collections): membership test only; output
        // order comes from the records vector.
        let mut seen: HashSet<(u64, u64)> = HashSet::new();
        for rec in &self.records {
            let seg = &rec.segment;
            if seg.src.host == from && seg.has_payload() {
                let fresh = seen.insert((seg.seq, seg.seq_end()));
                let color = if fresh { "green" } else { "red" };
                let _ = writeln!(
                    out,
                    "{color}\nline {:.6} {} {:.6} {}",
                    rec.sent.as_secs_f64(),
                    seg.seq,
                    rec.sent.as_secs_f64(),
                    seg.seq_end(),
                );
            } else if seg.dst.host == from && seg.flags.ack {
                let _ = writeln!(
                    out,
                    "yellow\ntick {:.6} {}",
                    rec.received.as_secs_f64(),
                    seg.ack
                );
            }
        }
        out.push_str("go\n");
        Ok(out)
    }
}

/// A record-backed trace rendering was requested from a capture that ran
/// in [`TraceMode::StatsOnly`] and therefore retained no records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceModeError;

impl fmt::Display for TraceModeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace was captured in TraceMode::StatsOnly and retains no \
             per-packet records; re-run with TraceMode::Full"
        )
    }
}

impl std::error::Error for TraceModeError {}

/// Aggregate statistics for one client/server pair — the paper's metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TraceStats {
    /// Packets from the client toward the server.
    pub packets_c2s: u64,
    /// Packets from the server toward the client.
    pub packets_s2c: u64,
    /// Total bytes including 40-byte TCP/IP headers (pre-link-compression).
    pub bytes: u64,
    /// Bytes after link-level (modem) compression, if any.
    pub physical_bytes: u64,
    /// TCP/IP header bytes across all packets.
    pub header_bytes: u64,
    /// Application payload bytes across all packets.
    pub payload_bytes: u64,
    /// Segments carrying SYN.
    pub syns: u64,
    /// Segments carrying FIN.
    pub fins: u64,
    /// Segments carrying RST.
    pub rsts: u64,
    /// Bare acknowledgements (no payload, no flags).
    pub pure_acks: u64,
    /// Departure time of the first packet.
    pub first: Option<SimTime>,
    /// Arrival time of the last packet.
    pub last: Option<SimTime>,
    /// Arrival time of the first payload-bearing packet travelling
    /// client→server.
    pub first_payload_c2s: Option<SimTime>,
    /// Arrival time of the first payload-bearing packet travelling
    /// server→client — the first response byte the user perceives.
    pub first_payload_s2c: Option<SimTime>,
    /// Packets discarded by the loss model (never reached the wire).
    pub drops_loss: u64,
    /// Packets discarded during scheduled link outages.
    pub drops_outage: u64,
    /// Packets tail-dropped by a bounded link queue.
    pub drops_queue: u64,
    /// Extra copies delivered by network duplication.
    pub dup_packets: u64,
    /// Packets that arrived out of departure order.
    pub reordered_packets: u64,
    /// Data-bearing segments re-covering already-sent sequence space —
    /// TCP retransmissions observed on the wire.
    pub retransmitted_packets: u64,
    /// Responses the server pushed unsolicited on a multiplexed
    /// connection. Application-reported: a packet trace cannot tell a
    /// pushed entity from a requested one, so harnesses fold the
    /// client's counters in via [`TraceStats::record_push_counters`];
    /// zero on stats derived from the trace alone.
    pub pushed_responses: u64,
    /// Entity bytes in pushed responses (application-reported).
    pub pushed_bytes: u64,
    /// Pushes the client refused with a reset (application-reported).
    pub cancelled_pushes: u64,
    /// DATA bytes already in flight on cancelled pushes — pure wire
    /// waste (application-reported).
    pub cancelled_push_bytes: u64,
}

impl TraceStats {
    /// Fold application-level server-push counters into the trace
    /// aggregates (the wire cannot attribute bytes to pushes on its
    /// own).
    pub fn record_push_counters(
        &mut self,
        pushed_responses: u64,
        pushed_bytes: u64,
        cancelled_pushes: u64,
        cancelled_push_bytes: u64,
    ) {
        self.pushed_responses = pushed_responses;
        self.pushed_bytes = pushed_bytes;
        self.cancelled_pushes = cancelled_pushes;
        self.cancelled_push_bytes = cancelled_push_bytes;
    }

    /// Fold one packet into the aggregates. `c2s` says whether it travels
    /// in the client→server direction. Both trace modes funnel through
    /// this, so their statistics agree by construction.
    fn fold_packet(
        &mut self,
        seg: &Segment,
        c2s: bool,
        sent: SimTime,
        received: SimTime,
        physical_bytes: usize,
    ) {
        if c2s {
            self.packets_c2s += 1;
        } else {
            self.packets_s2c += 1;
        }
        self.bytes += seg.wire_len() as u64;
        self.physical_bytes += physical_bytes as u64;
        self.header_bytes += TCP_IP_HEADER_BYTES as u64;
        self.payload_bytes += seg.payload.len() as u64;
        if seg.flags.syn {
            self.syns += 1;
        }
        if seg.flags.fin {
            self.fins += 1;
        }
        if seg.flags.rst {
            self.rsts += 1;
        }
        if seg.payload.is_empty() && !seg.flags.syn && !seg.flags.fin && !seg.flags.rst {
            self.pure_acks += 1;
        }
        self.first = Some(self.first.map_or(sent, |f: SimTime| f.min(sent)));
        self.last = Some(self.last.map_or(received, |l: SimTime| l.max(received)));
        if !seg.payload.is_empty() {
            let slot = if c2s {
                &mut self.first_payload_c2s
            } else {
                &mut self.first_payload_s2c
            };
            *slot = Some(slot.map_or(received, |t: SimTime| t.min(received)));
        }
    }

    /// Packets in both directions.
    pub fn total_packets(&self) -> u64 {
        self.packets_c2s + self.packets_s2c
    }

    /// Percentage of wire bytes that are TCP/IP header overhead — the
    /// paper's `%ov` column.
    pub fn overhead_pct(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.header_bytes as f64 * 100.0 / self.bytes as f64
        }
    }

    /// Packets dropped by the link for any reason.
    pub fn drops(&self) -> u64 {
        self.drops_loss + self.drops_outage + self.drops_queue
    }

    /// Wall-clock span from the first departure to the last arrival.
    pub fn elapsed_secs(&self) -> f64 {
        match (self.first, self.last) {
            (Some(f), Some(l)) => l.since(f).as_secs_f64(),
            _ => 0.0,
        }
    }

    /// Seconds from the first departure to the arrival of the first
    /// response payload byte (server→client) — the perceived latency the
    /// paper reports alongside totals. Zero when no payload ever flowed.
    pub fn first_byte_secs(&self) -> f64 {
        match (self.first, self.first_payload_s2c) {
            (Some(f), Some(b)) => b.since(f).as_secs_f64(),
            _ => 0.0,
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} pkts ({} c2s / {} s2c), {} bytes, {:.1}% ov, {:.2}s",
            self.total_packets(),
            self.packets_c2s,
            self.packets_s2c,
            self.bytes,
            self.overhead_pct(),
            self.elapsed_secs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{SockAddr, TcpFlags};
    use bytes::Bytes;

    fn rec(from: u16, to: u16, flags: TcpFlags, len: usize, t_ns: u64) -> TraceRecord {
        let seg = Segment {
            src: SockAddr::new(HostId(from), 1000),
            dst: SockAddr::new(HostId(to), 80),
            seq: 0,
            ack: 0,
            flags,
            window: 0,
            sack: crate::packet::SackBlocks::NONE,
            payload: Bytes::from(vec![0u8; len]),
        };
        let physical = seg.wire_len();
        TraceRecord {
            sent: SimTime::from_nanos(t_ns),
            received: SimTime::from_nanos(t_ns + 100),
            segment: seg,
            physical_bytes: physical,
        }
    }

    #[test]
    fn stats_count_directions() {
        let mut t = Trace::new();
        t.record(rec(0, 1, TcpFlags::SYN, 0, 0));
        t.record(rec(1, 0, TcpFlags::SYN_ACK, 0, 10));
        t.record(rec(0, 1, TcpFlags::ACK, 100, 20));
        let s = t.stats(HostId(0), HostId(1));
        assert_eq!(s.packets_c2s, 2);
        assert_eq!(s.packets_s2c, 1);
        assert_eq!(s.total_packets(), 3);
        assert_eq!(s.bytes, 40 + 40 + 140);
        assert_eq!(s.syns, 2);
        assert_eq!(s.payload_bytes, 100);
    }

    #[test]
    fn overhead_percentage() {
        let mut t = Trace::new();
        t.record(rec(0, 1, TcpFlags::ACK, 360, 0)); // 400 wire bytes, 40 header
        let s = t.stats(HostId(0), HostId(1));
        assert!((s.overhead_pct() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn elapsed_spans_first_to_last() {
        let mut t = Trace::new();
        t.record(rec(0, 1, TcpFlags::ACK, 1, 1_000_000_000));
        t.record(rec(1, 0, TcpFlags::ACK, 1, 3_000_000_000));
        let s = t.stats(HostId(0), HostId(1));
        assert!((s.elapsed_secs() - 2.0000001).abs() < 1e-6);
    }

    #[test]
    fn other_host_pairs_excluded() {
        let mut t = Trace::new();
        t.record(rec(0, 1, TcpFlags::ACK, 1, 0));
        t.record(rec(2, 1, TcpFlags::ACK, 1, 0));
        let s = t.stats(HostId(0), HostId(1));
        assert_eq!(s.total_packets(), 1);
    }

    #[test]
    fn time_sequence_monotone_without_loss() {
        let mut t = Trace::new();
        for (i, len) in [(0u64, 100usize), (1, 200), (2, 300)] {
            t.record(rec(0, 1, TcpFlags::ACK, len, i * 1000));
        }
        let ts = t.time_sequence(HostId(0)).unwrap();
        assert_eq!(ts.len(), 3);
        assert!(ts.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn xplot_marks_retransmissions_red() {
        let mut t = Trace::new();
        let mut seg = rec(0, 1, TcpFlags::ACK, 100, 0);
        seg.segment.seq = 50;
        t.record(seg.clone());
        seg.sent = SimTime::from_nanos(5_000_000);
        t.record(seg); // identical sequence range: a retransmission
        let plot = t.xplot(HostId(0), "demo").unwrap();
        assert!(plot.contains("green\n"));
        assert!(plot.contains("red\n"), "{plot}");
        assert!(plot.starts_with("timeval unsigned\n"));
        assert!(plot.ends_with("go\n"));
    }

    #[test]
    fn pure_ack_classification() {
        let mut t = Trace::new();
        t.record(rec(0, 1, TcpFlags::ACK, 0, 0));
        t.record(rec(0, 1, TcpFlags::ACK, 5, 0));
        t.record(rec(0, 1, TcpFlags::FIN_ACK, 0, 0));
        let s = t.stats(HostId(0), HostId(1));
        assert_eq!(s.pure_acks, 1);
        assert_eq!(s.fins, 1);
    }

    /// Every packet pattern must produce identical statistics in both
    /// modes; StatsOnly just computes them online.
    #[test]
    fn stats_only_matches_full() {
        let traffic = [
            rec(0, 1, TcpFlags::SYN, 0, 0),
            rec(1, 0, TcpFlags::SYN_ACK, 0, 10),
            rec(0, 1, TcpFlags::ACK, 100, 20),
            rec(1, 0, TcpFlags::ACK, 1460, 30),
            rec(1, 0, TcpFlags::ACK, 0, 40),
            rec(2, 1, TcpFlags::ACK, 7, 50), // unrelated pair
            rec(1, 0, TcpFlags::FIN_ACK, 0, 60),
            rec(0, 1, TcpFlags::RST, 0, 70),
        ];
        let mut full = Trace::with_mode(TraceMode::Full);
        let mut lean = Trace::with_mode(TraceMode::StatsOnly);
        for r in &traffic {
            full.record(r.clone());
            lean.observe(r.sent, r.received, &r.segment, r.physical_bytes);
        }
        assert_eq!(
            full.stats(HostId(0), HostId(1)),
            lean.stats(HostId(0), HostId(1))
        );
        assert_eq!(
            full.stats(HostId(2), HostId(1)),
            lean.stats(HostId(2), HostId(1))
        );
        // Swapped direction also agrees.
        assert_eq!(
            full.stats(HostId(1), HostId(0)),
            lean.stats(HostId(1), HostId(0))
        );
        assert_eq!(lean.len(), traffic.len());
        assert!(lean.records().is_empty(), "StatsOnly retains no records");
    }

    #[test]
    fn drops_counted_with_reason_in_both_modes() {
        for mode in [TraceMode::Full, TraceMode::StatsOnly] {
            let mut t = Trace::with_mode(mode);
            let r = rec(0, 1, TcpFlags::ACK, 100, 0);
            t.observe(r.sent, r.received, &r.segment, r.physical_bytes);
            t.observe_drop(SimTime::from_nanos(5), &r.segment, DropReason::Loss);
            t.observe_drop(SimTime::from_nanos(6), &r.segment, DropReason::Loss);
            t.observe_drop(SimTime::from_nanos(7), &r.segment, DropReason::Outage);
            t.observe_drop(SimTime::from_nanos(8), &r.segment, DropReason::Queue);
            let s = t.stats(HostId(0), HostId(1));
            assert_eq!(s.drops_loss, 2);
            assert_eq!(s.drops_outage, 1);
            assert_eq!(s.drops_queue, 1);
            assert_eq!(s.drops(), 4);
            // Dropped packets never count as observed on the wire.
            assert_eq!(s.total_packets(), 1);
            if mode == TraceMode::Full {
                assert_eq!(t.drop_records().len(), 4);
                let dump = t.dump();
                assert!(dump.contains("--- 4 dropped ---"), "{dump}");
                assert!(dump.contains("DROP(loss)"), "{dump}");
                assert!(dump.contains("DROP(outage)"), "{dump}");
            } else {
                assert!(t.drop_records().is_empty());
            }
        }
    }

    #[test]
    fn reordering_detected_from_departure_times() {
        for mode in [TraceMode::Full, TraceMode::StatsOnly] {
            let mut t = Trace::with_mode(mode);
            // Departures at 0, 1000, 2000 — but the middle one arrives last.
            let mut a = rec(0, 1, TcpFlags::ACK, 10, 0);
            let mut b = rec(0, 1, TcpFlags::ACK, 10, 1_000);
            let mut c = rec(0, 1, TcpFlags::ACK, 10, 2_000);
            a.segment.seq = 0;
            b.segment.seq = 10;
            c.segment.seq = 20;
            for r in [&a, &c, &b] {
                t.observe(r.sent, r.received, &r.segment, r.physical_bytes);
            }
            let s = t.stats(HostId(0), HostId(1));
            assert_eq!(s.reordered_packets, 1, "mode {mode:?}");
            assert_eq!(s.retransmitted_packets, 0, "fresh data is not a rexmit");
        }
    }

    #[test]
    fn retransmissions_detected_from_sequence_space() {
        let mut t = Trace::with_mode(TraceMode::StatsOnly);
        let first = rec(0, 1, TcpFlags::ACK, 100, 0);
        let mut again = first.clone();
        again.sent = SimTime::from_nanos(9_000);
        again.received = SimTime::from_nanos(9_100);
        t.observe(first.sent, first.received, &first.segment, 140);
        t.observe(again.sent, again.received, &again.segment, 140);
        let s = t.stats(HostId(0), HostId(1));
        assert_eq!(s.retransmitted_packets, 1);
        assert_eq!(s.reordered_packets, 0);
    }

    #[test]
    fn network_duplicates_counted_separately() {
        let mut t = Trace::with_mode(TraceMode::StatsOnly);
        let r = rec(0, 1, TcpFlags::ACK, 100, 0);
        t.observe(r.sent, r.received, &r.segment, r.physical_bytes);
        t.observe_dup(
            r.sent,
            SimTime::from_nanos(500),
            &r.segment,
            r.physical_bytes,
        );
        let s = t.stats(HostId(0), HostId(1));
        assert_eq!(s.dup_packets, 1);
        assert_eq!(
            s.retransmitted_packets, 0,
            "a network duplicate is not a TCP retransmission"
        );
        assert_eq!(s.total_packets(), 2, "both copies crossed the wire");
    }

    /// Record-backed renderings must refuse to produce silently-empty
    /// output when the capture kept no records.
    #[test]
    fn stats_only_rejects_record_backed_renderings() {
        let mut t = Trace::with_mode(TraceMode::StatsOnly);
        let r = rec(0, 1, TcpFlags::ACK, 100, 0);
        t.observe(r.sent, r.received, &r.segment, r.physical_bytes);
        assert_eq!(t.time_sequence(HostId(0)), Err(TraceModeError));
        assert_eq!(t.xplot(HostId(0), "demo"), Err(TraceModeError));
        let msg = TraceModeError.to_string();
        assert!(msg.contains("StatsOnly"), "{msg}");
        // Full mode still succeeds on the same traffic.
        let mut full = Trace::with_mode(TraceMode::Full);
        full.record(r);
        assert!(full.time_sequence(HostId(0)).is_ok());
        assert!(full.xplot(HostId(0), "demo").is_ok());
    }

    #[test]
    fn first_byte_tracks_first_server_payload() {
        for mode in [TraceMode::Full, TraceMode::StatsOnly] {
            let mut t = Trace::with_mode(mode);
            let traffic = [
                rec(0, 1, TcpFlags::SYN, 0, 0),
                rec(1, 0, TcpFlags::SYN_ACK, 0, 1_000),
                rec(0, 1, TcpFlags::ACK, 120, 2_000),  // request
                rec(1, 0, TcpFlags::ACK, 1460, 5_000), // first response byte
                rec(1, 0, TcpFlags::ACK, 1460, 9_000),
            ];
            for r in &traffic {
                t.observe(r.sent, r.received, &r.segment, r.physical_bytes);
            }
            let s = t.stats(HostId(0), HostId(1));
            assert_eq!(s.first_payload_c2s, Some(SimTime::from_nanos(2_100)));
            assert_eq!(s.first_payload_s2c, Some(SimTime::from_nanos(5_100)));
            // first departure at t=0, first response payload arrives 5_100.
            assert!(
                (s.first_byte_secs() - 5_100e-9).abs() < 1e-15,
                "mode {mode:?}"
            );
            // Swapped query direction swaps the payload marks too.
            let rev = t.stats(HostId(1), HostId(0));
            assert_eq!(rev.first_payload_c2s, Some(SimTime::from_nanos(5_100)));
            assert_eq!(rev.first_payload_s2c, Some(SimTime::from_nanos(2_100)));
        }
    }

    #[test]
    fn first_byte_zero_without_payload() {
        let mut t = Trace::new();
        t.record(rec(0, 1, TcpFlags::SYN, 0, 0));
        assert_eq!(t.stats(HostId(0), HostId(1)).first_byte_secs(), 0.0);
        assert_eq!(TraceStats::default().first_byte_secs(), 0.0);
    }

    #[test]
    fn stats_only_retains_nothing_per_packet() {
        let mut t = Trace::with_mode(TraceMode::StatsOnly);
        for i in 0..10_000 {
            t.record(rec(0, 1, TcpFlags::ACK, 100, i * 10));
        }
        assert_eq!(t.len(), 10_000);
        assert!(t.records().is_empty());
        assert_eq!(t.stats(HostId(0), HostId(1)).packets_c2s, 10_000);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.stats(HostId(0), HostId(1)), TraceStats::default());
    }
}
