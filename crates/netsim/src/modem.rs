//! A V.42bis-style modem compressor for the PPP link.
//!
//! ITU V.42bis is BTLZ, an LZW variant running over the modem's entire byte
//! stream. This module implements a streaming LZW coder that persists its
//! dictionary across packets in one direction and reports how many bytes the
//! compressed representation of each packet occupies — which is all the link
//! model needs to compute serialization time.
//!
//! The paper's §"Further Compression Experiments" finds deflate
//! significantly outperforms modem compression on HTML; running this codec
//! under the PPP link reproduces that comparison.

use crate::link::LinkCodec;
use std::collections::HashMap;

/// Maximum LZW code width in bits (V.42bis commonly negotiates dictionaries
/// of 2048 entries ≈ 11 bits; we allow 12 which slightly flatters the
/// modem, making the deflate-vs-modem comparison conservative).
const MAX_CODE_BITS: u32 = 12;
const MAX_CODES: usize = 1 << MAX_CODE_BITS;

/// Streaming LZW compressor that counts output bits.
///
/// It never materializes compressed bytes — the link model only needs the
/// compressed *size*, so we track emitted bits and let the caller convert to
/// bytes per packet with carry.
#[derive(Debug)]
pub struct LzwSizer {
    // xtask: allow(hash-collections): compression dictionary, keyed
    // lookup only; never iterated.
    dict: HashMap<(u32, u8), u32>,
    next_code: u32,
    code_bits: u32,
    current: Option<u32>,
    /// Fractional bits carried between packets (a real modem bit-stream does
    /// not byte-align per packet).
    carry_bits: u64,
}

impl Default for LzwSizer {
    fn default() -> Self {
        Self::new()
    }
}

impl LzwSizer {
    /// Create a new, empty instance.
    pub fn new() -> Self {
        LzwSizer {
            dict: HashMap::new(), // xtask: allow(hash-collections)
            next_code: 256,
            code_bits: 9,
            current: None,
            carry_bits: 0,
        }
    }

    fn reset_dict(&mut self) {
        self.dict.clear();
        self.next_code = 256;
        self.code_bits = 9;
    }

    /// Feed `data` through the coder and return the number of whole bytes
    /// the compressed stream grew by.
    pub fn push(&mut self, data: &[u8]) -> usize {
        let mut bits = self.carry_bits;
        for &byte in data {
            match self.current {
                None => self.current = Some(byte as u32),
                Some(prefix) => {
                    if let Some(&code) = self.dict.get(&(prefix, byte)) {
                        self.current = Some(code);
                    } else {
                        bits += self.code_bits as u64;
                        if self.next_code < MAX_CODES as u32 {
                            self.dict.insert((prefix, byte), self.next_code);
                            self.next_code += 1;
                            if self.next_code.is_power_of_two() && self.code_bits < MAX_CODE_BITS {
                                self.code_bits += 1;
                            }
                        } else {
                            // Dictionary full: V.42bis re-initializes.
                            self.reset_dict();
                        }
                        self.current = Some(byte as u32);
                    }
                }
            }
        }
        let bytes = (bits / 8) as usize;
        self.carry_bits = bits % 8;
        bytes
    }

    /// Flush the pending symbol (e.g. at end of measurement) and return the
    /// final byte count including the partial byte.
    pub fn finish(&mut self) -> usize {
        let mut bits = self.carry_bits;
        if self.current.take().is_some() {
            bits += self.code_bits as u64;
        }
        self.carry_bits = 0;
        bits.div_ceil(8) as usize
    }
}

/// [`LinkCodec`] applying LZW compression to packet payloads, as a modem
/// does to the PPP stream. TCP/IP headers are modelled as incompressible
/// (they are small and effectively random to an LZW dictionary; real modems
/// gained little on them, and VJ header compression is out of scope).
#[derive(Debug, Default)]
pub struct ModemCompressor {
    lzw: LzwSizer,
}

impl ModemCompressor {
    /// Create a new, empty instance.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LinkCodec for ModemCompressor {
    fn wire_bytes(&mut self, wire_bytes: usize, payload: &[u8]) -> usize {
        let header = wire_bytes - payload.len();
        if payload.is_empty() {
            return wire_bytes;
        }
        // The pending-symbol flush is at most one code; charge one byte so a
        // packet is always deliverable on its own.
        let compressed = self.lzw.push(payload) + 1;
        header + compressed.min(payload.len())
    }

    fn name(&self) -> &'static str {
        "v42bis-lzw"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repetitive_text_compresses_well() {
        let mut lzw = LzwSizer::new();
        let data = "the quick brown fox ".repeat(200);
        let emitted = lzw.push(data.as_bytes()) + lzw.finish();
        assert!(
            emitted < data.len() / 3,
            "LZW should compress repetitive text >3x, got {emitted}/{}",
            data.len()
        );
    }

    #[test]
    fn random_like_data_does_not_explode() {
        // A simple LCG byte stream: nearly incompressible.
        let mut x: u32 = 12345;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                (x >> 24) as u8
            })
            .collect();
        let mut codec = ModemCompressor::new();
        let wire = codec.wire_bytes(data.len() + 40, &data);
        // Compressed size is capped at the raw payload size.
        assert!(wire <= data.len() + 40);
        // And it should not beat ~7/8 of raw (9-bit codes on fresh bytes).
        assert!(wire > data.len() / 2);
    }

    #[test]
    fn dictionary_persists_across_packets() {
        let phrase = b"hypertext transfer protocol ".repeat(30);
        let mut codec = ModemCompressor::new();
        let first = codec.wire_bytes(phrase.len() + 40, &phrase);
        let second = codec.wire_bytes(phrase.len() + 40, &phrase);
        assert!(
            second < first,
            "second packet must reuse the dictionary: {second} !< {first}"
        );
    }

    #[test]
    fn header_only_packets_unchanged() {
        let mut codec = ModemCompressor::new();
        assert_eq!(codec.wire_bytes(40, &[]), 40);
    }

    #[test]
    fn html_compresses_roughly_two_to_one() {
        // Representative mid-90s HTML.
        let html = r#"<TABLE BORDER=0 CELLPADDING=0 CELLSPACING=0 WIDTH=600>
<TR><TD ALIGN=LEFT VALIGN=TOP><A HREF="/products/index.html"><IMG
SRC="/images/products.gif" WIDTH=100 HEIGHT=30 BORDER=0 ALT="Products"></A>
</TD></TR></TABLE>"#
            .repeat(40);
        let mut lzw = LzwSizer::new();
        let emitted = lzw.push(html.as_bytes()) + lzw.finish();
        let ratio = emitted as f64 / html.len() as f64;
        assert!(
            ratio < 0.55,
            "modem compression should roughly halve HTML, ratio={ratio:.2}"
        );
    }
}
