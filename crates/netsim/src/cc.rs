//! Pluggable congestion control for the TCP state machine.
//!
//! The TCB in [`crate::tcp`] owns transmission, retransmission and RTT
//! estimation; *when* the window opens or collapses is delegated to a
//! [`CongestionControl`] implementation selected by
//! [`crate::TcpConfig::cc`]. Four variants are provided:
//!
//! * [`Reno`] — slow start, congestion avoidance and fast retransmit on
//!   the third duplicate ACK (RFC 5681/2001), operation-for-operation
//!   identical to the behavior previously hard-coded in the TCB (gated
//!   by digest-equality tests);
//! * [`NewReno`] — Reno plus partial-ACK recovery (RFC 6582): a partial
//!   ACK during fast recovery retransmits the next hole instead of
//!   waiting for an RTO, and recovery ends only once the `recover`
//!   point is cumulatively acknowledged;
//! * [`Sack`] — NewReno's recovery driven by a scoreboard of
//!   selectively-acknowledged ranges (RFC 2018/6675): the receiver
//!   reports out-of-order spans in [`SackBlocks`] and the sender never
//!   retransmits an octet the peer already holds;
//! * [`Cubic`] — a CUBIC-style window growth function on integer
//!   sim-time (RFC 8312 shape: β = 0.7, C = 0.4), ack-clocked so growth
//!   per ACK never exceeds one MSS.
//!
//! NewReno and SACK perform RFC 6582 window inflation: entering fast
//! recovery sets `cwnd = ssthresh + 3·MSS`, each further duplicate ACK
//! inflates by one MSS (a segment has left the network), and a partial
//! ACK deflates by the newly-acknowledged amount before adding one MSS
//! back, so new data keeps flowing while holes are filled.
//!
//! Deliberate simplifications, documented here once: SACK recovery uses
//! NewReno-style inflation rather than RFC 6675 pipe accounting; SACK
//! blocks are reported in ascending order rather than most-recent-first;
//! CUBIC omits the TCP-friendly (Reno-tracking) region. None of these
//! affect the invariants the conformance checker enforces, and all keep
//! the machine fully deterministic.

use crate::packet::SackBlocks;
use crate::seq::{seq_ge, seq_gt, seq_le, seq_sub};
use crate::time::SimTime;

/// Which congestion-control algorithm an endpoint runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum CcVariant {
    /// Slow start + fast retransmit, the seed behavior (RFC 5681).
    #[default]
    Reno,
    /// Reno with partial-ACK hole recovery (RFC 6582).
    NewReno,
    /// Scoreboard-driven selective retransmission (RFC 2018/6675).
    Sack,
    /// Cubic window growth on sim-time (RFC 8312 shape).
    Cubic,
}

impl CcVariant {
    /// Every variant, in presentation order.
    pub const ALL: [CcVariant; 4] = [
        CcVariant::Reno,
        CcVariant::NewReno,
        CcVariant::Sack,
        CcVariant::Cubic,
    ];

    /// Stable lowercase label used in experiment labels and seeds.
    pub fn label(self) -> &'static str {
        match self {
            CcVariant::Reno => "reno",
            CcVariant::NewReno => "newreno",
            CcVariant::Sack => "sack",
            CcVariant::Cubic => "cubic",
        }
    }
}

/// What the TCB should do after a congestion-control callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcSignal {
    /// Nothing beyond normal processing.
    None,
    /// Loss detected: the TCB must call [`CongestionControl::on_loss`]
    /// and fast-retransmit the first unacknowledged segment.
    Loss,
    /// Retransmit the next hole (recovery already in progress — the
    /// variant has adjusted its own windows).
    Retransmit,
}

/// Read-only snapshot of the TCB state a callback may consult. Sequence
/// fields reflect the state *after* the triggering event was applied
/// (`snd_una` equals the arriving cumulative ACK on an advancing ACK).
pub struct CcContext<'a> {
    /// Sender maximum segment size in bytes.
    pub mss: usize,
    /// Current simulation time.
    pub now: SimTime,
    /// First unacknowledged sequence number.
    pub snd_una: u64,
    /// Next sequence number to be sent.
    pub snd_nxt: u64,
    /// SACK option blocks on the triggering segment (empty when the
    /// event has no segment, e.g. an RTO).
    pub sack: &'a SackBlocks,
}

impl CcContext<'_> {
    fn flight(&self) -> usize {
        seq_sub(self.snd_nxt, self.snd_una) as usize
    }
}

/// A congestion-control algorithm driven by the TCB.
///
/// The TCB invokes exactly one callback per event and obeys the
/// returned [`CcSignal`]; implementations own `cwnd`/`ssthresh` and all
/// recovery bookkeeping. [`CongestionControl::in_recovery`] is the
/// probe hook: it is exported alongside the window accessors so flight
/// recorder samples and diagnostics stay comparable across variants.
pub trait CongestionControl {
    /// Current congestion window in bytes.
    fn cwnd(&self) -> usize;
    /// Current slow-start threshold in bytes.
    fn ssthresh(&self) -> usize;
    /// An ACK advanced `snd_una` by `newly_acked` bytes.
    fn on_ack(&mut self, ctx: &CcContext<'_>, newly_acked: usize) -> CcSignal;
    /// A duplicate ACK arrived while data is outstanding.
    fn on_dup_ack(&mut self, ctx: &CcContext<'_>) -> CcSignal;
    /// Loss detected by duplicate ACKs (the TCB calls this when a
    /// callback returned [`CcSignal::Loss`], before retransmitting).
    fn on_loss(&mut self, ctx: &CcContext<'_>);
    /// The retransmission timer fired.
    fn on_rto(&mut self, ctx: &CcContext<'_>);
    /// Probe hook: whether the variant is inside fast recovery.
    fn in_recovery(&self) -> bool {
        false
    }
    /// Upper bound for a retransmission starting at `from`: the start
    /// of the first selectively-acknowledged range above it, so the
    /// retransmit path never resends data the peer already holds.
    fn rexmit_cap(&self, from: u64) -> Option<u64> {
        let _ = from;
        None
    }
}

// ---------------------------------------------------------------------
// Reno
// ---------------------------------------------------------------------

/// RFC 5681 slow start / congestion avoidance / fast retransmit —
/// the seed TCB behavior, extracted verbatim.
#[derive(Debug, Clone)]
pub struct Reno {
    cwnd: usize,
    ssthresh: usize,
    dup_acks: u32,
}

impl Reno {
    fn new(cwnd: usize, ssthresh: usize) -> Reno {
        Reno {
            cwnd,
            ssthresh,
            dup_acks: 0,
        }
    }

    /// Shared slow-start / congestion-avoidance growth.
    fn grow(&mut self, mss: usize, newly_acked: usize) {
        if self.cwnd < self.ssthresh {
            // Slow start: one MSS per ACKed MSS (exponential per RTT).
            self.cwnd += newly_acked.min(mss);
        } else {
            // Congestion avoidance: ~one MSS per RTT.
            let inc = (mss * mss / self.cwnd).max(1);
            self.cwnd += inc;
        }
    }

    /// Multiplicative decrease shared by the dup-ack and RTO paths.
    fn halve(&mut self, ctx: &CcContext<'_>) {
        self.ssthresh = (ctx.flight() / 2).max(2 * ctx.mss);
    }
}

impl CongestionControl for Reno {
    fn cwnd(&self) -> usize {
        self.cwnd
    }

    fn ssthresh(&self) -> usize {
        self.ssthresh
    }

    fn on_ack(&mut self, ctx: &CcContext<'_>, newly_acked: usize) -> CcSignal {
        self.dup_acks = 0;
        self.grow(ctx.mss, newly_acked);
        CcSignal::None
    }

    fn on_dup_ack(&mut self, _ctx: &CcContext<'_>) -> CcSignal {
        self.dup_acks += 1;
        if self.dup_acks == 3 {
            CcSignal::Loss
        } else {
            CcSignal::None
        }
    }

    fn on_loss(&mut self, ctx: &CcContext<'_>) {
        // Fast retransmit (Reno without full recovery bookkeeping).
        self.halve(ctx);
        self.cwnd = self.ssthresh;
    }

    fn on_rto(&mut self, ctx: &CcContext<'_>) {
        // Timeout: collapse cwnd, go back into slow start (RFC 2001).
        self.halve(ctx);
        self.cwnd = ctx.mss;
    }
}

// ---------------------------------------------------------------------
// NewReno
// ---------------------------------------------------------------------

/// RFC 6582: Reno whose fast recovery survives partial ACKs — each
/// partial ACK retransmits the next hole instead of waiting for an RTO,
/// and slow start is not re-entered until `recover` is acknowledged.
#[derive(Debug, Clone)]
pub struct NewReno {
    reno: Reno,
    in_recovery: bool,
    recover: u64,
}

impl NewReno {
    fn new(cwnd: usize, ssthresh: usize) -> NewReno {
        NewReno {
            reno: Reno::new(cwnd, ssthresh),
            in_recovery: false,
            recover: 0,
        }
    }
}

impl CongestionControl for NewReno {
    fn cwnd(&self) -> usize {
        self.reno.cwnd
    }

    fn ssthresh(&self) -> usize {
        self.reno.ssthresh
    }

    fn on_ack(&mut self, ctx: &CcContext<'_>, newly_acked: usize) -> CcSignal {
        self.reno.dup_acks = 0;
        if self.in_recovery {
            if seq_ge(ctx.snd_una, self.recover) {
                // Full ACK: recovery complete, deflate to ssthresh.
                self.in_recovery = false;
                self.reno.cwnd = self.reno.ssthresh;
                CcSignal::None
            } else {
                // Partial ACK: stay in recovery, fill the next hole.
                // Deflate by the amount newly acknowledged, then add
                // one MSS back (RFC 6582 step 5) so transmission of
                // new data stays ack-clocked through recovery.
                self.reno.cwnd = self.reno.cwnd.saturating_sub(newly_acked) + ctx.mss;
                CcSignal::Retransmit
            }
        } else {
            self.reno.grow(ctx.mss, newly_acked);
            CcSignal::None
        }
    }

    fn on_dup_ack(&mut self, ctx: &CcContext<'_>) -> CcSignal {
        self.reno.dup_acks += 1;
        if self.in_recovery {
            // RFC 6582 step 3: every further duplicate ACK means one
            // more segment has left the network — inflate so new data
            // can be transmitted while the hole is repaired.
            self.reno.cwnd += ctx.mss;
            CcSignal::None
        } else if self.reno.dup_acks == 3 {
            CcSignal::Loss
        } else {
            CcSignal::None
        }
    }

    fn on_loss(&mut self, ctx: &CcContext<'_>) {
        self.reno.on_loss(ctx);
        // RFC 6582 step 2: inflate past ssthresh by the three duplicate
        // ACKs that triggered fast retransmit.
        self.reno.cwnd = self.reno.ssthresh + 3 * ctx.mss;
        self.in_recovery = true;
        self.recover = ctx.snd_nxt;
    }

    fn on_rto(&mut self, ctx: &CcContext<'_>) {
        self.reno.on_rto(ctx);
        // A timeout ends fast recovery; remember the send high-water
        // mark so stale duplicate ACKs cannot immediately re-enter it.
        self.in_recovery = false;
        self.recover = ctx.snd_nxt;
    }

    fn in_recovery(&self) -> bool {
        self.in_recovery
    }
}

// ---------------------------------------------------------------------
// SACK
// ---------------------------------------------------------------------

/// RFC 2018/6675: NewReno-style recovery driven by a scoreboard of
/// ranges the peer has selectively acknowledged. Retransmissions are
/// capped at the next SACKed block, so an octet the peer already holds
/// is never resent (the sim receiver never reneges, so the scoreboard
/// survives RTOs).
#[derive(Debug, Clone)]
pub struct Sack {
    reno: Reno,
    in_recovery: bool,
    recover: u64,
    /// SACKed `[start, end)` ranges, ascending and disjoint, strictly
    /// above `snd_una`. Allocated once per connection; elements are
    /// reused across events, not per segment.
    scoreboard: Vec<(u64, u64)>,
}

impl Sack {
    // simlint: allow(hot-path-alloc)
    fn new(cwnd: usize, ssthresh: usize) -> Sack {
        Sack {
            reno: Reno::new(cwnd, ssthresh),
            in_recovery: false,
            recover: 0,
            scoreboard: Vec::new(),
        }
    }

    /// Merge the arriving option's blocks into the scoreboard and drop
    /// everything at or below the cumulative ACK.
    fn integrate(&mut self, ctx: &CcContext<'_>) {
        for (start, end) in ctx.sack.iter() {
            if start >= end || seq_le(end, ctx.snd_una) {
                continue;
            }
            let start = if seq_gt(start, ctx.snd_una) {
                start
            } else {
                ctx.snd_una
            };
            self.insert(start, end);
        }
        self.scoreboard.retain(|&(_, end)| seq_gt(end, ctx.snd_una));
        if let Some(first) = self.scoreboard.first_mut() {
            if seq_gt(ctx.snd_una, first.0) {
                first.0 = ctx.snd_una;
            }
        }
    }

    fn insert(&mut self, start: u64, end: u64) {
        // Find the insertion point, then coalesce every overlapping or
        // adjacent neighbor into one range.
        let mut i = 0;
        while i < self.scoreboard.len() && self.scoreboard[i].0 < start {
            i += 1;
        }
        self.scoreboard.insert(i, (start, end));
        // Merge with the predecessor and any followers it now touches.
        let mut j = i.saturating_sub(1);
        while j + 1 < self.scoreboard.len() {
            let (_, a_end) = self.scoreboard[j];
            let (b_start, b_end) = self.scoreboard[j + 1];
            if b_start <= a_end {
                self.scoreboard[j].1 = a_end.max(b_end);
                self.scoreboard.remove(j + 1);
            } else {
                j += 1;
            }
        }
    }
}

impl CongestionControl for Sack {
    fn cwnd(&self) -> usize {
        self.reno.cwnd
    }

    fn ssthresh(&self) -> usize {
        self.reno.ssthresh
    }

    fn on_ack(&mut self, ctx: &CcContext<'_>, newly_acked: usize) -> CcSignal {
        self.reno.dup_acks = 0;
        self.integrate(ctx);
        if self.in_recovery {
            if seq_ge(ctx.snd_una, self.recover) {
                self.in_recovery = false;
                self.reno.cwnd = self.reno.ssthresh;
                CcSignal::None
            } else {
                // Partial ACK: deflate-and-add-back (RFC 6582 step 5),
                // then retransmit the next hole, skipping scoreboard
                // ranges via `rexmit_cap`.
                self.reno.cwnd = self.reno.cwnd.saturating_sub(newly_acked) + ctx.mss;
                CcSignal::Retransmit
            }
        } else {
            self.reno.grow(ctx.mss, newly_acked);
            CcSignal::None
        }
    }

    fn on_dup_ack(&mut self, ctx: &CcContext<'_>) -> CcSignal {
        self.integrate(ctx);
        self.reno.dup_acks += 1;
        if self.in_recovery {
            // RFC 6582 step-3 inflation, as in NewReno.
            self.reno.cwnd += ctx.mss;
            CcSignal::None
        } else if self.reno.dup_acks == 3 {
            CcSignal::Loss
        } else {
            CcSignal::None
        }
    }

    fn on_loss(&mut self, ctx: &CcContext<'_>) {
        self.reno.on_loss(ctx);
        // RFC 6582 step-2 inflation, as in NewReno.
        self.reno.cwnd = self.reno.ssthresh + 3 * ctx.mss;
        self.in_recovery = true;
        self.recover = ctx.snd_nxt;
    }

    fn on_rto(&mut self, ctx: &CcContext<'_>) {
        self.reno.on_rto(ctx);
        self.in_recovery = false;
        self.recover = ctx.snd_nxt;
    }

    fn in_recovery(&self) -> bool {
        self.in_recovery
    }

    fn rexmit_cap(&self, from: u64) -> Option<u64> {
        self.scoreboard
            .iter()
            .map(|&(start, _)| start)
            .find(|&start| seq_gt(start, from))
    }
}

// ---------------------------------------------------------------------
// CUBIC
// ---------------------------------------------------------------------

/// RFC 8312-shaped window growth on integer sim-time: after a loss the
/// window follows `W(t) = C·(t − K)³ + W_max` (β = 0.7, C = 0.4
/// segments/s³), clamped so growth per ACK never exceeds one MSS — the
/// window stays ack-clocked and inside the checker's cwnd envelope.
#[derive(Debug, Clone)]
pub struct Cubic {
    cwnd: usize,
    ssthresh: usize,
    dup_acks: u32,
    /// Window size when the last loss was detected, in bytes.
    wmax: usize,
    /// Start of the current cubic epoch (None until the first loss or
    /// until congestion avoidance resumes).
    epoch: Option<SimTime>,
    /// The cubic function's inflection offset K, in milliseconds.
    k_ms: u64,
}

impl Cubic {
    fn new(cwnd: usize, ssthresh: usize) -> Cubic {
        Cubic {
            cwnd,
            ssthresh,
            dup_acks: 0,
            wmax: 0,
            epoch: None,
            k_ms: 0,
        }
    }

    fn enter_epoch(&mut self, ctx: &CcContext<'_>) {
        let flight = ctx.flight();
        self.wmax = flight.max(2 * ctx.mss);
        self.ssthresh = (self.wmax * 7 / 10).max(2 * ctx.mss);
        self.epoch = Some(ctx.now);
        self.k_ms = cubic_k_ms(self.wmax, ctx.mss);
    }
}

impl CongestionControl for Cubic {
    fn cwnd(&self) -> usize {
        self.cwnd
    }

    fn ssthresh(&self) -> usize {
        self.ssthresh
    }

    fn on_ack(&mut self, ctx: &CcContext<'_>, newly_acked: usize) -> CcSignal {
        self.dup_acks = 0;
        if self.cwnd < self.ssthresh {
            // Slow start, exactly as Reno.
            self.cwnd += newly_acked.min(ctx.mss);
        } else {
            let epoch = match self.epoch {
                Some(e) => e,
                None => {
                    // First congestion-avoidance ACK with no loss
                    // history: convex probing from the current window.
                    self.wmax = self.cwnd;
                    self.k_ms = 0;
                    self.epoch = Some(ctx.now);
                    ctx.now
                }
            };
            let elapsed_ms = ctx.now.since(epoch).as_nanos() / 1_000_000;
            let target = cubic_window(self.wmax, ctx.mss, elapsed_ms, self.k_ms);
            // Ack-clocked: never shrink, never grow faster than one MSS
            // per advancing ACK.
            self.cwnd = self
                .cwnd
                .max(target.min(self.cwnd + newly_acked.min(ctx.mss)));
        }
        CcSignal::None
    }

    fn on_dup_ack(&mut self, _ctx: &CcContext<'_>) -> CcSignal {
        self.dup_acks += 1;
        if self.dup_acks == 3 {
            CcSignal::Loss
        } else {
            CcSignal::None
        }
    }

    fn on_loss(&mut self, ctx: &CcContext<'_>) {
        self.enter_epoch(ctx);
        self.cwnd = self.ssthresh;
    }

    fn on_rto(&mut self, ctx: &CcContext<'_>) {
        self.enter_epoch(ctx);
        self.cwnd = ctx.mss;
    }
}

/// The cubic window `W(t) = C·(t − K)³ + W_max` in bytes, on integer
/// millisecond time (C = 0.4 segments/s³ = 2·mss/5·10⁹ bytes/ms³),
/// clamped below at one MSS. Public so the conformance checker bounds
/// CUBIC senders with the sender's own arithmetic.
pub fn cubic_window(wmax: usize, mss: usize, elapsed_ms: u64, k_ms: u64) -> usize {
    let d = elapsed_ms as i128 - k_ms as i128;
    let delta = d * d * d * mss as i128 * 2 / 5_000_000_000i128;
    let w = wmax as i128 + delta;
    w.clamp(mss as i128, 1i128 << 40) as usize
}

/// The cubic inflection offset `K = ∛(W_max·β_defl/C)` in milliseconds,
/// where the multiplicative-decrease step is `0.3·W_max`:
/// `K_ms³ = W_max/mss · 7.5·10⁸`. Integer cube root, exact floor.
pub fn cubic_k_ms(wmax: usize, mss: usize) -> u64 {
    let target = wmax as u128 * 750_000_000 / mss.max(1) as u128;
    // Binary-search the floor cube root.
    let mut lo = 0u128;
    let mut hi = 1u128 << 43; // (2^43)^3 > any reachable target
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if mid * mid * mid <= target {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo as u64
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

/// Enum dispatch over the four variants — no boxing on the hot path.
#[derive(Debug, Clone)]
pub enum CcCtl {
    /// RFC 5681 Reno.
    Reno(Reno),
    /// RFC 6582 NewReno.
    NewReno(NewReno),
    /// RFC 2018/6675 SACK.
    Sack(Sack),
    /// RFC 8312-shaped CUBIC.
    Cubic(Cubic),
}

impl CcCtl {
    /// Instantiate `variant` with the configured initial windows.
    pub fn new(variant: CcVariant, cwnd: usize, ssthresh: usize) -> CcCtl {
        match variant {
            CcVariant::Reno => CcCtl::Reno(Reno::new(cwnd, ssthresh)),
            CcVariant::NewReno => CcCtl::NewReno(NewReno::new(cwnd, ssthresh)),
            CcVariant::Sack => CcCtl::Sack(Sack::new(cwnd, ssthresh)),
            CcVariant::Cubic => CcCtl::Cubic(Cubic::new(cwnd, ssthresh)),
        }
    }
}

macro_rules! dispatch {
    ($self:expr, $c:ident => $body:expr) => {
        match $self {
            CcCtl::Reno($c) => $body,
            CcCtl::NewReno($c) => $body,
            CcCtl::Sack($c) => $body,
            CcCtl::Cubic($c) => $body,
        }
    };
}

impl CongestionControl for CcCtl {
    fn cwnd(&self) -> usize {
        dispatch!(self, c => c.cwnd())
    }

    fn ssthresh(&self) -> usize {
        dispatch!(self, c => c.ssthresh())
    }

    fn on_ack(&mut self, ctx: &CcContext<'_>, newly_acked: usize) -> CcSignal {
        dispatch!(self, c => c.on_ack(ctx, newly_acked))
    }

    fn on_dup_ack(&mut self, ctx: &CcContext<'_>) -> CcSignal {
        dispatch!(self, c => c.on_dup_ack(ctx))
    }

    fn on_loss(&mut self, ctx: &CcContext<'_>) {
        dispatch!(self, c => c.on_loss(ctx))
    }

    fn on_rto(&mut self, ctx: &CcContext<'_>) {
        dispatch!(self, c => c.on_rto(ctx))
    }

    fn in_recovery(&self) -> bool {
        dispatch!(self, c => c.in_recovery())
    }

    fn rexmit_cap(&self, from: u64) -> Option<u64> {
        dispatch!(self, c => c.rexmit_cap(from))
    }
}

// ---------------------------------------------------------------------
// Receiver-side SACK block generation
// ---------------------------------------------------------------------

/// Build the wire option from the receiver's out-of-order spans:
/// merge overlapping/adjacent `[start, end)` spans (which must arrive
/// sorted by start, as a `BTreeMap` iteration yields them) and keep the
/// first four merged blocks in ascending order. Allocation-free.
pub fn wire_sack_blocks<I>(spans: I, rcv_nxt: u64) -> SackBlocks
where
    I: Iterator<Item = (u64, u64)>,
{
    let mut out = SackBlocks::NONE;
    let mut cur: Option<(u64, u64)> = None;
    for (start, end) in spans {
        if start >= end || seq_le(end, rcv_nxt) {
            continue;
        }
        match cur {
            Some((cs, ce)) if start <= ce => cur = Some((cs, ce.max(end))),
            Some((cs, ce)) => {
                if !out.push(cs, ce) {
                    return out;
                }
                cur = Some((start, end));
            }
            None => cur = Some((start, end)),
        }
    }
    if let Some((cs, ce)) = cur {
        out.push(cs, ce);
    }
    out
}

/// Uncapped variant of [`wire_sack_blocks`] for tests and diagnostics:
/// every merged span, not just the four that fit the option.
// Diagnostic/test helper, not on the per-segment path.
// simlint: allow(hot-path-alloc)
pub fn merged_spans<I>(spans: I, rcv_nxt: u64) -> Vec<(u64, u64)>
where
    I: Iterator<Item = (u64, u64)>,
{
    let mut out: Vec<(u64, u64)> = Vec::new();
    for (start, end) in spans {
        if start >= end || seq_le(end, rcv_nxt) {
            continue;
        }
        match out.last_mut() {
            Some(last) if start <= last.1 => last.1 = last.1.max(end),
            _ => out.push((start, end)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(now_ms: u64, snd_una: u64, snd_nxt: u64, sack: &'a SackBlocks) -> CcContext<'a> {
        CcContext {
            mss: 1460,
            now: SimTime::from_nanos(now_ms * 1_000_000),
            snd_una,
            snd_nxt,
            sack,
        }
    }

    #[test]
    fn reno_matches_seed_arithmetic() {
        let mut r = Reno::new(2920, 65_535);
        let none = SackBlocks::NONE;
        // Slow start: +min(newly_acked, mss).
        assert_eq!(r.on_ack(&ctx(0, 1460, 5840, &none), 1460), CcSignal::None);
        assert_eq!(r.cwnd(), 4380);
        // Third dup ack halves to flight/2 and signals loss.
        let c = ctx(1, 1460, 10_000, &none);
        assert_eq!(r.on_dup_ack(&c), CcSignal::None);
        assert_eq!(r.on_dup_ack(&c), CcSignal::None);
        assert_eq!(r.on_dup_ack(&c), CcSignal::Loss);
        r.on_loss(&c);
        assert_eq!(r.ssthresh(), (10_000 - 1460) / 2);
        assert_eq!(r.cwnd(), r.ssthresh());
        // Congestion avoidance: +mss²/cwnd.
        let w = r.cwnd();
        r.on_ack(&ctx(2, 2920, 10_000, &none), 1460);
        assert_eq!(r.cwnd(), w + (1460 * 1460 / w).max(1));
        // RTO collapses to one MSS.
        r.on_rto(&ctx(3, 2920, 10_000, &none));
        assert_eq!(r.cwnd(), 1460);
    }

    #[test]
    fn newreno_partial_ack_stays_in_recovery() {
        let mut n = NewReno::new(8760, 65_535);
        let none = SackBlocks::NONE;
        let c = ctx(0, 1, 10_001, &none);
        for _ in 0..2 {
            assert_eq!(n.on_dup_ack(&c), CcSignal::None);
        }
        assert_eq!(n.on_dup_ack(&c), CcSignal::Loss);
        n.on_loss(&c);
        assert!(n.in_recovery());
        assert_eq!(n.recover, 10_001);
        // Partial ACK (below recover): hole retransmit, still recovering.
        let partial = ctx(1, 5_001, 10_001, &none);
        assert_eq!(n.on_ack(&partial, 5_000), CcSignal::Retransmit);
        assert!(n.in_recovery());
        // Further dup acks during recovery do not re-trigger loss.
        assert_eq!(n.on_dup_ack(&partial), CcSignal::None);
        assert_eq!(n.on_dup_ack(&partial), CcSignal::None);
        assert_eq!(n.on_dup_ack(&partial), CcSignal::None);
        // Full ACK exits recovery at ssthresh.
        let full = ctx(2, 10_001, 10_001, &none);
        assert_eq!(n.on_ack(&full, 5_000), CcSignal::None);
        assert!(!n.in_recovery());
        assert_eq!(n.cwnd(), n.ssthresh());
    }

    #[test]
    fn sack_scoreboard_merges_and_caps_retransmits() {
        let mut s = Sack::new(8760, 65_535);
        let mut blocks = SackBlocks::NONE;
        blocks.push(2921, 4381);
        blocks.push(5841, 7301);
        let c = ctx(0, 1461, 10_221, &blocks);
        s.on_dup_ack(&c);
        assert_eq!(s.scoreboard, vec![(2921, 4381), (5841, 7301)]);
        // The first retransmission must stop at the first SACKed block.
        assert_eq!(s.rexmit_cap(1461), Some(2921));
        // An overlapping block coalesces.
        let mut more = SackBlocks::NONE;
        more.push(4381, 5841);
        s.on_dup_ack(&ctx(1, 1461, 10_221, &more));
        assert_eq!(
            s.on_dup_ack(&ctx(1, 1461, 10_221, &SackBlocks::NONE)),
            CcSignal::Loss
        );
        assert_eq!(s.scoreboard, vec![(2921, 7301)]);
        assert_eq!(s.rexmit_cap(1461), Some(2921));
        // Cumulative ACK past a block prunes it.
        s.on_loss(&ctx(1, 1461, 10_221, &SackBlocks::NONE));
        let advanced = ctx(2, 7301, 10_221, &SackBlocks::NONE);
        assert_eq!(s.on_ack(&advanced, 5840), CcSignal::Retransmit);
        assert!(s.scoreboard.is_empty());
        assert_eq!(s.rexmit_cap(7301), None);
    }

    #[test]
    fn cubic_window_shape() {
        let mss = 1460;
        let wmax = 65_535;
        let k = cubic_k_ms(wmax, mss);
        // K ≈ ∛(0.75 · wmax/mss) seconds ≈ 3.2 s for these parameters.
        assert!((3_000..3_500).contains(&k), "k_ms = {k}");
        // At t = 0 the window is the post-loss plateau: 0.7·wmax.
        let w0 = cubic_window(wmax, mss, 0, k);
        assert!(w0.abs_diff(wmax * 7 / 10) < mss, "w0 = {w0}");
        // At t = K it recovers wmax, then grows convexly past it.
        let wk = cubic_window(wmax, mss, k, k);
        assert!(wk.abs_diff(wmax) < mss, "wk = {wk}");
        assert!(cubic_window(wmax, mss, 2 * k, k) > wmax);
        // Monotone non-decreasing in t.
        let mut prev = 0;
        for t in (0..10_000).step_by(250) {
            let w = cubic_window(wmax, mss, t, k);
            assert!(w >= prev, "cubic window decreased at t={t}");
            prev = w;
        }
    }

    #[test]
    fn cubic_growth_is_ack_clocked() {
        let mut c = Cubic::new(65_535, 1_000);
        // In congestion avoidance with a long-elapsed epoch, a single
        // ACK still grows at most one MSS.
        c.epoch = Some(SimTime::ZERO);
        c.wmax = 65_535;
        c.k_ms = 0;
        let none = SackBlocks::NONE;
        let before = c.cwnd();
        c.on_ack(&ctx(60_000, 1, 1, &none), 8 * 1460);
        assert!(c.cwnd() <= before + 1460);
        assert!(c.cwnd() >= before);
    }

    #[test]
    fn wire_blocks_merge_sort_and_cap() {
        let spans = [
            (100u64, 200u64),
            (200, 300),
            (400, 500),
            (600, 700),
            (800, 900),
            (1000, 1100),
        ];
        let b = wire_sack_blocks(spans.iter().copied(), 50);
        let got: Vec<_> = b.iter().collect();
        // Adjacent first two merge; only four blocks fit the option.
        assert_eq!(got, vec![(100, 300), (400, 500), (600, 700), (800, 900)]);
        let all = merged_spans(spans.iter().copied(), 50);
        assert_eq!(
            all,
            vec![(100, 300), (400, 500), (600, 700), (800, 900), (1000, 1100)]
        );
        // Spans at or below rcv_nxt are cumulative, not selective.
        assert!(wire_sack_blocks(spans.iter().copied(), 1200).is_empty());
    }
}
