//! The discrete-event simulator: hosts, sockets, the event loop, and the
//! application programming model.
//!
//! One [`App`] runs per host and is driven purely by events: socket readiness
//! notifications and application timers. The API mirrors a classic BSD
//! socket interface (`connect` / `listen` / `send` / `recv` / `shutdown` /
//! `close`) so the HTTP client and server crates read like ordinary
//! event-driven network programs.

use crate::impair::DropReason;
use crate::link::{Link, LinkConfig, Transmit};
use crate::packet::{HostId, Segment, SockAddr};
use crate::probe::{ProbeEventKind, ProbeRecord, ProbeSink, SpanEvent};
use crate::queue::EventQueue;
use crate::tcp::{Effects, SockNotify, State, Tcb, TcpConfig, TimerKind};
use crate::telemetry::{Metric, Scope, TelemetrySink};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceMode, TraceStats};
use bytes::Bytes;
use std::any::Any;
use std::collections::{HashMap, VecDeque};

/// Identifies one socket on one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SocketId {
    /// Host the socket lives on.
    pub host: HostId,
    /// Index into the host's socket table.
    pub slot: u32,
}

/// Events delivered to applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppEvent {
    /// Delivered once when the simulation starts.
    Start,
    /// An active open completed.
    Connected(SocketId),
    /// A passive open completed on the listener at `listener_port`.
    Accepted {
        /// The newly created connection.
        socket: SocketId,
        /// The listening port that accepted it.
        listener_port: u16,
    },
    /// Buffered data is available to read.
    Readable(SocketId),
    /// The peer half-closed; no data beyond what is buffered will arrive.
    PeerFin(SocketId),
    /// Send-buffer space freed up after a short write.
    SendSpace(SocketId),
    /// The connection was reset.
    Reset(SocketId),
    /// The connection closed gracefully.
    Closed(SocketId),
    /// An application timer set with [`Ctx::set_timer`] fired.
    Timer(u64),
}

/// A simulated application bound to one host.
///
/// `Any` is a supertrait so results can be extracted after a run via
/// [`Simulator::app_mut`].
pub trait App: Any {
    /// Handle one delivered event.
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: AppEvent);
}

/// Per-host socket-usage statistics (the paper's Table 3 reports both).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SocketStats {
    /// Total TCP connections created over the run.
    pub sockets_used: u64,
    /// Peak number of simultaneously open (non-CLOSED) sockets.
    pub max_simultaneous: u64,
    /// SYNs silently discarded because a listener's backlog was full.
    pub syn_drops: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueuedKind {
    Arrival,
    TcpTimer {
        slot: u32,
        kind: TimerKind,
        epoch: u64,
    },
    AppTimer {
        token: u64,
    },
    /// Release the next packet from a round-robin link direction.
    LinkPump {
        link: usize,
        a_to_b: bool,
    },
}

/// The payload of one queued event. Its delivery time and FIFO tie-break
/// live in the [`EventQueue`]; the payload carries everything else.
struct QueuedEvent {
    host: HostId,
    kind: QueuedKind,
    /// Only for arrivals.
    segment: Option<Segment>,
    sent: SimTime,
    physical: usize,
    /// True for the second copy of a network-duplicated packet.
    dup: bool,
}

struct HostState {
    name: String,
    tcp_config: TcpConfig,
    sockets: Vec<Tcb>,
    /// (local port, remote addr) → socket slot.
    // xtask: allow(hash-collections): keyed lookup only; never iterated.
    demux: HashMap<(u16, SockAddr), u32>,
    /// Listening ports → optional SYN-queue backlog bound (`None` accepts
    /// unconditionally).
    // xtask: allow(hash-collections): keyed lookup only; never iterated.
    listeners: HashMap<u16, Option<u32>>,
    next_ephemeral: u16,
    stats: SocketStats,
    /// Number of currently open sockets, maintained incrementally so peak
    /// tracking stays O(1) with thousands of fleet connections.
    open_now: u64,
    /// Parallel to `sockets`: whether each slot is still counted in
    /// `open_now`.
    open_flags: Vec<bool>,
}

impl HostState {
    fn open_sockets(&self) -> u64 {
        self.sockets.iter().filter(|t| t.state.is_open()).count() as u64
    }

    /// Sockets on `port` still mid-handshake — the listener's SYN queue.
    fn syn_queue_len(&self, port: u16) -> u32 {
        self.sockets
            .iter()
            .filter(|t| t.state == State::SynRcvd && t.local.port == port)
            .count() as u32
    }
}

/// The simulation kernel: owns hosts, links, the event queue and the trace.
pub struct Kernel {
    now: SimTime,
    queue: EventQueue<QueuedEvent>,
    hosts: Vec<HostState>,
    links: Vec<Link>,
    // xtask: allow(hash-collections): keyed lookup only; never iterated.
    link_index: HashMap<(HostId, HostId), usize>,
    trace: Trace,
    probe: ProbeSink,
    telemetry: TelemetrySink,
    pending: VecDeque<(HostId, AppEvent)>,
    /// Recycled [`Effects`] scratch: every event handler borrows one and
    /// returns it drained, so the per-event effect lists keep their
    /// capacities instead of re-allocating.
    fx_pool: Vec<Effects>,
    events_processed: u64,
    /// Safety valve against runaway simulations.
    max_events: u64,
}

impl Kernel {
    fn new() -> Self {
        Kernel {
            now: SimTime::ZERO,
            queue: EventQueue::wheel(),
            hosts: Vec::new(),          // xtask: allow(hot-path-alloc) kernel setup
            links: Vec::new(),          // xtask: allow(hot-path-alloc) kernel setup
            link_index: HashMap::new(), // xtask: allow(hash-collections)
            trace: Trace::new(),
            probe: ProbeSink::default(),
            telemetry: TelemetrySink::default(),
            pending: VecDeque::new(),
            fx_pool: Vec::new(), // xtask: allow(hot-path-alloc) kernel setup
            events_processed: 0,
            max_events: 200_000_000,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn push(&mut self, at: SimTime, host: HostId, kind: QueuedKind) {
        self.queue.push(
            at,
            QueuedEvent {
                host,
                kind,
                segment: None,
                sent: SimTime::ZERO,
                physical: 0,
                dup: false,
            },
        );
    }

    fn push_arrival(
        &mut self,
        at: SimTime,
        host: HostId,
        segment: Segment,
        sent: SimTime,
        physical: usize,
        dup: bool,
    ) {
        self.queue.push(
            at,
            QueuedEvent {
                host,
                kind: QueuedKind::Arrival,
                segment: Some(segment),
                sent,
                physical,
                dup,
            },
        );
    }

    fn host(&mut self, id: HostId) -> &mut HostState {
        &mut self.hosts[id.0 as usize]
    }

    /// Borrow a drained [`Effects`] from the pool (capacities retained).
    fn take_fx(&mut self) -> Effects {
        self.fx_pool.pop().unwrap_or_default()
    }

    /// Return an [`Effects`] to the pool. `apply_effects` drains every
    /// list, but clear anyway so a partially-used scratch can't leak
    /// stale effects into its next borrower.
    fn recycle_fx(&mut self, mut fx: Effects) {
        fx.clear();
        self.fx_pool.push(fx);
        if self.telemetry.enabled() {
            let now = self.now;
            let held = self.fx_pool.len() as u64;
            self.telemetry
                .gauge(now, Scope::Global, Metric::PoolEffects, held);
        }
    }

    /// Sample per-link-direction telemetry after a submission or pump:
    /// drop counters by reason, the instantaneous backlog, and its
    /// distribution.
    fn telemetry_link(&mut self, link: usize, from: HostId, dropped: Option<DropReason>) {
        if !self.telemetry.enabled() {
            return;
        }
        let a_to_b = from != self.links[link].b;
        let scope = Scope::Link {
            link: link as u32,
            a_to_b,
        };
        let now = self.now;
        if let Some(reason) = dropped {
            self.telemetry
                .counter_add(now, scope, Metric::for_drop(reason), 1);
        }
        let queued = self.links[link].queued_bytes(now, from);
        self.telemetry.gauge(now, scope, Metric::QueueBytes, queued);
        self.telemetry
            .observe(scope, Metric::QueueBytesHist, queued);
    }

    /// Sample a connection's congestion state after its TCB ran: cwnd,
    /// ssthresh, flight, RTO, and recovery-episode edges.
    fn telemetry_conn_sample(&mut self, host: HostId, slot: u32) {
        if !self.telemetry.enabled() {
            return;
        }
        let tcb = &self.hosts[host.0 as usize].sockets[slot as usize];
        let scope = Scope::Conn {
            host,
            local: tcb.local,
            remote: tcb.remote,
        };
        let cwnd = tcb.cwnd() as u64;
        let ssthresh = tcb.ssthresh() as u64;
        let flight = tcb.bytes_in_flight();
        let rto = tcb.rto().as_nanos();
        let in_recovery = tcb.cc_in_recovery();
        let variant = tcb.cc_variant();
        let now = self.now;
        self.telemetry.gauge(now, scope, Metric::Cwnd, cwnd);
        self.telemetry.gauge(now, scope, Metric::Ssthresh, ssthresh);
        self.telemetry
            .gauge(now, scope, Metric::FlightBytes, flight);
        self.telemetry.gauge(now, scope, Metric::RtoNs, rto);
        self.telemetry.observe(scope, Metric::FlightHist, flight);
        let level = u64::from(in_recovery);
        if self
            .telemetry
            .gauge_changed(now, scope, Metric::CcRecoveryActive, level)
            && in_recovery
        {
            self.telemetry
                .counter_add(now, Scope::Global, Metric::CcRecoveries(variant), 1);
        }
    }

    /// Record a wire-transmit probe event for a segment the link accepted.
    /// The serialization interval is reconstructed from the link's rate and
    /// propagation delay; rate-free links serialize instantaneously.
    fn probe_wire_tx(&mut self, seg: &Segment, physical: usize, arrival: SimTime, link: usize) {
        if !self.probe.enabled() {
            return;
        }
        let cfg = self.links[link].config();
        let serialize_end = SimTime::from_nanos(
            arrival
                .as_nanos()
                .saturating_sub(cfg.propagation.as_nanos()),
        );
        let tx_ns = match cfg.bits_per_sec {
            Some(bps) => SimDuration::transmission(physical, bps).as_nanos(),
            None => 0,
        };
        let serialize_start = SimTime::from_nanos(serialize_end.as_nanos().saturating_sub(tx_ns));
        self.probe.record(ProbeRecord {
            at: self.now,
            host: seg.src.host,
            local: seg.src,
            remote: seg.dst,
            kind: ProbeEventKind::WireTx {
                bytes: physical,
                payload: seg.has_payload(),
                serialize_start,
                serialize_end,
                arrival,
            },
        });
    }

    /// Transmit a segment onto the link towards its destination.
    fn transmit(&mut self, seg: Segment) {
        let from = seg.src.host;
        let to = seg.dst.host;
        let idx = *self
            .link_index
            .get(&(from, to))
            .unwrap_or_else(|| panic!("no link between h{} and h{}", from.0, to.0));
        let now = self.now;
        let (outcome, physical) = self.links[idx].transmit(now, from, &seg);
        let mut dropped = None;
        match outcome {
            Transmit::Arrives(at) => {
                self.probe_wire_tx(&seg, physical, at, idx);
                self.push_arrival(at, to, seg, now, physical, false)
            }
            Transmit::Duplicated(at, dup_at) => {
                self.probe_wire_tx(&seg, physical, at, idx);
                self.push_arrival(at, to, seg.clone(), now, physical, false);
                self.push_arrival(dup_at, to, seg, now, physical, true);
            }
            // The tracer must see drops too: they are invisible as
            // arrivals but the paper-style summaries report them.
            Transmit::Dropped(reason) => {
                self.trace.observe_drop(now, &seg, reason);
                dropped = Some(reason);
            }
            // Round-robin links deliver via pump events instead.
            Transmit::Queued(pump_at) => {
                if let Some(at) = pump_at {
                    let a_to_b = from != self.links[idx].b;
                    self.push(at, to, QueuedKind::LinkPump { link: idx, a_to_b });
                }
            }
        }
        self.telemetry_link(idx, from, dropped);
    }

    /// Serve one packet from a round-robin link direction and schedule the
    /// follow-up pump while backlog remains.
    fn handle_link_pump(&mut self, link: usize, a_to_b: bool) {
        let now = self.now;
        let Some(p) = self.links[link].pump(now, a_to_b) else {
            return;
        };
        if let Some(at) = p.next_pump {
            self.push(
                at,
                p.segment.dst.host,
                QueuedKind::LinkPump { link, a_to_b },
            );
        }
        let to = p.segment.dst.host;
        let from = p.segment.src.host;
        let mut dropped = None;
        match p.outcome {
            Transmit::Arrives(at) => {
                self.probe_wire_tx(&p.segment, p.physical, at, link);
                self.push_arrival(at, to, p.segment, p.sent, p.physical, false)
            }
            Transmit::Duplicated(at, dup_at) => {
                self.probe_wire_tx(&p.segment, p.physical, at, link);
                self.push_arrival(at, to, p.segment.clone(), p.sent, p.physical, false);
                self.push_arrival(dup_at, to, p.segment, p.sent, p.physical, true);
            }
            Transmit::Dropped(reason) => {
                self.trace.observe_drop(now, &p.segment, reason);
                dropped = Some(reason);
            }
            Transmit::Queued(_) => unreachable!("pump never re-queues"),
        }
        self.telemetry_link(link, from, dropped);
    }

    /// Apply the side effects a TCB produced.
    fn apply_effects(&mut self, host: HostId, slot: u32, fx: &mut Effects) {
        self.telemetry_conn_sample(host, slot);
        if !fx.probe.is_empty() {
            let tcb = &self.hosts[host.0 as usize].sockets[slot as usize];
            let (local, remote) = (tcb.local, tcb.remote);
            let now = self.now;
            for ev in fx.probe.drain(..) {
                self.probe.record(ProbeRecord {
                    at: now,
                    host,
                    local,
                    remote,
                    kind: ProbeEventKind::Tcp(ev),
                });
            }
        }
        for seg in fx.segments.drain(..) {
            self.transmit(seg);
        }
        for (kind, at, epoch) in fx.timers.drain(..) {
            self.push(at, host, QueuedKind::TcpTimer { slot, kind, epoch });
        }
        let mut any_close = false;
        for n in fx.notifications.drain(..) {
            let sock = SocketId { host, slot };
            let ev = match n {
                SockNotify::Connected => AppEvent::Connected(sock),
                SockNotify::Accepted => {
                    let port = self.hosts[host.0 as usize].sockets[slot as usize]
                        .local
                        .port;
                    AppEvent::Accepted {
                        socket: sock,
                        listener_port: port,
                    }
                }
                SockNotify::Readable => AppEvent::Readable(sock),
                SockNotify::PeerFin => AppEvent::PeerFin(sock),
                SockNotify::SendSpace => AppEvent::SendSpace(sock),
                SockNotify::Reset => {
                    any_close = true;
                    AppEvent::Reset(sock)
                }
                SockNotify::Closed => {
                    any_close = true;
                    AppEvent::Closed(sock)
                }
            };
            self.pending.push_back((host, ev));
        }
        // Keep the incremental open-socket count in step with any state
        // transition to CLOSED (including notification-free aborts).
        let h = self.host(host);
        if !h.sockets[slot as usize].state.is_open() && h.open_flags[slot as usize] {
            h.open_flags[slot as usize] = false;
            h.open_now -= 1;
        }
        if any_close {
            // Remove closed sockets from the demux table so the 4-tuple can
            // be reused.
            let h = self.host(host);
            let tcb = &h.sockets[slot as usize];
            if !tcb.state.is_open() {
                let key = (tcb.local.port, tcb.remote);
                h.demux.remove(&key);
            }
        }
    }

    /// Record a newly created socket in the open-socket accounting.
    fn count_socket_open(&mut self, host: HostId) {
        let h = self.host(host);
        h.open_flags.push(true);
        h.open_now += 1;
        debug_assert_eq!(h.open_flags.len(), h.sockets.len());
    }

    fn update_peak(&mut self, host: HostId) {
        let h = self.host(host);
        debug_assert_eq!(h.open_now, h.open_sockets());
        if h.open_now > h.stats.max_simultaneous {
            h.stats.max_simultaneous = h.open_now;
        }
    }

    fn handle_arrival(
        &mut self,
        host: HostId,
        seg: Segment,
        sent: SimTime,
        physical: usize,
        dup: bool,
    ) {
        // Borrow-only capture: in stats-only mode this is a pure
        // accumulation, with no per-packet clone or allocation.
        if dup {
            self.trace.observe_dup(sent, self.now, &seg, physical);
        } else {
            self.trace.observe(sent, self.now, &seg, physical);
        }

        let key = (seg.dst.port, seg.src);
        let h = &self.hosts[host.0 as usize];
        if let Some(&slot) = h.demux.get(&key) {
            let mut fx = self.take_fx();
            let now = self.now;
            self.host(host).sockets[slot as usize].on_segment(now, &seg, &mut fx);
            self.apply_effects(host, slot, &mut fx);
            self.recycle_fx(fx);
            self.update_peak(host);
            return;
        }

        // No connection. A SYN to a listening port performs a passive open —
        // unless the listener's SYN queue is full, in which case the SYN is
        // silently discarded and the client's retransmission timer must
        // recover (classic listen-backlog overflow).
        if seg.flags.syn && !seg.flags.ack {
            if let Some(&backlog) = h.listeners.get(&seg.dst.port) {
                if let Some(cap) = backlog {
                    if h.syn_queue_len(seg.dst.port) >= cap {
                        self.host(host).stats.syn_drops += 1;
                        let now = self.now;
                        self.telemetry
                            .counter_add(now, Scope::Host(host), Metric::SynDrops, 1);
                        return;
                    }
                }
                let local = SockAddr::new(host, seg.dst.port);
                let remote = seg.src;
                let cfg = h.tcp_config.clone();
                let mut fx = self.take_fx();
                let now = self.now;
                let mut tcb = Tcb::open_passive(local, remote, cfg, &seg, now, &mut fx);
                if self.probe.enabled() {
                    tcb.set_probe_enabled(true);
                    self.probe.record(ProbeRecord {
                        at: now,
                        host,
                        local,
                        remote,
                        kind: ProbeEventKind::ConnAccepted,
                    });
                }
                let h = self.host(host);
                let slot = h.sockets.len() as u32;
                h.sockets.push(tcb);
                let prev = h.demux.insert((local.port, remote), slot);
                debug_assert!(
                    prev.is_none(),
                    "passive open clobbered live demux entry ({}, {:?})",
                    local.port,
                    remote
                );
                h.stats.sockets_used += 1;
                self.count_socket_open(host);
                self.apply_effects(host, slot, &mut fx);
                self.recycle_fx(fx);
                self.update_peak(host);
                return;
            }
        }

        // Anything else aimed at a closed port draws a RST (unless it *is*
        // a RST).
        if !seg.flags.rst {
            let rst = Segment::rst(seg.dst, seg.src, seg.ack);
            self.transmit(rst);
        }
    }

    fn handle_tcp_timer(&mut self, host: HostId, slot: u32, kind: TimerKind, epoch: u64) {
        let mut fx = self.take_fx();
        let now = self.now;
        self.host(host).sockets[slot as usize].on_timer(now, kind, epoch, &mut fx);
        self.apply_effects(host, slot, &mut fx);
        self.recycle_fx(fx);
    }

    // --- socket syscalls used by Ctx -----------------------------------

    fn sock(&mut self, id: SocketId) -> &mut Tcb {
        &mut self.hosts[id.host.0 as usize].sockets[id.slot as usize]
    }

    /// Ephemeral ports count up from 40000, wrapping back there after
    /// 65535.
    fn next_ephemeral_after(port: u16) -> u16 {
        port.wrapping_add(1).max(40_000)
    }

    fn connect(&mut self, host: HostId, remote: SockAddr) -> SocketId {
        let cfg = self.host(host).tcp_config.clone();
        let h = self.host(host);
        // Skip ports whose (port, remote) 4-tuple is still claimed by a
        // live socket — a previous connection to the same peer may linger
        // in TIME_WAIT long after the application closed it.
        let mut port = h.next_ephemeral;
        let mut scanned: u32 = 0;
        while h.demux.contains_key(&(port, remote)) {
            port = Self::next_ephemeral_after(port);
            scanned += 1;
            assert!(
                scanned <= u16::MAX as u32,
                "ephemeral ports to {remote:?} exhausted"
            );
        }
        h.next_ephemeral = Self::next_ephemeral_after(port);
        let local = SockAddr::new(host, port);
        let mut fx = self.take_fx();
        let now = self.now;
        let mut tcb = Tcb::open_active(local, remote, cfg, now, &mut fx);
        if self.probe.enabled() {
            tcb.set_probe_enabled(true);
            self.probe.record(ProbeRecord {
                at: now,
                host,
                local,
                remote,
                kind: ProbeEventKind::ConnOpen,
            });
        }
        let h = self.host(host);
        let slot = h.sockets.len() as u32;
        h.sockets.push(tcb);
        let prev = h.demux.insert((port, remote), slot);
        debug_assert!(
            prev.is_none(),
            "active open clobbered live demux entry ({port}, {remote:?})"
        );
        h.stats.sockets_used += 1;
        self.count_socket_open(host);
        self.apply_effects(host, slot, &mut fx);
        self.recycle_fx(fx);
        self.update_peak(host);
        SocketId { host, slot }
    }

    fn listen(&mut self, host: HostId, port: u16, backlog: Option<u32>) {
        self.host(host).listeners.insert(port, backlog);
    }
}

/// The API surface applications use to act on the world.
pub struct Ctx<'a> {
    kernel: &'a mut Kernel,
    host: HostId,
}

impl<'a> Ctx<'a> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// This application's host.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Begin an active open to `remote`. Completion is signalled by
    /// [`AppEvent::Connected`].
    pub fn connect(&mut self, remote: SockAddr) -> SocketId {
        self.kernel.connect(self.host, remote)
    }

    /// Accept connections on `port`; each is signalled by
    /// [`AppEvent::Accepted`].
    pub fn listen(&mut self, port: u16) {
        self.kernel.listen(self.host, port, None);
    }

    /// Like [`Ctx::listen`], but with a bounded SYN queue: while `backlog`
    /// connections sit in SYN-RCVD on `port`, further SYNs are silently
    /// dropped (counted in [`SocketStats::syn_drops`]) and must be
    /// retransmitted by the peer.
    pub fn listen_with_backlog(&mut self, port: u16, backlog: u32) {
        self.kernel.listen(self.host, port, Some(backlog));
    }

    /// Queue bytes for transmission; returns the number accepted (bounded
    /// by the socket send buffer).
    pub fn send(&mut self, sock: SocketId, data: &[u8]) -> usize {
        debug_assert_eq!(sock.host, self.host, "cannot use another host's socket");
        let mut fx = self.kernel.take_fx();
        let now = self.kernel.now;
        let n = self.kernel.sock(sock).app_send(now, data, &mut fx);
        self.kernel.apply_effects(sock.host, sock.slot, &mut fx);
        self.kernel.recycle_fx(fx);
        n
    }

    /// Read up to `max` buffered bytes.
    pub fn recv(&mut self, sock: SocketId, max: usize) -> Bytes {
        let mut fx = self.kernel.take_fx();
        let data = self.kernel.sock(sock).app_recv(max, &mut fx);
        self.kernel.apply_effects(sock.host, sock.slot, &mut fx);
        self.kernel.recycle_fx(fx);
        data
    }

    /// Bytes currently buffered for reading.
    pub fn readable_bytes(&mut self, sock: SocketId) -> usize {
        self.kernel.sock(sock).readable_bytes()
    }

    /// Half-close the sending direction (graceful FIN after queued data).
    pub fn shutdown_write(&mut self, sock: SocketId) {
        let mut fx = self.kernel.take_fx();
        let now = self.kernel.now;
        self.kernel.sock(sock).app_shutdown_write(now, &mut fx);
        self.kernel.apply_effects(sock.host, sock.slot, &mut fx);
        self.kernel.recycle_fx(fx);
        self.kernel.update_peak(sock.host);
    }

    /// Full close: also declares the application will never read again, so
    /// late-arriving data triggers a RST (the naive-close hazard).
    pub fn close(&mut self, sock: SocketId) {
        let mut fx = self.kernel.take_fx();
        let now = self.kernel.now;
        self.kernel.sock(sock).app_close(now, &mut fx);
        self.kernel.apply_effects(sock.host, sock.slot, &mut fx);
        self.kernel.recycle_fx(fx);
        self.kernel.update_peak(sock.host);
    }

    /// Abortive close: RST immediately.
    pub fn abort(&mut self, sock: SocketId) {
        let mut fx = self.kernel.take_fx();
        self.kernel.sock(sock).app_abort(&mut fx);
        self.kernel.apply_effects(sock.host, sock.slot, &mut fx);
        self.kernel.recycle_fx(fx);
        self.kernel.update_peak(sock.host);
    }

    /// Set or clear TCP_NODELAY (the Nagle algorithm).
    pub fn set_nodelay(&mut self, sock: SocketId, nodelay: bool) {
        self.kernel.sock(sock).set_nodelay(nodelay);
    }

    /// Current TCP state (for diagnostics and tests).
    pub fn sock_state(&mut self, sock: SocketId) -> State {
        self.kernel.sock(sock).state
    }

    /// Whether the probe flight recorder is collecting. Lets callers skip
    /// building span payloads entirely while the probe is off.
    pub fn probe_enabled(&self) -> bool {
        self.kernel.probe.enabled()
    }

    /// Record an HTTP-layer request-lifecycle span mark against `sock`.
    /// No-op unless the simulator's probe was enabled.
    pub fn probe_span(&mut self, sock: SocketId, ev: SpanEvent) {
        if !self.kernel.probe.enabled() {
            return;
        }
        let tcb = self.kernel.sock(sock);
        let (local, remote) = (tcb.local, tcb.remote);
        let at = self.kernel.now;
        self.kernel.probe.record(ProbeRecord {
            at,
            host: sock.host,
            local,
            remote,
            kind: ProbeEventKind::Span(ev),
        });
    }

    /// Whether the telemetry sink is collecting. Lets applications skip
    /// computing gauge values entirely while the subsystem is off.
    pub fn telemetry_enabled(&self) -> bool {
        self.kernel.telemetry.enabled()
    }

    /// Record an application-level gauge in this host's scope (e.g.
    /// server concurrency or buffered memory). No-op unless the
    /// simulator's telemetry was enabled.
    pub fn telemetry_gauge(&mut self, metric: Metric, value: u64) {
        let now = self.kernel.now;
        let host = self.host;
        self.kernel
            .telemetry
            .gauge(now, Scope::Host(host), metric, value);
    }

    /// Arm an application timer; fires as [`AppEvent::Timer`] with `token`.
    /// Timers are one-shot; arming the same token again schedules another
    /// independent firing.
    pub fn set_timer(&mut self, token: u64, delay: SimDuration) {
        let at = self.kernel.now + delay;
        let host = self.host;
        self.kernel.push(at, host, QueuedKind::AppTimer { token });
    }
}

/// The top-level simulator owning the kernel and the applications.
pub struct Simulator {
    kernel: Kernel,
    apps: Vec<Option<Box<dyn App>>>,
    started: bool,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// Create a new, empty instance.
    pub fn new() -> Self {
        Simulator {
            kernel: Kernel::new(),
            apps: Vec::new(), // xtask: allow(hot-path-alloc) sim setup
            started: false,
        }
    }

    /// Add a host with default TCP configuration.
    pub fn add_host(&mut self, name: &str) -> HostId {
        let id = HostId(self.kernel.hosts.len() as u16);
        self.kernel.hosts.push(HostState {
            name: name.to_string(),
            tcp_config: TcpConfig::default(),
            sockets: Vec::new(),   // xtask: allow(hot-path-alloc) per-host setup
            demux: HashMap::new(), // xtask: allow(hash-collections)
            listeners: HashMap::new(), // xtask: allow(hash-collections)
            next_ephemeral: 40_000,
            stats: SocketStats::default(),
            open_now: 0,
            open_flags: Vec::new(), // xtask: allow(hot-path-alloc) per-host setup
        });
        self.apps.push(None);
        id
    }

    /// Override the TCP parameters new sockets on `host` will use.
    pub fn set_tcp_config(&mut self, host: HostId, cfg: TcpConfig) {
        self.kernel.host(host).tcp_config = cfg;
    }

    /// Connect two hosts with a link.
    pub fn add_link(&mut self, a: HostId, b: HostId, config: LinkConfig) {
        let idx = self.kernel.links.len();
        self.kernel.links.push(Link::new(a, b, config));
        self.kernel.link_index.insert((a, b), idx);
        self.kernel.link_index.insert((b, a), idx);
    }

    /// Multiplex every `spokes` host onto ONE shared link to `hub`: all
    /// spoke→hub traffic contends for the same transmitter (and hub→spoke
    /// for the reverse one), modelling N clients behind a bottleneck
    /// router. Arbitration between spokes follows the config's
    /// [`QueueDiscipline`].
    pub fn add_shared_link(&mut self, spokes: &[HostId], hub: HostId, config: LinkConfig) {
        assert!(!spokes.is_empty(), "a shared link needs at least one spoke");
        let idx = self.kernel.links.len();
        self.kernel.links.push(Link::new(spokes[0], hub, config));
        for &s in spokes {
            assert_ne!(s, hub, "hub cannot be its own spoke");
            self.kernel.link_index.insert((s, hub), idx);
            self.kernel.link_index.insert((hub, s), idx);
        }
    }

    /// Mutable access to the link between two hosts (e.g. to install a
    /// modem codec).
    pub fn link_mut(&mut self, a: HostId, b: HostId) -> &mut Link {
        let idx = self.kernel.link_index[&(a, b)];
        &mut self.kernel.links[idx]
    }

    /// Install (or replace) the impairment pipeline on the link between
    /// two hosts. Shorthand for `link_mut(a, b).set_impairment(..)`.
    pub fn set_impairment(&mut self, a: HostId, b: HostId, impair: crate::impair::ImpairConfig) {
        self.link_mut(a, b).set_impairment(impair);
    }

    /// Install the application driving `host`.
    pub fn install_app(&mut self, host: HostId, app: Box<dyn App>) {
        self.apps[host.0 as usize] = Some(app);
    }

    /// Borrow an installed application, downcast to its concrete type.
    pub fn app_mut<T: App>(&mut self, host: HostId) -> Option<&mut T> {
        let app = self.apps[host.0 as usize].as_mut()?;
        let any: &mut dyn Any = app.as_mut();
        any.downcast_mut::<T>()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// The packet capture of the run so far.
    pub fn trace(&self) -> &Trace {
        &self.kernel.trace
    }

    /// Swap the kernel's timer wheel for the reference binary-heap event
    /// queue (differential testing only — the two pop in identical order
    /// by contract). Call before any traffic flows; queued events do not
    /// migrate.
    pub fn use_reference_queue(&mut self) {
        assert!(
            self.kernel.queue.is_empty(),
            "switch event queues before scheduling any events"
        );
        self.kernel.queue = EventQueue::heap();
    }

    /// Select how much of each packet the trace retains. Set this before
    /// traffic flows: packets already observed stay in whatever form the
    /// previous mode kept.
    pub fn set_trace_mode(&mut self, mode: TraceMode) {
        self.kernel.trace.set_mode(mode);
    }

    /// The current trace capture mode.
    pub fn trace_mode(&self) -> TraceMode {
        self.kernel.trace.mode()
    }

    /// Turn on the probe flight recorder. Do this before traffic flows:
    /// sockets created while the probe was off never emit events.
    pub fn enable_probe(&mut self) {
        self.kernel.probe.enable();
    }

    /// Whether the probe flight recorder is collecting.
    pub fn probe_enabled(&self) -> bool {
        self.kernel.probe.enabled()
    }

    /// The probe records collected so far (always empty unless
    /// [`Simulator::enable_probe`] was called).
    pub fn probe_records(&self) -> &[ProbeRecord] {
        self.kernel.probe.records()
    }

    /// Turn on the telemetry time-series sink with the default 10 ms
    /// tick. Do this before traffic flows so series cover the whole run.
    pub fn enable_telemetry(&mut self) {
        self.kernel.telemetry.enable();
    }

    /// Like [`Simulator::enable_telemetry`], but sampling on a custom
    /// tick width.
    pub fn enable_telemetry_with_tick(&mut self, tick: SimDuration) {
        self.kernel.telemetry.set_tick(tick);
        self.kernel.telemetry.enable();
    }

    /// Whether the telemetry sink is collecting.
    pub fn telemetry_enabled(&self) -> bool {
        self.kernel.telemetry.enabled()
    }

    /// The telemetry series collected so far (empty unless
    /// [`Simulator::enable_telemetry`] was called).
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.kernel.telemetry
    }

    /// Statistics over all packets between `client` and `server`.
    pub fn stats(&self, client: HostId, server: HostId) -> TraceStats {
        self.kernel.trace.stats(client, server)
    }

    /// Per-host socket usage (sockets used / max simultaneous).
    pub fn socket_stats(&self, host: HostId) -> SocketStats {
        self.kernel.hosts[host.0 as usize].stats
    }

    /// The display name the host was created with.
    pub fn host_name(&self, host: HostId) -> &str {
        &self.kernel.hosts[host.0 as usize].name
    }

    fn dispatch_pending(&mut self) {
        while let Some((host, ev)) = self.kernel.pending.pop_front() {
            let Some(mut app) = self.apps[host.0 as usize].take() else {
                continue;
            };
            let mut ctx = Ctx {
                kernel: &mut self.kernel,
                host,
            };
            app.on_event(&mut ctx, ev);
            self.apps[host.0 as usize] = Some(app);
        }
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.apps.len() {
            let host = HostId(i as u16);
            if self.apps[i].is_some() {
                self.kernel.pending.push_back((host, AppEvent::Start));
            }
        }
        self.dispatch_pending();
    }

    /// Run until the event queue drains or `deadline` passes. Returns the
    /// number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.start_if_needed();
        let mut processed = 0;
        while let Some((at, ev)) = self.kernel.queue.pop_before(deadline) {
            self.kernel.now = at;
            self.kernel.events_processed += 1;
            processed += 1;
            assert!(
                self.kernel.events_processed < self.kernel.max_events,
                "simulation exceeded {} events — runaway?",
                self.kernel.max_events
            );
            match ev.kind {
                QueuedKind::Arrival => {
                    let seg = ev.segment.expect("arrival carries a segment");
                    self.kernel
                        .handle_arrival(ev.host, seg, ev.sent, ev.physical, ev.dup);
                }
                QueuedKind::TcpTimer { slot, kind, epoch } => {
                    self.kernel.handle_tcp_timer(ev.host, slot, kind, epoch);
                }
                QueuedKind::AppTimer { token } => {
                    self.kernel
                        .pending
                        .push_back((ev.host, AppEvent::Timer(token)));
                }
                QueuedKind::LinkPump { link, a_to_b } => {
                    self.kernel.handle_link_pump(link, a_to_b);
                }
            }
            self.dispatch_pending();
        }
        processed
    }

    /// Run until no more events remain (including lingering TIME_WAIT
    /// timers, which merely advance the clock).
    pub fn run_until_idle(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    /// Run for a bounded amount of simulated time from now.
    pub fn run_for(&mut self, d: SimDuration) -> u64 {
        let deadline = self.kernel.now + d;
        self.run_until(deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo server: accepts connections and echoes every byte back; closes
    /// when the peer half-closes.
    struct Echo {
        port: u16,
        echoed: usize,
    }

    impl App for Echo {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
            match ev {
                AppEvent::Start => ctx.listen(self.port),
                AppEvent::Readable(s) => {
                    let data = ctx.recv(s, usize::MAX);
                    self.echoed += data.len();
                    ctx.send(s, &data);
                }
                AppEvent::PeerFin(s) => ctx.shutdown_write(s),
                _ => {}
            }
        }
    }

    /// Client that sends a payload (handling short writes), waits for the
    /// echo, then closes.
    struct EchoClient {
        server: SockAddr,
        payload: Vec<u8>,
        sent: usize,
        received: Vec<u8>,
        done: bool,
        sock: Option<SocketId>,
    }

    impl EchoClient {
        fn pump_send(&mut self, ctx: &mut Ctx<'_>, s: SocketId) {
            while self.sent < self.payload.len() {
                let n = ctx.send(s, &self.payload[self.sent..]);
                if n == 0 {
                    break;
                }
                self.sent += n;
            }
        }
    }

    impl App for EchoClient {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
            match ev {
                AppEvent::Start => {
                    self.sock = Some(ctx.connect(self.server));
                }
                AppEvent::Connected(s) | AppEvent::SendSpace(s) => {
                    self.pump_send(ctx, s);
                }
                AppEvent::Readable(s) => {
                    let data = ctx.recv(s, usize::MAX);
                    self.received.extend_from_slice(&data);
                    if self.received.len() == self.payload.len() {
                        self.done = true;
                        ctx.shutdown_write(s);
                    }
                }
                _ => {}
            }
        }
    }

    fn echo_roundtrip(cfg: LinkConfig, payload_len: usize) -> (Simulator, HostId, HostId) {
        echo_roundtrip_mode(cfg, payload_len, TraceMode::Full)
    }

    fn echo_roundtrip_mode(
        cfg: LinkConfig,
        payload_len: usize,
        mode: TraceMode,
    ) -> (Simulator, HostId, HostId) {
        let mut sim = Simulator::new();
        sim.set_trace_mode(mode);
        let client = sim.add_host("client");
        let server = sim.add_host("server");
        sim.add_link(client, server, cfg);
        sim.install_app(
            server,
            Box::new(Echo {
                port: 80,
                echoed: 0,
            }),
        );
        sim.install_app(
            client,
            Box::new(EchoClient {
                server: SockAddr::new(server, 80),
                payload: (0..payload_len).map(|i| (i % 251) as u8).collect(),
                sent: 0,
                received: Vec::new(),
                done: false,
                sock: None,
            }),
        );
        sim.run_until_idle();
        (sim, client, server)
    }

    #[test]
    fn echo_small_payload_lan() {
        let (mut sim, client, _server) = echo_roundtrip(LinkConfig::lan(), 100);
        let app = sim.app_mut::<EchoClient>(client).unwrap();
        assert!(app.done, "echo completed");
        assert_eq!(app.received.len(), 100);
    }

    #[test]
    fn echo_large_payload_wan() {
        let (mut sim, client, server) = echo_roundtrip(LinkConfig::wan(), 100_000);
        let app = sim.app_mut::<EchoClient>(client).unwrap();
        assert!(app.done);
        assert_eq!(app.received.len(), 100_000);
        let stats = sim.stats(client, server);
        // 200 KB of payload at 1460 MSS in both directions: at least 138
        // data segments, and the handshake.
        assert!(stats.total_packets() > 140);
        assert!(stats.syns == 2);
    }

    #[test]
    fn echo_over_lossy_link_still_completes() {
        let (mut sim, client, _server) =
            echo_roundtrip(LinkConfig::lan().with_drop_every(7), 50_000);
        let app = sim.app_mut::<EchoClient>(client).unwrap();
        assert!(app.done, "retransmission recovered all losses");
        assert_eq!(app.received.len(), 50_000);
    }

    #[test]
    fn connection_to_closed_port_resets() {
        struct Probe {
            server: SockAddr,
            reset: bool,
        }
        impl App for Probe {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
                match ev {
                    AppEvent::Start => {
                        ctx.connect(self.server);
                    }
                    AppEvent::Reset(_) => self.reset = true,
                    _ => {}
                }
            }
        }
        let mut sim = Simulator::new();
        let client = sim.add_host("client");
        let server = sim.add_host("server");
        sim.add_link(client, server, LinkConfig::lan());
        sim.install_app(
            client,
            Box::new(Probe {
                server: SockAddr::new(server, 81), // nothing listens there
                reset: false,
            }),
        );
        sim.run_until_idle();
        assert!(sim.app_mut::<Probe>(client).unwrap().reset);
    }

    #[test]
    fn socket_stats_track_usage() {
        let (sim, client, server) = echo_roundtrip(LinkConfig::lan(), 10);
        assert_eq!(sim.socket_stats(client).sockets_used, 1);
        assert_eq!(sim.socket_stats(server).sockets_used, 1);
        assert!(sim.socket_stats(client).max_simultaneous >= 1);
    }

    #[test]
    fn app_timer_fires() {
        struct TimerApp {
            fired: Vec<u64>,
        }
        impl App for TimerApp {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
                match ev {
                    AppEvent::Start => {
                        ctx.set_timer(7, SimDuration::from_millis(50));
                        ctx.set_timer(8, SimDuration::from_millis(10));
                    }
                    AppEvent::Timer(t) => self.fired.push(t),
                    _ => {}
                }
            }
        }
        let mut sim = Simulator::new();
        let h = sim.add_host("solo");
        sim.install_app(h, Box::new(TimerApp { fired: Vec::new() }));
        sim.run_until_idle();
        assert_eq!(sim.app_mut::<TimerApp>(h).unwrap().fired, vec![8, 7]);
    }

    #[test]
    fn elapsed_time_reflects_link_latency() {
        let (sim, client, server) = echo_roundtrip(LinkConfig::wan(), 1000);
        let stats = sim.stats(client, server);
        // Handshake + request + echo + close takes several RTTs at 90 ms.
        assert!(stats.elapsed_secs() > 0.15, "got {}", stats.elapsed_secs());
    }

    #[test]
    fn trace_dump_contains_syn() {
        let (sim, _c, _s) = echo_roundtrip(LinkConfig::lan(), 10);
        let dump = sim.trace().dump();
        assert!(dump.contains("[S]"), "dump:\n{dump}");
    }

    /// The same simulation observed in both trace modes must report
    /// identical statistics, while the stats-only run retains no records.
    #[test]
    fn stats_only_simulation_matches_full() {
        for cfg in [
            LinkConfig::lan(),
            LinkConfig::wan(),
            LinkConfig::lan().with_drop_every(7),
        ] {
            let (full, c1, s1) = echo_roundtrip_mode(cfg.clone(), 30_000, TraceMode::Full);
            let (lean, c2, s2) = echo_roundtrip_mode(cfg, 30_000, TraceMode::StatsOnly);
            assert_eq!(full.stats(c1, s1), lean.stats(c2, s2));
            assert_eq!(full.trace().len(), lean.trace().len());
            assert!(!full.trace().records().is_empty());
            assert!(lean.trace().records().is_empty());
            assert_eq!(lean.trace_mode(), TraceMode::StatsOnly);
        }
    }

    /// Ephemeral allocation must skip (port, remote) 4-tuples still
    /// claimed by live sockets instead of silently clobbering their demux
    /// entries.
    #[test]
    fn ephemeral_port_allocation_skips_live_tuples() {
        let mut sim = Simulator::new();
        let client = sim.add_host("client");
        let server = sim.add_host("server");
        sim.add_link(client, server, LinkConfig::lan());
        let remote = SockAddr::new(server, 80);
        // Claim the first two candidate ports, as lingering TIME_WAIT
        // connections to the same peer would.
        sim.kernel.host(client).demux.insert((40_000, remote), 1000);
        sim.kernel.host(client).demux.insert((40_001, remote), 1001);
        let sock = sim.kernel.connect(client, remote);
        let local = sim.kernel.sock(sock).local;
        assert_eq!(local.port, 40_002, "first free port is chosen");
        // A connection to a different peer is unaffected by those claims.
        let other = SockAddr::new(server, 8080);
        let sock2 = sim.kernel.connect(client, other);
        assert_eq!(sim.kernel.sock(sock2).local.port, 40_003);
    }

    #[test]
    fn ephemeral_ports_wrap_back_to_forty_thousand() {
        assert_eq!(Kernel::next_ephemeral_after(40_000), 40_001);
        assert_eq!(Kernel::next_ephemeral_after(u16::MAX), 40_000);
        assert_eq!(Kernel::next_ephemeral_after(39_999), 40_000);
    }

    /// Force the allocator to the top of the ephemeral range: it must wrap
    /// to 40000 mid-burst without panicking or clobbering live tuples.
    #[test]
    fn ephemeral_allocation_survives_wraparound() {
        let mut sim = Simulator::new();
        let client = sim.add_host("client");
        let server = sim.add_host("server");
        sim.add_link(client, server, LinkConfig::lan());
        let remote = SockAddr::new(server, 80);
        sim.kernel.host(client).next_ephemeral = u16::MAX - 2;
        let mut ports = Vec::new();
        for _ in 0..6 {
            let sock = sim.kernel.connect(client, remote);
            ports.push(sim.kernel.sock(sock).local.port);
        }
        assert_eq!(
            ports,
            vec![65533, 65534, 65535, 40_000, 40_001, 40_002],
            "wraps past 65535 back into the ephemeral range"
        );
    }

    /// N spoke hosts on one shared FIFO bottleneck: traffic from different
    /// clients serializes behind the same transmitter, so each transfer is
    /// slower than it would be on a private link, yet all complete.
    #[test]
    fn shared_bottleneck_serializes_competing_clients() {
        let run = |shared: bool| -> (f64, Vec<usize>) {
            let mut sim = Simulator::new();
            let clients: Vec<HostId> = (0..4).map(|i| sim.add_host(&format!("c{i}"))).collect();
            let server = sim.add_host("server");
            if shared {
                sim.add_shared_link(&clients, server, LinkConfig::ppp());
            } else {
                for &c in &clients {
                    sim.add_link(c, server, LinkConfig::ppp());
                }
            }
            sim.install_app(
                server,
                Box::new(Echo {
                    port: 80,
                    echoed: 0,
                }),
            );
            for &c in &clients {
                sim.install_app(
                    c,
                    Box::new(EchoClient {
                        server: SockAddr::new(server, 80),
                        payload: vec![7u8; 20_000],
                        sent: 0,
                        received: Vec::new(),
                        done: false,
                        sock: None,
                    }),
                );
            }
            sim.run_until_idle();
            let elapsed = clients
                .iter()
                .map(|&c| sim.stats(c, server).elapsed_secs())
                .fold(0.0f64, f64::max);
            let received = clients
                .iter()
                .map(|&c| {
                    let app = sim.app_mut::<EchoClient>(c).unwrap();
                    assert!(app.done, "every client finishes");
                    app.received.len()
                })
                .collect();
            (elapsed, received)
        };
        let (private_t, private_rx) = run(false);
        let (shared_t, shared_rx) = run(true);
        assert_eq!(private_rx, shared_rx);
        assert!(
            shared_t > 3.0 * private_t,
            "4 clients behind one 28.8k modem should take ~4x as long \
             (private {private_t:.2}s shared {shared_t:.2}s)"
        );
    }

    /// The same fleet on a round-robin bottleneck also completes, with the
    /// pump-driven delivery path.
    #[test]
    fn shared_round_robin_bottleneck_completes() {
        let mut sim = Simulator::new();
        let clients: Vec<HostId> = (0..4).map(|i| sim.add_host(&format!("c{i}"))).collect();
        let server = sim.add_host("server");
        sim.add_shared_link(
            &clients,
            server,
            LinkConfig::lan()
                .with_round_robin()
                .with_buffer_bytes(64_000),
        );
        sim.install_app(
            server,
            Box::new(Echo {
                port: 80,
                echoed: 0,
            }),
        );
        for &c in &clients {
            sim.install_app(
                c,
                Box::new(EchoClient {
                    server: SockAddr::new(server, 80),
                    payload: vec![3u8; 30_000],
                    sent: 0,
                    received: Vec::new(),
                    done: false,
                    sock: None,
                }),
            );
        }
        sim.run_until_idle();
        for &c in &clients {
            let app = sim.app_mut::<EchoClient>(c).unwrap();
            assert!(app.done);
            assert_eq!(app.received.len(), 30_000);
        }
    }

    /// A bounded listen backlog silently drops overflow SYNs; clients
    /// recover via SYN retransmission, so every connection still
    /// establishes eventually.
    #[test]
    fn listen_backlog_overflow_drops_syns_then_recovers() {
        struct BacklogEcho {
            port: u16,
            backlog: u32,
            accepted: u64,
        }
        impl App for BacklogEcho {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
                match ev {
                    AppEvent::Start => ctx.listen_with_backlog(self.port, self.backlog),
                    AppEvent::Accepted { .. } => self.accepted += 1,
                    AppEvent::Readable(s) => {
                        let data = ctx.recv(s, usize::MAX);
                        ctx.send(s, &data);
                    }
                    AppEvent::PeerFin(s) => ctx.shutdown_write(s),
                    _ => {}
                }
            }
        }
        let mut sim = Simulator::new();
        let clients: Vec<HostId> = (0..8).map(|i| sim.add_host(&format!("c{i}"))).collect();
        let server = sim.add_host("server");
        // High-latency link: SYN-RCVD entries linger a full RTT, so eight
        // simultaneous SYNs overflow a backlog of two.
        sim.add_shared_link(&clients, server, LinkConfig::wan());
        sim.install_app(
            server,
            Box::new(BacklogEcho {
                port: 80,
                backlog: 2,
                accepted: 0,
            }),
        );
        for &c in &clients {
            sim.install_app(
                c,
                Box::new(EchoClient {
                    server: SockAddr::new(server, 80),
                    payload: vec![1u8; 100],
                    sent: 0,
                    received: Vec::new(),
                    done: false,
                    sock: None,
                }),
            );
        }
        sim.run_until_idle();
        let stats = sim.socket_stats(server);
        assert!(
            stats.syn_drops > 0,
            "backlog of 2 must shed some of 8 simultaneous SYNs"
        );
        assert_eq!(stats.sockets_used, 8, "retransmitted SYNs all land");
        for &c in &clients {
            assert!(sim.app_mut::<EchoClient>(c).unwrap().done);
        }
    }
}
