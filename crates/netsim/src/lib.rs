//! # netsim — a deterministic discrete-event TCP/IP network simulator
//!
//! This crate is the measurement substrate for the reproduction of
//! *"Network Performance Effects of HTTP/1.1, CSS1, and PNG"* (Nielsen,
//! Gettys, et al., SIGCOMM '97). The paper's results are protocol-mechanics
//! results — packet counts and elapsed times governed by TCP connection
//! setup/teardown, slow start, delayed acknowledgements, the Nagle
//! algorithm, and application buffering. `netsim` provides:
//!
//! * a virtual clock and event queue ([`time`], [`sim`]);
//! * point-to-point links with bandwidth, propagation delay, FIFO
//!   serialization, optional modem-style link compression, and a
//!   seeded-deterministic impairment pipeline — loss (uniform or bursty),
//!   jitter, reordering, duplication, scheduled outages and queue bounds
//!   ([`link`], [`modem`], [`impair`]);
//! * a TCP state machine implementing the mechanisms above, including
//!   correct half-close and RST-on-data-after-close semantics ([`tcp`]);
//! * an event-driven application model with a BSD-like socket API
//!   ([`sim::App`], [`sim::Ctx`]);
//! * tcpdump-like packet capture and the statistics the paper's tables
//!   report ([`trace`]);
//! * deterministic time-series telemetry (counters, gauges, streaming
//!   histograms on sim-time ticks) and pcapng export so simulated
//!   connections open in Wireshark/tcptrace ([`telemetry`], [`pcapng`]).
//!
//! Everything is deterministic: the same setup yields byte-identical traces
//! on every run, which makes experiments exactly reproducible.
//!
//! ## Example
//!
//! ```
//! use netsim::{LinkConfig, SockAddr, Simulator};
//! use netsim::sim::{App, AppEvent, Ctx};
//!
//! struct Hello { server: SockAddr, got: usize }
//! impl App for Hello {
//!     fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
//!         match ev {
//!             AppEvent::Start => { ctx.connect(self.server); }
//!             AppEvent::Connected(s) => { ctx.send(s, b"ping"); }
//!             AppEvent::Readable(s) => {
//!                 self.got += ctx.recv(s, usize::MAX).len();
//!                 ctx.shutdown_write(s);
//!             }
//!             _ => {}
//!         }
//!     }
//! }
//!
//! struct Pong { port: u16 }
//! impl App for Pong {
//!     fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
//!         match ev {
//!             AppEvent::Start => ctx.listen(self.port),
//!             AppEvent::Readable(s) => {
//!                 let data = ctx.recv(s, usize::MAX);
//!                 ctx.send(s, &data);
//!             }
//!             AppEvent::PeerFin(s) => ctx.shutdown_write(s),
//!             _ => {}
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new();
//! let client = sim.add_host("client");
//! let server = sim.add_host("server");
//! sim.add_link(client, server, LinkConfig::lan());
//! sim.install_app(server, Box::new(Pong { port: 80 }));
//! sim.install_app(client, Box::new(Hello { server: SockAddr::new(server, 80), got: 0 }));
//! sim.run_until_idle();
//! assert_eq!(sim.app_mut::<Hello>(client).unwrap().got, 4);
//! let stats = sim.stats(client, server);
//! assert_eq!(stats.syns, 2); // SYN + SYN-ACK
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cc;
pub mod impair;
pub mod json;
pub mod link;
pub mod modem;
pub mod packet;
pub mod pcapng;
pub mod pool;
pub mod probe;
pub mod queue;
pub mod seq;
pub mod sim;
pub mod tcp;
pub mod telemetry;
pub mod time;
pub mod trace;

pub use cc::{cubic_k_ms, cubic_window, CcVariant, CongestionControl};
pub use impair::{DropReason, ImpairConfig, JitterModel, LossModel, Outage};
pub use link::{Link, LinkCodec, LinkConfig, Pumped, QueueDiscipline, Transmit};
pub use modem::ModemCompressor;
pub use packet::{HostId, SackBlocks, Segment, SockAddr, TcpFlags, TCP_IP_HEADER_BYTES};
pub use pcapng::{PcapError, PcapPacket};
pub use pool::Slab;
pub use probe::{
    Diagnosis, FlushCause, ProbeAnalysis, ProbeEventKind, ProbeRecord, ProbeReport, ProbeSink,
    SpanEvent, StallBuckets,
};
pub use sim::{App, AppEvent, Ctx, Simulator, SocketId, SocketStats};
pub use tcp::TcpConfig;
pub use telemetry::{Metric, Scope, TelemetrySink, TelemetrySummary};
pub use time::{SimDuration, SimTime};
pub use trace::{DropRecord, Trace, TraceMode, TraceModeError, TraceRecord, TraceStats};
