//! A TCP state machine faithful enough to reproduce the protocol mechanics
//! the paper measures: three-way handshake, slow start and congestion
//! avoidance, delayed acknowledgements, the Nagle algorithm, independent
//! half-close, RST semantics on data-after-close, retransmission with
//! Jacobson RTO estimation, and fast retransmit.
//!
//! The machine is *pure*: every entry point takes the current time and an
//! [`Effects`] sink into which it pushes segments to transmit, timers to arm
//! and application notifications. The surrounding kernel (see
//! [`crate::sim`]) owns delivery, which keeps this module directly
//! unit-testable.

use crate::cc::{self, CcContext, CcCtl, CcSignal, CcVariant, CongestionControl};
use crate::packet::{SackBlocks, Segment, SockAddr, TcpFlags};
use crate::probe::{BlockReason, TcpProbeEvent};
use crate::seq::{seq_ge, seq_gt, seq_lt, seq_sub};
use crate::time::{SimDuration, SimTime};
use bytes::{Bytes, BytesMut};
use std::collections::BTreeMap;

/// Tunable parameters of a TCP endpoint.
///
/// Defaults model a mid-1990s BSD-derived stack as used in the paper's
/// testbed: 1460-byte MSS, 200 ms delayed-ACK timer, Nagle enabled, initial
/// congestion window of two segments.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per segment).
    pub mss: usize,
    /// Receive buffer / advertised window in bytes.
    pub recv_window: usize,
    /// Send buffer capacity in bytes; writes beyond it are truncated and the
    /// application is notified when space frees up.
    pub send_buffer: usize,
    /// Initial congestion window, in segments.
    pub initial_cwnd_segments: u32,
    /// Initial slow-start threshold in bytes.
    pub initial_ssthresh: usize,
    /// Disable the Nagle algorithm (TCP_NODELAY).
    pub nodelay: bool,
    /// Delayed-ACK timeout; an ACK is also forced every second full segment.
    pub delayed_ack: SimDuration,
    /// Retransmission timeout before any RTT measurement exists.
    pub initial_rto: SimDuration,
    /// Lower bound on the retransmission timeout.
    pub min_rto: SimDuration,
    /// How long a socket lingers in TIME_WAIT (2·MSL).
    pub time_wait: SimDuration,
    /// Which congestion-control algorithm drives the window (see
    /// [`crate::cc`]). [`CcVariant::Sack`] also turns on receiver-side
    /// SACK block generation.
    pub cc: CcVariant,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            recv_window: 65_535,
            send_buffer: 65_535,
            initial_cwnd_segments: 2,
            initial_ssthresh: 65_535,
            nodelay: false,
            delayed_ack: SimDuration::from_millis(200),
            // The classic BSD initial RTO of 3 s (RFC 1122). A smaller
            // value causes spurious retransmission storms when several
            // connections share a slow modem link — a real 1990s failure
            // mode, but not one the paper's traces show.
            initial_rto: SimDuration::from_millis(3_000),
            min_rto: SimDuration::from_millis(500),
            time_wait: SimDuration::from_secs(60),
            cc: CcVariant::Reno,
        }
    }
}

/// TCP connection states (RFC 793), minus LISTEN which is handled by the
/// kernel's port table rather than a TCB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Syn sent.
    SynSent,
    /// Syn rcvd.
    SynRcvd,
    /// Established.
    Established,
    /// Fin wait1.
    FinWait1,
    /// Fin wait2.
    FinWait2,
    /// Close wait.
    CloseWait,
    /// Last ack.
    LastAck,
    /// Closing.
    Closing,
    /// Time wait.
    TimeWait,
    /// Closed.
    Closed,
}

impl State {
    /// Whether the endpoint still occupies a socket slot visible to
    /// `netstat` (used for the paper's "max simultaneous sockets" metric).
    pub fn is_open(self) -> bool {
        !matches!(self, State::Closed)
    }
}

/// Per-connection timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// Retransmission timeout.
    Rto,
    /// Delayed-ACK timeout.
    DelAck,
    /// TIME_WAIT expiry.
    TimeWait,
    /// Zero-window persist probe.
    Persist,
}

impl TimerKind {
    /// Number of distinct timer kinds.
    pub const COUNT: usize = 4;
    /// Stable array index for this timer kind.
    pub fn index(self) -> usize {
        match self {
            TimerKind::Rto => 0,
            TimerKind::DelAck => 1,
            TimerKind::TimeWait => 2,
            TimerKind::Persist => 3,
        }
    }
}

/// Notifications surfaced to the owning application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SockNotify {
    /// Active open completed (SYN-ACK received).
    Connected,
    /// Passive open completed (handshake ACK received).
    Accepted,
    /// New data is available to read.
    Readable,
    /// The peer sent FIN: no more data will arrive after the buffered bytes.
    PeerFin,
    /// Send-buffer space freed after the application hit the cap.
    SendSpace,
    /// The connection was reset by the peer; unread data was discarded.
    Reset,
    /// The connection has fully closed gracefully.
    Closed,
}

/// Side effects produced by driving the state machine.
#[derive(Debug, Default)]
pub struct Effects {
    /// Segments to transmit, in order.
    pub segments: Vec<Segment>,
    /// Timers to arm: (kind, deadline, epoch). A timer fires only if its
    /// epoch still matches the TCB's current epoch for that kind.
    pub timers: Vec<(TimerKind, SimTime, u64)>,
    /// Events to surface to the owning application.
    pub notifications: Vec<SockNotify>,
    /// Probe events for the flight recorder (empty unless the owning
    /// kernel enabled its [`crate::probe::ProbeSink`]).
    pub probe: Vec<TcpProbeEvent>,
}

impl Effects {
    /// Drop all accumulated contents.
    pub fn clear(&mut self) {
        self.segments.clear();
        self.timers.clear();
        self.notifications.clear();
        self.probe.clear();
    }
}

/// Congestion-control and round-trip estimation state. Window policy
/// is delegated to the pluggable [`CcCtl`]; the RTT estimator and RTO
/// backoff are variant-independent and stay here.
#[derive(Debug)]
struct CongestionState {
    ctl: CcCtl,
    /// Smoothed RTT and variance (Jacobson/Karels), in nanoseconds.
    srtt_ns: Option<u64>,
    rttvar_ns: u64,
    rto: SimDuration,
    rto_backoff: u32,
    /// Outstanding RTT measurement: (sequence that must be acked, send time).
    rtt_sample: Option<(u64, SimTime)>,
}

/// A TCP control block.
#[derive(Debug)]
pub struct Tcb {
    /// This endpoint's address.
    pub local: SockAddr,
    /// The peer's address.
    pub remote: SockAddr,
    /// Current RFC 793 connection state.
    pub state: State,
    cfg: TcpConfig,

    // --- send side ---
    /// First unacknowledged sequence number.
    snd_una: u64,
    /// Next sequence number to send.
    snd_nxt: u64,
    /// Data buffer; `buf_base` is the sequence number of `send_buf[0]`.
    send_buf: BytesMut,
    buf_base: u64,
    /// Peer's advertised receive window.
    peer_window: usize,
    fin_queued: bool,
    fin_sent: bool,
    fin_seq: Option<u64>,
    /// Application hit the send-buffer cap and wants a SendSpace notify.
    send_blocked: bool,

    // --- receive side ---
    /// Next expected in-order sequence number.
    rcv_nxt: u64,
    /// In-order data awaiting application reads.
    recv_buf: BytesMut,
    /// Out-of-order segments keyed by sequence number.
    reassembly: BTreeMap<u64, Bytes>,
    /// Full segments received since the last ACK we sent (delayed-ACK rule:
    /// ack at least every second segment).
    unacked_segments: u32,
    delack_armed: bool,
    peer_fin_seq: Option<u64>,
    peer_fin_delivered: bool,
    /// The application will never read again (it called `close`); data
    /// arriving now triggers a RST, reproducing the paper's
    /// connection-management hazard.
    no_more_reads: bool,

    cc: CongestionState,
    /// Timer epochs for lazy cancellation.
    timer_epochs: [u64; TimerKind::COUNT],
    /// Set once the TCB has been reset (either direction).
    pub was_reset: bool,
    /// When false (the default), probe emission is a single branch.
    probe_enabled: bool,

    // --- statistics ---
    /// Segments this endpoint transmitted.
    pub segments_sent: u64,
    /// Retransmissions among them.
    pub segments_retransmitted: u64,
    /// Payload bytes transmitted.
    pub bytes_sent: u64,
    /// Payload bytes received in order.
    pub bytes_received: u64,
}

impl Tcb {
    /// Create a TCB performing an active open; emits the initial SYN.
    pub fn open_active(
        local: SockAddr,
        remote: SockAddr,
        cfg: TcpConfig,
        now: SimTime,
        fx: &mut Effects,
    ) -> Tcb {
        let mut tcb = Tcb::new(local, remote, cfg, State::SynSent);
        let seg = Segment {
            src: local,
            dst: remote,
            seq: 0,
            ack: 0,
            flags: TcpFlags::SYN,
            window: tcb.advertised_window(),
            sack: SackBlocks::NONE,
            payload: Bytes::new(),
        };
        tcb.snd_nxt = 1;
        tcb.segments_sent += 1;
        fx.segments.push(seg);
        tcb.arm_rto(now, fx);
        tcb
    }

    /// Create a TCB from a received SYN (passive open); emits the SYN-ACK.
    pub fn open_passive(
        local: SockAddr,
        remote: SockAddr,
        cfg: TcpConfig,
        syn: &Segment,
        now: SimTime,
        fx: &mut Effects,
    ) -> Tcb {
        debug_assert!(syn.flags.syn && !syn.flags.ack);
        let mut tcb = Tcb::new(local, remote, cfg, State::SynRcvd);
        tcb.rcv_nxt = syn.seq + 1;
        tcb.peer_window = syn.window;
        let seg = Segment {
            src: local,
            dst: remote,
            seq: 0,
            ack: tcb.rcv_nxt,
            flags: TcpFlags::SYN_ACK,
            window: tcb.advertised_window(),
            sack: SackBlocks::NONE,
            payload: Bytes::new(),
        };
        tcb.snd_nxt = 1;
        tcb.segments_sent += 1;
        fx.segments.push(seg);
        tcb.arm_rto(now, fx);
        tcb
    }

    fn new(local: SockAddr, remote: SockAddr, cfg: TcpConfig, state: State) -> Tcb {
        let cwnd = cfg.mss * cfg.initial_cwnd_segments as usize;
        let initial_rto = cfg.initial_rto;
        let ssthresh = cfg.initial_ssthresh;
        let cc_variant = cfg.cc;
        Tcb {
            local,
            remote,
            state,
            cfg,
            snd_una: 0,
            snd_nxt: 0,
            send_buf: BytesMut::new(),
            buf_base: 1,
            peer_window: 0,
            fin_queued: false,
            fin_sent: false,
            fin_seq: None,
            send_blocked: false,
            rcv_nxt: 0,
            recv_buf: BytesMut::new(),
            reassembly: BTreeMap::new(),
            unacked_segments: 0,
            delack_armed: false,
            peer_fin_seq: None,
            peer_fin_delivered: false,
            no_more_reads: false,
            cc: CongestionState {
                ctl: CcCtl::new(cc_variant, cwnd, ssthresh),
                srtt_ns: None,
                rttvar_ns: 0,
                rto: initial_rto,
                rto_backoff: 0,
                rtt_sample: None,
            },
            timer_epochs: [0; TimerKind::COUNT],
            was_reset: false,
            probe_enabled: false,
            segments_sent: 0,
            segments_retransmitted: 0,
            bytes_sent: 0,
            bytes_received: 0,
        }
    }

    /// The parameters this endpoint runs with.
    pub fn config(&self) -> &TcpConfig {
        &self.cfg
    }

    /// Enable or disable probe-event emission into [`Effects::probe`].
    /// Disabled by default; the flight recorder costs one branch per
    /// potential event while off.
    pub fn set_probe_enabled(&mut self, enabled: bool) {
        self.probe_enabled = enabled;
    }

    #[inline]
    fn probe(&self, fx: &mut Effects, ev: TcpProbeEvent) {
        if self.probe_enabled {
            fx.probe.push(ev);
        }
    }

    /// Emit a congestion-control sample reflecting the current state.
    fn probe_sample(&self, fx: &mut Effects) {
        if self.probe_enabled {
            fx.probe.push(TcpProbeEvent::Sample {
                cwnd: self.cc.ctl.cwnd() as u64,
                ssthresh: self.cc.ctl.ssthresh() as u64,
                srtt_ns: self.cc.srtt_ns,
                rto_ns: self.cc.rto.as_nanos(),
                in_flight: seq_sub(self.snd_nxt, self.snd_una),
            });
        }
    }

    /// Emit a window-blocked event naming whichever window binds.
    fn probe_send_blocked(&self, unsent: usize, fx: &mut Effects) {
        if self.probe_enabled {
            let reason = if self.peer_window < self.cc.ctl.cwnd() {
                BlockReason::PeerWindow
            } else {
                BlockReason::Cwnd
            };
            fx.probe.push(TcpProbeEvent::SendBlocked {
                reason,
                pending: unsent as u64,
            });
        }
    }

    /// Set or clear TCP_NODELAY (the Nagle algorithm).
    pub fn set_nodelay(&mut self, nodelay: bool) {
        self.cfg.nodelay = nodelay;
    }

    /// Current congestion window in bytes (exposed for tests/diagnostics).
    pub fn cwnd(&self) -> usize {
        self.cc.ctl.cwnd()
    }

    /// Current slow-start threshold in bytes (tests/diagnostics).
    pub fn ssthresh(&self) -> usize {
        self.cc.ctl.ssthresh()
    }

    /// Whether the congestion controller is inside fast recovery
    /// (always false for Reno/Cubic, which keep no recovery state).
    pub fn cc_in_recovery(&self) -> bool {
        self.cc.ctl.in_recovery()
    }

    /// Bytes sent but not yet acknowledged — the in-flight estimate the
    /// congestion controller paces against (tests/diagnostics).
    pub fn bytes_in_flight(&self) -> u64 {
        seq_sub(self.snd_nxt, self.snd_una)
    }

    /// Current retransmission timeout (tests/diagnostics).
    pub fn rto(&self) -> SimDuration {
        self.cc.rto
    }

    /// The congestion-control variant this socket was configured with.
    pub fn cc_variant(&self) -> CcVariant {
        self.cfg.cc
    }

    /// Snapshot of the TCB state the congestion controller may consult.
    /// `sack` carries the triggering segment's SACK option (or
    /// [`SackBlocks::NONE`] for segment-less events like an RTO).
    fn cc_ctx<'a>(&self, now: SimTime, sack: &'a SackBlocks) -> CcContext<'a> {
        CcContext {
            mss: self.cfg.mss,
            now,
            snd_una: self.snd_una,
            snd_nxt: self.snd_nxt,
            sack,
        }
    }

    /// Bytes of payload queued but not yet acknowledged.
    pub fn unacked_bytes(&self) -> usize {
        seq_sub(self.buf_base + self.send_buf.len() as u64, self.snd_una) as usize
    }

    /// Bytes available for the application to read.
    pub fn readable_bytes(&self) -> usize {
        self.recv_buf.len()
    }

    /// True once our FIN has been sent *and* acknowledged and the peer's FIN
    /// has been consumed — i.e. the connection ran to graceful completion.
    pub fn fully_closed(&self) -> bool {
        self.state == State::Closed && !self.was_reset
    }

    fn advertised_window(&self) -> usize {
        self.cfg.recv_window.saturating_sub(self.recv_buf.len())
    }

    fn send_limit(&self) -> u64 {
        self.buf_base + self.send_buf.len() as u64
    }

    // ------------------------------------------------------------------
    // Application entry points
    // ------------------------------------------------------------------

    /// Queue application data for transmission. Returns how many bytes were
    /// accepted (bounded by the send-buffer cap).
    pub fn app_send(&mut self, now: SimTime, data: &[u8], fx: &mut Effects) -> usize {
        if !matches!(
            self.state,
            State::SynSent | State::SynRcvd | State::Established | State::CloseWait
        ) || self.fin_queued
        {
            return 0;
        }
        let space = self.cfg.send_buffer.saturating_sub(self.unacked_bytes());
        let take = data.len().min(space);
        if take < data.len() {
            self.send_blocked = true;
        }
        self.send_buf.extend_from_slice(&data[..take]);
        if matches!(self.state, State::Established | State::CloseWait) {
            self.try_send(now, fx);
        }
        take
    }

    /// Half-close: no more application data will be sent. Queues a FIN after
    /// any buffered data; the receive side stays open.
    pub fn app_shutdown_write(&mut self, now: SimTime, fx: &mut Effects) {
        if self.fin_queued || !self.state.is_open() {
            return;
        }
        self.fin_queued = true;
        if matches!(self.state, State::Established | State::CloseWait) {
            self.try_send(now, fx);
        }
    }

    /// Full close: half-close the send side *and* declare that the
    /// application will not read again. If unread or future data exists the
    /// connection is reset — the naive close the paper warns servers about.
    pub fn app_close(&mut self, now: SimTime, fx: &mut Effects) {
        if !self.state.is_open() {
            return;
        }
        self.no_more_reads = true;
        if !self.recv_buf.is_empty() || !self.reassembly.is_empty() {
            // Unread data: BSD-style close sends RST immediately.
            self.reset(fx, true);
            return;
        }
        self.app_shutdown_write(now, fx);
    }

    /// Abortive close: send RST, discard everything.
    pub fn app_abort(&mut self, fx: &mut Effects) {
        if self.state.is_open() {
            self.reset(fx, true);
        }
    }

    /// Read up to `max` buffered bytes.
    pub fn app_recv(&mut self, max: usize, fx: &mut Effects) -> Bytes {
        let take = self.recv_buf.len().min(max);
        let before = self.advertised_window();
        let data = self.recv_buf.split_to_pooled(take);
        // If the window had effectively closed and reading reopened it,
        // send a window update so the sender does not stall.
        let after = self.advertised_window();
        if before < self.cfg.mss && after >= 2 * self.cfg.mss && self.state.is_open() {
            self.emit_ack(fx);
        }
        data
    }

    // ------------------------------------------------------------------
    // Segment arrival
    // ------------------------------------------------------------------

    /// Process an incoming segment.
    pub fn on_segment(&mut self, now: SimTime, seg: &Segment, fx: &mut Effects) {
        if !self.state.is_open() {
            return;
        }
        if seg.flags.rst {
            self.handle_rst(fx);
            return;
        }

        match self.state {
            State::SynSent => {
                if seg.flags.syn && seg.flags.ack && seg.ack == self.snd_nxt {
                    self.rcv_nxt = seg.seq + 1;
                    self.peer_window = seg.window;
                    self.snd_una = seg.ack;
                    self.state = State::Established;
                    self.buf_base = self.snd_nxt;
                    self.take_rtt_sample(now, seg.ack);
                    self.cancel_timer(TimerKind::Rto);
                    self.probe(fx, TcpProbeEvent::Established);
                    self.probe_sample(fx);
                    self.emit_ack(fx);
                    fx.notifications.push(SockNotify::Connected);
                    self.try_send(now, fx);
                }
                return;
            }
            State::SynRcvd => {
                if seg.flags.ack && seg.ack == self.snd_nxt {
                    self.snd_una = seg.ack;
                    self.state = State::Established;
                    self.buf_base = self.snd_nxt;
                    self.peer_window = seg.window;
                    self.take_rtt_sample(now, seg.ack);
                    self.cancel_timer(TimerKind::Rto);
                    self.probe(fx, TcpProbeEvent::Established);
                    fx.notifications.push(SockNotify::Accepted);
                    // Fall through to process any data on the ACK.
                } else if seg.flags.syn && !seg.flags.ack {
                    // Duplicate SYN: retransmit the SYN-ACK.
                    self.retransmit(now, fx);
                    return;
                } else {
                    return;
                }
            }
            State::TimeWait => {
                // Retransmitted FIN from the peer: re-ACK it.
                if seg.flags.fin {
                    self.emit_ack(fx);
                }
                return;
            }
            _ => {}
        }

        self.peer_window = seg.window;
        if seg.flags.ack {
            self.handle_ack(now, seg, fx);
        }
        if seg.has_payload() || seg.flags.fin {
            self.handle_data(now, seg, fx);
        }
        if self.state.is_open() {
            self.try_send(now, fx);
        }
    }

    fn handle_rst(&mut self, fx: &mut Effects) {
        // Data already buffered but not yet read by the application is
        // discarded: the paper's observation that a server RST destroys
        // responses the client TCP had successfully received.
        self.recv_buf.clear();
        self.reassembly.clear();
        self.send_buf.clear();
        self.was_reset = true;
        self.state = State::Closed;
        self.cancel_all_timers();
        fx.notifications.push(SockNotify::Reset);
    }

    fn reset(&mut self, fx: &mut Effects, notify_peer: bool) {
        if notify_peer {
            fx.segments
                .push(Segment::rst(self.local, self.remote, self.snd_nxt));
            self.segments_sent += 1;
        }
        self.recv_buf.clear();
        self.reassembly.clear();
        self.send_buf.clear();
        self.was_reset = true;
        self.state = State::Closed;
        self.cancel_all_timers();
    }

    fn handle_ack(&mut self, now: SimTime, seg: &Segment, fx: &mut Effects) {
        let ack = seg.ack;
        if seq_gt(ack, self.snd_nxt) {
            return; // acks data we never sent; ignore
        }
        if seq_gt(ack, self.snd_una) {
            let newly_acked = seq_sub(ack, self.snd_una) as usize;
            self.snd_una = ack;
            self.cc.rto_backoff = 0;
            self.take_rtt_sample(now, ack);
            let ctx = self.cc_ctx(now, &seg.sack);
            let sig = self.cc.ctl.on_ack(&ctx, newly_acked);

            // Trim acknowledged bytes from the retransmission buffer. The
            // FIN, if ours was acked, occupies one unit past the data.
            let data_acked = ack.min(self.send_limit());
            if seq_gt(data_acked, self.buf_base) {
                let drop = seq_sub(data_acked, self.buf_base) as usize;
                self.send_buf.advance(drop);
                self.buf_base = data_acked;
            }
            if self.send_blocked && self.unacked_bytes() < self.cfg.send_buffer {
                self.send_blocked = false;
                fx.notifications.push(SockNotify::SendSpace);
            }

            let fin_acked = self.fin_seq.is_some_and(|f| seq_gt(ack, f));
            if fin_acked {
                match self.state {
                    State::FinWait1 => {
                        self.state = if self.peer_fin_seq.is_some() {
                            self.enter_time_wait(now, fx);
                            State::TimeWait
                        } else {
                            State::FinWait2
                        }
                    }
                    State::Closing => {
                        self.enter_time_wait(now, fx);
                        self.state = State::TimeWait;
                    }
                    State::LastAck => {
                        self.state = State::Closed;
                        self.cancel_all_timers();
                        fx.notifications.push(SockNotify::Closed);
                    }
                    _ => {}
                }
            }

            if self.snd_una == self.snd_nxt {
                self.cancel_timer(TimerKind::Rto);
            } else {
                self.arm_rto(now, fx);
            }
            // NewReno/SACK partial-ACK recovery: the controller asked
            // for the next hole to be retransmitted right away.
            if sig == CcSignal::Retransmit && seq_gt(self.snd_nxt, self.snd_una) {
                self.probe(fx, TcpProbeEvent::FastRetransmit);
                self.retransmit(now, fx);
            }
            self.probe_sample(fx);
        } else if ack == self.snd_una
            && !seg.has_payload()
            && !seg.flags.syn
            && !seg.flags.fin
            && seq_gt(self.snd_nxt, self.snd_una)
        {
            // Duplicate ACK while data is outstanding.
            let ctx = self.cc_ctx(now, &seg.sack);
            match self.cc.ctl.on_dup_ack(&ctx) {
                CcSignal::Loss => {
                    // Loss inferred from the third duplicate ACK: let
                    // the controller collapse its windows, then fast
                    // retransmit.
                    let ctx = self.cc_ctx(now, &seg.sack);
                    self.cc.ctl.on_loss(&ctx);
                    self.probe(fx, TcpProbeEvent::FastRetransmit);
                    self.retransmit(now, fx);
                }
                CcSignal::Retransmit => {
                    self.probe(fx, TcpProbeEvent::FastRetransmit);
                    self.retransmit(now, fx);
                }
                CcSignal::None => {}
            }
        }

        // Zero-window handling: arm the persist timer if data waits.
        if self.peer_window == 0 && seq_gt(self.send_limit(), self.snd_nxt) {
            self.probe(fx, TcpProbeEvent::ZeroWindow);
            self.arm_timer(TimerKind::Persist, now + self.cc.rto, fx);
        }
    }

    fn handle_data(&mut self, now: SimTime, seg: &Segment, fx: &mut Effects) {
        let mut seq = seg.seq;
        // xtask: allow(hot-path-alloc) -- `Bytes` clone is a refcount
        // bump sharing the pooled buffer, not a copy.
        let mut payload = seg.payload.clone();

        // Trim any portion we already have.
        if seq_lt(seq, self.rcv_nxt) {
            let overlap = seq_sub(self.rcv_nxt, seq) as usize;
            if overlap >= payload.len() && !seg.flags.fin {
                // Entirely a duplicate: re-ACK immediately to resync.
                self.emit_ack(fx);
                return;
            }
            payload = payload.slice(overlap.min(payload.len())..);
            seq = self.rcv_nxt;
        }

        if seq_gt(seq, self.rcv_nxt) {
            // Out of order: stash and send an immediate duplicate ACK.
            if !payload.is_empty() {
                self.reassembly.entry(seq).or_insert(payload);
            }
            if seg.flags.fin {
                self.peer_fin_seq = Some(seq_sub(seg.seq_end(), 1));
            }
            self.emit_ack(fx);
            return;
        }

        // In-order data.
        let mut delivered = false;
        if !payload.is_empty() {
            self.bytes_received += payload.len() as u64;
            self.recv_buf.extend_from_slice(&payload);
            self.rcv_nxt += payload.len() as u64;
            delivered = true;
        }
        if seg.flags.fin {
            self.peer_fin_seq = Some(seq_sub(seg.seq_end(), 1));
        }

        // Drain the reassembly queue.
        while let Some((&s, _)) = self.reassembly.first_key_value() {
            if seq_gt(s, self.rcv_nxt) {
                break;
            }
            let (s, data) = self.reassembly.pop_first().unwrap();
            let skip = seq_sub(self.rcv_nxt, s) as usize;
            if skip < data.len() {
                let fresh = &data[skip..];
                self.bytes_received += fresh.len() as u64;
                self.recv_buf.extend_from_slice(fresh);
                self.rcv_nxt += fresh.len() as u64;
                delivered = true;
            }
        }

        if self.no_more_reads && delivered {
            // Data arrived for a fully closed application: reset, as real
            // stacks do. This is what turns a naive server close into lost
            // responses at the client.
            self.reset(fx, true);
            return;
        }

        let mut fin_consumed = false;
        if let Some(fin_seq) = self.peer_fin_seq {
            if self.rcv_nxt == fin_seq {
                self.rcv_nxt = fin_seq + 1;
                fin_consumed = true;
            }
        }

        if delivered && !self.peer_fin_delivered {
            fx.notifications.push(SockNotify::Readable);
        }

        if fin_consumed && !self.peer_fin_delivered {
            self.peer_fin_delivered = true;
            fx.notifications.push(SockNotify::PeerFin);
            match self.state {
                State::Established => self.state = State::CloseWait,
                State::FinWait1 => {
                    // Our FIN is still unacked.
                    self.state = State::Closing;
                }
                State::FinWait2 => {
                    self.enter_time_wait(now, fx);
                    self.state = State::TimeWait;
                }
                _ => {}
            }
            // FIN is acknowledged immediately.
            self.emit_ack(fx);
            return;
        }

        if delivered {
            self.unacked_segments += 1;
            let force = self.unacked_segments >= 2;
            if force {
                self.emit_ack(fx);
            } else if !self.delack_armed {
                self.delack_armed = true;
                let deadline = now + self.cfg.delayed_ack;
                self.probe(fx, TcpProbeEvent::DelAckArm { deadline });
                self.arm_timer(TimerKind::DelAck, deadline, fx);
            }
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Drive a timer expiry. `epoch` must match the epoch the timer was
    /// armed with, otherwise the timer was cancelled or superseded.
    pub fn on_timer(&mut self, now: SimTime, kind: TimerKind, epoch: u64, fx: &mut Effects) {
        if self.timer_epochs[kind.index()] != epoch || !self.state.is_open() {
            return;
        }
        self.probe(fx, TcpProbeEvent::TimerFired { kind });
        match kind {
            TimerKind::DelAck => {
                self.delack_armed = false;
                if self.unacked_segments > 0 {
                    self.emit_ack(fx);
                }
            }
            TimerKind::Rto => {
                if seq_gt(self.snd_nxt, self.snd_una) {
                    // Timeout: multiplicative back-off, collapse cwnd, go
                    // back into slow start (RFC 2001).
                    let ctx = self.cc_ctx(now, &SackBlocks::NONE);
                    self.cc.ctl.on_rto(&ctx);
                    self.cc.rto_backoff += 1;
                    self.cc.rtt_sample = None; // Karn's algorithm
                    self.probe(fx, TcpProbeEvent::RtoFire);
                    self.retransmit(now, fx);
                }
            }
            TimerKind::TimeWait => {
                self.state = State::Closed;
                self.cancel_all_timers();
                fx.notifications.push(SockNotify::Closed);
            }
            TimerKind::Persist => {
                if self.peer_window == 0 && seq_gt(self.send_limit(), self.snd_nxt) {
                    // One-byte window probe.
                    let off = seq_sub(self.snd_nxt, self.buf_base) as usize;
                    let payload = Bytes::pooled_copy_from_slice(&self.send_buf[off..off + 1]);
                    self.emit_data_segment(self.snd_nxt, payload, false, fx);
                    self.arm_timer(TimerKind::Persist, now + self.cc.rto, fx);
                }
            }
        }
    }

    fn arm_timer(&mut self, kind: TimerKind, at: SimTime, fx: &mut Effects) {
        let e = &mut self.timer_epochs[kind.index()];
        *e += 1;
        fx.timers.push((kind, at, *e));
    }

    fn cancel_timer(&mut self, kind: TimerKind) {
        self.timer_epochs[kind.index()] += 1;
    }

    fn cancel_all_timers(&mut self) {
        for e in &mut self.timer_epochs {
            *e += 1;
        }
    }

    fn arm_rto(&mut self, now: SimTime, fx: &mut Effects) {
        let rto = self
            .cc
            .rto
            .saturating_mul(1u64 << self.cc.rto_backoff.min(6));
        self.arm_timer(TimerKind::Rto, now + rto, fx);
    }

    fn enter_time_wait(&mut self, now: SimTime, fx: &mut Effects) {
        let tw = self.cfg.time_wait;
        self.arm_timer(TimerKind::TimeWait, now + tw, fx);
    }

    // ------------------------------------------------------------------
    // Sending
    // ------------------------------------------------------------------

    fn take_rtt_sample(&mut self, now: SimTime, ack: u64) {
        if let Some((seq, sent)) = self.cc.rtt_sample {
            if seq_ge(ack, seq) {
                let sample = now.since(sent).as_nanos();
                match self.cc.srtt_ns {
                    None => {
                        self.cc.srtt_ns = Some(sample);
                        self.cc.rttvar_ns = sample / 2;
                    }
                    Some(srtt) => {
                        let err = sample.abs_diff(srtt);
                        self.cc.rttvar_ns = (3 * self.cc.rttvar_ns + err) / 4;
                        self.cc.srtt_ns = Some((7 * srtt + sample) / 8);
                    }
                }
                let rto_ns = self.cc.srtt_ns.unwrap() + (4 * self.cc.rttvar_ns).max(10_000_000);
                self.cc.rto = SimDuration::from_nanos(rto_ns).max(self.cfg.min_rto);
                self.cc.rtt_sample = None;
            }
        }
    }

    /// The SACK option for an outgoing ACK: the receiver's out-of-order
    /// spans, merged, when this endpoint runs SACK; empty otherwise.
    fn sack_for_ack(&self) -> SackBlocks {
        if self.cfg.cc != CcVariant::Sack || self.reassembly.is_empty() {
            return SackBlocks::NONE;
        }
        cc::wire_sack_blocks(
            self.reassembly
                .iter()
                .map(|(&s, p)| (s, s + p.len() as u64)),
            self.rcv_nxt,
        )
    }

    fn emit_ack(&mut self, fx: &mut Effects) {
        if self.delack_armed {
            self.probe(fx, TcpProbeEvent::DelAckFlush);
        }
        self.unacked_segments = 0;
        self.cancel_timer(TimerKind::DelAck);
        self.delack_armed = false;
        fx.segments.push(Segment {
            src: self.local,
            dst: self.remote,
            seq: self.snd_nxt,
            ack: self.rcv_nxt,
            flags: TcpFlags::ACK,
            window: self.advertised_window(),
            sack: self.sack_for_ack(),
            payload: Bytes::new(),
        });
        self.segments_sent += 1;
    }

    fn emit_data_segment(&mut self, seq: u64, payload: Bytes, fin: bool, fx: &mut Effects) {
        let flags = TcpFlags {
            syn: false,
            ack: true,
            fin,
            rst: false,
            psh: payload.len() < self.cfg.mss || fin,
        };
        // Data segments piggyback the current ACK.
        if self.delack_armed {
            self.probe(fx, TcpProbeEvent::DelAckFlush);
        }
        self.unacked_segments = 0;
        self.cancel_timer(TimerKind::DelAck);
        self.delack_armed = false;
        self.bytes_sent += payload.len() as u64;
        self.segments_sent += 1;
        fx.segments.push(Segment {
            src: self.local,
            dst: self.remote,
            seq,
            ack: self.rcv_nxt,
            flags,
            window: self.advertised_window(),
            sack: self.sack_for_ack(),
            payload,
        });
    }

    /// Transmit whatever the congestion window, peer window, Nagle and
    /// buffered data allow.
    fn try_send(&mut self, now: SimTime, fx: &mut Effects) {
        if !matches!(
            self.state,
            State::Established
                | State::CloseWait
                | State::FinWait1
                | State::Closing
                | State::LastAck
        ) {
            return;
        }
        let mut sent_any = false;
        loop {
            if self.fin_sent {
                break;
            }
            let in_flight = seq_sub(self.snd_nxt, self.snd_una) as usize;
            let wnd = self.cc.ctl.cwnd().min(self.peer_window);
            let avail = wnd.saturating_sub(in_flight);
            let unsent = seq_sub(self.send_limit(), self.snd_nxt) as usize;
            let len = unsent.min(self.cfg.mss).min(avail);
            let fin_now = self.fin_queued && (self.snd_nxt + len as u64) == self.send_limit();

            if len == 0 && !fin_now {
                if unsent > 0 {
                    self.probe_send_blocked(unsent, fx);
                }
                break;
            }
            if len == 0 && fin_now && in_flight > 0 && unsent > 0 {
                // Window-blocked with data still queued before the FIN.
                self.probe_send_blocked(unsent, fx);
                break;
            }
            // Nagle: hold sub-MSS segments while data is in flight, unless
            // this segment also carries our FIN.
            if len > 0 && len < self.cfg.mss && in_flight > 0 && !self.cfg.nodelay && !fin_now {
                self.probe(
                    fx,
                    TcpProbeEvent::SendBlocked {
                        reason: BlockReason::Nagle,
                        pending: unsent as u64,
                    },
                );
                break;
            }

            let off = seq_sub(self.snd_nxt, self.buf_base) as usize;
            let payload = Bytes::pooled_copy_from_slice(&self.send_buf[off..off + len]);
            if self.cc.rtt_sample.is_none() && (len > 0 || fin_now) {
                self.cc.rtt_sample = Some((self.snd_nxt + len as u64 + u64::from(fin_now), now));
            }
            self.emit_data_segment(self.snd_nxt, payload, fin_now, fx);
            self.snd_nxt += len as u64;
            if fin_now {
                self.fin_seq = Some(self.snd_nxt);
                self.snd_nxt += 1;
                self.fin_sent = true;
                match self.state {
                    State::Established => self.state = State::FinWait1,
                    State::CloseWait => self.state = State::LastAck,
                    _ => {}
                }
            }
            sent_any = true;
            if fin_now {
                break;
            }
        }
        if sent_any {
            self.arm_rto(now, fx);
            self.probe_sample(fx);
        }
    }

    /// Retransmit the first unacknowledged segment (and FIN/SYN-ACK where
    /// appropriate).
    fn retransmit(&mut self, now: SimTime, fx: &mut Effects) {
        self.segments_retransmitted += 1;
        match self.state {
            State::SynSent => {
                fx.segments.push(Segment {
                    src: self.local,
                    dst: self.remote,
                    seq: 0,
                    ack: 0,
                    flags: TcpFlags::SYN,
                    window: self.advertised_window(),
                    sack: SackBlocks::NONE,
                    payload: Bytes::new(),
                });
                self.segments_sent += 1;
            }
            State::SynRcvd => {
                fx.segments.push(Segment {
                    src: self.local,
                    dst: self.remote,
                    seq: 0,
                    ack: self.rcv_nxt,
                    flags: TcpFlags::SYN_ACK,
                    window: self.advertised_window(),
                    sack: SackBlocks::NONE,
                    payload: Bytes::new(),
                });
                self.segments_sent += 1;
            }
            _ => {
                let data_start = self.snd_una.max(self.buf_base);
                let data_end = self.send_limit();
                if data_start < data_end {
                    let off = seq_sub(data_start, self.buf_base) as usize;
                    let mut len = ((data_end - data_start) as usize).min(self.cfg.mss);
                    // SACK: stop short of the first range the peer
                    // already holds — never resend a SACKed octet.
                    if let Some(cap) = self.cc.ctl.rexmit_cap(data_start) {
                        if seq_gt(cap, data_start) {
                            len = len.min(seq_sub(cap, data_start) as usize);
                        }
                    }
                    let payload = Bytes::pooled_copy_from_slice(&self.send_buf[off..off + len]);
                    let fin = self.fin_sent && self.fin_seq == Some(data_start + len as u64);
                    self.emit_data_segment(data_start, payload, fin, fx);
                } else if self.fin_sent && self.fin_seq == Some(self.snd_una) {
                    // Retransmit a bare FIN.
                    self.emit_data_segment(self.snd_una, Bytes::new(), true, fx);
                }
            }
        }
        self.arm_rto(now, fx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::HostId;

    const CLIENT: SockAddr = SockAddr::new(HostId(0), 40_000);
    const SERVER: SockAddr = SockAddr::new(HostId(1), 80);

    fn fx() -> Effects {
        Effects::default()
    }

    /// Drive a full handshake, returning (client, server) TCBs in
    /// Established state.
    fn established() -> (Tcb, Tcb) {
        let now = SimTime::ZERO;
        let mut cfx = fx();
        let mut client = Tcb::open_active(CLIENT, SERVER, TcpConfig::default(), now, &mut cfx);
        let syn = cfx.segments.pop().unwrap();
        assert!(syn.flags.syn && !syn.flags.ack);

        let mut sfx = fx();
        let mut server =
            Tcb::open_passive(SERVER, CLIENT, TcpConfig::default(), &syn, now, &mut sfx);
        let synack = sfx.segments.pop().unwrap();
        assert!(synack.flags.syn && synack.flags.ack);

        let mut cfx = fx();
        client.on_segment(now, &synack, &mut cfx);
        assert_eq!(client.state, State::Established);
        assert!(cfx.notifications.contains(&SockNotify::Connected));
        let ack = cfx.segments.pop().unwrap();

        let mut sfx = fx();
        server.on_segment(now, &ack, &mut sfx);
        assert_eq!(server.state, State::Established);
        assert!(sfx.notifications.contains(&SockNotify::Accepted));
        (client, server)
    }

    /// Shuttle segments between the two TCBs until both sides quiesce.
    /// Timers are not simulated; returns the total number of segments
    /// exchanged.
    fn pump(a: &mut Tcb, b: &mut Tcb, now: SimTime) -> usize {
        let mut from_a: Vec<Segment> = Vec::new();
        let mut from_b: Vec<Segment> = Vec::new();
        let mut count = 0;
        loop {
            let mut progressed = false;
            let mut e = fx();
            for seg in from_a.drain(..) {
                count += 1;
                b.on_segment(now, &seg, &mut e);
            }
            from_b.append(&mut e.segments);
            let mut e = fx();
            for seg in from_b.drain(..) {
                count += 1;
                a.on_segment(now, &seg, &mut e);
            }
            from_a.append(&mut e.segments);
            if !from_a.is_empty() || !from_b.is_empty() {
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        count
    }

    #[test]
    fn handshake_establishes_both_sides() {
        let (c, s) = established();
        assert_eq!(c.state, State::Established);
        assert_eq!(s.state, State::Established);
    }

    #[test]
    fn data_transfer_and_read() {
        let (mut c, mut s) = established();
        let now = SimTime::ZERO;
        let mut e = fx();
        assert_eq!(c.app_send(now, b"hello world", &mut e), 11);
        let seg = e.segments.pop().unwrap();
        assert_eq!(&seg.payload[..], b"hello world");

        let mut e = fx();
        s.on_segment(now, &seg, &mut e);
        assert!(e.notifications.contains(&SockNotify::Readable));
        let mut e2 = fx();
        assert_eq!(&s.app_recv(1024, &mut e2)[..], b"hello world");
    }

    #[test]
    fn large_write_segments_at_mss() {
        let (mut c, _s) = established();
        let mut e = fx();
        let data = vec![0xAB; 4000];
        c.app_send(SimTime::ZERO, &data, &mut e);
        // cwnd = 2 * MSS: exactly two full segments go out now.
        assert_eq!(e.segments.len(), 2);
        assert!(e.segments.iter().all(|s| s.payload.len() == 1460));
    }

    #[test]
    fn slow_start_doubles_window() {
        let (mut c, mut s) = established();
        let now = SimTime::ZERO;
        let mut e = fx();
        let data = vec![0u8; 64_000];
        c.app_send(now, &data, &mut e);
        assert_eq!(e.segments.len(), 2, "initial cwnd is two segments");
        // Deliver them; server acks (second segment forces an ACK).
        let mut sfx = fx();
        for seg in e.segments.drain(..) {
            s.on_segment(now, &seg, &mut sfx);
        }
        let acks: Vec<_> = sfx.segments.drain(..).collect();
        assert_eq!(acks.len(), 1, "delayed ack: one ACK per two segments");
        let mut e = fx();
        c.on_segment(now, &acks[0], &mut e);
        // cwnd grew by up to one MSS per acked MSS -> 2 more in flight
        // than before; after one full-window ack, 2 * 1460 acked, cwnd
        // grows by min(acked, mss) = 1460 -> 3 segments, plus the window
        // slid by 2: 4 new segments may depart... at minimum more than 2.
        assert!(
            e.segments.len() >= 3,
            "window opened: got {}",
            e.segments.len()
        );
    }

    #[test]
    fn nagle_holds_small_segment_with_data_in_flight() {
        let (mut c, _s) = established();
        let now = SimTime::ZERO;
        let mut e = fx();
        c.app_send(now, b"first", &mut e);
        assert_eq!(e.segments.len(), 1, "no data in flight: sends immediately");
        let mut e = fx();
        c.app_send(now, b"second", &mut e);
        assert_eq!(e.segments.len(), 0, "Nagle holds the second small write");
    }

    #[test]
    fn nodelay_disables_nagle() {
        let (mut c, _s) = established();
        c.set_nodelay(true);
        let now = SimTime::ZERO;
        let mut e = fx();
        c.app_send(now, b"first", &mut e);
        c.app_send(now, b"second", &mut e);
        assert_eq!(e.segments.len(), 2);
    }

    #[test]
    fn nagle_releases_on_ack() {
        let (mut c, mut s) = established();
        let now = SimTime::ZERO;
        let mut e = fx();
        c.app_send(now, b"first", &mut e);
        let first = e.segments.pop().unwrap();
        let mut e = fx();
        c.app_send(now, b"second", &mut e);
        assert!(e.segments.is_empty());

        // Server receives and (eventually) acks.
        let mut sfx = fx();
        s.on_segment(now, &first, &mut sfx);
        // Only one small segment: ack comes from the delack timer.
        let (kind, at, epoch) = sfx.timers[0];
        assert_eq!(kind, TimerKind::DelAck);
        let mut sfx2 = fx();
        s.on_timer(at, kind, epoch, &mut sfx2);
        let ack = sfx2.segments.pop().expect("delayed ack fired");

        let mut e = fx();
        c.on_segment(now, &ack, &mut e);
        assert_eq!(e.segments.len(), 1, "held segment released by ACK");
        assert_eq!(&e.segments[0].payload[..], b"second");
    }

    #[test]
    fn delayed_ack_every_second_segment() {
        let (mut c, mut s) = established();
        let now = SimTime::ZERO;
        let mut e = fx();
        c.app_send(now, &vec![0u8; 2920], &mut e);
        assert_eq!(e.segments.len(), 2);
        let mut sfx = fx();
        s.on_segment(now, &e.segments[0], &mut sfx);
        assert!(sfx.segments.is_empty(), "first segment: ack deferred");
        s.on_segment(now, &e.segments[1], &mut sfx);
        assert_eq!(sfx.segments.len(), 1, "second segment forces ack");
    }

    #[test]
    fn graceful_close_both_ways() {
        let (mut c, mut s) = established();
        let now = SimTime::ZERO;
        let mut e = fx();
        c.app_shutdown_write(now, &mut e);
        let finseg = e.segments.pop().unwrap();
        assert!(finseg.flags.fin);
        assert_eq!(c.state, State::FinWait1);

        let mut sfx = fx();
        s.on_segment(now, &finseg, &mut sfx);
        assert_eq!(s.state, State::CloseWait);
        assert!(sfx.notifications.contains(&SockNotify::PeerFin));
        let ack = sfx.segments.pop().unwrap();

        let mut e = fx();
        c.on_segment(now, &ack, &mut e);
        assert_eq!(c.state, State::FinWait2);

        // Server closes its half.
        let mut sfx = fx();
        s.app_shutdown_write(now, &mut sfx);
        assert_eq!(s.state, State::LastAck);
        let fin2 = sfx.segments.pop().unwrap();
        let mut e = fx();
        c.on_segment(now, &fin2, &mut e);
        assert_eq!(c.state, State::TimeWait);
        let last_ack = e.segments.pop().unwrap();
        let mut sfx = fx();
        s.on_segment(now, &last_ack, &mut sfx);
        assert_eq!(s.state, State::Closed);
        assert!(sfx.notifications.contains(&SockNotify::Closed));
        assert!(s.fully_closed());
    }

    #[test]
    fn fin_piggybacks_on_last_data() {
        let (mut c, _s) = established();
        let now = SimTime::ZERO;
        let mut e = fx();
        c.app_send(now, b"bye", &mut e);
        e.segments.clear();
        // Buffered write followed by shutdown: next segment carries FIN.
        let mut c2 = established().0;
        let mut e = fx();
        c2.app_send(now, b"xyz", &mut e);
        c2.app_shutdown_write(now, &mut e);
        assert_eq!(e.segments.len(), 2);
        // Under Nagle the 3-byte payload went out alone first; FIN follows
        // separately since fin may always be sent.
        assert!(e.segments[1].flags.fin);
    }

    #[test]
    fn close_with_unread_data_sends_rst() {
        let (mut c, mut s) = established();
        let now = SimTime::ZERO;
        let mut e = fx();
        c.app_send(now, b"request", &mut e);
        let seg = e.segments.pop().unwrap();
        let mut sfx = fx();
        s.on_segment(now, &seg, &mut sfx);
        // Server closes without reading: RST.
        let mut sfx = fx();
        s.app_close(now, &mut sfx);
        assert_eq!(sfx.segments.len(), 1);
        assert!(sfx.segments[0].flags.rst);
        assert_eq!(s.state, State::Closed);
    }

    #[test]
    fn data_after_close_resets_and_client_loses_buffered_responses() {
        // The paper's connection-management hazard: server closes after N
        // responses; late requests hit the closed socket, the RST destroys
        // data the client had not yet read.
        let (mut c, mut s) = established();
        let now = SimTime::ZERO;

        // Server sends a response, then closes naively.
        let mut sfx = fx();
        s.app_send(now, b"response-1", &mut sfx);
        let resp = sfx.segments.pop().unwrap();
        let mut sfx = fx();
        s.app_close(now, &mut sfx); // no unread data -> graceful FIN
        let _fin = sfx.segments.pop().unwrap();

        // Response arrives at the client but the app has not read it yet.
        let mut cfx = fx();
        c.on_segment(now, &resp, &mut cfx);
        assert_eq!(c.readable_bytes(), 10);

        // Client pipelines another request; it arrives after the server
        // app closed -> server resets.
        let mut cfx = fx();
        c.app_send(now, b"request-2", &mut cfx);
        let req2 = cfx.segments.pop().unwrap();
        let mut sfx = fx();
        s.on_segment(now, &req2, &mut sfx);
        assert!(
            sfx.segments.iter().any(|seg| seg.flags.rst),
            "server must reset on data after close"
        );
        let rst = sfx
            .segments
            .iter()
            .find(|seg| seg.flags.rst)
            .unwrap()
            .clone();

        // The RST destroys the client's buffered response.
        let mut cfx = fx();
        c.on_segment(now, &rst, &mut cfx);
        assert!(cfx.notifications.contains(&SockNotify::Reset));
        assert_eq!(c.readable_bytes(), 0, "buffered response was discarded");
        assert!(c.was_reset);
    }

    #[test]
    fn retransmission_on_rto() {
        let (mut c, _s) = established();
        let now = SimTime::ZERO;
        let mut e = fx();
        c.app_send(now, b"lost data", &mut e);
        let orig = e.segments.pop().unwrap();
        let (kind, at, epoch) = *e
            .timers
            .iter()
            .find(|(k, _, _)| *k == TimerKind::Rto)
            .expect("rto armed");
        let mut e = fx();
        c.on_timer(at, kind, epoch, &mut e);
        let rtx = e.segments.pop().expect("retransmission");
        assert_eq!(rtx.seq, orig.seq);
        assert_eq!(rtx.payload, orig.payload);
        assert_eq!(c.segments_retransmitted, 1);
        assert_eq!(c.cwnd(), 1460, "cwnd collapses to one MSS on timeout");
    }

    #[test]
    fn fast_retransmit_on_three_dup_acks() {
        let (mut c, _s) = established();
        let now = SimTime::ZERO;
        let mut e = fx();
        c.app_send(now, &vec![1u8; 2920], &mut e);
        assert_eq!(e.segments.len(), 2);
        let dup = Segment {
            src: SERVER,
            dst: CLIENT,
            seq: 1,
            ack: 1, // nothing new
            flags: TcpFlags::ACK,
            window: 65_535,
            sack: SackBlocks::NONE,
            payload: Bytes::new(),
        };
        let mut e = fx();
        for _ in 0..2 {
            c.on_segment(now, &dup, &mut e);
        }
        assert!(e.segments.is_empty());
        c.on_segment(now, &dup, &mut e);
        let rtx: Vec<_> = e.segments.iter().filter(|s| s.has_payload()).collect();
        assert_eq!(rtx.len(), 1, "third dup-ack triggers fast retransmit");
        assert_eq!(rtx[0].seq, 1);
    }

    #[test]
    fn out_of_order_reassembly() {
        let (mut c, mut s) = established();
        let now = SimTime::ZERO;
        let mut e = fx();
        c.set_nodelay(true);
        c.app_send(now, b"AAAA", &mut e);
        c.app_send(now, b"BBBB", &mut e);
        assert_eq!(e.segments.len(), 2);
        let (a, b) = (e.segments[0].clone(), e.segments[1].clone());

        // Deliver out of order.
        let mut sfx = fx();
        s.on_segment(now, &b, &mut sfx);
        assert_eq!(s.readable_bytes(), 0);
        assert_eq!(sfx.segments.len(), 1, "immediate dup-ack on gap");
        assert_eq!(sfx.segments[0].ack, 1);
        let mut sfx = fx();
        s.on_segment(now, &a, &mut sfx);
        assert_eq!(s.readable_bytes(), 8);
        let mut e2 = fx();
        assert_eq!(&s.app_recv(64, &mut e2)[..], b"AAAABBBB");
    }

    #[test]
    fn send_buffer_cap_and_sendspace_notify() {
        let cfg = TcpConfig {
            send_buffer: 1000,
            ..TcpConfig::default()
        };
        let now = SimTime::ZERO;
        let mut cfx = fx();
        let mut c = Tcb::open_active(CLIENT, SERVER, cfg.clone(), now, &mut cfx);
        let syn = cfx.segments.pop().unwrap();
        let mut sfx = fx();
        let mut s = Tcb::open_passive(SERVER, CLIENT, TcpConfig::default(), &syn, now, &mut sfx);
        let synack = sfx.segments.pop().unwrap();
        let mut cfx = fx();
        c.on_segment(now, &synack, &mut cfx);
        let ack = cfx
            .segments
            .drain(..)
            .find(|s| s.flags.ack && !s.flags.syn)
            .unwrap();
        let mut sfx = fx();
        s.on_segment(now, &ack, &mut sfx);

        let mut e = fx();
        let taken = c.app_send(now, &vec![0u8; 2000], &mut e);
        assert_eq!(taken, 1000, "write truncated at the send-buffer cap");
        // Deliver everything; the single sub-MSS segment is acked by the
        // delayed-ACK timer, after which SendSpace must appear.
        let segs: Vec<_> = e.segments.drain(..).collect();
        let mut sfx = fx();
        for seg in &segs {
            s.on_segment(now, seg, &mut sfx);
        }
        let (kind, at, epoch) = *sfx
            .timers
            .iter()
            .find(|(k, _, _)| *k == TimerKind::DelAck)
            .expect("delack armed for the lone segment");
        let mut sfx2 = fx();
        s.on_timer(at, kind, epoch, &mut sfx2);
        let mut notified = false;
        for ackseg in sfx.segments.drain(..).chain(sfx2.segments.drain(..)) {
            let mut cfx = fx();
            c.on_segment(now, &ackseg, &mut cfx);
            notified |= cfx.notifications.contains(&SockNotify::SendSpace);
        }
        assert!(notified);
    }

    #[test]
    fn pump_full_conversation() {
        let (mut c, mut s) = established();
        let now = SimTime::ZERO;
        let mut e = fx();
        c.set_nodelay(true);
        s.set_nodelay(true);
        c.app_send(now, &vec![7u8; 10_000], &mut e);
        // Feed initial burst through the pump.
        let mut first: Vec<Segment> = e.segments.drain(..).collect();
        let mut sfx = fx();
        for seg in first.drain(..) {
            s.on_segment(now, &seg, &mut sfx);
        }
        for seg in sfx.segments.drain(..).collect::<Vec<_>>() {
            let mut cfx = fx();
            c.on_segment(now, &seg, &mut cfx);
            let mut sfx2 = fx();
            for seg2 in cfx.segments.drain(..) {
                s.on_segment(now, &seg2, &mut sfx2);
            }
            for seg3 in sfx2.segments.drain(..).collect::<Vec<_>>() {
                let mut cfx2 = fx();
                c.on_segment(now, &seg3, &mut cfx2);
                let mut tail = cfx2.segments.drain(..).collect::<Vec<_>>();
                let mut sfx3 = fx();
                while let Some(seg4) = tail.pop() {
                    s.on_segment(now, &seg4, &mut sfx3);
                }
                for seg5 in sfx3.segments.drain(..).collect::<Vec<_>>() {
                    let mut cfx3 = fx();
                    c.on_segment(now, &seg5, &mut cfx3);
                    // At this point the window is large enough to finish.
                    let mut sfx4 = fx();
                    for seg6 in cfx3.segments.drain(..) {
                        s.on_segment(now, &seg6, &mut sfx4);
                    }
                }
            }
        }
        let _ = pump(&mut c, &mut s, now);
        assert_eq!(s.bytes_received, 10_000);
        let mut e2 = fx();
        assert_eq!(s.app_recv(20_000, &mut e2).len(), 10_000);
    }
}
