//! Shared helpers for the hand-rolled JSON documents this crate emits.
//!
//! Both the probe flight recorder ([`crate::probe`]) and the telemetry
//! time-series layer ([`crate::telemetry`]) render stable JSON by hand —
//! fixed field order, no serializer dependency — so identical runs
//! produce byte-identical documents. The escaping and number formatting
//! rules live here so the two emitters cannot drift apart.
//!
//! Numbers use Rust's shortest-representation `Display` for `f64`, which
//! is guaranteed to round-trip: `s.parse::<f64>() == v` for every finite
//! `v`. This replaced an earlier fixed `{:.9}` format that silently
//! truncated sub-nanosecond fractions and padded whole numbers with
//! meaningless zeros.

/// Escape a string for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a finite `f64` as the shortest decimal string that parses back
/// to exactly the same value. Non-finite values have no JSON number
/// representation and render as `null`.
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_backslashes_and_controls() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb"), "a\\nb");
        assert_eq!(escape("a\tb"), "a\\u0009b");
    }

    #[test]
    fn number_round_trips_exactly() {
        for v in [
            0.0,
            1.0,
            0.1 + 0.2,
            1.0 / 3.0,
            123_456_789.000_000_001,
            4.13,
            2.5e-10,
            f64::MIN_POSITIVE,
            f64::MAX,
            -0.007,
        ] {
            let s = number(v);
            let back: f64 = s.parse().expect("parses as f64");
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {s} -> {back}");
        }
    }

    #[test]
    fn number_is_shortest_not_padded() {
        assert_eq!(number(0.0), "0");
        assert_eq!(number(4.13), "4.13");
        assert_eq!(number(0.5), "0.5");
    }

    #[test]
    fn non_finite_renders_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(f64::NEG_INFINITY), "null");
    }
}
