//! Point-to-point link model.
//!
//! A [`Link`] connects two hosts with independent per-direction state:
//! bandwidth (serialization delay), propagation delay, a composable
//! impairment pipeline ([`crate::impair`]: loss, jitter, reordering,
//! duplication, outages, queue bounds), and an optional link-level
//! compressor modelling V.42bis modem compression.
//!
//! The link is a FIFO per direction: a packet begins transmission when the
//! previous one has finished serializing, and arrives one propagation delay
//! after its serialization completes. This reproduces the queueing that makes
//! a 28.8 kbps modem downlink the bottleneck in the paper's PPP tests.
//! Jitter can add extra delay on top, and — only when reordering is
//! explicitly enabled — break the FIFO property.

use crate::impair::{DropReason, ImpairConfig, ImpairState, LossModel};
use crate::packet::{HostId, Segment};
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// How a link arbitrates between competing senders in one direction.
///
/// Matters only for shared bottlenecks (several client hosts multiplexed
/// onto one link): a point-to-point link has a single sender per direction,
/// for which both disciplines degenerate to the same FIFO behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// One FIFO per direction: packets serialize in submission order
    /// regardless of which host sent them.
    Fifo,
    /// Per-source-host queues served round-robin, one packet per turn —
    /// an idealized fair-queueing bottleneck router.
    RoundRobin,
}

/// A stateful link-level compressor applied to each packet's bytes to decide
/// how long the packet occupies the wire.
///
/// This models modem data compression (ITU V.42bis): the packet still exists
/// as a packet (counts are unchanged) but its serialization time shrinks when
/// the payload is compressible. Implementations keep dictionary state across
/// packets in one direction, as a real modem does for the whole PPP byte
/// stream.
pub trait LinkCodec: Send {
    /// Returns the number of bytes actually sent on the wire for a packet of
    /// `wire_bytes` whose application payload is `payload`.
    ///
    /// Headers are assumed incompressible; implementations typically compress
    /// only the payload portion and add back `wire_bytes - payload.len()`.
    fn wire_bytes(&mut self, wire_bytes: usize, payload: &[u8]) -> usize;

    /// A short human-readable name used in traces.
    fn name(&self) -> &'static str;
}

/// Configuration for one link between two hosts (symmetric by default).
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Bandwidth in bits per second; `None` means infinitely fast
    /// serialization (useful for idealized tests).
    pub bits_per_sec: Option<u64>,
    /// One-way propagation delay.
    pub propagation: SimDuration,
    /// Impairments applied to each direction (independent random streams).
    pub impair: ImpairConfig,
    /// How competing senders share each direction (see [`QueueDiscipline`]).
    pub discipline: QueueDiscipline,
    /// Tail-drop buffer bound in bytes per direction; `None` means the
    /// queue is unbounded. Only payload-bearing packets are dropped, the
    /// same courtesy the loss models extend to pure ACKs.
    pub buffer_bytes: Option<u64>,
}

impl LinkConfig {
    /// 10 Mbit/s Ethernet LAN, sub-millisecond RTT (Table 1, row 1).
    pub fn lan() -> Self {
        LinkConfig {
            bits_per_sec: Some(10_000_000),
            propagation: SimDuration::from_micros(250),
            impair: ImpairConfig::none(),
            discipline: QueueDiscipline::Fifo,
            buffer_bytes: None,
        }
    }

    /// Transcontinental WAN: high bandwidth, ~90 ms RTT (Table 1, row 2).
    pub fn wan() -> Self {
        LinkConfig {
            bits_per_sec: Some(10_000_000),
            propagation: SimDuration::from_millis(45),
            impair: ImpairConfig::none(),
            discipline: QueueDiscipline::Fifo,
            buffer_bytes: None,
        }
    }

    /// 28.8 kbps dialup PPP, ~150 ms RTT (Table 1, row 3).
    pub fn ppp() -> Self {
        LinkConfig {
            bits_per_sec: Some(28_800),
            propagation: SimDuration::from_millis(75),
            impair: ImpairConfig::none(),
            discipline: QueueDiscipline::Fifo,
            buffer_bytes: None,
        }
    }

    /// An ideal link: no serialization delay, fixed propagation.
    pub fn ideal(propagation: SimDuration) -> Self {
        LinkConfig {
            bits_per_sec: None,
            propagation,
            impair: ImpairConfig::none(),
            discipline: QueueDiscipline::Fifo,
            buffer_bytes: None,
        }
    }

    /// Returns a copy dropping every `n`-th data packet per direction — a
    /// thin constructor over [`LossModel::EveryNth`], kept for the
    /// deterministic loss/retransmission tests.
    pub fn with_drop_every(mut self, n: u64) -> Self {
        assert!(n > 0, "drop interval must be positive");
        self.impair.loss = LossModel::EveryNth { n };
        self
    }

    /// Returns a copy with the given impairment pipeline installed.
    pub fn with_impairment(mut self, impair: ImpairConfig) -> Self {
        self.impair = impair;
        self
    }

    /// Returns a copy serving competing senders round-robin per source host.
    pub fn with_round_robin(mut self) -> Self {
        self.discipline = QueueDiscipline::RoundRobin;
        self
    }

    /// Returns a copy with a tail-drop buffer bound of `bytes` per direction.
    pub fn with_buffer_bytes(mut self, bytes: u64) -> Self {
        assert!(bytes > 0, "buffer bound must be positive");
        self.buffer_bytes = Some(bytes);
        self
    }
}

/// Round-robin arbitration state for one direction of a shared bottleneck.
struct RrState {
    /// Per-source FIFO queues, in first-seen source order. Each entry keeps
    /// the submission time so traces can report true queueing delay.
    queues: Vec<(HostId, VecDeque<(Segment, SimTime)>)>,
    /// Total wire bytes waiting across all queues.
    queued_bytes: u64,
    /// Index of the queue the next pump serves first.
    next: usize,
    /// A pump event is already scheduled for this direction.
    pump_armed: bool,
}

impl RrState {
    fn new() -> Self {
        RrState {
            queues: Vec::new(), // xtask: allow(hot-path-alloc) per-link setup
            queued_bytes: 0,
            next: 0,
            pump_armed: false,
        }
    }

    fn has_backlog(&self) -> bool {
        self.queues.iter().any(|(_, q)| !q.is_empty())
    }
}

/// Per-direction dynamic state.
struct Direction {
    /// Time at which the transmitter becomes free.
    busy_until: SimTime,
    /// Impairment pipeline state; `None` when the config is a pass-through.
    impair: Option<ImpairState>,
    codec: Option<Box<dyn LinkCodec>>,
    /// Arbitration queues; `None` under [`QueueDiscipline::Fifo`].
    rr: Option<RrState>,
}

impl Direction {
    fn new(cfg: &LinkConfig, index: u64) -> Self {
        Direction {
            busy_until: SimTime::ZERO,
            impair: ImpairState::new(&cfg.impair, index),
            codec: None,
            rr: match cfg.discipline {
                QueueDiscipline::Fifo => None,
                QueueDiscipline::RoundRobin => Some(RrState::new()),
            },
        }
    }
}

/// The outcome of submitting a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transmit {
    /// The packet will arrive at the given time.
    Arrives(SimTime),
    /// The packet was duplicated in flight: the original and the copy
    /// arrive at the two given times.
    Duplicated(SimTime, SimTime),
    /// The packet was dropped for the given reason.
    Dropped(DropReason),
    /// The packet entered a round-robin arbitration queue. When the inner
    /// time is `Some`, the caller must schedule a [`Link::pump`] for this
    /// direction at that time (a pump chain is already running otherwise).
    Queued(Option<SimTime>),
}

/// One packet released from a round-robin queue by [`Link::pump`].
pub struct Pumped {
    /// The released packet.
    pub segment: Segment,
    /// When the packet was originally submitted to the link.
    pub sent: SimTime,
    /// Its fate on the wire (never [`Transmit::Queued`]).
    pub outcome: Transmit,
    /// Bytes occupied on the physical wire after link compression.
    pub physical: usize,
    /// When to pump this direction again; `None` when the queues drained.
    pub next_pump: Option<SimTime>,
}

/// A full-duplex point-to-point link between hosts `a` and `b`.
pub struct Link {
    /// The a.
    pub a: HostId,
    /// The b.
    pub b: HostId,
    config: LinkConfig,
    a_to_b: Direction,
    b_to_a: Direction,
}

impl Link {
    /// Create a new, empty instance.
    pub fn new(a: HostId, b: HostId, config: LinkConfig) -> Self {
        let a_to_b = Direction::new(&config, 0);
        let b_to_a = Direction::new(&config, 1);
        Link {
            a,
            b,
            config,
            a_to_b,
            b_to_a,
        }
    }

    /// The link parameters.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Install a link-level compressor on both directions, constructed per
    /// direction by `make` (the dictionaries of the two directions are
    /// independent, as in a real modem pair).
    pub fn set_codec(&mut self, mut make: impl FnMut() -> Box<dyn LinkCodec>) {
        self.a_to_b.codec = Some(make());
        self.b_to_a.codec = Some(make());
    }

    /// Replace the impairment pipeline on both directions. Resets the
    /// per-direction impairment state (random streams restart from the new
    /// seed); serialization state is untouched.
    pub fn set_impairment(&mut self, impair: ImpairConfig) {
        self.a_to_b.impair = ImpairState::new(&impair, 0);
        self.b_to_a.impair = ImpairState::new(&impair, 1);
        self.config.impair = impair;
    }

    /// Bytes currently queued for serialization in one direction at `now`:
    /// the backlog a tail-drop queue bound is compared against.
    fn backlog_bytes(busy_until: SimTime, now: SimTime, bits_per_sec: Option<u64>) -> u64 {
        match bits_per_sec {
            Some(bps) => {
                let ns = busy_until.since(now).as_nanos() as u128;
                (ns * bps as u128 / 8_000_000_000) as u64
            }
            None => 0,
        }
    }

    /// Bytes waiting to serialize in the direction a packet from `from`
    /// would take, observed at `now`: the round-robin arbitration backlog,
    /// or the FIFO transmitter backlog implied by `busy_until`. This is
    /// the quantity tail-drop bounds compare against, exposed for the
    /// telemetry queue-depth gauge.
    pub fn queued_bytes(&self, now: SimTime, from: HostId) -> u64 {
        let dir = if from == self.b {
            &self.b_to_a
        } else {
            &self.a_to_b
        };
        match &dir.rr {
            Some(rr) => rr.queued_bytes,
            None => Self::backlog_bytes(dir.busy_until, now, self.config.bits_per_sec),
        }
    }

    /// Submit `segment` for transmission at time `now`.
    ///
    /// Under FIFO arbitration, returns the arrival time at the far end (or
    /// `Dropped` / `Duplicated`), plus the number of bytes the packet
    /// occupied on the physical wire after any link compression. Under
    /// round-robin, the packet enters a per-source queue and the outcome is
    /// `Queued`; the caller drives delivery via [`Link::pump`].
    pub fn transmit(&mut self, now: SimTime, from: HostId, segment: &Segment) -> (Transmit, usize) {
        let Link {
            config,
            a_to_b,
            b_to_a,
            ..
        } = self;
        // Any spoke of a shared link sits on the `a` side; only the hub
        // itself transmits in the b→a direction.
        let dir = if from == self.b { b_to_a } else { a_to_b };

        if let Some(rr) = dir.rr.as_mut() {
            let wire = segment.wire_len() as u64;
            if segment.has_payload() {
                if let Some(cap) = config.buffer_bytes {
                    if rr.queued_bytes + wire > cap {
                        return (Transmit::Dropped(DropReason::Queue), 0);
                    }
                }
            }
            let queue = match rr.queues.iter_mut().position(|(h, _)| *h == from) {
                Some(i) => &mut rr.queues[i].1,
                None => {
                    rr.queues.push((from, VecDeque::new()));
                    &mut rr.queues.last_mut().unwrap().1
                }
            };
            queue.push_back((segment.clone(), now));
            rr.queued_bytes += wire;
            if rr.pump_armed {
                return (Transmit::Queued(None), 0);
            }
            rr.pump_armed = true;
            return (Transmit::Queued(Some(dir.busy_until.max(now))), 0);
        }

        if segment.has_payload() {
            if let Some(cap) = config.buffer_bytes {
                let backlog = Self::backlog_bytes(dir.busy_until, now, config.bits_per_sec);
                if backlog + segment.wire_len() as u64 > cap {
                    return (Transmit::Dropped(DropReason::Queue), 0);
                }
            }
        }

        if let Some(st) = dir.impair.as_mut() {
            let backlog = Self::backlog_bytes(dir.busy_until, now, config.bits_per_sec);
            if let Some(reason) = st.pre_wire(&config.impair, now, segment.has_payload(), backlog) {
                return (Transmit::Dropped(reason), 0);
            }
        }

        Self::serialize(dir, config, now, segment)
    }

    /// Serialize one packet onto the wire of `dir` starting no earlier than
    /// `now`, applying codec, bandwidth and post-wire impairments.
    fn serialize(
        dir: &mut Direction,
        config: &LinkConfig,
        now: SimTime,
        segment: &Segment,
    ) -> (Transmit, usize) {
        let raw = segment.wire_len();
        let physical = match dir.codec.as_mut() {
            Some(codec) => codec.wire_bytes(raw, &segment.payload),
            None => raw,
        };

        let start = dir.busy_until.max(now);
        let tx = match config.bits_per_sec {
            Some(bps) => SimDuration::transmission(physical, bps),
            None => SimDuration::ZERO,
        };
        let done = start + tx;
        dir.busy_until = done;
        let nominal = done + config.propagation;

        match dir.impair.as_mut() {
            Some(st) => {
                // Duplicate copies trail the original by a fraction of the
                // propagation delay, as a copy taking a marginally longer
                // path would.
                let gap = SimDuration::from_nanos(config.propagation.as_nanos() / 8)
                    .max(SimDuration::from_micros(1));
                match st.post_wire(&config.impair, nominal, gap) {
                    (at, Some(dup_at)) => (Transmit::Duplicated(at, dup_at), physical),
                    (at, None) => (Transmit::Arrives(at), physical),
                }
            }
            None => (Transmit::Arrives(nominal), physical),
        }
    }

    /// Release the next packet from a round-robin direction. Returns `None`
    /// when every queue is empty (the pump chain then stops; the next
    /// [`Link::transmit`] restarts it). `a_to_b` selects the direction the
    /// pump event was scheduled for.
    pub fn pump(&mut self, now: SimTime, a_to_b: bool) -> Option<Pumped> {
        let Link {
            config,
            a_to_b: fwd,
            b_to_a: rev,
            ..
        } = self;
        let dir = if a_to_b { fwd } else { rev };
        let rr = dir.rr.as_mut().expect("pump on a FIFO direction");

        let n = rr.queues.len();
        let pick = (0..n)
            .map(|i| (rr.next + i) % n)
            .find(|&i| !rr.queues[i].1.is_empty());
        let Some(idx) = pick else {
            rr.pump_armed = false;
            return None;
        };
        let (segment, sent) = rr.queues[idx].1.pop_front().unwrap();
        rr.next = (idx + 1) % n;
        rr.queued_bytes -= segment.wire_len() as u64;
        let backlog_bytes = rr.queued_bytes;
        let more = rr.has_backlog();

        // Pre-wire impairments (loss, outages) apply as the packet reaches
        // the head of the queue; the transmitter stays free on a drop, so
        // the next pump fires immediately.
        if let Some(st) = dir.impair.as_mut() {
            if let Some(reason) =
                st.pre_wire(&config.impair, now, segment.has_payload(), backlog_bytes)
            {
                let next_pump = if more {
                    Some(now)
                } else {
                    dir.rr.as_mut().unwrap().pump_armed = false;
                    None
                };
                return Some(Pumped {
                    segment,
                    sent,
                    outcome: Transmit::Dropped(reason),
                    physical: 0,
                    next_pump,
                });
            }
        }

        let (outcome, physical) = Self::serialize(dir, config, now, &segment);
        let next_pump = if more {
            Some(dir.busy_until)
        } else {
            dir.rr.as_mut().unwrap().pump_armed = false;
            None
        };
        Some(Pumped {
            segment,
            sent,
            outcome,
            physical,
            next_pump,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impair::JitterModel;
    use crate::packet::{SockAddr, TcpFlags};
    use bytes::Bytes;

    fn seg(len: usize) -> Segment {
        Segment {
            src: SockAddr::new(HostId(0), 1),
            dst: SockAddr::new(HostId(1), 2),
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 0,
            sack: crate::packet::SackBlocks::NONE,
            payload: Bytes::from(vec![b'x'; len]),
        }
    }

    #[test]
    fn fifo_serialization() {
        // Two 1460-byte packets on 10 Mbit/s: second arrives one
        // serialization time after the first.
        let mut link = Link::new(HostId(0), HostId(1), LinkConfig::lan());
        let (t1, _) = link.transmit(SimTime::ZERO, HostId(0), &seg(1460));
        let (t2, _) = link.transmit(SimTime::ZERO, HostId(0), &seg(1460));
        let (Transmit::Arrives(t1), Transmit::Arrives(t2)) = (t1, t2) else {
            panic!("expected arrivals");
        };
        let tx = SimDuration::transmission(1500, 10_000_000);
        assert_eq!(t2.since(t1), tx);
    }

    #[test]
    fn directions_are_independent() {
        let mut link = Link::new(HostId(0), HostId(1), LinkConfig::ppp());
        let (a, _) = link.transmit(SimTime::ZERO, HostId(0), &seg(512));
        let (b, _) = link.transmit(SimTime::ZERO, HostId(1), &seg(512));
        assert_eq!(
            a, b,
            "full duplex: reverse direction does not queue behind forward"
        );
    }

    #[test]
    fn ideal_link_has_only_propagation() {
        let mut link = Link::new(
            HostId(0),
            HostId(1),
            LinkConfig::ideal(SimDuration::from_millis(10)),
        );
        let (t, _) = link.transmit(SimTime::from_nanos(5), HostId(0), &seg(100_000));
        assert_eq!(
            t,
            Transmit::Arrives(SimTime::from_nanos(5) + SimDuration::from_millis(10))
        );
    }

    #[test]
    fn deterministic_drop_model() {
        let mut link = Link::new(HostId(0), HostId(1), LinkConfig::lan().with_drop_every(3));
        let mut outcomes = Vec::new();
        for _ in 0..6 {
            let (o, _) = link.transmit(SimTime::ZERO, HostId(0), &seg(100));
            outcomes.push(matches!(o, Transmit::Dropped(_)));
        }
        assert_eq!(outcomes, vec![false, false, true, false, false, true]);
    }

    #[test]
    fn pure_acks_never_dropped() {
        let mut link = Link::new(HostId(0), HostId(1), LinkConfig::lan().with_drop_every(1));
        let (o, _) = link.transmit(SimTime::ZERO, HostId(0), &seg(0));
        assert!(matches!(o, Transmit::Arrives(_)));
    }

    #[test]
    fn drop_reason_reported() {
        let mut link = Link::new(HostId(0), HostId(1), LinkConfig::lan().with_drop_every(1));
        let (o, wire) = link.transmit(SimTime::ZERO, HostId(0), &seg(10));
        assert_eq!(o, Transmit::Dropped(DropReason::Loss));
        assert_eq!(wire, 0, "dropped packets never touch the wire");
    }

    fn at_ms(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn outage_drops_then_recovers() {
        let cfg = LinkConfig::lan()
            .with_impairment(ImpairConfig::none().with_outage(at_ms(10), at_ms(20)));
        let mut link = Link::new(HostId(0), HostId(1), cfg);
        let (up, _) = link.transmit(at_ms(5), HostId(0), &seg(100));
        assert!(matches!(up, Transmit::Arrives(_)));
        let (down, _) = link.transmit(at_ms(15), HostId(0), &seg(100));
        assert_eq!(down, Transmit::Dropped(DropReason::Outage));
        let (later, _) = link.transmit(at_ms(25), HostId(0), &seg(100));
        assert!(matches!(later, Transmit::Arrives(_)));
    }

    #[test]
    fn duplication_produces_two_arrivals() {
        let cfg = LinkConfig::lan().with_impairment(ImpairConfig::none().with_duplication(1.0));
        let mut link = Link::new(HostId(0), HostId(1), cfg);
        let (o, _) = link.transmit(SimTime::ZERO, HostId(0), &seg(100));
        let Transmit::Duplicated(first, second) = o else {
            panic!("expected duplication, got {o:?}");
        };
        assert!(second > first);
    }

    #[test]
    fn jitter_without_reorder_stays_fifo() {
        let cfg =
            LinkConfig::lan().with_impairment(ImpairConfig::none().with_seed(77).with_jitter(
                JitterModel::Uniform {
                    min: SimDuration::ZERO,
                    max: SimDuration::from_millis(20),
                },
            ));
        let mut link = Link::new(HostId(0), HostId(1), cfg);
        let mut last = SimTime::ZERO;
        for i in 0..200u64 {
            let now = SimTime::from_nanos(i * 10_000);
            let (o, _) = link.transmit(now, HostId(0), &seg(100));
            let Transmit::Arrives(at) = o else {
                panic!("no loss configured")
            };
            assert!(at >= last, "packet {i} overtook its predecessor");
            last = at;
        }
    }

    #[test]
    fn set_impairment_replaces_pipeline() {
        let mut link = Link::new(HostId(0), HostId(1), LinkConfig::lan());
        let (o, _) = link.transmit(SimTime::ZERO, HostId(0), &seg(10));
        assert!(matches!(o, Transmit::Arrives(_)));
        link.set_impairment(ImpairConfig::none().with_loss(LossModel::EveryNth { n: 1 }));
        let (o, _) = link.transmit(SimTime::ZERO, HostId(0), &seg(10));
        assert_eq!(o, Transmit::Dropped(DropReason::Loss));
    }

    struct HalfCodec;
    impl LinkCodec for HalfCodec {
        fn wire_bytes(&mut self, wire: usize, payload: &[u8]) -> usize {
            wire - payload.len() + payload.len() / 2
        }
        fn name(&self) -> &'static str {
            "half"
        }
    }

    fn seg_from(src: u16, len: usize) -> Segment {
        Segment {
            src: SockAddr::new(HostId(src), 1),
            dst: SockAddr::new(HostId(9), 2),
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 0,
            sack: crate::packet::SackBlocks::NONE,
            payload: Bytes::from(vec![b'x'; len]),
        }
    }

    #[test]
    fn fifo_buffer_bound_tail_drops() {
        // 10 Mbit/s with a 3000-byte buffer: the third 1460-byte packet
        // submitted at the same instant exceeds the bound and is dropped.
        let mut link = Link::new(
            HostId(0),
            HostId(1),
            LinkConfig::lan().with_buffer_bytes(3_000),
        );
        let (t1, _) = link.transmit(SimTime::ZERO, HostId(0), &seg(1460));
        assert!(matches!(t1, Transmit::Arrives(_)));
        let (t2, _) = link.transmit(SimTime::ZERO, HostId(0), &seg(1460));
        assert!(matches!(t2, Transmit::Arrives(_)));
        let (t3, _) = link.transmit(SimTime::ZERO, HostId(0), &seg(1460));
        assert_eq!(t3, Transmit::Dropped(DropReason::Queue));
        // Pure ACKs pass even when the buffer is full.
        let (ack, _) = link.transmit(SimTime::ZERO, HostId(0), &seg(0));
        assert!(matches!(ack, Transmit::Arrives(_)));
    }

    #[test]
    fn round_robin_interleaves_competing_sources() {
        // Source 0 floods three packets, source 5 submits one; round-robin
        // must serve 0, 5, 0, 0 rather than draining source 0 first.
        let cfg = LinkConfig::lan().with_round_robin();
        let mut link = Link::new(HostId(0), HostId(9), cfg);
        let (o, _) = link.transmit(SimTime::ZERO, HostId(0), &seg_from(0, 1000));
        let Transmit::Queued(Some(first_pump)) = o else {
            panic!("expected a pump schedule, got {o:?}");
        };
        assert_eq!(first_pump, SimTime::ZERO);
        for _ in 0..2 {
            let (o, _) = link.transmit(SimTime::ZERO, HostId(0), &seg_from(0, 1000));
            assert_eq!(o, Transmit::Queued(None), "pump chain already armed");
        }
        let (o, _) = link.transmit(SimTime::ZERO, HostId(5), &seg_from(5, 1000));
        assert_eq!(o, Transmit::Queued(None));

        let mut order = Vec::new();
        let mut at = first_pump;
        loop {
            let p = link.pump(at, true).expect("backlog remains");
            order.push(p.segment.src.host.0);
            match p.next_pump {
                Some(next) => at = next,
                None => break,
            }
        }
        assert_eq!(order, vec![0, 5, 0, 0]);
        assert!(link.pump(at, true).is_none(), "queues drained");
    }

    #[test]
    fn round_robin_preserves_per_source_order_and_spacing() {
        let cfg = LinkConfig::lan().with_round_robin();
        let mut link = Link::new(HostId(0), HostId(9), cfg);
        let mut seqs = Vec::new();
        for i in 0..4u64 {
            let mut s = seg_from(0, 1460);
            s.seq = i;
            let _ = link.transmit(SimTime::ZERO, HostId(0), &s);
        }
        let mut arrivals = Vec::new();
        let mut at = SimTime::ZERO;
        loop {
            let p = link.pump(at, true).unwrap();
            seqs.push(p.segment.seq);
            let Transmit::Arrives(t) = p.outcome else {
                panic!("no impairments configured");
            };
            arrivals.push(t);
            match p.next_pump {
                Some(next) => at = next,
                None => break,
            }
        }
        assert_eq!(seqs, vec![0, 1, 2, 3], "per-source FIFO order");
        let tx = SimDuration::transmission(1500, 10_000_000);
        for w in arrivals.windows(2) {
            assert_eq!(w[1].since(w[0]), tx, "back-to-back serialization");
        }
    }

    #[test]
    fn round_robin_buffer_bound_tail_drops() {
        let cfg = LinkConfig::lan()
            .with_round_robin()
            .with_buffer_bytes(3_000);
        let mut link = Link::new(HostId(0), HostId(9), cfg);
        let (o1, _) = link.transmit(SimTime::ZERO, HostId(0), &seg_from(0, 1460));
        assert!(matches!(o1, Transmit::Queued(Some(_))));
        let (o2, _) = link.transmit(SimTime::ZERO, HostId(1), &seg_from(1, 1460));
        assert_eq!(o2, Transmit::Queued(None));
        let (o3, _) = link.transmit(SimTime::ZERO, HostId(2), &seg_from(2, 1460));
        assert_eq!(o3, Transmit::Dropped(DropReason::Queue));
        // Draining one packet frees space again.
        let p = link.pump(SimTime::ZERO, true).unwrap();
        assert!(matches!(p.outcome, Transmit::Arrives(_)));
        let (o4, _) = link.transmit(SimTime::ZERO, HostId(2), &seg_from(2, 1460));
        assert_eq!(o4, Transmit::Queued(None));
    }

    #[test]
    fn codec_shrinks_wire_time() {
        let mut plain = Link::new(HostId(0), HostId(1), LinkConfig::ppp());
        let mut compressed = Link::new(HostId(0), HostId(1), LinkConfig::ppp());
        compressed.set_codec(|| Box::new(HalfCodec));
        let (outcome_p, raw) = plain.transmit(SimTime::ZERO, HostId(0), &seg(1000));
        let (outcome_c, small) = compressed.transmit(SimTime::ZERO, HostId(0), &seg(1000));
        let Transmit::Arrives(tp) = outcome_p else {
            panic!()
        };
        let Transmit::Arrives(tc) = outcome_c else {
            panic!()
        };
        assert!(tc < tp);
        assert_eq!(raw, 1040);
        assert_eq!(small, 540);
    }
}
