//! Point-to-point link model.
//!
//! A [`Link`] connects two hosts with independent per-direction state:
//! bandwidth (serialization delay), propagation delay, a composable
//! impairment pipeline ([`crate::impair`]: loss, jitter, reordering,
//! duplication, outages, queue bounds), and an optional link-level
//! compressor modelling V.42bis modem compression.
//!
//! The link is a FIFO per direction: a packet begins transmission when the
//! previous one has finished serializing, and arrives one propagation delay
//! after its serialization completes. This reproduces the queueing that makes
//! a 28.8 kbps modem downlink the bottleneck in the paper's PPP tests.
//! Jitter can add extra delay on top, and — only when reordering is
//! explicitly enabled — break the FIFO property.

use crate::impair::{DropReason, ImpairConfig, ImpairState, LossModel};
use crate::packet::{HostId, Segment};
use crate::time::{SimDuration, SimTime};

/// A stateful link-level compressor applied to each packet's bytes to decide
/// how long the packet occupies the wire.
///
/// This models modem data compression (ITU V.42bis): the packet still exists
/// as a packet (counts are unchanged) but its serialization time shrinks when
/// the payload is compressible. Implementations keep dictionary state across
/// packets in one direction, as a real modem does for the whole PPP byte
/// stream.
pub trait LinkCodec: Send {
    /// Returns the number of bytes actually sent on the wire for a packet of
    /// `wire_bytes` whose application payload is `payload`.
    ///
    /// Headers are assumed incompressible; implementations typically compress
    /// only the payload portion and add back `wire_bytes - payload.len()`.
    fn wire_bytes(&mut self, wire_bytes: usize, payload: &[u8]) -> usize;

    /// A short human-readable name used in traces.
    fn name(&self) -> &'static str;
}

/// Configuration for one link between two hosts (symmetric by default).
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Bandwidth in bits per second; `None` means infinitely fast
    /// serialization (useful for idealized tests).
    pub bits_per_sec: Option<u64>,
    /// One-way propagation delay.
    pub propagation: SimDuration,
    /// Impairments applied to each direction (independent random streams).
    pub impair: ImpairConfig,
}

impl LinkConfig {
    /// 10 Mbit/s Ethernet LAN, sub-millisecond RTT (Table 1, row 1).
    pub fn lan() -> Self {
        LinkConfig {
            bits_per_sec: Some(10_000_000),
            propagation: SimDuration::from_micros(250),
            impair: ImpairConfig::none(),
        }
    }

    /// Transcontinental WAN: high bandwidth, ~90 ms RTT (Table 1, row 2).
    pub fn wan() -> Self {
        LinkConfig {
            bits_per_sec: Some(10_000_000),
            propagation: SimDuration::from_millis(45),
            impair: ImpairConfig::none(),
        }
    }

    /// 28.8 kbps dialup PPP, ~150 ms RTT (Table 1, row 3).
    pub fn ppp() -> Self {
        LinkConfig {
            bits_per_sec: Some(28_800),
            propagation: SimDuration::from_millis(75),
            impair: ImpairConfig::none(),
        }
    }

    /// An ideal link: no serialization delay, fixed propagation.
    pub fn ideal(propagation: SimDuration) -> Self {
        LinkConfig {
            bits_per_sec: None,
            propagation,
            impair: ImpairConfig::none(),
        }
    }

    /// Returns a copy dropping every `n`-th data packet per direction — a
    /// thin constructor over [`LossModel::EveryNth`], kept for the
    /// deterministic loss/retransmission tests.
    pub fn with_drop_every(mut self, n: u64) -> Self {
        assert!(n > 0, "drop interval must be positive");
        self.impair.loss = LossModel::EveryNth { n };
        self
    }

    /// Returns a copy with the given impairment pipeline installed.
    pub fn with_impairment(mut self, impair: ImpairConfig) -> Self {
        self.impair = impair;
        self
    }
}

/// Per-direction dynamic state.
struct Direction {
    /// Time at which the transmitter becomes free.
    busy_until: SimTime,
    /// Impairment pipeline state; `None` when the config is a pass-through.
    impair: Option<ImpairState>,
    codec: Option<Box<dyn LinkCodec>>,
}

impl Direction {
    fn new(cfg: &ImpairConfig, index: u64) -> Self {
        Direction {
            busy_until: SimTime::ZERO,
            impair: ImpairState::new(cfg, index),
            codec: None,
        }
    }
}

/// The outcome of submitting a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transmit {
    /// The packet will arrive at the given time.
    Arrives(SimTime),
    /// The packet was duplicated in flight: the original and the copy
    /// arrive at the two given times.
    Duplicated(SimTime, SimTime),
    /// The packet was dropped for the given reason.
    Dropped(DropReason),
}

/// A full-duplex point-to-point link between hosts `a` and `b`.
pub struct Link {
    /// The a.
    pub a: HostId,
    /// The b.
    pub b: HostId,
    config: LinkConfig,
    a_to_b: Direction,
    b_to_a: Direction,
}

impl Link {
    /// Create a new, empty instance.
    pub fn new(a: HostId, b: HostId, config: LinkConfig) -> Self {
        let a_to_b = Direction::new(&config.impair, 0);
        let b_to_a = Direction::new(&config.impair, 1);
        Link {
            a,
            b,
            config,
            a_to_b,
            b_to_a,
        }
    }

    /// The link parameters.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Install a link-level compressor on both directions, constructed per
    /// direction by `make` (the dictionaries of the two directions are
    /// independent, as in a real modem pair).
    pub fn set_codec(&mut self, mut make: impl FnMut() -> Box<dyn LinkCodec>) {
        self.a_to_b.codec = Some(make());
        self.b_to_a.codec = Some(make());
    }

    /// Replace the impairment pipeline on both directions. Resets the
    /// per-direction impairment state (random streams restart from the new
    /// seed); serialization state is untouched.
    pub fn set_impairment(&mut self, impair: ImpairConfig) {
        self.a_to_b.impair = ImpairState::new(&impair, 0);
        self.b_to_a.impair = ImpairState::new(&impair, 1);
        self.config.impair = impair;
    }

    /// Bytes currently queued for serialization in one direction at `now`:
    /// the backlog a tail-drop queue bound is compared against.
    fn backlog_bytes(busy_until: SimTime, now: SimTime, bits_per_sec: Option<u64>) -> u64 {
        match bits_per_sec {
            Some(bps) => {
                let ns = busy_until.since(now).as_nanos() as u128;
                (ns * bps as u128 / 8_000_000_000) as u64
            }
            None => 0,
        }
    }

    /// Submit `segment` for transmission at time `now`.
    ///
    /// Returns the arrival time at the far end (or `Dropped` /
    /// `Duplicated`), plus the number of bytes the packet occupied on the
    /// physical wire after any link compression.
    pub fn transmit(&mut self, now: SimTime, from: HostId, segment: &Segment) -> (Transmit, usize) {
        let Link {
            a,
            config,
            a_to_b,
            b_to_a,
            ..
        } = self;
        let dir = if from == *a {
            a_to_b
        } else {
            debug_assert_eq!(from, self.b);
            b_to_a
        };

        if let Some(st) = dir.impair.as_mut() {
            let backlog = Self::backlog_bytes(dir.busy_until, now, config.bits_per_sec);
            if let Some(reason) = st.pre_wire(&config.impair, now, segment.has_payload(), backlog) {
                return (Transmit::Dropped(reason), 0);
            }
        }

        let raw = segment.wire_len();
        let physical = match dir.codec.as_mut() {
            Some(codec) => codec.wire_bytes(raw, &segment.payload),
            None => raw,
        };

        let start = dir.busy_until.max(now);
        let tx = match config.bits_per_sec {
            Some(bps) => SimDuration::transmission(physical, bps),
            None => SimDuration::ZERO,
        };
        let done = start + tx;
        dir.busy_until = done;
        let nominal = done + config.propagation;

        match dir.impair.as_mut() {
            Some(st) => {
                // Duplicate copies trail the original by a fraction of the
                // propagation delay, as a copy taking a marginally longer
                // path would.
                let gap = SimDuration::from_nanos(config.propagation.as_nanos() / 8)
                    .max(SimDuration::from_micros(1));
                match st.post_wire(&config.impair, nominal, gap) {
                    (at, Some(dup_at)) => (Transmit::Duplicated(at, dup_at), physical),
                    (at, None) => (Transmit::Arrives(at), physical),
                }
            }
            None => (Transmit::Arrives(nominal), physical),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impair::JitterModel;
    use crate::packet::{SockAddr, TcpFlags};
    use bytes::Bytes;

    fn seg(len: usize) -> Segment {
        Segment {
            src: SockAddr::new(HostId(0), 1),
            dst: SockAddr::new(HostId(1), 2),
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 0,
            payload: Bytes::from(vec![b'x'; len]),
        }
    }

    #[test]
    fn fifo_serialization() {
        // Two 1460-byte packets on 10 Mbit/s: second arrives one
        // serialization time after the first.
        let mut link = Link::new(HostId(0), HostId(1), LinkConfig::lan());
        let (t1, _) = link.transmit(SimTime::ZERO, HostId(0), &seg(1460));
        let (t2, _) = link.transmit(SimTime::ZERO, HostId(0), &seg(1460));
        let (Transmit::Arrives(t1), Transmit::Arrives(t2)) = (t1, t2) else {
            panic!("expected arrivals");
        };
        let tx = SimDuration::transmission(1500, 10_000_000);
        assert_eq!(t2.since(t1), tx);
    }

    #[test]
    fn directions_are_independent() {
        let mut link = Link::new(HostId(0), HostId(1), LinkConfig::ppp());
        let (a, _) = link.transmit(SimTime::ZERO, HostId(0), &seg(512));
        let (b, _) = link.transmit(SimTime::ZERO, HostId(1), &seg(512));
        assert_eq!(
            a, b,
            "full duplex: reverse direction does not queue behind forward"
        );
    }

    #[test]
    fn ideal_link_has_only_propagation() {
        let mut link = Link::new(
            HostId(0),
            HostId(1),
            LinkConfig::ideal(SimDuration::from_millis(10)),
        );
        let (t, _) = link.transmit(SimTime::from_nanos(5), HostId(0), &seg(100_000));
        assert_eq!(
            t,
            Transmit::Arrives(SimTime::from_nanos(5) + SimDuration::from_millis(10))
        );
    }

    #[test]
    fn deterministic_drop_model() {
        let mut link = Link::new(HostId(0), HostId(1), LinkConfig::lan().with_drop_every(3));
        let mut outcomes = Vec::new();
        for _ in 0..6 {
            let (o, _) = link.transmit(SimTime::ZERO, HostId(0), &seg(100));
            outcomes.push(matches!(o, Transmit::Dropped(_)));
        }
        assert_eq!(outcomes, vec![false, false, true, false, false, true]);
    }

    #[test]
    fn pure_acks_never_dropped() {
        let mut link = Link::new(HostId(0), HostId(1), LinkConfig::lan().with_drop_every(1));
        let (o, _) = link.transmit(SimTime::ZERO, HostId(0), &seg(0));
        assert!(matches!(o, Transmit::Arrives(_)));
    }

    #[test]
    fn drop_reason_reported() {
        let mut link = Link::new(HostId(0), HostId(1), LinkConfig::lan().with_drop_every(1));
        let (o, wire) = link.transmit(SimTime::ZERO, HostId(0), &seg(10));
        assert_eq!(o, Transmit::Dropped(DropReason::Loss));
        assert_eq!(wire, 0, "dropped packets never touch the wire");
    }

    fn at_ms(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn outage_drops_then_recovers() {
        let cfg = LinkConfig::lan()
            .with_impairment(ImpairConfig::none().with_outage(at_ms(10), at_ms(20)));
        let mut link = Link::new(HostId(0), HostId(1), cfg);
        let (up, _) = link.transmit(at_ms(5), HostId(0), &seg(100));
        assert!(matches!(up, Transmit::Arrives(_)));
        let (down, _) = link.transmit(at_ms(15), HostId(0), &seg(100));
        assert_eq!(down, Transmit::Dropped(DropReason::Outage));
        let (later, _) = link.transmit(at_ms(25), HostId(0), &seg(100));
        assert!(matches!(later, Transmit::Arrives(_)));
    }

    #[test]
    fn duplication_produces_two_arrivals() {
        let cfg = LinkConfig::lan().with_impairment(ImpairConfig::none().with_duplication(1.0));
        let mut link = Link::new(HostId(0), HostId(1), cfg);
        let (o, _) = link.transmit(SimTime::ZERO, HostId(0), &seg(100));
        let Transmit::Duplicated(first, second) = o else {
            panic!("expected duplication, got {o:?}");
        };
        assert!(second > first);
    }

    #[test]
    fn jitter_without_reorder_stays_fifo() {
        let cfg =
            LinkConfig::lan().with_impairment(ImpairConfig::none().with_seed(77).with_jitter(
                JitterModel::Uniform {
                    min: SimDuration::ZERO,
                    max: SimDuration::from_millis(20),
                },
            ));
        let mut link = Link::new(HostId(0), HostId(1), cfg);
        let mut last = SimTime::ZERO;
        for i in 0..200u64 {
            let now = SimTime::from_nanos(i * 10_000);
            let (o, _) = link.transmit(now, HostId(0), &seg(100));
            let Transmit::Arrives(at) = o else {
                panic!("no loss configured")
            };
            assert!(at >= last, "packet {i} overtook its predecessor");
            last = at;
        }
    }

    #[test]
    fn set_impairment_replaces_pipeline() {
        let mut link = Link::new(HostId(0), HostId(1), LinkConfig::lan());
        let (o, _) = link.transmit(SimTime::ZERO, HostId(0), &seg(10));
        assert!(matches!(o, Transmit::Arrives(_)));
        link.set_impairment(ImpairConfig::none().with_loss(LossModel::EveryNth { n: 1 }));
        let (o, _) = link.transmit(SimTime::ZERO, HostId(0), &seg(10));
        assert_eq!(o, Transmit::Dropped(DropReason::Loss));
    }

    struct HalfCodec;
    impl LinkCodec for HalfCodec {
        fn wire_bytes(&mut self, wire: usize, payload: &[u8]) -> usize {
            wire - payload.len() + payload.len() / 2
        }
        fn name(&self) -> &'static str {
            "half"
        }
    }

    #[test]
    fn codec_shrinks_wire_time() {
        let mut plain = Link::new(HostId(0), HostId(1), LinkConfig::ppp());
        let mut compressed = Link::new(HostId(0), HostId(1), LinkConfig::ppp());
        compressed.set_codec(|| Box::new(HalfCodec));
        let (outcome_p, raw) = plain.transmit(SimTime::ZERO, HostId(0), &seg(1000));
        let (outcome_c, small) = compressed.transmit(SimTime::ZERO, HostId(0), &seg(1000));
        let Transmit::Arrives(tp) = outcome_p else {
            panic!()
        };
        let Transmit::Arrives(tc) = outcome_c else {
            panic!()
        };
        assert!(tc < tp);
        assert_eq!(raw, 1040);
        assert_eq!(small, 540);
    }
}
