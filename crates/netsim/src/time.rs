//! Simulated time.
//!
//! The simulator uses a nanosecond-resolution virtual clock represented as a
//! `u64`. All delays, bandwidth computations and timers are expressed in
//! [`SimDuration`]; absolute points on the virtual clock are [`SimTime`].
//! Using integers keeps the simulation fully deterministic — there is no
//! floating-point accumulation anywhere on the timing path.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the simulated clock, in nanoseconds since the start
/// of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// A time later than any time a simulation will reach.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The time as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounds to nanoseconds).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s >= 0.0 && s.is_finite(),
            "duration must be finite and non-negative"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// The time needed to serialize `bytes` onto a link of `bits_per_sec`.
    ///
    /// Rounds up to the next nanosecond so that back-to-back packets never
    /// overlap on the wire.
    pub fn transmission(bytes: usize, bits_per_sec: u64) -> SimDuration {
        assert!(bits_per_sec > 0, "link bandwidth must be positive");
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(bits_per_sec as u128);
        SimDuration(ns.min(u64::MAX as u128) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::from_nanos(5) + SimDuration::from_nanos(7);
        assert_eq!(t.as_nanos(), 12);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(b.since(a).as_nanos(), 4);
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn transmission_time_ethernet() {
        // 1500 bytes at 10 Mbit/s = 1.2 ms.
        let d = SimDuration::transmission(1500, 10_000_000);
        assert_eq!(d.as_nanos(), 1_200_000);
    }

    #[test]
    fn transmission_time_modem() {
        // 576 bytes at 28.8 kbit/s = 160 ms.
        let d = SimDuration::transmission(576, 28_800);
        assert_eq!(d.as_nanos(), 160_000_000);
    }

    #[test]
    fn transmission_rounds_up() {
        // 1 byte at 3 bit/s: 8/3 s = 2.666..s, must round up.
        let d = SimDuration::transmission(1, 3);
        assert_eq!(d.as_nanos(), 2_666_666_667);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_millis(200).as_nanos(), 200_000_000);
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert!((SimDuration::from_secs_f64(0.09).as_secs_f64() - 0.09).abs() < 1e-9);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(50)), "50.000ms");
        assert_eq!(format!("{}", SimDuration::from_nanos(17)), "17ns");
    }
}
