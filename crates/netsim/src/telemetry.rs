//! Deterministic time-series metrics: counters, gauges and log-bucketed
//! streaming histograms sampled on sim-time ticks.
//!
//! The paper's methodology was observational — tcpdump captures analyzed
//! until the authors could attribute every stall to a TCP mechanism. The
//! probe ([`crate::probe`]) automates that attribution for a single run;
//! this module adds the *evolution* view: how cwnd, queue depth, server
//! load and recovery activity change over a run, across a whole fleet.
//!
//! ## Discipline
//!
//! The sink obeys the same rules the probe established:
//!
//! * **Zero overhead when disabled.** Every record method starts with one
//!   branch on [`TelemetrySink::enabled`] and returns immediately when
//!   off. Off-runs are bit-identical to runs of a build without the
//!   subsystem, proven field-for-field by differential tests.
//! * **Integer time only.** All times are integer nanoseconds or tick
//!   indices; the module contains no floating point at all, and simlint's
//!   `probe-determinism` rule enforces that (plus the hash-collection and
//!   wall-clock bans) on this file.
//! * **Deterministic storage.** Series live in a `Vec` kept sorted by
//!   [`SeriesKey`]; iteration order is the key order, never a hash order.
//!
//! ## Sampling rules
//!
//! Time is divided into fixed-width ticks of `tick_ns` nanoseconds
//! (default 10 ms); an event at time `t` lands in tick `t / tick_ns`.
//! Recording is event-driven, not sweep-driven:
//!
//! * a **gauge** keeps the *last* value written in each tick
//!   (sample-and-hold: the series reads as the value the quantity had at
//!   the end of every tick it changed in);
//! * a **counter** accumulates a running total and stores the total as of
//!   the end of each tick it changed in (cumulative, monotone);
//! * a **histogram** has no time axis: every observation lands in the
//!   power-of-two bucket `⌊log2(value)⌋ + 1` (value 0 in bucket 0), so a
//!   64-bucket array summarizes any `u64` stream.
//!
//! Ticks in which nothing changed store nothing: consumers reconstruct
//! the full timeline by holding the previous value, which keeps a
//! minutes-long PPP run from materializing millions of idle points.

use crate::cc::CcVariant;
use crate::impair::DropReason;
use crate::packet::{HostId, SockAddr};
use crate::time::{SimDuration, SimTime};

/// Default tick width: 10 ms of simulated time.
pub const DEFAULT_TICK: SimDuration = SimDuration::from_millis(10);

/// What a series describes: one connection, one link direction, one host,
/// or the whole simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scope {
    /// The simulation as a whole.
    Global,
    /// One host (server-side application metrics, SYN drops).
    Host(HostId),
    /// One direction of one link (`a_to_b` in the sense of
    /// [`crate::link::Link::a`] → [`crate::link::Link::b`]).
    Link {
        /// Kernel link index.
        link: u32,
        /// Direction within the link.
        a_to_b: bool,
    },
    /// One TCP connection endpoint.
    Conn {
        /// The host whose socket this is.
        host: HostId,
        /// Local address of the socket.
        local: SockAddr,
        /// Remote address of the socket.
        remote: SockAddr,
    },
}

impl Scope {
    /// Stable textual form used in JSON/CSV output.
    pub fn label(&self) -> String {
        match self {
            Scope::Global => "global".to_string(),
            Scope::Host(h) => format!("h{}", h.0),
            Scope::Link { link, a_to_b } => {
                format!("link{}:{}", link, if *a_to_b { "a>b" } else { "b>a" })
            }
            Scope::Conn { local, remote, .. } => format!("{local}>{remote}"),
        }
    }
}

/// The quantity a series measures. The variant decides the series kind
/// (gauge, counter or histogram) via [`Metric::kind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Metric {
    /// Congestion window, bytes (per-connection gauge).
    Cwnd,
    /// Slow-start threshold, bytes (per-connection gauge).
    Ssthresh,
    /// Bytes in flight, `snd_nxt - snd_una` (per-connection gauge).
    FlightBytes,
    /// Retransmission timeout, nanoseconds (per-connection gauge).
    RtoNs,
    /// 1 while the congestion controller is in fast recovery, else 0
    /// (per-connection gauge).
    CcRecoveryActive,
    /// Fast-recovery episodes entered, aggregated per congestion-control
    /// variant ([`Scope::Global`] counter).
    CcRecoveries(CcVariant),
    /// Distribution of in-flight bytes at sample points (per-connection
    /// histogram).
    FlightHist,
    /// Bytes queued for serialization (per-link-direction gauge).
    QueueBytes,
    /// Distribution of queue depths seen at packet submission
    /// (per-link-direction histogram).
    QueueBytesHist,
    /// Packets dropped by the loss model (per-link-direction counter).
    DropsLoss,
    /// Packets dropped by a scheduled outage (per-link-direction counter).
    DropsOutage,
    /// Packets tail-dropped at the queue bound (per-link-direction
    /// counter).
    DropsQueue,
    /// SYNs discarded at a full listen backlog (per-host counter).
    SynDrops,
    /// Connections currently in service at the application (per-host
    /// gauge, app-reported via [`crate::sim::Ctx::telemetry_gauge`]).
    ServerConnections,
    /// Connections parked behind the admission cap (per-host gauge,
    /// app-reported).
    ServerQueuedConnections,
    /// Aggregate buffered bytes across app connections (per-host gauge,
    /// app-reported).
    ServerBufferedBytes,
    /// Recycled [`crate::tcp::Effects`] scratch lists held by the kernel
    /// pool ([`Scope::Global`] gauge).
    PoolEffects,
}

/// The three series shapes a [`Metric`] can have.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Last value written per tick (sample-and-hold).
    Gauge,
    /// Cumulative total as of each tick it changed in.
    Counter,
    /// Log2-bucketed distribution with no time axis.
    Histogram,
}

impl SeriesKind {
    /// Stable textual form used in JSON/CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            SeriesKind::Gauge => "gauge",
            SeriesKind::Counter => "counter",
            SeriesKind::Histogram => "hist",
        }
    }
}

impl Metric {
    /// The series shape this metric records as.
    pub fn kind(&self) -> SeriesKind {
        match self {
            Metric::Cwnd
            | Metric::Ssthresh
            | Metric::FlightBytes
            | Metric::RtoNs
            | Metric::CcRecoveryActive
            | Metric::QueueBytes
            | Metric::ServerConnections
            | Metric::ServerQueuedConnections
            | Metric::ServerBufferedBytes
            | Metric::PoolEffects => SeriesKind::Gauge,
            Metric::CcRecoveries(_)
            | Metric::DropsLoss
            | Metric::DropsOutage
            | Metric::DropsQueue
            | Metric::SynDrops => SeriesKind::Counter,
            Metric::FlightHist | Metric::QueueBytesHist => SeriesKind::Histogram,
        }
    }

    /// Stable textual form used in JSON/CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            Metric::Cwnd => "cwnd_bytes",
            Metric::Ssthresh => "ssthresh_bytes",
            Metric::FlightBytes => "flight_bytes",
            Metric::RtoNs => "rto_ns",
            Metric::CcRecoveryActive => "cc_recovery_active",
            Metric::CcRecoveries(CcVariant::Reno) => "cc_recoveries_reno",
            Metric::CcRecoveries(CcVariant::NewReno) => "cc_recoveries_newreno",
            Metric::CcRecoveries(CcVariant::Sack) => "cc_recoveries_sack",
            Metric::CcRecoveries(CcVariant::Cubic) => "cc_recoveries_cubic",
            Metric::FlightHist => "flight_bytes_hist",
            Metric::QueueBytes => "queue_bytes",
            Metric::QueueBytesHist => "queue_bytes_hist",
            Metric::DropsLoss => "drops_loss",
            Metric::DropsOutage => "drops_outage",
            Metric::DropsQueue => "drops_queue",
            Metric::SynDrops => "syn_drops",
            Metric::ServerConnections => "server_connections",
            Metric::ServerQueuedConnections => "server_queued_connections",
            Metric::ServerBufferedBytes => "server_buffered_bytes",
            Metric::PoolEffects => "pool_effects",
        }
    }

    /// The counter metric for a link drop of the given reason.
    pub fn for_drop(reason: DropReason) -> Metric {
        match reason {
            DropReason::Loss => Metric::DropsLoss,
            DropReason::Outage => Metric::DropsOutage,
            DropReason::Queue => Metric::DropsQueue,
        }
    }
}

/// Identifies one series: what is measured, about what.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    /// The subject of the series.
    pub scope: Scope,
    /// The measured quantity.
    pub metric: Metric,
}

/// One stored point: the tick index and the value as of that tick's end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Point {
    /// Tick index (`time_ns / tick_ns`).
    pub tick: u64,
    /// Gauge value, or cumulative counter total.
    pub value: u64,
}

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i ≥ 1`
/// holds values with `⌊log2(v)⌋ = i - 1`.
pub const HIST_BUCKETS: usize = 65;

/// A streaming log2-bucketed histogram over `u64` observations.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: [u64; HIST_BUCKETS],
    total: u64,
    sum: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            counts: [0; HIST_BUCKETS],
            total: 0,
            sum: 0,
        }
    }
}

impl LogHistogram {
    /// Bucket index for a value.
    pub fn bucket_of(value: u64) -> usize {
        match value {
            0 => 0,
            v => v.ilog2() as usize + 1,
        }
    }

    /// Inclusive lower bound of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        match i {
            0 => 0,
            i => 1u64 << (i - 1),
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Non-empty buckets as `(lower_bound, count)`, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_lo(i), c))
    }
}

/// The data behind one series.
#[derive(Debug, Clone)]
pub enum SeriesData {
    /// Sample-and-hold points.
    Gauge(Vec<Point>),
    /// Cumulative totals; `total` is the running sum.
    Counter {
        /// Running total.
        total: u64,
        /// Totals as of each tick the counter changed in.
        points: Vec<Point>,
    },
    /// Distribution without a time axis. Boxed: the fixed bucket array
    /// would otherwise dominate every variant's size.
    Histogram(Box<LogHistogram>),
}

impl SeriesData {
    fn new(kind: SeriesKind) -> SeriesData {
        match kind {
            SeriesKind::Gauge => SeriesData::Gauge(Vec::new()),
            SeriesKind::Counter => SeriesData::Counter {
                total: 0,
                points: Vec::new(),
            },
            SeriesKind::Histogram => SeriesData::Histogram(Box::default()),
        }
    }

    /// Time-series points (empty for histograms).
    pub fn points(&self) -> &[Point] {
        match self {
            SeriesData::Gauge(p) => p,
            SeriesData::Counter { points, .. } => points,
            SeriesData::Histogram(_) => &[],
        }
    }
}

/// One recorded series: key plus data.
#[derive(Debug, Clone)]
pub struct Series {
    /// What this series measures, about what.
    pub key: SeriesKey,
    /// The recorded points or histogram.
    pub data: SeriesData,
}

/// Compact per-run roll-up carried on `CellResult` so fleet tables can
/// report telemetry volume without holding the series themselves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetrySummary {
    /// Distinct series recorded.
    pub series: u32,
    /// Time-series points stored across all gauges and counters.
    pub points: u64,
    /// Observations folded into histograms.
    pub hist_samples: u64,
}

/// The telemetry sink: owned by the kernel, off (and allocation-free)
/// unless explicitly enabled.
#[derive(Debug)]
pub struct TelemetrySink {
    enabled: bool,
    tick_ns: u64,
    /// Sorted by key; binary-searched on every record.
    series: Vec<Series>,
}

impl Default for TelemetrySink {
    fn default() -> Self {
        TelemetrySink {
            enabled: false,
            tick_ns: DEFAULT_TICK.as_nanos(),
            series: Vec::new(),
        }
    }
}

impl TelemetrySink {
    /// Whether the sink is collecting. When false every record method is
    /// a single-branch no-op.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turn collection on. Do this before traffic flows so series start
    /// at the run's beginning.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Set the tick width. Must be called before any point is recorded;
    /// panics on a zero duration.
    pub fn set_tick(&mut self, tick: SimDuration) {
        assert!(tick.as_nanos() > 0, "telemetry tick must be positive");
        assert!(
            self.series.is_empty(),
            "set the telemetry tick before recording"
        );
        self.tick_ns = tick.as_nanos();
    }

    /// The tick width in nanoseconds.
    pub fn tick_ns(&self) -> u64 {
        self.tick_ns
    }

    fn tick_of(&self, t: SimTime) -> u64 {
        t.as_nanos() / self.tick_ns
    }

    /// Locate (or create) the series for `key`.
    fn slot(&mut self, key: SeriesKey) -> &mut SeriesData {
        let idx = match self.series.binary_search_by(|s| s.key.cmp(&key)) {
            Ok(i) => i,
            Err(i) => {
                self.series.insert(
                    i,
                    Series {
                        key,
                        data: SeriesData::new(key.metric.kind()),
                    },
                );
                i
            }
        };
        &mut self.series[idx].data
    }

    /// Record a gauge value (last write in a tick wins).
    pub fn gauge(&mut self, now: SimTime, scope: Scope, metric: Metric, value: u64) {
        if !self.enabled {
            return;
        }
        let tick = self.tick_of(now);
        let SeriesData::Gauge(points) = self.slot(SeriesKey { scope, metric }) else {
            panic!("{} is not a gauge", metric.label());
        };
        match points.last_mut() {
            Some(p) if p.tick == tick => p.value = value,
            Some(p) if p.value == value => {}
            _ => points.push(Point { tick, value }),
        }
    }

    /// Record a gauge value and report whether it differs from the
    /// series' previous value (true for the first write). Lets callers
    /// turn level changes into edge-triggered counters.
    pub fn gauge_changed(
        &mut self,
        now: SimTime,
        scope: Scope,
        metric: Metric,
        value: u64,
    ) -> bool {
        if !self.enabled {
            return false;
        }
        let tick = self.tick_of(now);
        let SeriesData::Gauge(points) = self.slot(SeriesKey { scope, metric }) else {
            panic!("{} is not a gauge", metric.label());
        };
        match points.last_mut() {
            Some(p) if p.tick == tick => {
                let changed = p.value != value;
                p.value = value;
                changed
            }
            Some(p) if p.value == value => false,
            _ => {
                points.push(Point { tick, value });
                true
            }
        }
    }

    /// Add to a counter; the cumulative total is stored per tick.
    pub fn counter_add(&mut self, now: SimTime, scope: Scope, metric: Metric, delta: u64) {
        if !self.enabled {
            return;
        }
        let tick = self.tick_of(now);
        let SeriesData::Counter { total, points } = self.slot(SeriesKey { scope, metric }) else {
            panic!("{} is not a counter", metric.label());
        };
        *total += delta;
        let total = *total;
        match points.last_mut() {
            Some(p) if p.tick == tick => p.value = total,
            _ => points.push(Point { tick, value: total }),
        }
    }

    /// Fold one observation into a histogram.
    pub fn observe(&mut self, scope: Scope, metric: Metric, value: u64) {
        if !self.enabled {
            return;
        }
        let SeriesData::Histogram(h) = self.slot(SeriesKey { scope, metric }) else {
            panic!("{} is not a histogram", metric.label());
        };
        h.observe(value);
    }

    /// All recorded series in key order.
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// The series for `key`, if any point or observation was recorded.
    pub fn get(&self, scope: Scope, metric: Metric) -> Option<&SeriesData> {
        let key = SeriesKey { scope, metric };
        self.series
            .binary_search_by(|s| s.key.cmp(&key))
            .ok()
            .map(|i| &self.series[i].data)
    }

    /// Compact roll-up for result tables.
    pub fn summary(&self) -> TelemetrySummary {
        let mut s = TelemetrySummary {
            series: self.series.len() as u32,
            ..TelemetrySummary::default()
        };
        for series in &self.series {
            match &series.data {
                SeriesData::Histogram(h) => s.hist_samples += h.total(),
                other => s.points += other.points().len() as u64,
            }
        }
        s
    }

    /// Render every series as a stable, hand-rolled JSON document. All
    /// values are integers (nanoseconds, tick indices, bytes, counts);
    /// field order and series order are fixed, so identical runs produce
    /// byte-identical documents.
    pub fn render_json(&self, label: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"cell\": \"{}\",\n",
            crate::json::escape(label)
        ));
        out.push_str(&format!("  \"tick_ns\": {},\n", self.tick_ns));
        out.push_str("  \"series\": [\n");
        for (i, s) in self.series.iter().enumerate() {
            let comma = if i + 1 < self.series.len() { "," } else { "" };
            let kind = s.key.metric.kind();
            out.push_str(&format!(
                "    {{\"scope\": \"{}\", \"metric\": \"{}\", \"kind\": \"{}\", ",
                crate::json::escape(&s.key.scope.label()),
                s.key.metric.label(),
                kind.label(),
            ));
            match &s.data {
                SeriesData::Histogram(h) => {
                    out.push_str(&format!("\"total\": {}, \"sum\": {}, ", h.total(), h.sum()));
                    out.push_str("\"buckets\": [");
                    for (j, (lo, count)) in h.buckets().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&format!("[{lo}, {count}]"));
                    }
                    out.push(']');
                }
                other => {
                    out.push_str("\"points\": [");
                    for (j, p) in other.points().iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&format!("[{}, {}]", p.tick, p.value));
                    }
                    out.push(']');
                }
            }
            out.push_str(&format!("}}{comma}\n"));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// Render every series as CSV: one row per point (`tick` and `value`
    /// columns) or per non-empty histogram bucket (`tick` column holds
    /// the bucket's lower bound).
    pub fn render_csv(&self) -> String {
        let mut out = String::from("scope,metric,kind,tick,value\n");
        for s in &self.series {
            let scope = s.key.scope.label();
            let metric = s.key.metric.label();
            let kind = s.key.metric.kind().label();
            match &s.data {
                SeriesData::Histogram(h) => {
                    for (lo, count) in h.buckets() {
                        out.push_str(&format!("{scope},{metric},{kind},{lo},{count}\n"));
                    }
                }
                other => {
                    for p in other.points() {
                        out.push_str(&format!("{scope},{metric},{kind},{},{}\n", p.tick, p.value));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at_ms(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    fn conn_scope() -> Scope {
        Scope::Conn {
            host: HostId(0),
            local: SockAddr::new(HostId(0), 40_000),
            remote: SockAddr::new(HostId(1), 80),
        }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut sink = TelemetrySink::default();
        sink.gauge(at_ms(1), Scope::Global, Metric::PoolEffects, 3);
        sink.counter_add(at_ms(1), Scope::Host(HostId(0)), Metric::SynDrops, 1);
        sink.observe(conn_scope(), Metric::FlightHist, 99);
        assert!(!sink.gauge_changed(at_ms(1), conn_scope(), Metric::CcRecoveryActive, 1));
        assert!(sink.series().is_empty());
        assert_eq!(sink.summary(), TelemetrySummary::default());
    }

    #[test]
    fn gauge_is_sample_and_hold_per_tick() {
        let mut sink = TelemetrySink::default();
        sink.enable();
        let s = conn_scope();
        // Three writes inside tick 0: last wins.
        sink.gauge(at_ms(1), s, Metric::Cwnd, 1460);
        sink.gauge(at_ms(2), s, Metric::Cwnd, 2920);
        sink.gauge(at_ms(9), s, Metric::Cwnd, 4380);
        // Tick 3.
        sink.gauge(at_ms(35), s, Metric::Cwnd, 5840);
        // Unchanged value in a later tick stores nothing.
        sink.gauge(at_ms(45), s, Metric::Cwnd, 5840);
        let SeriesData::Gauge(points) = sink.get(s, Metric::Cwnd).unwrap() else {
            panic!("gauge expected");
        };
        assert_eq!(
            points,
            &[
                Point {
                    tick: 0,
                    value: 4380
                },
                Point {
                    tick: 3,
                    value: 5840
                }
            ]
        );
    }

    #[test]
    fn counter_stores_cumulative_totals() {
        let mut sink = TelemetrySink::default();
        sink.enable();
        let s = Scope::Link {
            link: 0,
            a_to_b: true,
        };
        sink.counter_add(at_ms(5), s, Metric::DropsLoss, 1);
        sink.counter_add(at_ms(7), s, Metric::DropsLoss, 1);
        sink.counter_add(at_ms(120), s, Metric::DropsLoss, 3);
        let SeriesData::Counter { total, points } = sink.get(s, Metric::DropsLoss).unwrap() else {
            panic!("counter expected");
        };
        assert_eq!(*total, 5);
        assert_eq!(
            points,
            &[Point { tick: 0, value: 2 }, Point { tick: 12, value: 5 }]
        );
    }

    #[test]
    fn gauge_changed_edges() {
        let mut sink = TelemetrySink::default();
        sink.enable();
        let s = conn_scope();
        assert!(sink.gauge_changed(at_ms(0), s, Metric::CcRecoveryActive, 0));
        assert!(!sink.gauge_changed(at_ms(20), s, Metric::CcRecoveryActive, 0));
        assert!(sink.gauge_changed(at_ms(40), s, Metric::CcRecoveryActive, 1));
        assert!(sink.gauge_changed(at_ms(41), s, Metric::CcRecoveryActive, 0));
        assert!(sink.gauge_changed(at_ms(42), s, Metric::CcRecoveryActive, 1));
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(1024), 11);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 64);
        assert_eq!(LogHistogram::bucket_lo(0), 0);
        assert_eq!(LogHistogram::bucket_lo(11), 1024);

        let mut h = LogHistogram::default();
        for v in [0, 1, 3, 1024, 1500] {
            h.observe(v);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.sum(), 2528);
        let buckets: Vec<(u64, u64)> = h.buckets().collect();
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 1), (1024, 2)]);
    }

    #[test]
    fn series_are_sorted_by_key_not_insertion() {
        let mut sink = TelemetrySink::default();
        sink.enable();
        sink.gauge(
            at_ms(0),
            Scope::Host(HostId(3)),
            Metric::ServerConnections,
            1,
        );
        sink.gauge(at_ms(0), Scope::Global, Metric::PoolEffects, 2);
        sink.gauge(
            at_ms(0),
            Scope::Host(HostId(1)),
            Metric::ServerConnections,
            1,
        );
        let keys: Vec<Scope> = sink.series().iter().map(|s| s.key.scope).collect();
        assert_eq!(
            keys,
            vec![
                Scope::Global,
                Scope::Host(HostId(1)),
                Scope::Host(HostId(3))
            ]
        );
    }

    #[test]
    fn render_json_and_csv_are_stable_and_integer_only() {
        let build = || {
            let mut sink = TelemetrySink::default();
            sink.enable();
            let s = conn_scope();
            sink.gauge(at_ms(1), s, Metric::Cwnd, 1460);
            sink.gauge(at_ms(35), s, Metric::Cwnd, 2920);
            sink.counter_add(at_ms(5), Scope::Host(HostId(1)), Metric::SynDrops, 2);
            sink.observe(s, Metric::FlightHist, 1460);
            sink
        };
        let a = build();
        let b = build();
        assert_eq!(a.render_json("cell"), b.render_json("cell"));
        assert_eq!(a.render_csv(), b.render_csv());
        let json = a.render_json("cell");
        assert!(json.contains("\"tick_ns\": 10000000"));
        assert!(json.contains("\"metric\": \"cwnd_bytes\""));
        assert!(json.contains("[0, 1460], [3, 2920]"));
        assert!(json.contains("\"metric\": \"syn_drops\""));
        assert!(!json.contains('.'), "integer-only document:\n{json}");
        let csv = a.render_csv();
        assert!(csv.starts_with("scope,metric,kind,tick,value\n"));
        assert!(csv.contains("h0:40000>h1:80,cwnd_bytes,gauge,0,1460\n"));
        assert!(csv.contains("h1,syn_drops,counter,0,2\n"));
        assert!(csv.contains("h0:40000>h1:80,flight_bytes_hist,hist,1024,1\n"));
    }

    #[test]
    fn summary_counts_series_points_and_samples() {
        let mut sink = TelemetrySink::default();
        sink.enable();
        let s = conn_scope();
        sink.gauge(at_ms(1), s, Metric::Cwnd, 1460);
        sink.gauge(at_ms(35), s, Metric::Cwnd, 2920);
        sink.counter_add(at_ms(5), Scope::Host(HostId(1)), Metric::SynDrops, 2);
        sink.observe(s, Metric::FlightHist, 10);
        sink.observe(s, Metric::FlightHist, 20);
        assert_eq!(
            sink.summary(),
            TelemetrySummary {
                series: 3,
                points: 3,
                hist_samples: 2
            }
        );
    }

    #[test]
    fn custom_tick_width() {
        let mut sink = TelemetrySink::default();
        sink.set_tick(SimDuration::from_millis(100));
        sink.enable();
        let s = conn_scope();
        sink.gauge(at_ms(250), s, Metric::Cwnd, 1460);
        let SeriesData::Gauge(points) = sink.get(s, Metric::Cwnd).unwrap() else {
            panic!("gauge expected");
        };
        assert_eq!(points[0].tick, 2);
    }
}
