//! Workspace-local stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the small part of the `bytes` 1.x API the workspace uses:
//! [`Bytes`] (a cheaply cloneable, sliceable, immutable byte buffer) and
//! [`BytesMut`] (a growable buffer that can be drained from the front and
//! frozen). Semantics match the real crate for this surface; `clone` and
//! `slice` are O(1) and share the underlying allocation.
//!
//! # Pooled buffers
//!
//! On top of the `bytes` API this stand-in adds an allocation pool for
//! the simulator's per-segment hot path: [`Bytes::pooled_copy_from_slice`]
//! and [`BytesMut::split_to_pooled`] back the returned `Bytes` with a
//! `Vec<u8>` taken from a bounded thread-local free list, and the vector
//! returns to the list when the last reference drops. Pooled and shared
//! buffers are observationally identical (equality, hashing, ordering and
//! iteration all go through the byte contents), so pooling can never
//! change simulation results — it only recycles storage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::{Arc, OnceLock};

/// Buffers kept per thread; beyond this, returned vectors are freed.
const POOL_MAX_BUFS: usize = 256;
/// Buffers with more capacity than this are never pooled (one giant
/// reassembled body must not pin memory for the rest of the run).
const POOL_MAX_CAP: usize = 1 << 16;

thread_local! {
    static POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// Take a cleared vector from this thread's pool (empty if none).
fn pool_take() -> Vec<u8> {
    POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default()
}

/// Return a vector to this thread's pool, subject to the size bounds.
fn pool_put(mut v: Vec<u8>) {
    if v.capacity() == 0 || v.capacity() > POOL_MAX_CAP {
        return;
    }
    v.clear();
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.len() < POOL_MAX_BUFS {
            p.push(v);
        }
    });
}

/// A pooled allocation: hands its vector back to the free list of
/// whichever thread drops the last reference.
struct PoolChunk {
    buf: Vec<u8>,
}

impl Drop for PoolChunk {
    fn drop(&mut self) {
        pool_put(std::mem::take(&mut self.buf));
    }
}

/// Backing storage of a [`Bytes`].
#[derive(Clone)]
enum Repr {
    /// A plain shared slice.
    Shared(Arc<[u8]>),
    /// A pool-recycled vector (see the module docs).
    Pooled(Arc<PoolChunk>),
}

impl Repr {
    #[inline]
    fn as_slice(&self) -> &[u8] {
        match self {
            Repr::Shared(a) => a,
            Repr::Pooled(c) => &c.buf,
        }
    }
}

/// The process-wide empty buffer: `Bytes::new` bumps a refcount instead
/// of allocating a fresh zero-length `Arc` header per call.
fn empty_shared() -> Arc<[u8]> {
    static EMPTY: OnceLock<Arc<[u8]>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::from(&[][..])).clone()
}

/// A cheaply cloneable, immutable slice of bytes.
///
/// Clones and sub-slices share one reference-counted allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Repr,
    start: usize,
    end: usize,
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes {
            data: Repr::Shared(empty_shared()),
            start: 0,
            end: 0,
        }
    }
}

impl Bytes {
    /// Create a new, empty instance.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Copy `data` into a pool-recycled buffer: the backing storage
    /// comes from (and on final drop returns to) a bounded thread-local
    /// free list. Indistinguishable from [`Bytes::copy_from_slice`]
    /// except for allocator traffic; meant for per-segment payloads.
    pub fn pooled_copy_from_slice(data: &[u8]) -> Bytes {
        let mut buf = pool_take();
        buf.extend_from_slice(data);
        Bytes::from_pooled_vec(buf)
    }

    /// Wrap an existing vector as a pooled buffer without copying; the
    /// vector joins the free list when the last reference drops.
    pub fn from_pooled_vec(buf: Vec<u8>) -> Bytes {
        let end = buf.len();
        Bytes {
            data: Repr::Pooled(Arc::new(PoolChunk { buf })),
            start: 0,
            end,
        }
    }

    /// Wrap a static slice (copied here; the real crate borrows it, but
    /// the observable behaviour is identical).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes are contained.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-slice sharing the same allocation. Panics when the range is
    /// out of bounds, like slice indexing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of range"
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `at` bytes, leaving the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        self.start += at;
        head
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data.as_slice()[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Repr::Shared(v.into()),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&&self[..], f)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    // The by-value iterator must own its data; `Bytes` may be shared.
    #[allow(clippy::unnecessary_to_owned)]
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self[..].iter()
    }
}

/// A growable byte buffer supporting front-drain and freezing.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Create a new, empty instance.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Create with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True when no bytes are contained.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.vec.extend_from_slice(data);
    }

    /// Remove and return the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.vec.split_off(at);
        let head = std::mem::replace(&mut self.vec, rest);
        BytesMut { vec: head }
    }

    /// Discard the first `at` bytes in place — the allocation-free
    /// alternative to `split_to(at)` when the head is not needed.
    pub fn advance(&mut self, at: usize) {
        self.vec.drain(..at);
    }

    /// Remove and return the first `at` bytes as a pool-backed
    /// [`Bytes`]. Equivalent to `split_to(at).freeze()` but allocation
    /// free in steady state: taking everything moves the whole vector
    /// into the pooled buffer (the replacement comes from the free
    /// list); taking a prefix copies it into a pooled buffer and drains
    /// in place.
    pub fn split_to_pooled(&mut self, at: usize) -> Bytes {
        if at == self.vec.len() {
            let buf = std::mem::replace(&mut self.vec, pool_take());
            Bytes::from_pooled_vec(buf)
        } else {
            let head = Bytes::pooled_copy_from_slice(&self.vec[..at]);
            self.vec.drain(..at);
            head
        }
    }

    /// Drop all accumulated contents.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.vec, f)
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(vec: Vec<u8>) -> BytesMut {
        BytesMut { vec }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slice_shares_and_bounds() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let mid = b.slice(1..4);
        assert_eq!(&mid[..], &[2, 3, 4]);
        let tail = mid.slice(1..);
        assert_eq!(&tail[..], &[3, 4]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bytes_slice_checks_bounds() {
        let b = Bytes::from(vec![1u8, 2]);
        let _ = b.slice(..3);
    }

    #[test]
    fn bytes_split_to_advances() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4]);
    }

    #[test]
    fn bytesmut_roundtrip() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"hello world");
        let head = m.split_to(6);
        assert_eq!(&head[..], b"hello ");
        assert_eq!(&m[..], b"world");
        assert_eq!(&head.freeze()[..], b"hello ");
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn pooled_bytes_behave_like_shared() {
        let p = Bytes::pooled_copy_from_slice(b"hello world");
        let s = Bytes::copy_from_slice(b"hello world");
        assert_eq!(p, s);
        let mid = p.slice(6..);
        assert_eq!(&mid[..], b"world");
        let clone = p.clone();
        drop(p);
        assert_eq!(&clone[..], b"hello world");
    }

    #[test]
    fn pool_recycles_buffers() {
        // Drain whatever the pool holds, then verify round-tripping.
        let b = Bytes::pooled_copy_from_slice(&[1u8; 1000]);
        drop(b);
        let b2 = Bytes::pooled_copy_from_slice(&[2u8; 500]);
        assert_eq!(&b2[..], &[2u8; 500][..]);
    }

    #[test]
    fn bytesmut_advance_and_split_to_pooled() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"abcdef");
        m.advance(2);
        assert_eq!(&m[..], b"cdef");
        let head = m.split_to_pooled(2);
        assert_eq!(&head[..], b"cd");
        assert_eq!(&m[..], b"ef");
        let rest = m.split_to_pooled(2);
        assert_eq!(&rest[..], b"ef");
        assert!(m.is_empty());
    }

    #[test]
    fn equality_and_hash() {
        use std::collections::HashSet;
        let a = Bytes::from(vec![7u8; 3]);
        let b = Bytes::from(vec![7u8; 3]).slice(..);
        assert_eq!(a, b);
        assert_eq!(a, vec![7u8; 3]);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }
}
