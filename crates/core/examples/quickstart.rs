//! Quickstart: simulate one pipelined HTTP/1.1 fetch of the Microscape
//! page over a 28.8k modem and print what the paper's tcpdump would have
//! shown, next to the same fetch done HTTP/1.0-style.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use httpipe_core::prelude::*;

fn main() {
    println!("Microscape test site: 42KB HTML + 42 GIF images, 43 requests.\n");

    for (name, setup) in [
        ("HTTP/1.0, 4 parallel connections", ProtocolSetup::Http10),
        ("HTTP/1.1, one persistent connection", ProtocolSetup::Http11),
        (
            "HTTP/1.1, buffered pipelining",
            ProtocolSetup::Http11Pipelined,
        ),
        (
            "HTTP/1.1, pipelining + deflate",
            ProtocolSetup::Http11PipelinedDeflate,
        ),
    ] {
        let first = run_matrix_cell(NetEnv::Ppp, ServerKind::Apache, setup, Scenario::FirstTime);
        let reval = run_matrix_cell(NetEnv::Ppp, ServerKind::Apache, setup, Scenario::Revalidate);
        println!("{name}:");
        println!(
            "  first visit:  {:>4} packets  {:>7} bytes  {:>6.1}s  ({} connections)",
            first.packets(),
            first.bytes,
            first.secs,
            first.sockets_used
        );
        println!(
            "  revalidation: {:>4} packets  {:>7} bytes  {:>6.1}s  ({} x 304 Not Modified)\n",
            reval.packets(),
            reval.bytes,
            reval.secs,
            reval.validated
        );
    }

    println!(
        "The paper's headline: pipelined HTTP/1.1 cuts packets by 2-10x versus\n\
         HTTP/1.0 with parallel connections, with the biggest wins on cache\n\
         revalidation — and an HTTP/1.1 implementation *without* pipelining\n\
         is slower than HTTP/1.0, which is why pipelining matters."
    );
}
