//! The content half of the paper: what CSS1, PNG and MNG buy on the
//! Microscape page, plus the transport-compression study.
//!
//! ```text
//! cargo run --release --example content_savings
//! ```

use httpipe_core::experiments::{compression, content};

fn main() {
    // Figure 1: the "solutions" banner.
    let f = content::figure1();
    println!("=== Figure 1: replacing a text-banner GIF with HTML+CSS ===");
    println!("GIF:         {} bytes", f.gif_bytes);
    println!("CSS rule:    {}", f.css_rule);
    println!("Markup:      {}", f.markup);
    println!(
        "HTML+CSS:    {} bytes ({:.1}x smaller)\n",
        f.replacement_bytes,
        f.gif_bytes as f64 / f.replacement_bytes as f64
    );

    println!("{}", content::css_analysis_table().render());
    println!("{}", content::conversion_table().render());
    println!("{}", compression::deflate_table().render());
    println!("{}", content::css_browse_table().render());
    println!("{}", compression::modem_table().render());
}
