//! Regenerate the protocol matrix (Tables 3–9) plus the browser tables
//! (10–11) in the paper's layout. The `repro` binary in `httpipe-bench`
//! does the same with per-table selection.
//!
//! ```text
//! cargo run --release --example microscape_tables
//! ```

use httpipe_core::env::NetEnv;
use httpipe_core::experiments::{browsers, protocol_matrix};
use httpserver::ServerKind;

fn main() {
    println!("{}", protocol_matrix::table1().render());
    println!("{}", protocol_matrix::table3().render());
    for env in [NetEnv::Lan, NetEnv::Wan, NetEnv::Ppp] {
        for kind in [ServerKind::Jigsaw, ServerKind::Apache] {
            println!("{}", protocol_matrix::matrix_table(env, kind).render());
        }
    }
    for kind in [ServerKind::Jigsaw, ServerKind::Apache] {
        println!("{}", browsers::browser_table(kind).render());
    }
}
