//! "Poor man's multiplexing": the paper's §"Range Requests and
//! Validation" idiom, demonstrated end-to-end on a *revised* site where
//! every cache validator misses.
//!
//! ```text
//! cargo run --release --example range_multiplexing
//! ```

use httpipe_core::env::NetEnv;
use httpipe_core::experiments::ranges::{run_revisit_cell, RevisitIdiom};

fn main() {
    println!(
        "Revisiting the Microscape page after a site-wide revision (all 43\n\
         validators miss), pipelined HTTP/1.1 over a 28.8k modem:\n"
    );
    for idiom in [RevisitIdiom::FullOnChange, RevisitIdiom::RangeMetadata] {
        let c = run_revisit_cell(NetEnv::Ppp, idiom);
        println!(
            "{:<40} {:>4} packets  {:>7} bytes  {:>6.1}s  ({} body bytes)",
            idiom.label(),
            c.packets(),
            c.bytes,
            c.secs,
            c.body_bytes
        );
    }
    println!(
        "\nWith a leading 256-byte range on each conditional GET, a changed\n\
         object answers 206 Partial Content with just its metadata-bearing\n\
         first bytes. The browser learns every object's size and type in a\n\
         couple of seconds instead of re-downloading the site — then fetches\n\
         full bodies (or progressive prefixes) in whatever order it likes:\n\
         multiplexing over one connection, without any new protocol."
    );
}
