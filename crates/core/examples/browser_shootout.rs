//! Tables 10–11: the shipping browsers of mid-1997 (Navigator 4 and
//! Internet Explorer 4 betas) against both servers over a 28.8k modem,
//! compared with the tuned pipelined robot.
//!
//! ```text
//! cargo run --release --example browser_shootout
//! ```

use httpipe_core::env::NetEnv;
use httpipe_core::experiments::browsers;
use httpipe_core::harness::{run_matrix_cell, ProtocolSetup, Scenario};
use httpserver::ServerKind;

fn main() {
    for kind in [ServerKind::Jigsaw, ServerKind::Apache] {
        println!("{}", browsers::browser_table(kind).render());
    }

    // The robot rows of Tables 8/9, for comparison.
    println!("=== The tuned pipelined robot, for comparison (PPP, Apache) ===");
    let first = run_matrix_cell(
        NetEnv::Ppp,
        ServerKind::Apache,
        ProtocolSetup::Http11Pipelined,
        Scenario::FirstTime,
    );
    let reval = run_matrix_cell(
        NetEnv::Ppp,
        ServerKind::Apache,
        ProtocolSetup::Http11Pipelined,
        Scenario::Revalidate,
    );
    println!(
        "first visit:  {:>4} packets  {:>7} bytes  {:>6.1}s",
        first.packets(),
        first.bytes,
        first.secs
    );
    println!(
        "revalidation: {:>4} packets  {:>7} bytes  {:>6.1}s",
        reval.packets(),
        reval.bytes,
        reval.secs
    );
    println!(
        "\nBoth browsers spend several times the packets of a pipelined\n\
         HTTP/1.1 client on revalidation — the paper's motivation for\n\
         getting HTTP/1.1 deployed."
    );
}
