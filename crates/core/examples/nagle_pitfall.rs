//! The implementation pitfall the paper devotes a section to: the Nagle
//! algorithm versus application write buffering, plus the connection-
//! management (naive close → RST) hazard.
//!
//! ```text
//! cargo run --release --example nagle_pitfall
//! ```

use httpipe_core::env::NetEnv;
use httpipe_core::experiments::{closemgmt, nagle};

fn main() {
    println!("{}", nagle::nagle_table(NetEnv::Lan).render());
    println!(
        "Buffered writes produce full segments, so Nagle rarely delays them;\n\
         per-request writes + Nagle stall behind delayed ACKs (up to 200ms\n\
         each). The paper's advice: buffered pipelined implementations should\n\
         set TCP_NODELAY.\n"
    );

    println!("{}", closemgmt::close_table(NetEnv::Ppp, 5).render());
    println!(
        "A server that closes both halves of the connection at once RSTs the\n\
         pipelined client; the RST destroys responses already received by the\n\
         client's TCP, forcing re-fetches. Correct servers half-close and\n\
         drain (independent close)."
    );
}
