//! Gates for the congestion-control lab: the reduced CC grid must be
//! conformant under every variant's own invariants, and the measured
//! recovery ordering at 2% WAN loss — the lab's headline — must hold.
//!
//! The ordering pinned here is a real, deterministic measurement (every
//! variant faces the identical impairment draw sequence): on the single
//! pipelined connection, RFC 6582-style recovery (NewReno/SACK) and
//! CUBIC all beat Reno's retransmit-then-stall by a wide margin, while
//! on HTTP/1.0's four short parallel connections the fast-retransmit
//! variants are nearly indistinguishable — recovery sophistication pays
//! precisely where the paper's preferred transport concentrates traffic.

use httpipe_core::experiments::cc;
use httpipe_core::experiments::robustness;
use httpipe_core::harness::{run_spec_checked, ProtocolSetup};
use netsim::CcVariant;

fn inflation(cells: &[robustness::RobustnessCell], setup: ProtocolSetup, cc: CcVariant) -> f64 {
    cc::variant_inflation(cells, setup, 2.0, cc)
        .unwrap_or_else(|| panic!("missing 2% cell for {setup:?} {cc:?}"))
}

#[test]
fn recovery_ordering_at_two_percent_wan_loss() {
    let cells = robustness::run_points(&cc::reduced_grid());

    let pipelined = |cc| inflation(&cells, ProtocolSetup::Http11Pipelined, cc);
    let reno = pipelined(CcVariant::Reno);
    let newreno = pipelined(CcVariant::NewReno);
    let sack = pipelined(CcVariant::Sack);
    let cubic = pipelined(CcVariant::Cubic);

    // The measured ordering change: on the pipelined single connection
    // every modern recovery algorithm beats Reno decisively.
    assert!(
        reno - newreno > 50.0,
        "NewReno no longer beats Reno on pipelined 2% loss ({newreno:.1} vs {reno:.1})"
    );
    assert!(
        reno - sack > 50.0,
        "SACK no longer beats Reno on pipelined 2% loss ({sack:.1} vs {reno:.1})"
    );
    assert!(
        reno - cubic > 20.0,
        "CUBIC no longer beats Reno on pipelined 2% loss ({cubic:.1} vs {reno:.1})"
    );
    // The scoreboard can only remove retransmissions, never add them.
    assert!(
        sack <= newreno + 1.0,
        "SACK worse than NewReno on pipelined 2% loss ({sack:.1} vs {newreno:.1})"
    );

    // On HTTP/1.0's four short parallel connections the fast-retransmit
    // variants are nearly indistinguishable: transfers are too short for
    // partial-ACK recovery to matter.
    let http10 = |cc| inflation(&cells, ProtocolSetup::Http10, cc);
    assert!(
        (http10(CcVariant::Reno) - http10(CcVariant::NewReno)).abs() < 5.0,
        "recovery algorithm unexpectedly matters for parallel short connections"
    );
}

#[test]
fn cc_grid_lossy_cells_are_conformant_per_variant() {
    for point in cc::reduced_grid() {
        if point.loss_pct == 0.0 || point.setup != ProtocolSetup::Http11Pipelined {
            continue;
        }
        let (out, report) = run_spec_checked(point.spec());
        assert!(
            report.is_clean(),
            "violations under {} at {}% loss:\n{}",
            point.cc.label(),
            point.loss_pct,
            report.summary()
        );
        assert!(
            out.cell.retransmits > 0,
            "{}: lossy pipelined cell had no retransmissions",
            point.cc.label()
        );
    }
}
