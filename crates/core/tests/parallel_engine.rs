//! Determinism and equivalence guarantees of the parallel experiment
//! engine:
//!
//! * the same `CellSpec` always produces bit-identical `CellResult`s;
//! * `run_cells` (threaded) agrees with a serial `run_spec` loop
//!   cell-for-cell across the full Tables 4–9 matrix;
//! * stats-only tracing reports the same `TraceStats` as full tracing
//!   for every cell of the matrix.

use httpipe_core::env::NetEnv;
use httpipe_core::experiments::protocol_matrix::matrix_setups;
use httpipe_core::harness::{
    matrix_spec, run_cells, run_cells_threaded, run_spec, CellSpec, Scenario,
};
use httpserver::ServerKind;
use netsim::TraceMode;

/// Every cell of Tables 4–9 (44 specs), in table order.
fn full_matrix(mode: TraceMode) -> Vec<CellSpec> {
    let mut specs = Vec::new();
    for env in [NetEnv::Lan, NetEnv::Wan, NetEnv::Ppp] {
        for server in [ServerKind::Jigsaw, ServerKind::Apache] {
            for &setup in matrix_setups(env) {
                for scenario in [Scenario::FirstTime, Scenario::Revalidate] {
                    let mut spec = matrix_spec(env, server, setup, scenario);
                    spec.trace_mode = mode;
                    specs.push(spec);
                }
            }
        }
    }
    specs
}

#[test]
fn same_spec_is_bit_identical_across_runs() {
    for (env, scenario) in [
        (NetEnv::Lan, Scenario::FirstTime),
        (NetEnv::Wan, Scenario::Revalidate),
        (NetEnv::Ppp, Scenario::FirstTime),
    ] {
        let spec = || {
            matrix_spec(
                env,
                ServerKind::Apache,
                httpipe_core::harness::ProtocolSetup::Http11Pipelined,
                scenario,
            )
        };
        let a = run_spec(spec()).cell;
        let b = run_spec(spec()).cell;
        assert_eq!(a, b, "{env:?} {scenario:?} not deterministic");
    }
}

#[test]
fn parallel_matrix_equals_serial_loop() {
    let serial: Vec<_> = full_matrix(TraceMode::StatsOnly)
        .into_iter()
        .map(|spec| run_spec(spec).cell)
        .collect();

    // Default thread policy (may be serial on a 1-core host) ...
    let parallel = run_cells(full_matrix(TraceMode::StatsOnly));
    assert_eq!(serial, parallel);

    // ... and a forced 4-worker pool, so the threaded executor and its
    // input-order result reassembly are exercised regardless of host.
    let threaded = run_cells_threaded(full_matrix(TraceMode::StatsOnly), Some(4));
    assert_eq!(serial, threaded);
}

#[test]
fn stats_only_matches_full_trace_across_matrix() {
    for (lean_spec, full_spec) in full_matrix(TraceMode::StatsOnly)
        .into_iter()
        .zip(full_matrix(TraceMode::Full))
    {
        let lean = run_spec(lean_spec);
        let full = run_spec(full_spec);
        assert_eq!(lean.cell, full.cell);
        assert_eq!(
            lean.sim.trace().stats(lean.client_host, lean.server_host),
            full.sim.trace().stats(full.client_host, full.server_host),
        );
        assert!(
            lean.sim.trace().records().is_empty(),
            "stats-only must retain no per-packet records"
        );
        assert!(!full.sim.trace().records().is_empty());
    }
}
