//! Telemetry zero-overhead invariance: with the subsystem compiled in
//! but disabled, every measurement is bit-identical to a build that
//! never had it — proven differentially by field-for-field `CellResult`
//! equality and by rendered-report equality between telemetry-on and
//! telemetry-off runs of the same grids.

use httpipe_core::env::NetEnv;
use httpipe_core::experiments::{mux, robustness, scale, telemetry};
use httpipe_core::harness::{matrix_spec, run_fleet, run_spec, ProtocolSetup, Scenario};
use httpserver::ServerKind;
use netsim::CcVariant;

/// Enabling telemetry changes no measured metric: the `CellResult` of a
/// telemetry-on run equals the telemetry-off run field for field, on
/// clean and lossy cells alike.
#[test]
fn telemetry_is_invisible_to_the_measurements() {
    // Clean matrix cells.
    for (setup, scenario) in [
        (ProtocolSetup::Http11Pipelined, Scenario::FirstTime),
        (ProtocolSetup::Http10, Scenario::Revalidate),
    ] {
        let off = run_spec(matrix_spec(
            NetEnv::Wan,
            ServerKind::Apache,
            setup,
            scenario,
        ))
        .cell;
        let mut spec = matrix_spec(NetEnv::Wan, ServerKind::Apache, setup, scenario);
        spec.telemetry = true;
        let mut on = run_spec(spec).cell;
        assert!(on.telemetry.is_some());
        on.telemetry = None;
        assert_eq!(on, off, "{setup:?}/{scenario:?}");
    }
    // A lossy cell per CC variant (drops, retransmits, recoveries live).
    for cc in [CcVariant::Reno, CcVariant::Sack] {
        let point = telemetry::rto_point(cc);
        let off = run_spec(point.spec()).cell;
        let mut spec = point.spec();
        spec.telemetry = true;
        let mut on = run_spec(spec).cell;
        assert!(on.telemetry.is_some());
        on.telemetry = None;
        assert_eq!(on, off, "lossy cell [{}]", cc.label());
    }
}

/// Same invariance for fleet runs: every per-client cell and the server
/// counters agree between a telemetry-on and a telemetry-off fleet.
#[test]
fn telemetry_is_invisible_to_fleet_runs() {
    let point = scale::ScalePoint {
        env: NetEnv::Lan,
        setup: ProtocolSetup::Http10,
        n_clients: 8,
    };
    let off = run_fleet(point.spec());
    let mut spec = point.spec();
    spec.telemetry = true;
    let on = run_fleet(spec);
    assert_eq!(on.per_client.len(), off.per_client.len());
    for (a, b) in on.per_client.iter().zip(&off.per_client) {
        let mut a = *a;
        assert!(a.telemetry.is_some());
        a.telemetry = None;
        assert_eq!(&a, b);
    }
    assert_eq!(on.server_stats, off.server_stats);
    assert_eq!(on.server_sockets, off.server_sockets);
}

/// The robustness report (the digest CI gates on) renders identically
/// whether the cells ran with telemetry enabled or disabled.
#[test]
fn robustness_report_is_unchanged_by_telemetry() {
    let points: Vec<_> = robustness::reduced_grid().into_iter().take(6).collect();
    let off = robustness::run_points(&points);
    let on: Vec<_> = points
        .iter()
        .map(|p| {
            let mut spec = p.spec();
            spec.telemetry = true;
            robustness::RobustnessCell {
                point: *p,
                cell: run_spec(spec).cell,
            }
        })
        .collect();
    let render = |cells: &[robustness::RobustnessCell]| {
        robustness::report(cells)
            .iter()
            .map(|t| t.render())
            .collect::<String>()
    };
    assert_eq!(render(&on), render(&off));
    assert_eq!(
        robustness::report_digest(&on),
        robustness::report_digest(&off)
    );
}

/// The mux matrix table (with its new cancelled-push-bytes columns)
/// renders deterministically and carries the CxlB columns.
#[test]
fn mux_matrix_table_reports_cancelled_push_bytes() {
    let a = mux::matrix_table(NetEnv::Wan, ServerKind::Apache).render();
    let b = mux::matrix_table(NetEnv::Wan, ServerKind::Apache).render();
    assert_eq!(a, b);
    assert!(a.contains("FT CxlB"));
    assert!(a.contains("CV CxlB"));
}
