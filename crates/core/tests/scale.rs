//! Integration tests for the many-client scale engine: the N=1 anchor
//! against the single-client protocol matrix, stats-mode and thread-count
//! differential checks, the conformance gate over multi-connection fleet
//! traces, and the headline scalability claim — pipelining needs several
//! times fewer simultaneous server connections than HTTP/1.0×4 under a
//! 256-client burst.

use httpipe_core::env::NetEnv;
use httpipe_core::experiments::scale::{self, ScalePoint, N_GRID, SETUPS};
use httpipe_core::harness::{
    run_fleet, run_fleet_checked, run_matrix_cell, ProtocolSetup, Scenario,
};
use httpserver::ServerKind;
use netsim::TraceMode;

/// The number of objects in a first-time Microscape retrieval.
const SITE_OBJECTS: u64 = 43;

/// Acceptance anchor: a one-client fleet is host-for-host the
/// single-client matrix topology, and every N=1 scale cell must
/// reproduce the unimpaired matrix row *exactly* — the shared-link
/// scheduler, the bounded bottleneck buffer, and the listen backlog may
/// not perturb an uncontended run by a single bit.
#[test]
fn one_client_fleet_reproduces_the_matrix_exactly() {
    for env in NetEnv::ALL {
        for setup in SETUPS {
            let point = ScalePoint {
                env,
                setup,
                n_clients: 1,
            };
            let fleet = run_fleet(point.spec());
            assert_eq!(fleet.per_client.len(), 1);
            let clean = run_matrix_cell(env, ServerKind::Apache, setup, Scenario::FirstTime);
            assert_eq!(
                fleet.per_client[0],
                clean,
                "{} {}: N=1 fleet cell must equal the matrix cell",
                env.name(),
                setup.label()
            );
            assert_eq!(fleet.server_sockets.syn_drops, 0);
        }
    }
}

/// Differential: a fleet traced in `StatsOnly` mode and the same fleet
/// traced in `Full` mode must report identical per-client results and
/// server counters.
#[test]
fn stats_only_and_full_fleet_traces_agree() {
    for (env, setup, n) in [
        (NetEnv::Lan, ProtocolSetup::Http10, 16),
        (NetEnv::Wan, ProtocolSetup::Http11Pipelined, 16),
        (NetEnv::Wan, ProtocolSetup::Http11, 4),
    ] {
        let point = ScalePoint {
            env,
            setup,
            n_clients: n,
        };
        let stats_only = run_fleet(point.spec());
        let full = {
            let mut spec = point.spec();
            spec.trace_mode = TraceMode::Full;
            run_fleet(spec)
        };
        assert_eq!(
            stats_only.per_client,
            full.per_client,
            "{} {} N={n}: StatsOnly and Full runs must agree",
            env.name(),
            setup.label()
        );
        assert_eq!(
            stats_only.server_stats.peak_connections,
            full.server_stats.peak_connections
        );
        assert_eq!(
            stats_only.server_sockets.syn_drops,
            full.server_sockets.syn_drops
        );
    }
}

/// Differential: the scale matrix run serially and on an 8-thread pool
/// must render bit-identical reports.
#[test]
fn threaded_and_serial_scale_runs_are_identical() {
    let points = scale::grid(&[NetEnv::Lan, NetEnv::Wan], &SETUPS, &[1, 4]);
    assert_eq!(points.len(), 12);
    let serial = scale::run_points_threaded(&points, Some(1));
    let pooled = scale::run_points_threaded(&points, Some(8));
    for (a, b) in serial.iter().zip(&pooled) {
        assert_eq!(a.point, b.point);
        assert_eq!(a.client_secs, b.client_secs, "cell {:?}", a.point);
        assert_eq!(a.peak_connections, b.peak_connections);
        assert_eq!(a.syn_drops, b.syn_drops);
        assert_eq!(a.packets, b.packets);
    }
    assert_eq!(
        scale::report_digest(&serial),
        scale::report_digest(&pooled),
        "serial and 8-thread scale reports must be bit-identical"
    );
}

/// Conformance gate: a 64-client fleet trace — hundreds of interleaved
/// connections through one bottleneck — passes every TCP and HTTP
/// invariant, for all three protocol setups.
#[test]
fn sixty_four_client_fleet_traces_are_conformant() {
    for setup in SETUPS {
        let point = ScalePoint {
            env: NetEnv::Lan,
            setup,
            n_clients: 64,
        };
        let (out, report) = run_fleet_checked(point.spec());
        assert!(
            report.is_clean(),
            "{} N=64 fleet trace: {}",
            setup.label(),
            report.summary()
        );
        assert!(
            report.connections >= 64,
            "every client's connections checked"
        );
        let fetched: u64 = out.per_client.iter().map(|c| c.fetched).sum();
        assert_eq!(fetched, 64 * SITE_OBJECTS, "{}", setup.label());
    }
}

/// The headline scalability claim, under conformance checking: at 256
/// clients on the LAN, HTTP/1.0×4 needs at least three times more
/// simultaneous server connections than buffered pipelining, the SYN
/// burst overflows the 64-deep listen queue (and is repaired by
/// retransmission), and every client still retrieves the whole site.
#[test]
fn pipelining_cuts_peak_server_connections_three_fold_at_256_clients() {
    let run = |setup: ProtocolSetup| {
        let point = ScalePoint {
            env: NetEnv::Lan,
            setup,
            n_clients: 256,
        };
        let (out, report) = run_fleet_checked(point.spec());
        assert!(
            report.is_clean(),
            "{} N=256 fleet trace: {}",
            setup.label(),
            report.summary()
        );
        let fetched: u64 = out.per_client.iter().map(|c| c.fetched).sum();
        assert_eq!(fetched, 256 * SITE_OBJECTS, "{}", setup.label());
        out
    };
    let h10 = run(ProtocolSetup::Http10);
    let pipe = run(ProtocolSetup::Http11Pipelined);

    assert!(
        h10.server_sockets.syn_drops > 0,
        "a 256-client SYN burst must overflow the 64-deep listen queue"
    );
    assert!(
        h10.server_stats.peak_connections >= 3 * pipe.server_stats.peak_connections,
        "HTTP/1.0×4 peak {} vs pipelined peak {} — expected ≥3×",
        h10.server_stats.peak_connections,
        pipe.server_stats.peak_connections
    );
}

/// The grid constants the experiment and its smoke test both rely on.
#[test]
fn matrix_axes_match_the_design() {
    assert_eq!(N_GRID, [1, 4, 16, 64, 256]);
    assert_eq!(SETUPS.len(), 3);
    assert_eq!(scale::full_grid().len(), 45);
}
