//! Differential gates for the congestion-control extraction: routing the
//! seed TCB's window arithmetic through the [`netsim::CongestionControl`]
//! trait (default variant: Reno) must be invisible. Every digest below
//! was captured on the seed before the trait existed; a mismatch means
//! the refactor changed behavior somewhere in the matrix, the impairment
//! grid or the fleet engine.

use httpipe_core::env::NetEnv;
use httpipe_core::experiments::{mux, robustness, scale};
use httpipe_core::harness::{matrix_spec, run_spec, ProtocolSetup, Scenario};
use httpserver::ServerKind;
use netsim::{CcVariant, TcpConfig};

/// Seed digest of the reduced robustness grid (loss/reorder/outage
/// impairments over three setups), captured before the CC trait landed.
/// Re-pinned when the report grew the drops-by-reason (L/O/Q) column —
/// a rendering change only; the underlying cells are covered by the
/// telemetry identity tests and the unchanged scale digest.
const SEED_ROBUSTNESS_DIGEST: u64 = 0x7c6c_bcfa_68ca_f65b;

/// Seed digest of the reduced mux report (framed transports + push).
/// Re-pinned when the matrix table grew the cancelled-push-bytes
/// (CxlB) columns — same rendering-only caveat as above.
const SEED_MUX_DIGEST: u64 = 0xb978_ca3e_2c17_9e3d;

/// Seed digest of the reduced scale report (fleets to 64 clients).
const SEED_SCALE_DIGEST: u64 = 0x4dd4_ba02_5900_c56e;

#[test]
fn reno_via_trait_reproduces_seed_robustness_digest() {
    let cells = robustness::run_points(&robustness::reduced_grid());
    assert_eq!(
        robustness::report_digest(&cells),
        SEED_ROBUSTNESS_DIGEST,
        "Reno-through-the-trait changed the robustness grid"
    );
}

#[test]
fn reno_via_trait_reproduces_seed_mux_digest() {
    assert_eq!(
        mux::report_digest(&mux::reduced_report()),
        SEED_MUX_DIGEST,
        "Reno-through-the-trait changed the mux transports"
    );
}

#[test]
fn reno_via_trait_reproduces_seed_scale_digest() {
    let cells = scale::run_points(&scale::reduced_grid());
    assert_eq!(
        scale::report_digest(&cells),
        SEED_SCALE_DIGEST,
        "Reno-through-the-trait changed the fleet engine"
    );
}

/// An explicit `TcpConfig::default()` override (which selects
/// [`CcVariant::Reno`]) must produce the identical cell to no override
/// at all — the override plumbing itself is inert.
#[test]
fn default_tcp_override_is_inert() {
    assert_eq!(TcpConfig::default().cc, CcVariant::Reno);
    for setup in [ProtocolSetup::Http10, ProtocolSetup::Http11Pipelined] {
        let base = matrix_spec(NetEnv::Wan, ServerKind::Apache, setup, Scenario::FirstTime);
        let mut overridden =
            matrix_spec(NetEnv::Wan, ServerKind::Apache, setup, Scenario::FirstTime);
        overridden.tcp = Some(TcpConfig::default());
        assert_eq!(
            run_spec(base).cell,
            run_spec(overridden).cell,
            "Some(TcpConfig::default()) differs from None for {setup:?}"
        );
    }
}
