//! Integration tests asserting the paper's headline claims end-to-end,
//! across every crate in the workspace: the abstract's numbers, the
//! "Observations on HTTP/1.0 and 1.1 Data" section, and the conclusions.

use httpipe_core::env::NetEnv;
use httpipe_core::harness::{run_matrix_cell, ProtocolSetup, Scenario};
use httpipe_core::result::CellResult;
use httpserver::ServerKind;

fn cell(env: NetEnv, setup: ProtocolSetup, scenario: Scenario) -> CellResult {
    run_matrix_cell(env, ServerKind::Apache, setup, scenario)
}

#[test]
fn abstract_claim_packet_savings_at_least_2x_everywhere() {
    // "The savings were at least a factor of two, and sometimes as much as
    // a factor of ten, in terms of packets transmitted" — pipelined 1.1
    // vs 1.0-with-parallel-connections, all environments (1.0 not
    // measured on PPP in the paper; we check LAN and WAN).
    for env in [NetEnv::Lan, NetEnv::Wan] {
        for scenario in [Scenario::FirstTime, Scenario::Revalidate] {
            let p10 = cell(env, ProtocolSetup::Http10, scenario);
            let pipe = cell(env, ProtocolSetup::Http11Pipelined, scenario);
            assert!(
                pipe.packets() * 2 <= p10.packets(),
                "{env:?}/{scenario:?}: {} vs {}",
                pipe.packets(),
                p10.packets()
            );
        }
    }
}

#[test]
fn observation_revalidation_under_one_tenth_of_http10_packets() {
    // "our HTTP/1.1 with buffered pipelining implementation uses less
    // than 1/10 of the total number of packets that HTTP/1.0 does" for
    // revisiting a cached page.
    let p10 = cell(NetEnv::Wan, ProtocolSetup::Http10, Scenario::Revalidate);
    let pipe = cell(
        NetEnv::Wan,
        ProtocolSetup::Http11Pipelined,
        Scenario::Revalidate,
    );
    assert!(
        pipe.packets() * 10 <= p10.packets(),
        "pipelined {} vs 1.0 {}",
        pipe.packets(),
        p10.packets()
    );
}

#[test]
fn observation_nonpipelined_http11_loses_elapsed_time() {
    // "An HTTP/1.1 implementation that does not implement pipelining will
    // perform worse (have higher elapsed time) than an HTTP/1.0
    // implementation using multiple connections."
    for env in [NetEnv::Lan, NetEnv::Wan] {
        for scenario in [Scenario::FirstTime, Scenario::Revalidate] {
            let p10 = cell(env, ProtocolSetup::Http10, scenario);
            let pers = cell(env, ProtocolSetup::Http11, scenario);
            assert!(
                pers.secs > p10.secs,
                "{env:?}/{scenario:?}: persistent {:.2}s must exceed 1.0 {:.2}s",
                pers.secs,
                p10.secs
            );
        }
    }
}

#[test]
fn observation_pipelining_beats_http10_elapsed_time() {
    // "HTTP/1.1 implemented with pipelining outperformed HTTP/1.0, even
    // when the HTTP/1.0 implementation uses multiple connections in
    // parallel, under all circumstances tested."
    for env in [NetEnv::Lan, NetEnv::Wan] {
        for scenario in [Scenario::FirstTime, Scenario::Revalidate] {
            let p10 = cell(env, ProtocolSetup::Http10, scenario);
            let pipe = cell(env, ProtocolSetup::Http11Pipelined, scenario);
            assert!(
                pipe.secs < p10.secs,
                "{env:?}/{scenario:?}: pipelined {:.2}s vs 1.0 {:.2}s",
                pipe.secs,
                p10.secs
            );
        }
    }
}

#[test]
fn observation_first_time_bandwidth_saving_is_only_a_few_percent() {
    // "For the first time retrieval test, bandwidth savings due to
    // pipelining and persistent connections of HTTP/1.1 is only a few
    // percent" — the payload dominates.
    let p10 = cell(NetEnv::Lan, ProtocolSetup::Http10, Scenario::FirstTime);
    let pipe = cell(
        NetEnv::Lan,
        ProtocolSetup::Http11Pipelined,
        Scenario::FirstTime,
    );
    let saving = 1.0 - pipe.bytes as f64 / p10.bytes as f64;
    assert!(
        (0.0..0.15).contains(&saving),
        "byte saving should be modest, got {:.1}%",
        saving * 100.0
    );
}

#[test]
fn observation_mean_packet_size_roughly_doubles() {
    // "The mean size of a packet in our traffic roughly doubled."
    let p10 = cell(NetEnv::Lan, ProtocolSetup::Http10, Scenario::FirstTime);
    let pipe = cell(
        NetEnv::Lan,
        ProtocolSetup::Http11Pipelined,
        Scenario::FirstTime,
    );
    let mean10 = p10.bytes as f64 / p10.packets() as f64;
    let mean11 = pipe.bytes as f64 / pipe.packets() as f64;
    assert!(
        mean11 > mean10 * 1.7,
        "mean packet size {mean10:.0} -> {mean11:.0}"
    );
}

#[test]
fn conclusion_compression_gives_largest_first_time_bandwidth_saving() {
    // "The addition of transport compression in HTTP/1.1 provided the
    // largest bandwidth savings" among the studied techniques for the
    // first-time fetch.
    let pipe = cell(
        NetEnv::Ppp,
        ProtocolSetup::Http11Pipelined,
        Scenario::FirstTime,
    );
    let defl = cell(
        NetEnv::Ppp,
        ProtocolSetup::Http11PipelinedDeflate,
        Scenario::FirstTime,
    );
    let saved = pipe.bytes.saturating_sub(defl.bytes);
    // The paper saw ~31KB of HTML savings (~19% of payload).
    assert!(
        saved > 20_000,
        "deflate should save tens of KB, got {saved}"
    );
    // And elapsed time improves markedly on the modem link (paper: 53.3
    // -> 47.4 for Jigsaw; ours compresses HTML only too).
    assert!(defl.secs < pipe.secs);
}

#[test]
fn compression_saves_packets_and_time_on_first_fetch() {
    // Paper summary of the first-time test: "about 16% of the packets
    // and 12% of the elapsed time" saved by compression (PPP numbers are
    // larger). Check direction and rough scale on the LAN.
    let pipe = cell(
        NetEnv::Lan,
        ProtocolSetup::Http11Pipelined,
        Scenario::FirstTime,
    );
    let defl = cell(
        NetEnv::Lan,
        ProtocolSetup::Http11PipelinedDeflate,
        Scenario::FirstTime,
    );
    let pkt_saving = 1.0 - defl.packets() as f64 / pipe.packets() as f64;
    assert!(
        (0.05..0.40).contains(&pkt_saving),
        "packet saving {:.2}",
        pkt_saving
    );
}

#[test]
fn wan_latency_amplifies_http11_wins() {
    // "For the WAN test however, the higher the latency, the better
    // HTTP/1.1 performed": the elapsed-time ratio (1.0 / pipelined) must
    // be larger on the WAN than on the LAN for revalidation.
    let lan10 = cell(NetEnv::Lan, ProtocolSetup::Http10, Scenario::Revalidate);
    let lanp = cell(
        NetEnv::Lan,
        ProtocolSetup::Http11Pipelined,
        Scenario::Revalidate,
    );
    let wan10 = cell(NetEnv::Wan, ProtocolSetup::Http10, Scenario::Revalidate);
    let wanp = cell(
        NetEnv::Wan,
        ProtocolSetup::Http11Pipelined,
        Scenario::Revalidate,
    );
    let lan_ratio = lan10.secs / lanp.secs;
    let wan_ratio = wan10.secs / wanp.secs;
    assert!(
        wan_ratio > lan_ratio,
        "WAN ratio {wan_ratio:.2} should exceed LAN ratio {lan_ratio:.2}"
    );
}

#[test]
fn http10_connection_inventory() {
    // 43 requests = 43 connections; the 1.1 modes use exactly one.
    let p10 = cell(NetEnv::Lan, ProtocolSetup::Http10, Scenario::FirstTime);
    assert_eq!(p10.sockets_used, 43);
    for setup in [ProtocolSetup::Http11, ProtocolSetup::Http11Pipelined] {
        let c = cell(NetEnv::Lan, setup, Scenario::FirstTime);
        assert_eq!(c.sockets_used, 1, "{setup:?}");
    }
}

#[test]
fn overhead_percentages_match_paper_bands() {
    // The %ov column: ~8-10% for 1.0 first-time, ~19-23% for 1.0
    // revalidation, dropping to ~4-8% with pipelining.
    let p10f = cell(NetEnv::Lan, ProtocolSetup::Http10, Scenario::FirstTime);
    assert!(
        (7.0..13.0).contains(&p10f.overhead_pct),
        "1.0 FT %ov {:.1}",
        p10f.overhead_pct
    );
    let p10r = cell(NetEnv::Lan, ProtocolSetup::Http10, Scenario::Revalidate);
    assert!(
        (16.0..28.0).contains(&p10r.overhead_pct),
        "1.0 CV %ov {:.1}",
        p10r.overhead_pct
    );
    let pipef = cell(
        NetEnv::Lan,
        ProtocolSetup::Http11Pipelined,
        Scenario::FirstTime,
    );
    assert!(
        (2.0..7.0).contains(&pipef.overhead_pct),
        "pipelined FT %ov {:.1}",
        pipef.overhead_pct
    );
    let piper = cell(
        NetEnv::Lan,
        ProtocolSetup::Http11Pipelined,
        Scenario::Revalidate,
    );
    assert!(
        (4.0..12.0).contains(&piper.overhead_pct),
        "pipelined CV %ov {:.1}",
        piper.overhead_pct
    );
}

#[test]
fn ppp_first_time_is_bandwidth_bound() {
    // ~190-200KB over 28.8kbps ≈ 53-62s for every 1.1 variant; deflate
    // cuts it into the 40s (paper: 65.6 / 53.4 / 47.2 for Apache).
    let pers = cell(NetEnv::Ppp, ProtocolSetup::Http11, Scenario::FirstTime);
    let pipe = cell(
        NetEnv::Ppp,
        ProtocolSetup::Http11Pipelined,
        Scenario::FirstTime,
    );
    let defl = cell(
        NetEnv::Ppp,
        ProtocolSetup::Http11PipelinedDeflate,
        Scenario::FirstTime,
    );
    assert!(
        (50.0..75.0).contains(&pers.secs),
        "persistent {:.1}",
        pers.secs
    );
    assert!(
        (45.0..60.0).contains(&pipe.secs),
        "pipelined {:.1}",
        pipe.secs
    );
    assert!(
        (35.0..48.0).contains(&defl.secs),
        "deflate {:.1}",
        defl.secs
    );
    assert!(defl.secs < pipe.secs && pipe.secs < pers.secs);
}

#[test]
fn ppp_revalidation_times_match_paper_band() {
    // Paper Apache: 11.1s persistent, 3.4s pipelined.
    let pers = cell(NetEnv::Ppp, ProtocolSetup::Http11, Scenario::Revalidate);
    let pipe = cell(
        NetEnv::Ppp,
        ProtocolSetup::Http11Pipelined,
        Scenario::Revalidate,
    );
    assert!(
        (8.0..16.0).contains(&pers.secs),
        "persistent {:.1}",
        pers.secs
    );
    assert!(
        (2.0..6.0).contains(&pipe.secs),
        "pipelined {:.1}",
        pipe.secs
    );
}

#[test]
fn deterministic_experiments() {
    // Same cell, byte-identical results (the basis of every other test).
    let a = cell(
        NetEnv::Wan,
        ProtocolSetup::Http11Pipelined,
        Scenario::FirstTime,
    );
    let b = cell(
        NetEnv::Wan,
        ProtocolSetup::Http11Pipelined,
        Scenario::FirstTime,
    );
    assert_eq!(a, b);
}
