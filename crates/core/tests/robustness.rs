//! Integration tests for the loss/jitter robustness family: determinism
//! across thread counts, exact zero-loss equivalence with the unimpaired
//! protocol matrix, and the headline qualitative result — pipelining's
//! single connection is more fragile per lost packet than HTTP/1.0's four
//! parallel connections, but still wins outright at moderate loss.

use httpipe_core::env::NetEnv;
use httpipe_core::experiments::robustness::{
    self, jitter_study, LossShape, RobustnessCell, RobustnessPoint, SETUPS,
};
use httpipe_core::harness::{run_matrix_cell, ProtocolSetup, Scenario};
use httpserver::ServerKind;

/// Two runs of the reduced grid — one serial, one with an 8-thread pool —
/// must produce bit-identical reports.
#[test]
fn reduced_grid_is_deterministic_across_thread_counts() {
    let points = robustness::reduced_grid();
    assert_eq!(points.len(), 18);

    let serial: Vec<RobustnessCell> = points
        .iter()
        .map(|p| RobustnessCell {
            point: *p,
            cell: httpipe_core::harness::run_spec(p.spec()).cell,
        })
        .collect();
    let pooled = {
        let specs = points.iter().map(|p| p.spec()).collect();
        let cells = httpipe_core::harness::run_cells_threaded(specs, Some(8));
        points
            .iter()
            .zip(cells)
            .map(|(&point, cell)| RobustnessCell { point, cell })
            .collect::<Vec<_>>()
    };
    assert_eq!(
        robustness::report_digest(&serial),
        robustness::report_digest(&pooled),
        "serial and 8-thread runs must render identical reports"
    );
    for (a, b) in serial.iter().zip(&pooled) {
        assert_eq!(a.cell, b.cell, "cell {:?}", a.point);
    }
}

/// The zero-loss grid rows install a live impairment pipeline (Bernoulli
/// p=0 draws per packet) yet must reproduce the unimpaired protocol
/// matrix numbers *exactly* — the pipeline may not perturb timing.
#[test]
fn zero_loss_pipeline_matches_unimpaired_matrix_exactly() {
    for env in NetEnv::ALL {
        for setup in [ProtocolSetup::Http10, ProtocolSetup::Http11Pipelined] {
            let point = RobustnessPoint {
                env,
                setup,
                scenario: Scenario::FirstTime,
                loss_pct: 0.0,
                shape: LossShape::Uniform,
                cc: netsim::CcVariant::Reno,
            };
            let impaired = httpipe_core::harness::run_spec(point.spec()).cell;
            let clean = run_matrix_cell(env, ServerKind::Apache, setup, Scenario::FirstTime);
            assert_eq!(
                impaired,
                clean,
                "{} {} zero-loss cell must equal the matrix cell",
                env.name(),
                setup.label()
            );
        }
    }
}

/// WAN first-time retrieval across the full loss grid: lossy cells
/// actually lose packets and repair them, and the protocol comparison
/// shifts the way head-of-line blocking predicts.
#[test]
fn wan_loss_grid_claims() {
    let points = robustness::grid(
        &[NetEnv::Wan],
        &robustness::LOSS_GRID_PCT,
        &SETUPS,
        &[Scenario::FirstTime],
    );
    let cells = robustness::run_points(&points);

    let find = |setup: ProtocolSetup, loss: f64, shape: LossShape| -> &RobustnessCell {
        cells
            .iter()
            .find(|c| c.point.setup == setup && c.point.loss_pct == loss && c.point.shape == shape)
            .expect("grid point present")
    };

    // Every 5%-uniform cell sees real drops and real retransmissions.
    for &setup in &SETUPS {
        let c = find(setup, 5.0, LossShape::Uniform);
        assert!(c.cell.drops > 0, "{}: no drops at 5%", setup.label());
        assert!(
            c.cell.retransmits > 0,
            "{}: drops must be repaired by retransmissions",
            setup.label()
        );
    }

    // Head-of-line blocking: at 5% uniform loss the single pipelined
    // connection pays more elapsed-time inflation *per lost packet* than
    // HTTP/1.0's four parallel connections, which localize each loss.
    let pipe = find(ProtocolSetup::Http11Pipelined, 5.0, LossShape::Uniform);
    let h10 = find(ProtocolSetup::Http10, 5.0, LossShape::Uniform);
    let per_drop = |c: &RobustnessCell| {
        robustness::inflation_pct(&cells, c).expect("baseline present") / c.cell.drops as f64
    };
    assert!(
        per_drop(pipe) > per_drop(h10),
        "pipelining must be more fragile per lost packet: {:.1}%/drop vs {:.1}%/drop",
        per_drop(pipe),
        per_drop(h10)
    );

    // ... and yet at moderate loss rates pipelining still wins outright
    // on elapsed time, in both loss shapes.
    for loss in [0.5, 2.0] {
        for shape in LossShape::ALL {
            let p = find(ProtocolSetup::Http11Pipelined, loss, shape);
            let h = find(ProtocolSetup::Http10, loss, shape);
            assert!(
                p.cell.secs < h.cell.secs,
                "pipelined must still beat HTTP/1.0 at {loss}% {}: {:.2}s vs {:.2}s",
                shape.label(),
                p.cell.secs,
                h.cell.secs
            );
        }
    }

    // The packet economy survives every loss rate.
    for c in &cells {
        if c.point.setup == ProtocolSetup::Http11Pipelined {
            let h = find(ProtocolSetup::Http10, c.point.loss_pct, c.point.shape);
            assert!(
                c.cell.packets() < h.cell.packets() * 2 / 3,
                "pipelining keeps its packet advantage under loss"
            );
        }
    }
}

/// On the modem link, pipelining also survives light loss better than
/// HTTP/1.0's parallel connections (whose bufferbloat-driven spurious
/// retransmissions the loss only compounds).
#[test]
fn ppp_light_loss_still_favors_pipelining() {
    let points = robustness::grid(
        &[NetEnv::Ppp],
        &[0.5],
        &[ProtocolSetup::Http10, ProtocolSetup::Http11Pipelined],
        &[Scenario::FirstTime],
    );
    let cells = robustness::run_points(&points);
    for shape in LossShape::ALL {
        let get = |setup: ProtocolSetup| {
            cells
                .iter()
                .find(|c| c.point.setup == setup && c.point.shape == shape)
                .expect("point present")
        };
        let pipe = get(ProtocolSetup::Http11Pipelined);
        let h10 = get(ProtocolSetup::Http10);
        assert!(
            pipe.cell.secs < h10.cell.secs,
            "PPP 0.5% {}: pipelined {:.2}s vs HTTP/1.0 {:.2}s",
            shape.label(),
            pipe.cell.secs,
            h10.cell.secs
        );
        assert!(pipe.cell.packets() < h10.cell.packets() / 2);
    }
}

/// The jitter/reordering study: reordering really happens, provokes
/// spurious fast retransmits, and every setup still completes correctly.
#[test]
fn jitter_study_reorders_and_recovers() {
    let results = jitter_study();
    assert_eq!(results.len(), 9);
    for (p, cell) in &results {
        assert_eq!(cell.fetched, 43, "all objects fetched despite jitter");
        if p.jitter_ms == 0 {
            assert_eq!(cell.reorders, 0);
            assert_eq!(cell.drops, 0);
        }
    }
    let heavy_reorders: u64 = results
        .iter()
        .filter(|(p, _)| p.jitter_ms == 25)
        .map(|(_, c)| c.reorders)
        .sum();
    assert!(heavy_reorders > 0, "25ms jitter must reorder packets");
    let heavy_rexmit: u64 = results
        .iter()
        .filter(|(p, _)| p.jitter_ms == 25)
        .map(|(_, c)| c.retransmits)
        .sum();
    assert!(
        heavy_rexmit > 0,
        "reorder-induced dup ACKs must provoke fast retransmits"
    );
}
