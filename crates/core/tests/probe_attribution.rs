//! Integration tests for the flight recorder: accounting completeness
//! over the whole protocol matrix, byte-level determinism of the probe
//! output, zero-overhead invariance when disabled, and the mutation
//! checks for the automatic diagnoses.

use httpipe_core::env::NetEnv;
use httpipe_core::experiments::{probe, protocol_matrix};
use httpipe_core::harness::{
    matrix_spec, run_cells_map, run_spec, CellSpec, ProtocolSetup, Scenario,
};
use httpserver::ServerKind;
use netsim::{Diagnosis, SimDuration, TcpConfig};

/// Every unimpaired protocol-matrix cell, probe enabled.
fn all_matrix_specs() -> Vec<CellSpec> {
    let mut specs = Vec::new();
    for env in NetEnv::ALL {
        for server in [ServerKind::Jigsaw, ServerKind::Apache] {
            for &setup in protocol_matrix::matrix_setups(env) {
                for scenario in [Scenario::FirstTime, Scenario::Revalidate] {
                    let mut spec = matrix_spec(env, server, setup, scenario);
                    spec.probe = true;
                    specs.push(spec);
                }
            }
        }
    }
    specs
}

/// The acceptance gate: on every one of the 44 unimpaired matrix cells
/// the nine stall buckets sum to the measured elapsed time within 1%.
#[test]
fn buckets_sum_to_elapsed_on_all_44_matrix_cells() {
    let specs = all_matrix_specs();
    assert_eq!(specs.len(), 44);
    let cells = run_cells_map(specs, None, |spec| run_spec(spec).cell);
    for (i, cell) in cells.iter().enumerate() {
        let report = cell.probe.expect("probe was enabled");
        let sum = report.buckets.sum();
        assert!(
            (sum - cell.secs).abs() <= cell.secs * 0.01 + 1e-9,
            "cell {i}: buckets sum {sum} vs elapsed {} ({:?})",
            cell.secs,
            report.buckets
        );
        assert!(
            (report.elapsed - cell.secs).abs() <= 1e-9,
            "cell {i}: attributed window {} vs elapsed {}",
            report.elapsed,
            cell.secs
        );
    }
}

/// Two identical runs produce byte-identical `PROBE_*.json` documents,
/// and a serial run matches an 8-thread run of the same grid.
#[test]
fn probe_json_is_deterministic_across_runs_and_threads() {
    let points = probe::reduced_grid();
    let first = probe::run_points_threaded(&points, Some(1));
    let second = probe::run_points_threaded(&points, Some(1));
    let wide = probe::run_points_threaded(&points, Some(8));
    for ((a, b), c) in first.iter().zip(&second).zip(&wide) {
        let ja = a.analysis.render_json(&a.point.id());
        assert_eq!(
            ja,
            b.analysis.render_json(&b.point.id()),
            "{}: two serial runs differ",
            a.point.id()
        );
        assert_eq!(
            ja,
            c.analysis.render_json(&c.point.id()),
            "{}: serial vs 8-thread runs differ",
            a.point.id()
        );
    }
    assert_eq!(probe::report_digest(&first), probe::report_digest(&wide));
}

/// Enabling the probe changes no measured metric: the `CellResult` of a
/// probe-on run equals the probe-off run field for field.
#[test]
fn probe_is_invisible_to_the_measurements() {
    for (setup, scenario) in [
        (ProtocolSetup::Http11Pipelined, Scenario::FirstTime),
        (ProtocolSetup::Http10, Scenario::Revalidate),
    ] {
        let off = run_spec(matrix_spec(
            NetEnv::Wan,
            ServerKind::Apache,
            setup,
            scenario,
        ))
        .cell;
        let mut spec = matrix_spec(NetEnv::Wan, ServerKind::Apache, setup, scenario);
        spec.probe = true;
        let mut on = run_spec(spec).cell;
        assert!(on.probe.is_some());
        on.probe = None;
        assert_eq!(on, off, "{setup:?}/{scenario:?}");
    }
}

/// The Nagle×pipelining cell from the paper's tuning story: pipelined
/// revalidation against a buffering Jigsaw with Nagle left on.
fn nagle_on_spec() -> CellSpec {
    let mut spec = matrix_spec(
        NetEnv::Lan,
        ServerKind::Jigsaw,
        ProtocolSetup::Http11Pipelined,
        Scenario::Revalidate,
    );
    spec.client = spec.client.with_nodelay(false);
    spec.server = spec.server.with_nodelay(false);
    spec.probe = true;
    spec
}

/// Mutation check: with Nagle enabled on a pipelined cell the attributor
/// books nonzero `nagle_hold` time and diagnoses the paper's
/// Nagle×pipelining interaction.
#[test]
fn nagle_mutation_is_attributed_and_diagnosed() {
    let out = run_spec(nagle_on_spec());
    let analysis = out.probe.expect("probe enabled");
    assert!(
        analysis.report.buckets.nagle_hold > 0.1,
        "Nagle-on pipelining must book the ~200ms stall, got {:?}",
        analysis.report.buckets
    );
    assert!(
        analysis
            .diagnoses
            .iter()
            .any(|d| matches!(d, Diagnosis::NaglePipelining { .. })),
        "expected a NaglePipelining diagnosis, got {:?}",
        analysis.diagnoses
    );

    // The tuned cell (TCP_NODELAY, the paper's fix) books no Nagle time
    // and raises no such diagnosis.
    let mut tuned = matrix_spec(
        NetEnv::Lan,
        ServerKind::Jigsaw,
        ProtocolSetup::Http11Pipelined,
        Scenario::Revalidate,
    );
    tuned.probe = true;
    let fixed = run_spec(tuned).probe.expect("probe enabled");
    assert_eq!(fixed.report.buckets.nagle_hold, 0.0);
    assert_eq!(fixed.report.nagle_pipelining, 0);
}

/// Mutation check: turning the delayed-ACK timer off zeroes the
/// `delayed_ack_wait` bucket and cures the Nagle stall (the held tail
/// is released by the now-immediate ACK).
#[test]
fn disabling_delayed_ack_zeroes_the_wait_bucket() {
    let baseline = run_spec(nagle_on_spec());
    let base_analysis = baseline.probe.expect("probe enabled");

    let mut spec = nagle_on_spec();
    spec.tcp = Some(TcpConfig {
        delayed_ack: SimDuration::ZERO,
        ..TcpConfig::default()
    });
    let out = run_spec(spec);
    let analysis = out.probe.expect("probe enabled");
    assert_eq!(
        analysis.report.buckets.delayed_ack_wait, 0.0,
        "no delayed-ACK timer, no delayed-ACK wait: {:?}",
        analysis.report.buckets
    );
    assert!(
        out.cell.secs + 0.1 < baseline.cell.secs,
        "immediate ACKs release the Nagle hold: {:.3}s vs {:.3}s",
        out.cell.secs,
        baseline.cell.secs
    );
    assert!(
        analysis.report.buckets.nagle_hold < base_analysis.report.buckets.nagle_hold,
        "the booked Nagle time shrinks without the ACK delay"
    );
}
