//! Gate: every unimpaired protocol-matrix cell must produce a trace
//! that satisfies all TCP and HTTP conformance invariants.

use httpipe_core::env::NetEnv;
use httpipe_core::experiments::protocol_matrix::matrix_setups;
use httpipe_core::harness::{matrix_spec, run_cells_checked, run_spec_checked, Scenario};
use httpserver::ServerKind;

#[test]
fn lan_pipelined_first_time_is_conformant() {
    let spec = matrix_spec(
        NetEnv::Lan,
        ServerKind::Apache,
        httpipe_core::harness::ProtocolSetup::Http11Pipelined,
        Scenario::FirstTime,
    );
    let (_, report) = run_spec_checked(spec);
    assert!(
        report.is_clean(),
        "violations in LAN pipelined first-time run:\n{}",
        report.summary()
    );
    assert!(report.connections > 0);
    assert!(report.http_requests >= 43);
}

#[test]
fn full_unimpaired_matrix_is_conformant() {
    let mut specs = Vec::new();
    for env in NetEnv::ALL {
        for server in [ServerKind::Apache, ServerKind::Jigsaw] {
            for &setup in matrix_setups(env) {
                for scenario in [Scenario::FirstTime, Scenario::Revalidate] {
                    specs.push(matrix_spec(env, server, setup, scenario));
                }
            }
        }
    }
    let n = specs.len();
    let (cells, report) = run_cells_checked(specs);
    assert_eq!(cells.len(), n);
    assert!(
        report.is_clean(),
        "violations across the {n}-cell unimpaired matrix:\n{}",
        report.summary()
    );
}

#[test]
fn impaired_reduced_grid_is_conformant() {
    use httpipe_core::experiments::robustness;
    let specs: Vec<_> = robustness::reduced_grid()
        .iter()
        .map(|p| p.spec())
        .collect();
    let n = specs.len();
    let (cells, report) = run_cells_checked(specs);
    assert_eq!(cells.len(), n);
    assert!(
        report.is_clean(),
        "violations across the {n}-cell impaired grid:\n{}",
        report.summary()
    );
}
