//! Gates for the multiplexed transport: every mux cell must satisfy the
//! frame-level conformance invariants, push must actually replace
//! requests, fleets must complete, and the shared-fate prediction —
//! one multiplexed connection degrades more per lost packet than
//! HTTP/1.0's four parallel connections — must hold under loss.

use httpipe_core::env::NetEnv;
use httpipe_core::experiments::{mux, robustness};
use httpipe_core::harness::{
    matrix_spec, run_cells_checked, run_spec_checked, ProtocolSetup, Scenario,
};
use httpserver::ServerKind;

#[test]
fn mux_matrix_is_conformant() {
    let mut specs = Vec::new();
    for env in NetEnv::ALL {
        for server in [ServerKind::Apache, ServerKind::Jigsaw] {
            for &setup in &ProtocolSetup::MUX {
                for scenario in [Scenario::FirstTime, Scenario::Revalidate] {
                    specs.push(matrix_spec(env, server, setup, scenario));
                }
            }
        }
    }
    let n = specs.len();
    let (cells, report) = run_cells_checked(specs);
    assert_eq!(cells.len(), n);
    assert!(
        report.is_clean(),
        "violations across the {n}-cell mux matrix:\n{}",
        report.summary()
    );
}

#[test]
fn mux_push_first_time_is_conformant_and_pushes() {
    let spec = matrix_spec(
        NetEnv::Lan,
        ServerKind::Apache,
        ProtocolSetup::MultiplexedPush,
        Scenario::FirstTime,
    );
    let (out, report) = run_spec_checked(spec);
    assert!(
        report.is_clean(),
        "violations in LAN mux+push first-time run:\n{}",
        report.summary()
    );
    assert!(out.cell.pushed_responses > 0, "server never pushed");
    assert!(out.cell.pushed_bytes > 0);
    assert_eq!(out.cell.cancelled_pushes, 0, "clean run cancelled pushes");
}

#[test]
fn mux_loss_cells_degrade_but_complete() {
    // The impaired reduced grid with the mux setups: retransmissions
    // happen, yet every cell still finishes with a sane byte count.
    let cells = robustness::run_points(&mux::reduced_loss_grid());
    let lossy_rexmit: u64 = cells
        .iter()
        .filter(|c| c.point.loss_pct > 0.0)
        .map(|c| c.cell.retransmits)
        .sum();
    assert!(lossy_rexmit > 0, "lossy mux cells never retransmitted");
    for c in &cells {
        assert!(
            c.cell.bytes > 100_000,
            "{} moved only {} bytes",
            c.point.label(),
            c.cell.bytes
        );
    }
}

#[test]
fn shared_fate_mux_degrades_more_than_parallel_connections() {
    // The head-of-line prediction, as a gate: on the WAN at >=2% loss,
    // the single multiplexed connection inflates elapsed time more than
    // HTTP/1.0x4, whose independent connections localize each drop.
    let points = robustness::grid(
        &[NetEnv::Wan],
        &[0.0, 2.0, 5.0],
        &[ProtocolSetup::Http10, ProtocolSetup::Multiplexed],
        &[Scenario::FirstTime],
    );
    let cells = robustness::run_points(&points);
    let fates = mux::shared_fate(&cells, NetEnv::Wan);
    assert_eq!(fates.len(), 4, "2% and 5%, both shapes");
    for sf in fates {
        assert!(
            sf.mux_infl > sf.http10_infl,
            "at {:.1}% {} loss mux inflated {:+.1}% vs HTTP/1.0x4 {:+.1}% — \
             shared fate should cost the multiplexed connection more",
            sf.loss_pct,
            sf.shape.label(),
            sf.mux_infl,
            sf.http10_infl
        );
    }
}

#[test]
fn mux_fleets_complete_and_push_scales() {
    use httpipe_core::experiments::scale::{run_point, ScalePoint};
    let plain = run_point(ScalePoint {
        env: NetEnv::Wan,
        setup: ProtocolSetup::Multiplexed,
        n_clients: 16,
    });
    let push = run_point(ScalePoint {
        env: NetEnv::Wan,
        setup: ProtocolSetup::MultiplexedPush,
        n_clients: 16,
    });
    assert_eq!(plain.fetched, 16 * 43, "every client fetched the site");
    assert_eq!(push.fetched, 16 * 43);
    // One connection per client in both modes.
    assert!(plain.peak_connections <= 16);
    assert!(push.peak_connections <= 16);
}
