//! The three network environments of Table 1.

use netsim::{LinkConfig, SimDuration};

/// A row of Table 1: a bandwidth/latency combination spanning common Web
/// uses of 1997.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetEnv {
    /// High bandwidth, low latency: 10 Mbit/s Ethernet, RTT < 1 ms.
    Lan,
    /// High bandwidth, high latency: transcontinental Internet, RTT ≈ 90 ms.
    Wan,
    /// Low bandwidth, high latency: 28.8 kbps dialup PPP, RTT ≈ 150 ms.
    Ppp,
}

impl NetEnv {
    /// All environments in table order.
    pub const ALL: [NetEnv; 3] = [NetEnv::Lan, NetEnv::Wan, NetEnv::Ppp];

    /// The link model for this environment.
    pub fn link(self) -> LinkConfig {
        match self {
            NetEnv::Lan => LinkConfig::lan(),
            NetEnv::Wan => LinkConfig::wan(),
            NetEnv::Ppp => LinkConfig::ppp(),
        }
    }

    /// Human-readable channel description (Table 1's "Channel" column).
    pub fn channel(self) -> &'static str {
        match self {
            NetEnv::Lan => "High bandwidth, low latency",
            NetEnv::Wan => "High bandwidth, high latency",
            NetEnv::Ppp => "Low bandwidth, high latency",
        }
    }

    /// Table 1's "Connection" column.
    pub fn connection(self) -> &'static str {
        match self {
            NetEnv::Lan => "LAN - 10Mbit Ethernet",
            NetEnv::Wan => "WAN - MA (MIT/LCS) to CA (LBL)",
            NetEnv::Ppp => "PPP - 28.8k modem line",
        }
    }

    /// Nominal round-trip time.
    pub fn rtt(self) -> SimDuration {
        let link = self.link();
        link.propagation + link.propagation
    }

    /// The maximum segment size (1460 in every tested environment).
    pub fn mss(self) -> usize {
        1460
    }

    /// Short name used in table titles (LAN/WAN/PPP).
    pub fn name(self) -> &'static str {
        match self {
            NetEnv::Lan => "LAN",
            NetEnv::Wan => "WAN",
            NetEnv::Ppp => "PPP",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtts_match_table_1() {
        assert!(NetEnv::Lan.rtt() < SimDuration::from_millis(1));
        assert_eq!(NetEnv::Wan.rtt(), SimDuration::from_millis(90));
        assert_eq!(NetEnv::Ppp.rtt(), SimDuration::from_millis(150));
    }

    #[test]
    fn bandwidths_match_table_1() {
        assert_eq!(NetEnv::Lan.link().bits_per_sec, Some(10_000_000));
        assert_eq!(NetEnv::Ppp.link().bits_per_sec, Some(28_800));
        assert_eq!(NetEnv::Lan.mss(), 1460);
    }

    #[test]
    fn names_unique() {
        let names: Vec<_> = NetEnv::ALL.iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["LAN", "WAN", "PPP"]);
    }
}
