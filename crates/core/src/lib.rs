//! # httpipe-core — the experiment framework
//!
//! Reproduces every table and figure of *"Network Performance Effects of
//! HTTP/1.1, CSS1, and PNG"* (SIGCOMM '97) on top of the workspace's
//! substrates: the [`netsim`] TCP simulator, the [`httpclient`] robot, the
//! [`httpserver`] origin, the [`flate`] DEFLATE implementation and the
//! [`webcontent`] Microscape workload.
//!
//! The crate is organized around *cells*: one deterministic simulation of
//! a (network environment × server profile × protocol setup × scenario)
//! combination, measured exactly as the paper measures (packets each way,
//! wire bytes, elapsed seconds, header-overhead percentage). The
//! [`experiments`] module groups cells into the paper's tables; the
//! `repro` binary in `httpipe-bench` prints them.
//!
//! ```no_run
//! use httpipe_core::prelude::*;
//!
//! let cell = run_matrix_cell(
//!     NetEnv::Lan,
//!     ServerKind::Apache,
//!     ProtocolSetup::Http11Pipelined,
//!     Scenario::Revalidate,
//! );
//! assert_eq!(cell.validated, 43);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod env;
pub mod experiments;
pub mod harness;
pub mod result;

/// Convenient re-exports for examples and benches.
pub mod prelude {
    pub use crate::env::NetEnv;
    pub use crate::harness::{
        custom_store, matrix_spec, microscape_store, primed_cache, run_matrix_cell, run_spec,
        CellSpec, ProtocolSetup, RunOutput, Scenario,
    };
    pub use crate::result::{CellResult, Table};
    pub use httpclient::{
        ClientCache, ClientConfig, HttpClient, ProtocolMode, RequestStyle, RevalidationStyle,
        Workload,
    };
    pub use httpserver::{Entity, HttpServer, ServerConfig, ServerKind, SiteStore};
    pub use netsim::{LinkConfig, SimDuration, Simulator, SockAddr};
}
