//! Result records for experiment cells and simple text-table rendering.

/// The measurements the paper reports for one run: the columns of
/// Tables 3–11.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CellResult {
    /// Packets client → server.
    pub packets_c2s: u64,
    /// Packets server → client.
    pub packets_s2c: u64,
    /// Total bytes on the wire (TCP/IP headers included).
    pub bytes: u64,
    /// Bytes after link-level (modem) compression, when active.
    pub physical_bytes: u64,
    /// Elapsed seconds, first packet to last.
    pub secs: f64,
    /// `%ov`: TCP/IP header overhead percentage.
    pub overhead_pct: f64,
    /// Total TCP connections the client used.
    pub sockets_used: u64,
    /// Peak simultaneously-open sockets on the client.
    pub max_sockets: u64,
    /// Objects fetched.
    pub fetched: u64,
    /// 304 responses among them.
    pub validated: u64,
    /// Entity bytes delivered to the application (decoded).
    pub body_bytes: u64,
    /// Requests retried after an early server close.
    pub retries: u64,
    /// RST events observed by the client.
    pub resets: u64,
    /// TCP segments retransmitted on the wire (either direction).
    pub retransmits: u64,
    /// Packets the network dropped (loss + outage + queue overflow).
    pub drops: u64,
    /// Drops attributed to the random/bursty loss model.
    pub drops_loss: u64,
    /// Drops attributed to a scheduled link outage.
    pub drops_outage: u64,
    /// Drops attributed to queue (buffer) overflow at the bottleneck.
    pub drops_queue: u64,
    /// Packets the network duplicated.
    pub dups: u64,
    /// Packets that overtook an earlier packet in flight.
    pub reorders: u64,
    /// Seconds from the first packet to the first response payload byte
    /// reaching the client — perceived first-render latency.
    pub first_byte_secs: f64,
    /// Responses that arrived as unsolicited server pushes (multiplexed
    /// setups only; zero elsewhere).
    pub pushed_responses: u64,
    /// Entity bytes delivered by those pushes.
    pub pushed_bytes: u64,
    /// Pushes the client refused with a reset.
    pub cancelled_pushes: u64,
    /// Push DATA bytes already in flight when cancelled — wire waste.
    pub cancelled_push_bytes: u64,
    /// Stall-attribution summary, present when the cell ran with the
    /// flight recorder enabled ([`CellSpec::probe`]).
    ///
    /// [`CellSpec::probe`]: ../harness/struct.CellSpec.html#structfield.probe
    pub probe: Option<netsim::ProbeReport>,
    /// Telemetry volume roll-up, present when the cell ran with the
    /// time-series sink enabled ([`CellSpec::telemetry`]).
    ///
    /// [`CellSpec::telemetry`]: ../harness/struct.CellSpec.html#structfield.telemetry
    pub telemetry: Option<netsim::TelemetrySummary>,
}

impl CellResult {
    /// Total packets in both directions.
    pub fn packets(&self) -> u64 {
        self.packets_c2s + self.packets_s2c
    }
}

/// A labelled table of cells, renderable as text.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// The title.
    pub title: String,
    /// Column headers after the row-label column.
    pub columns: Vec<String>,
    /// (row label, formatted values).
    pub rows: Vec<(String, Vec<String>)>,
}

impl Table {
    /// Create a new, empty instance.
    pub fn new(title: &str, columns: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a labelled row (width-checked).
    pub fn push_row(&mut self, label: &str, values: Vec<String>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.to_string(), values));
    }

    /// Append the paper-style metric columns for one cell:
    /// Pa / Bytes / Sec / %ov.
    pub fn cell_columns(cell: &CellResult) -> Vec<String> {
        vec![
            cell.packets().to_string(),
            cell.bytes.to_string(),
            format!("{:.2}", cell.secs),
            format!("{:.1}", cell.overhead_pct),
        ]
    }

    /// Render as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = Vec::new();
        let label_width = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain([2])
            .max()
            .unwrap();
        for (i, c) in self.columns.iter().enumerate() {
            let w = self
                .rows
                .iter()
                .map(|(_, vals)| vals[i].len())
                .chain([c.len()])
                .max()
                .unwrap();
            widths.push(w);
        }
        let mut out = String::new();
        out.push_str(&format!("=== {} ===\n", self.title));
        out.push_str(&format!("{:<label_width$}", ""));
        for (c, w) in self.columns.iter().zip(&widths) {
            out.push_str(&format!("  {c:>w$}"));
        }
        out.push('\n');
        for (label, vals) in &self.rows {
            out.push_str(&format!("{label:<label_width$}"));
            for (v, w) in vals.iter().zip(&widths) {
                out.push_str(&format!("  {v:>w$}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packets_total() {
        let c = CellResult {
            packets_c2s: 25,
            packets_s2c: 58,
            ..Default::default()
        };
        assert_eq!(c.packets(), 83);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["Pa", "Sec"]);
        t.push_row("HTTP/1.0", vec!["497".into(), "1.85".into()]);
        t.push_row("HTTP/1.1 Pipelined", vec!["83".into(), "3.02".into()]);
        let s = t.render();
        assert!(s.contains("=== Demo ==="));
        assert!(s.contains("HTTP/1.0"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Values right-aligned under headers.
        assert!(lines[2].trim_end().ends_with("1.85"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("Demo", &["A", "B"]);
        t.push_row("x", vec!["1".into()]);
    }

    #[test]
    fn cell_columns_format() {
        let c = CellResult {
            packets_c2s: 10,
            packets_s2c: 20,
            bytes: 12345,
            secs: 1.234,
            overhead_pct: 8.55,
            ..Default::default()
        };
        assert_eq!(Table::cell_columns(&c), vec!["30", "12345", "1.23", "8.6"]);
    }

    #[test]
    fn cell_result_is_debuggable_and_copy() {
        let c = CellResult {
            packets_c2s: 1,
            bytes: 2,
            secs: 3.0,
            ..Default::default()
        };
        let d = c; // Copy
        assert!(format!("{d:?}").contains("packets_c2s: 1"));
    }
}
