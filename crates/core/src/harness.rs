//! The cell runner: wires a client, a server and a network together and
//! extracts the paper's metrics from one deterministic run — plus
//! [`run_cells`], which fans independent cells across a thread pool.
//!
//! Every [`Simulator`] is fully self-contained (own event queue, clock,
//! hosts, trace), so independent cells parallelize trivially: the pool
//! claims cells off a shared counter and results come back in input
//! order, bit-identical to a serial loop.

use crate::env::NetEnv;
use crate::result::CellResult;
use httpclient::{
    ClientCache, ClientConfig, HttpClient, ProtocolMode, RequestStyle, RevalidationStyle, Workload,
};
use httpserver::{Entity, HttpServer, ServerConfig, ServerKind, SiteStore};
use netsim::{LinkCodec, Simulator, SockAddr, TraceMode};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use webcontent::microscape::{Microscape, SITE_MTIME};

/// The protocol column of Tables 3–9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolSetup {
    /// HTTP/1.0 with 4 parallel connections.
    Http10,
    /// HTTP/1.1, persistent connection, serialized requests.
    Http11,
    /// HTTP/1.1 with buffered pipelining.
    Http11Pipelined,
    /// Pipelining plus deflate transport compression of the HTML.
    Http11PipelinedDeflate,
    /// Framed stream multiplexing over one connection (the "what HTTP
    /// could do beyond pipelining" setup; not in the paper's tables).
    Multiplexed,
    /// Multiplexing with server push of inline images and stylesheets.
    MultiplexedPush,
}

impl ProtocolSetup {
    /// The paper's setups, in the paper's row order. The multiplexed
    /// setups are deliberately not in this list: the paper's tables are
    /// reproduced byte-identically from these four rows, and mux results
    /// are appended as separate sections via [`ProtocolSetup::MUX`].
    pub const ALL: [ProtocolSetup; 4] = [
        ProtocolSetup::Http10,
        ProtocolSetup::Http11,
        ProtocolSetup::Http11Pipelined,
        ProtocolSetup::Http11PipelinedDeflate,
    ];

    /// The beyond-the-paper multiplexed setups.
    pub const MUX: [ProtocolSetup; 2] =
        [ProtocolSetup::Multiplexed, ProtocolSetup::MultiplexedPush];

    /// The paper's row label.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolSetup::Http10 => "HTTP/1.0",
            ProtocolSetup::Http11 => "HTTP/1.1",
            ProtocolSetup::Http11Pipelined => "HTTP/1.1 Pipelined",
            ProtocolSetup::Http11PipelinedDeflate => "HTTP/1.1 Pipelined w. compression",
            ProtocolSetup::Multiplexed => "HTTP/mux",
            ProtocolSetup::MultiplexedPush => "HTTP/mux + push",
        }
    }

    /// The client connection strategy for this setup.
    pub fn mode(self) -> ProtocolMode {
        match self {
            ProtocolSetup::Http10 => ProtocolMode::Http10Parallel { max_connections: 4 },
            ProtocolSetup::Http11 => ProtocolMode::Http11Persistent,
            ProtocolSetup::Multiplexed => ProtocolMode::Multiplexed { push: false },
            ProtocolSetup::MultiplexedPush => ProtocolMode::Multiplexed { push: true },
            _ => ProtocolMode::Http11Pipelined,
        }
    }

    /// Whether this setup negotiates deflate compression.
    pub fn deflate(self) -> bool {
        matches!(self, ProtocolSetup::Http11PipelinedDeflate)
    }

    /// Whether this setup accepts server push.
    pub fn push(self) -> bool {
        matches!(self, ProtocolSetup::MultiplexedPush)
    }
}

/// First-time retrieval or cache revalidation — the two client behaviours
/// under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Empty cache: GET everything (43 requests).
    FirstTime,
    /// Everything cached: 43 validation requests.
    Revalidate,
}

impl Scenario {
    /// Human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::FirstTime => "First Time Retrieval",
            Scenario::Revalidate => "Cache Validation",
        }
    }
}

/// Build the server-side store for the Microscape site (HTML gets a
/// pre-deflated variant).
///
/// The store for the canonical [`webcontent::microscape::site`] is built
/// once and memoized: deflating the 42 KB HTML dominates cell setup, and
/// the experiment matrix would otherwise recompress it for every cell.
pub fn microscape_store(site: &Microscape) -> Arc<SiteStore> {
    static CANONICAL: OnceLock<Arc<SiteStore>> = OnceLock::new();
    if std::ptr::eq(site, webcontent::microscape::site()) {
        return Arc::clone(CANONICAL.get_or_init(|| build_microscape_store(site)));
    }
    build_microscape_store(site)
}

fn build_microscape_store(site: &Microscape) -> Arc<SiteStore> {
    let mut store = SiteStore::new();
    store.insert(
        site.html_path(),
        Entity::new(site.html.clone().into_bytes(), "text/html", SITE_MTIME).with_deflate(),
    );
    for obj in &site.images {
        store.insert(
            &obj.path,
            Entity::new(obj.body.clone(), obj.content_type, obj.mtime),
        );
    }
    store.into_shared()
}

/// Build a store from arbitrary (path, body, content-type) triples.
pub fn custom_store(objects: &[(String, Vec<u8>, &'static str)]) -> Arc<SiteStore> {
    let mut store = SiteStore::new();
    for (path, body, ct) in objects {
        let e = Entity::new(body.clone(), ct, SITE_MTIME);
        let e = if *ct == "text/html" {
            e.with_deflate()
        } else {
            e
        };
        store.insert(path, e);
    }
    store.into_shared()
}

/// Prime a client cache as if a first visit had completed: validators
/// derived exactly as the server derives them.
pub fn primed_cache(site: &Microscape) -> ClientCache {
    let mut cache = ClientCache::new();
    cache.prime(
        site.html_path(),
        site.html.as_bytes(),
        "text/html",
        SITE_MTIME,
        webcontent::html::inline_image_sources(&site.html),
    );
    for obj in &site.images {
        cache.prime(&obj.path, &obj.body, obj.content_type, obj.mtime, vec![]);
    }
    cache
}

/// Everything configurable about one cell run.
pub struct CellSpec {
    /// Network environment (Table 1 row).
    pub env: NetEnv,
    /// Server behaviour profile.
    pub server: ServerConfig,
    /// Content the server serves.
    pub store: Arc<SiteStore>,
    /// Client behaviour profile.
    pub client: ClientConfig,
    /// What the client is asked to do.
    pub workload: Workload,
    /// Pre-primed client cache (empty for first-time runs).
    pub cache: ClientCache,
    /// Install a modem compressor on the link.
    pub link_codec: Option<fn() -> Box<dyn LinkCodec>>,
    /// Impair the link (loss, jitter, reordering, duplication, outages).
    /// `None` leaves the environment's ideal link untouched.
    pub impair: Option<netsim::ImpairConfig>,
    /// Override the TCP parameters on both hosts (ablations).
    pub tcp: Option<netsim::TcpConfig>,
    /// How much of each packet the trace retains. Batch experiment runs
    /// use [`TraceMode::StatsOnly`]; switch to [`TraceMode::Full`] when
    /// the per-packet records are needed (`dump`, `xplot`,
    /// `time_sequence`).
    pub trace_mode: TraceMode,
    /// Enable the [`netsim::probe`] flight recorder for this run: the
    /// [`CellResult`] gains a [`netsim::ProbeReport`] and the
    /// [`RunOutput`] the full [`netsim::ProbeAnalysis`]. Off by default —
    /// a disabled probe records nothing and leaves every existing metric
    /// byte-identical.
    pub probe: bool,
    /// Enable the [`netsim::telemetry`] time-series sink for this run:
    /// the [`CellResult`] gains a [`netsim::TelemetrySummary`] and the
    /// [`RunOutput`]'s simulator retains the full series. Off by default
    /// with the same discipline as the probe — a disabled sink records
    /// nothing and leaves every existing metric byte-identical.
    pub telemetry: bool,
}

/// Outcome of one run: the cell metrics plus full app access if needed.
pub struct RunOutput {
    /// The paper's metrics for this run.
    pub cell: CellResult,
    /// Client-side counters.
    pub client_stats: httpclient::ClientStats,
    /// Server-side counters.
    pub server_stats: httpserver::ServerStats,
    /// The finished simulator (trace still accessible).
    pub sim: Simulator,
    /// The client's host id.
    pub client_host: netsim::HostId,
    /// The server's host id.
    pub server_host: netsim::HostId,
    /// Full stall attribution, present when [`CellSpec::probe`] was set.
    pub probe: Option<netsim::ProbeAnalysis>,
}

/// Assemble one client's [`CellResult`] from the raw trace, socket and
/// application counters (shared by [`run_spec`], [`run_fleet`] and the
/// revisit-idiom experiment).
pub(crate) fn cell_result(
    stats: &netsim::TraceStats,
    socket_stats: netsim::SocketStats,
    client_stats: &httpclient::ClientStats,
) -> CellResult {
    CellResult {
        packets_c2s: stats.packets_c2s,
        packets_s2c: stats.packets_s2c,
        bytes: stats.bytes,
        physical_bytes: stats.physical_bytes,
        secs: stats.elapsed_secs(),
        overhead_pct: stats.overhead_pct(),
        sockets_used: socket_stats.sockets_used,
        max_sockets: socket_stats.max_simultaneous,
        fetched: client_stats.fetched.len() as u64,
        validated: client_stats.validated() as u64,
        body_bytes: client_stats.body_bytes() as u64,
        retries: client_stats.retries,
        resets: client_stats.resets,
        retransmits: stats.retransmitted_packets,
        drops: stats.drops(),
        drops_loss: stats.drops_loss,
        drops_outage: stats.drops_outage,
        drops_queue: stats.drops_queue,
        dups: stats.dup_packets,
        reorders: stats.reordered_packets,
        first_byte_secs: stats.first_byte_secs(),
        pushed_responses: client_stats.pushed_responses,
        pushed_bytes: client_stats.pushed_bytes,
        cancelled_pushes: client_stats.cancelled_pushes,
        cancelled_push_bytes: client_stats.cancelled_push_bytes,
        probe: None,
        telemetry: None,
    }
}

/// Execute one cell.
pub fn run_spec(spec: CellSpec) -> RunOutput {
    let mut sim = Simulator::new();
    sim.set_trace_mode(spec.trace_mode);
    if spec.probe {
        sim.enable_probe();
    }
    if spec.telemetry {
        sim.enable_telemetry();
    }
    let client_host = sim.add_host("client");
    let server_host = sim.add_host("server");
    sim.add_link(client_host, server_host, spec.env.link());
    if let Some(impair) = spec.impair.clone() {
        sim.set_impairment(client_host, server_host, impair);
    }
    if let Some(tcp) = spec.tcp.clone() {
        sim.set_tcp_config(client_host, tcp.clone());
        sim.set_tcp_config(server_host, tcp);
    }
    if let Some(make) = spec.link_codec {
        sim.link_mut(client_host, server_host).set_codec(make);
    }

    sim.install_app(
        server_host,
        Box::new(HttpServer::new(spec.server, spec.store)),
    );
    sim.install_app(
        client_host,
        Box::new(HttpClient::with_cache(
            spec.client,
            spec.workload,
            spec.cache,
        )),
    );
    sim.run_until_idle();

    let mut stats = sim.stats(client_host, server_host);
    let socket_stats = sim.socket_stats(client_host);
    let client_stats = sim
        .app_mut::<HttpClient>(client_host)
        .expect("client app")
        .stats
        .clone();
    let server_stats = sim
        .app_mut::<HttpServer>(server_host)
        .expect("server app")
        .stats;
    stats.record_push_counters(
        client_stats.pushed_responses,
        client_stats.pushed_bytes,
        client_stats.cancelled_pushes,
        client_stats.cancelled_push_bytes,
    );

    let mut cell = cell_result(&stats, socket_stats, &client_stats);
    if spec.telemetry {
        cell.telemetry = Some(sim.telemetry().summary());
    }
    let probe = if spec.probe {
        let start = stats.first.unwrap_or(netsim::SimTime::from_nanos(0));
        let end = stats.last.unwrap_or(start);
        let analysis = netsim::probe::attribute(sim.probe_records(), start, end);
        cell.probe = Some(analysis.report);
        Some(analysis)
    } else {
        None
    };
    RunOutput {
        cell,
        client_stats,
        server_stats,
        sim,
        client_host,
        server_host,
        probe,
    }
}

/// Everything configurable about one fleet run: `n_clients` robots
/// behind one shared bottleneck link fetching from one server.
///
/// Hosts are laid out clients-first (hosts `0..n`) with the server last
/// (host `n`), so an `n_clients == 1` fleet is host-for-host identical
/// to the single-client [`matrix_spec`] topology.
pub struct FleetSpec {
    /// How many concurrent clients share the bottleneck.
    pub n_clients: usize,
    /// Network environment of the shared link.
    pub env: NetEnv,
    /// Client protocol setup (every client runs the same one).
    pub setup: ProtocolSetup,
    /// Server behaviour profile.
    pub server: ServerConfig,
    /// Content the server serves.
    pub store: Arc<SiteStore>,
    /// What every client is asked to do.
    pub workload: Workload,
    /// Bottleneck buffer bound in bytes (`None` = unbounded, the
    /// single-client model's behaviour).
    pub buffer_bytes: Option<u64>,
    /// Reset backoff applied to every client.
    pub reset_backoff: netsim::SimDuration,
    /// TCP parameter override applied to every host (`None` = defaults,
    /// i.e. Reno congestion control).
    pub tcp: Option<netsim::TcpConfig>,
    /// Trace retention for the run.
    pub trace_mode: TraceMode,
    /// Enable the [`netsim::telemetry`] time-series sink for the fleet
    /// run (per-client cells gain their [`netsim::TelemetrySummary`];
    /// the full series stay readable on the returned simulator).
    pub telemetry: bool,
}

/// Outcome of one fleet run.
pub struct FleetOutput {
    /// Per-client metrics, in client order (each derived exactly as the
    /// single-client [`run_spec`] derives its [`CellResult`]).
    pub per_client: Vec<CellResult>,
    /// Server application counters.
    pub server_stats: httpserver::ServerStats,
    /// Server host socket usage (includes `syn_drops`).
    pub server_sockets: netsim::SocketStats,
    /// The finished simulator (trace still accessible).
    pub sim: Simulator,
    /// Client host ids, in client order.
    pub client_hosts: Vec<netsim::HostId>,
    /// The server's host id.
    pub server_host: netsim::HostId,
}

/// Execute one fleet run: N clients × one shared bottleneck × one server.
pub fn run_fleet(spec: FleetSpec) -> FleetOutput {
    assert!(spec.n_clients >= 1, "a fleet needs at least one client");
    let mut sim = Simulator::new();
    sim.set_trace_mode(spec.trace_mode);
    if spec.telemetry {
        sim.enable_telemetry();
    }
    let client_hosts: Vec<netsim::HostId> = (0..spec.n_clients)
        .map(|i| sim.add_host(&format!("client{i}")))
        .collect();
    let server_host = sim.add_host("server");

    let mut link = spec.env.link();
    if let Some(bytes) = spec.buffer_bytes {
        link = link.with_buffer_bytes(bytes);
    }
    sim.add_shared_link(&client_hosts, server_host, link);

    if let Some(tcp) = &spec.tcp {
        for &c in &client_hosts {
            sim.set_tcp_config(c, tcp.clone());
        }
        sim.set_tcp_config(server_host, tcp.clone());
    }

    let addr = SockAddr::new(server_host, spec.server.port);
    sim.install_app(
        server_host,
        Box::new(HttpServer::new(spec.server, spec.store)),
    );
    for &c in &client_hosts {
        let client = ClientConfig::robot(spec.setup.mode(), addr)
            .with_deflate(spec.setup.deflate())
            .with_style(RequestStyle::Robot)
            .with_reset_backoff(spec.reset_backoff);
        sim.install_app(
            c,
            Box::new(HttpClient::with_cache(
                client,
                spec.workload.clone(),
                ClientCache::new(),
            )),
        );
    }
    sim.run_until_idle();

    let telemetry_summary = spec.telemetry.then(|| sim.telemetry().summary());
    let per_client = client_hosts
        .iter()
        .map(|&c| {
            let mut stats = sim.stats(c, server_host);
            let socket_stats = sim.socket_stats(c);
            let client_stats = sim
                .app_mut::<HttpClient>(c)
                .expect("client app")
                .stats
                .clone();
            stats.record_push_counters(
                client_stats.pushed_responses,
                client_stats.pushed_bytes,
                client_stats.cancelled_pushes,
                client_stats.cancelled_push_bytes,
            );
            let mut cell = cell_result(&stats, socket_stats, &client_stats);
            cell.telemetry = telemetry_summary;
            cell
        })
        .collect();
    let server_stats = sim
        .app_mut::<HttpServer>(server_host)
        .expect("server app")
        .stats;
    let server_sockets = sim.socket_stats(server_host);
    FleetOutput {
        per_client,
        server_stats,
        server_sockets,
        sim,
        client_hosts,
        server_host,
    }
}

/// Execute one fleet under the trace-invariant checker: forces
/// [`TraceMode::Full`] and verifies every TCP/HTTP invariant over the
/// finished multi-connection trace. Fleet clients are always the tuned
/// robot (TCP_NODELAY set), and fleets run the spec's TCP parameters
/// (defaults when `spec.tcp` is `None`).
pub fn run_fleet_checked(mut spec: FleetSpec) -> (FleetOutput, conformance::Report) {
    let probe = ClientConfig::robot(
        spec.setup.mode(),
        SockAddr::new(netsim::HostId(0), spec.server.port),
    );
    let cfg = conformance::CheckConfig {
        tcp: spec.tcp.clone().unwrap_or_default(),
        client_nodelay: probe.nodelay,
        server_nodelay: spec.server.nodelay,
        server_port: spec.server.port,
        http: true,
    };
    spec.trace_mode = TraceMode::Full;
    let out = run_fleet(spec);
    let trace = out.sim.trace();
    let report = conformance::check_trace(trace.records(), trace.drop_records(), &cfg);
    (out, report)
}

/// Build the standard cell for the protocol matrix (Tables 4–9): the
/// Microscape site, a given environment/server/protocol/scenario.
pub fn matrix_spec(
    env: NetEnv,
    server_kind: ServerKind,
    setup: ProtocolSetup,
    scenario: Scenario,
) -> CellSpec {
    let site = webcontent::microscape::site();
    let store = microscape_store(site);
    let server = match server_kind {
        ServerKind::Jigsaw => ServerConfig::jigsaw(80),
        ServerKind::Apache => ServerConfig::apache(80),
    }
    .with_deflate(setup.deflate())
    .with_mux_push(setup.push());

    // The server address is fixed by construction: host 1, port 80.
    let addr = SockAddr::new(netsim::HostId(1), 80);
    let client = ClientConfig::robot(setup.mode(), addr)
        .with_deflate(setup.deflate())
        .with_style(RequestStyle::Robot);

    let (workload, cache) = match scenario {
        Scenario::FirstTime => (
            Workload::Browse {
                start: site.html_path().into(),
            },
            ClientCache::new(),
        ),
        Scenario::Revalidate => {
            let style = match setup {
                // The old HTTP/1.0 robot had no persistent cache: plain
                // GET for the page, HEAD for the images.
                ProtocolSetup::Http10 => RevalidationStyle::HeadRequests,
                _ => RevalidationStyle::ConditionalGetEtag,
            };
            (
                Workload::Revalidate {
                    start: site.html_path().into(),
                    style,
                },
                primed_cache(site),
            )
        }
    };

    CellSpec {
        env,
        server,
        store,
        client,
        workload,
        cache,
        link_codec: None,
        impair: None,
        tcp: None,
        trace_mode: TraceMode::StatsOnly,
        probe: false,
        telemetry: false,
    }
}

/// Derive the conformance-checker configuration a spec's trace must be
/// judged against: the TCP parameters in effect on both hosts and the
/// per-side TCP_NODELAY settings (the applications set it per socket
/// from their configs, overriding the TCP default).
pub fn check_config_for(spec: &CellSpec) -> conformance::CheckConfig {
    conformance::CheckConfig {
        tcp: spec.tcp.clone().unwrap_or_default(),
        client_nodelay: spec.client.nodelay,
        server_nodelay: spec.server.nodelay,
        server_port: spec.server.port,
        http: true,
    }
}

/// Execute one cell under the trace-invariant checker: forces
/// [`TraceMode::Full`] (the checker needs per-packet records; the
/// resulting [`CellResult`] is bit-identical to a `StatsOnly` run by
/// construction) and verifies every TCP/HTTP invariant over the
/// finished trace.
pub fn run_spec_checked(mut spec: CellSpec) -> (RunOutput, conformance::Report) {
    let cfg = check_config_for(&spec);
    spec.trace_mode = TraceMode::Full;
    let out = run_spec(spec);
    let trace = out.sim.trace();
    let report = conformance::check_trace(trace.records(), trace.drop_records(), &cfg);
    (out, report)
}

/// [`run_cells`] with every cell run under the trace-invariant checker.
/// Returns the per-cell results plus one merged [`conformance::Report`]
/// across all cells (violations keep their connection addresses; cells
/// are checked independently so the merge loses no information).
pub fn run_cells_checked(specs: Vec<CellSpec>) -> (Vec<CellResult>, conformance::Report) {
    let outcomes = run_cells_map(specs, None, |spec| {
        let (out, report) = run_spec_checked(spec);
        (out.cell, report)
    });
    let mut merged = conformance::Report::default();
    let mut cells = Vec::with_capacity(outcomes.len());
    for (cell, report) in outcomes {
        merged.merge(report);
        cells.push(cell);
    }
    (cells, merged)
}

/// Run one matrix cell.
pub fn run_matrix_cell(
    env: NetEnv,
    server_kind: ServerKind,
    setup: ProtocolSetup,
    scenario: Scenario,
) -> CellResult {
    run_spec(matrix_spec(env, server_kind, setup, scenario)).cell
}

/// Worker-thread count for [`run_cells`]: the `HTTPIPE_THREADS`
/// environment variable when set, otherwise the machine's available
/// parallelism, never more than the number of cells.
pub fn worker_threads(cells: usize) -> usize {
    let hw = std::env::var("HTTPIPE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    hw.min(cells).max(1)
}

/// Execute independent cells across a thread pool, returning their
/// [`CellResult`]s in input order.
///
/// Each [`Simulator`] is self-contained, so cells share nothing but the
/// read-only `Arc<SiteStore>`; results are bit-identical to running the
/// same specs in a serial loop. The pool size comes from
/// [`worker_threads`] (override with `HTTPIPE_THREADS=1` to force
/// serial execution).
pub fn run_cells(specs: Vec<CellSpec>) -> Vec<CellResult> {
    run_cells_threaded(specs, None)
}

/// [`run_cells`] with an explicit thread count (`None` = automatic).
pub fn run_cells_threaded(specs: Vec<CellSpec>, threads: Option<usize>) -> Vec<CellResult> {
    run_cells_map(specs, threads, |s| run_spec(s).cell)
}

/// Map an arbitrary per-cell function across independent cells on the
/// work-stealing pool, returning the outputs in input order.
///
/// The engine behind [`run_cells_threaded`] and [`run_cells_checked`]:
/// each worker claims the next unstarted cell off a shared counter, so
/// long cells (PPP) don't serialize behind a static partition. With one
/// thread (or one cell) it degrades to a plain serial loop.
pub fn run_cells_map<T, F>(specs: Vec<CellSpec>, threads: Option<usize>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(CellSpec) -> T + Sync,
{
    let n = specs.len();
    let threads = threads
        .unwrap_or_else(|| worker_threads(n))
        .clamp(1, n.max(1));
    if threads <= 1 {
        return specs.into_iter().map(f).collect();
    }

    let jobs: Vec<Mutex<Option<CellSpec>>> =
        specs.into_iter().map(|s| Mutex::new(Some(s))).collect();
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let spec = jobs[i]
                            .lock()
                            .expect("cell spec lock")
                            .take()
                            .expect("cell claimed twice");
                        out.push((i, f(spec)));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, cell) in h.join().expect("cell worker panicked") {
                results[i] = Some(cell);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every cell produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_pipelined_revalidation_is_tiny() {
        let cell = run_matrix_cell(
            NetEnv::Lan,
            ServerKind::Apache,
            ProtocolSetup::Http11Pipelined,
            Scenario::Revalidate,
        );
        assert_eq!(cell.fetched, 43);
        assert_eq!(cell.validated, 43, "all 43 objects revalidate");
        assert_eq!(cell.body_bytes, 0);
        assert!(
            cell.packets() < 60,
            "pipelined revalidation takes a few dozen packets, got {}",
            cell.packets()
        );
        assert_eq!(cell.sockets_used, 1);
    }

    #[test]
    fn lan_http10_first_time_has_43_connections() {
        let cell = run_matrix_cell(
            NetEnv::Lan,
            ServerKind::Apache,
            ProtocolSetup::Http10,
            Scenario::FirstTime,
        );
        assert_eq!(cell.fetched, 43);
        assert_eq!(cell.sockets_used, 43, "one connection per request");
        assert!(cell.max_sockets <= 8, "at most 4 active (+closing)");
        assert!(cell.body_bytes > 160_000, "the whole site transferred");
    }

    #[test]
    fn deflate_setup_compresses_html() {
        let plain = run_matrix_cell(
            NetEnv::Lan,
            ServerKind::Apache,
            ProtocolSetup::Http11Pipelined,
            Scenario::FirstTime,
        );
        let deflated = run_matrix_cell(
            NetEnv::Lan,
            ServerKind::Apache,
            ProtocolSetup::Http11PipelinedDeflate,
            Scenario::FirstTime,
        );
        assert!(deflated.bytes < plain.bytes, "compression saves wire bytes");
        // ~31 KB of HTML savings out of ~190 KB total.
        let saved = plain.bytes - deflated.bytes;
        assert!(
            (15_000..45_000).contains(&saved),
            "HTML deflate saves ~30KB, got {saved}"
        );
    }
}
