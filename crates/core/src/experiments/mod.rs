//! The paper's experiments, one module per table/figure group.

pub mod ablations;
pub mod browsers;
pub mod cc;
pub mod closemgmt;
pub mod compression;
pub mod content;
pub mod mux;
pub mod nagle;
pub mod probe;
pub mod protocol_matrix;
pub mod ranges;
pub mod robustness;
pub mod scale;
pub mod summary;
pub mod telemetry;
pub mod verbosity;
