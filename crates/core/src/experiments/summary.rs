//! The paper's back-of-the-envelope conclusion: applying *all* the
//! techniques — HTTP/1.1 pipelining, transport compression, CSS image
//! replacement, and PNG/MNG conversion — downloads the test page over a
//! modem "in approximately 60% of the time of HTTP/1.0 browsers without
//! significant change to the visual appearance".

use crate::env::NetEnv;
use crate::harness::{custom_store, microscape_store, run_spec, CellSpec};
use crate::result::{CellResult, Table};
use httpclient::{ClientCache, ClientConfig, ProtocolMode, Workload};
use httpserver::ServerConfig;
use netsim::{HostId, SockAddr, TraceMode};
use webcontent::convert::{gif_to_mng, gif_to_png};
use webcontent::synth::ImageRole;

/// Baseline: an HTTP/1.0 browser (4 parallel connections) fetching the
/// original page over PPP.
pub fn baseline_cell() -> CellResult {
    let site = webcontent::microscape::site();
    let spec = CellSpec {
        env: NetEnv::Ppp,
        server: ServerConfig::apache(80),
        store: microscape_store(site),
        client: ClientConfig::robot(
            ProtocolMode::Http10Parallel { max_connections: 4 },
            SockAddr::new(HostId(1), 80),
        ),
        workload: Workload::Browse {
            start: site.html_path().into(),
        },
        cache: ClientCache::new(),
        link_codec: None,
        impair: None,
        tcp: None,
        trace_mode: TraceMode::StatsOnly,
        probe: false,
        telemetry: false,
    };
    run_spec(spec).cell
}

/// Everything applied: the CSS-converted page (fewer images), remaining
/// images converted to PNG/MNG, served deflated over pipelined HTTP/1.1.
pub fn all_techniques_cell() -> CellResult {
    let site = webcontent::microscape::site();
    let variant = site.css_variant();

    // Convert the surviving images. Image references keep their paths —
    // servers of the era served PNG under any name; content type is what
    // matters.
    let mut objects: Vec<(String, Vec<u8>, &'static str)> = vec![(
        "/index.html".to_string(),
        variant.html.clone().into_bytes(),
        "text/html",
    )];
    for obj in &variant.kept {
        let (body, ct): (Vec<u8>, &'static str) = if obj.role == Some(ImageRole::Animation) {
            (
                gif_to_mng(&obj.body).expect("animation converts"),
                "video/x-mng",
            )
        } else {
            let png = gif_to_png(&obj.body).expect("image converts");
            // The paper notes PNG *loses* on tiny images; a sensible
            // deployment keeps whichever is smaller.
            if png.len() < obj.body.len() {
                (png, "image/png")
            } else {
                (obj.body.clone(), "image/gif")
            }
        };
        objects.push((obj.path.clone(), body, ct));
    }

    let spec = CellSpec {
        env: NetEnv::Ppp,
        server: ServerConfig::apache(80).with_deflate(true),
        store: custom_store(&objects),
        client: ClientConfig::robot(ProtocolMode::Http11Pipelined, SockAddr::new(HostId(1), 80))
            .with_deflate(true),
        workload: Workload::Browse {
            start: "/index.html".into(),
        },
        cache: ClientCache::new(),
        link_codec: None,
        impair: None,
        tcp: None,
        trace_mode: TraceMode::StatsOnly,
        probe: false,
        telemetry: false,
    };
    run_spec(spec).cell
}

/// The summary comparison.
pub fn summary_table() -> Table {
    let base = baseline_cell();
    let all = all_techniques_cell();
    let mut t = Table::new(
        "Back of the envelope - modem download of the test page",
        &["Requests", "Pa", "Bytes", "Sec"],
    );
    t.push_row(
        "HTTP/1.0 browser, original page",
        vec![
            base.fetched.to_string(),
            base.packets().to_string(),
            base.bytes.to_string(),
            format!("{:.1}", base.secs),
        ],
    );
    t.push_row(
        "HTTP/1.1 pipelined + deflate + CSS + PNG/MNG",
        vec![
            all.fetched.to_string(),
            all.packets().to_string(),
            all.bytes.to_string(),
            format!("{:.1}", all.secs),
        ],
    );
    t.push_row(
        "Remaining fraction of download time",
        vec![
            String::new(),
            String::new(),
            String::new(),
            format!("{:.0}%", all.secs / base.secs * 100.0),
        ],
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_techniques_approach_the_papers_sixty_percent() {
        let base = baseline_cell();
        let all = all_techniques_cell();
        assert_eq!(base.fetched, 43);
        assert!(all.fetched < base.fetched);
        let fraction = all.secs / base.secs;
        assert!(
            (0.35..=0.80).contains(&fraction),
            "paper: ~60% of the HTTP/1.0 download time; got {:.0}%",
            fraction * 100.0
        );
        assert!(all.bytes < base.bytes);
        assert!(all.packets() < base.packets());
    }
}
