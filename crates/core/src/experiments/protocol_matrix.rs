//! Tables 1 and 3–9: the protocol matrix.
//!
//! Table 3 is the paper's *initial* (untuned) LAN revalidation test —
//! 1-second flush timer, no application-driven flush — whose pipelined
//! row beat HTTP/1.0 on packets but lost on elapsed time, prompting the
//! buffer-tuning section. Tables 4–9 are the final tuned measurements
//! over {Jigsaw, Apache} × {LAN, WAN, PPP} × four protocol setups ×
//! {first-time, revalidation}.

use crate::env::NetEnv;
use crate::harness::{matrix_spec, run_cells, ProtocolSetup, Scenario};
use crate::result::{CellResult, Table};
use httpserver::ServerKind;
use netsim::SimDuration;

/// Table 1: the tested network environments (static configuration).
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1 - Tested Network Environments",
        &["Connection", "RTT", "MSS"],
    );
    for env in NetEnv::ALL {
        t.push_row(
            env.channel(),
            vec![
                env.connection().to_string(),
                format!("{}", env.rtt()),
                env.mss().to_string(),
            ],
        );
    }
    t
}

/// One row of Table 3.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Protocol row label.
    pub label: &'static str,
    /// Metrics of the run.
    pub cell: CellResult,
}

/// Table 3: the initial (untuned) high-bandwidth low-latency cache
/// revalidation test against Jigsaw, before any of the paper's tuning:
///
/// * the server is the initial, slower Jigsaw;
/// * the HTTP/1.1 client uses the disk-backed persistent cache (two
///   files per object) that later proved to be a bottleneck;
/// * the pipelined client has a 1-second flush timer and no
///   application-driven flush;
/// * the HTTP/1.0 row is the older libwww 4.1D with no persistent cache
///   at all (hence its HEAD-based revalidation and small CPU costs).
pub fn table3_cells() -> Vec<Table3Row> {
    let setups = [
        ProtocolSetup::Http10,
        ProtocolSetup::Http11,
        ProtocolSetup::Http11Pipelined,
    ];
    let specs = setups
        .iter()
        .map(|&setup| {
            let mut spec =
                matrix_spec(NetEnv::Lan, ServerKind::Jigsaw, setup, Scenario::Revalidate);
            spec.server = httpserver::ServerConfig::jigsaw_initial(80);
            if setup != ProtocolSetup::Http10 {
                spec.client = spec.client.with_disk_cache();
            }
            if setup == ProtocolSetup::Http11Pipelined {
                // The untuned configuration of the initial investigation.
                spec.client = spec
                    .client
                    .with_app_flush(false)
                    .with_flush_timeout(SimDuration::from_millis(1000));
            }
            spec
        })
        .collect();
    setups
        .iter()
        .zip(run_cells(specs))
        .map(|(setup, cell)| Table3Row {
            label: setup.label(),
            cell,
        })
        .collect()
}

/// Render Table 3 in the paper's layout.
pub fn table3() -> Table {
    let rows = table3_cells();
    let mut t = Table::new(
        "Table 3 - Jigsaw - Initial High Bandwidth, Low Latency Cache Revalidation Test",
        &[
            "Max sockets",
            "Sockets used",
            "Pkts c>s",
            "Pkts s>c",
            "Total pkts",
            "Secs",
        ],
    );
    for row in rows {
        t.push_row(
            row.label,
            vec![
                row.cell.max_sockets.to_string(),
                row.cell.sockets_used.to_string(),
                row.cell.packets_c2s.to_string(),
                row.cell.packets_s2c.to_string(),
                row.cell.packets().to_string(),
                format!("{:.2}", row.cell.secs),
            ],
        );
    }
    t
}

/// The cells of one of Tables 4–9: every protocol setup for one
/// (environment, server) pair, both scenarios, run in parallel. PPP
/// (Tables 8–9) omits HTTP/1.0, exactly as the paper does.
pub fn matrix_cells(
    env: NetEnv,
    server: ServerKind,
) -> Vec<(&'static str, CellResult, CellResult)> {
    let setups = matrix_setups(env);
    let specs = setups
        .iter()
        .flat_map(|&setup| {
            [
                matrix_spec(env, server, setup, Scenario::FirstTime),
                matrix_spec(env, server, setup, Scenario::Revalidate),
            ]
        })
        .collect();
    let cells = run_cells(specs);
    setups
        .iter()
        .zip(cells.chunks_exact(2))
        .map(|(&setup, pair)| (setup.label(), pair[0], pair[1]))
        .collect()
}

/// The protocol setups one of Tables 4–9 includes for `env`.
pub fn matrix_setups(env: NetEnv) -> &'static [ProtocolSetup] {
    if env == NetEnv::Ppp {
        &ProtocolSetup::ALL[1..]
    } else {
        &ProtocolSetup::ALL
    }
}

/// The paper's table number for a (env, server) pair.
pub fn table_number(env: NetEnv, server: ServerKind) -> u8 {
    match (env, server) {
        (NetEnv::Lan, ServerKind::Jigsaw) => 4,
        (NetEnv::Lan, ServerKind::Apache) => 5,
        (NetEnv::Wan, ServerKind::Jigsaw) => 6,
        (NetEnv::Wan, ServerKind::Apache) => 7,
        (NetEnv::Ppp, ServerKind::Jigsaw) => 8,
        (NetEnv::Ppp, ServerKind::Apache) => 9,
    }
}

/// Render one of Tables 4–9.
pub fn matrix_table(env: NetEnv, server: ServerKind) -> Table {
    let n = table_number(env, server);
    let server_name = match server {
        ServerKind::Jigsaw => "Jigsaw",
        ServerKind::Apache => "Apache",
    };
    let mut t = Table::new(
        &format!("Table {n} - {server_name} - {}", env.channel()),
        &[
            "FT Pa", "FT Bytes", "FT Sec", "FT 1stB", "FT %ov", "CV Pa", "CV Bytes", "CV Sec",
            "CV 1stB", "CV %ov",
        ],
    );
    for (label, first, reval) in matrix_cells(env, server) {
        let mut cols = Vec::with_capacity(10);
        for cell in [&first, &reval] {
            let mut group = Table::cell_columns(cell);
            // Slot the first-response-byte latency between Sec and %ov.
            group.insert(3, format!("{:.2}", cell.first_byte_secs));
            cols.extend(group);
        }
        t.push_row(label, cols);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_three_environments() {
        let t = table1();
        assert_eq!(t.rows.len(), 3);
        assert!(t.render().contains("28.8k"));
    }

    #[test]
    fn matrix_table_surfaces_first_byte() {
        let t = matrix_table(NetEnv::Lan, ServerKind::Apache);
        assert_eq!(t.columns.len(), 10);
        assert_eq!(t.columns[3], "FT 1stB");
        assert_eq!(t.columns[8], "CV 1stB");
        for (label, vals) in &t.rows {
            let first_byte: f64 = vals[3].parse().unwrap();
            let secs: f64 = vals[2].parse().unwrap();
            assert!(
                first_byte > 0.0 && first_byte <= secs,
                "{label}: first byte {first_byte} outside (0, {secs}]"
            );
        }
    }

    #[test]
    fn table3_shape_matches_paper() {
        // The paper's observations for the *untuned* pipelined client:
        // dramatic packet savings over HTTP/1.0, but persistent (serial)
        // HTTP/1.1 costs elapsed time.
        let rows = table3_cells();
        assert_eq!(rows.len(), 3);
        let http10 = &rows[0].cell;
        let persistent = &rows[1].cell;
        let pipelined = &rows[2].cell;

        // Socket counts: 43 vs 1 vs 1.
        assert!(http10.sockets_used >= 40);
        assert_eq!(persistent.sockets_used, 1);
        assert_eq!(pipelined.sockets_used, 1);

        // Packet ordering (paper: 497 / 223 / 83).
        assert!(persistent.packets() < http10.packets() / 2);
        assert!(pipelined.packets() < persistent.packets());

        // Elapsed-time ordering (paper: 1.85 / 4.13 / 3.02): persistent
        // slowest, untuned pipelining in between or better.
        assert!(
            persistent.secs > http10.secs,
            "serialized HTTP/1.1 must lose on elapsed time: {:.2} vs {:.2}",
            persistent.secs,
            http10.secs
        );
        assert!(pipelined.secs < persistent.secs);
    }
}
