//! Ablation sweeps over the design choices the paper discusses tuning:
//!
//! * the pipeline output-buffer threshold ("we experimented with the
//!   output buffer size and found that 1024 bytes is a good compromise");
//! * the flush timer ("it is not clear what the optimal flush time-out
//!   period is");
//! * the explicit application flush versus relying on the timer;
//! * TCP's initial congestion window ("some TCP stacks implement slow
//!   start using one TCP segment whereas others implement it using two").

use crate::env::NetEnv;
use crate::harness::{matrix_spec, run_cells, run_spec, ProtocolSetup, Scenario};
use crate::result::{CellResult, Table};
use httpserver::ServerKind;
use netsim::{SimDuration, TcpConfig};

/// Sweep the pipeline buffer threshold for the revalidation workload;
/// the sweep points run in parallel.
pub fn buffer_threshold_sweep(env: NetEnv) -> Vec<(usize, CellResult)> {
    let thresholds = [128usize, 256, 512, 1024, 2048, 4096];
    let specs = thresholds
        .into_iter()
        .map(|threshold| {
            let mut spec = matrix_spec(
                env,
                ServerKind::Apache,
                ProtocolSetup::Http11Pipelined,
                Scenario::Revalidate,
            );
            spec.client.pipeline_buffer = threshold;
            spec
        })
        .collect();
    thresholds.into_iter().zip(run_cells(specs)).collect()
}

/// Sweep the flush timer with the application flush disabled (the
/// untuned client), revalidation workload; parallel sweep points.
pub fn flush_timer_sweep(env: NetEnv) -> Vec<(u64, CellResult)> {
    let timeouts = [10u64, 50, 200, 1000];
    let specs = timeouts
        .into_iter()
        .map(|ms| {
            let mut spec = matrix_spec(
                env,
                ServerKind::Apache,
                ProtocolSetup::Http11Pipelined,
                Scenario::Revalidate,
            );
            spec.client = spec
                .client
                .with_app_flush(false)
                .with_flush_timeout(SimDuration::from_millis(ms));
            spec
        })
        .collect();
    timeouts.into_iter().zip(run_cells(specs)).collect()
}

/// Application flush on/off, first-time retrieval (where the explicit
/// flush after the HTML request matters most).
pub fn app_flush_ablation(env: NetEnv) -> (CellResult, CellResult) {
    let with = run_spec(matrix_spec(
        env,
        ServerKind::Apache,
        ProtocolSetup::Http11Pipelined,
        Scenario::FirstTime,
    ))
    .cell;
    let mut spec = matrix_spec(
        env,
        ServerKind::Apache,
        ProtocolSetup::Http11Pipelined,
        Scenario::FirstTime,
    );
    spec.client = spec
        .client
        .with_app_flush(false)
        .with_flush_timeout(SimDuration::from_millis(1000));
    let without = run_spec(spec).cell;
    (with, without)
}

/// Initial congestion window of 1 vs 2 segments, first-time retrieval;
/// parallel sweep points.
pub fn initial_cwnd_ablation(env: NetEnv) -> Vec<(u32, CellResult)> {
    let cwnds = [1u32, 2, 4];
    let specs = cwnds
        .into_iter()
        .map(|cwnd| {
            let mut spec = matrix_spec(
                env,
                ServerKind::Apache,
                ProtocolSetup::Http11Pipelined,
                Scenario::FirstTime,
            );
            let tcp = TcpConfig {
                initial_cwnd_segments: cwnd,
                ..TcpConfig::default()
            };
            spec.tcp = Some(tcp);
            spec
        })
        .collect();
    cwnds.into_iter().zip(run_cells(specs)).collect()
}

/// Render every ablation as one report; each sweep runs in the
/// environment where its effect is visible (buffer/timer on the LAN,
/// flush policy and initial cwnd on the latency-dominated WAN).
pub fn ablation_tables() -> Vec<Table> {
    let mut tables = Vec::new();

    let env = NetEnv::Lan;
    let mut t = Table::new(
        &format!(
            "Pipeline buffer threshold sweep - revalidation, {}",
            env.name()
        ),
        &["Pa", "Bytes", "Sec"],
    );
    for (threshold, c) in buffer_threshold_sweep(env) {
        t.push_row(
            &format!("{threshold} B"),
            vec![
                c.packets().to_string(),
                c.bytes.to_string(),
                format!("{:.2}", c.secs),
            ],
        );
    }
    tables.push(t);

    let mut t = Table::new(
        &format!(
            "Flush timer sweep (no app flush) - revalidation, {}",
            env.name()
        ),
        &["Pa", "Sec"],
    );
    for (ms, c) in flush_timer_sweep(env) {
        t.push_row(
            &format!("{ms} ms"),
            vec![c.packets().to_string(), format!("{:.2}", c.secs)],
        );
    }
    tables.push(t);

    let env = NetEnv::Wan;
    let (with, without) = app_flush_ablation(env);
    let mut t = Table::new(
        &format!("Application flush - first-time retrieval, {}", env.name()),
        &["Pa", "Sec"],
    );
    t.push_row(
        "explicit app flush",
        vec![with.packets().to_string(), format!("{:.2}", with.secs)],
    );
    t.push_row(
        "timer only (1s)",
        vec![
            without.packets().to_string(),
            format!("{:.2}", without.secs),
        ],
    );
    tables.push(t);

    let mut t = Table::new(
        &format!(
            "Initial congestion window - first-time retrieval, {}",
            env.name()
        ),
        &["Pa", "Sec"],
    );
    for (cwnd, c) in initial_cwnd_ablation(env) {
        t.push_row(
            &format!("{cwnd} segment(s)"),
            vec![c.packets().to_string(), format!("{:.2}", c.secs)],
        );
    }
    tables.push(t);

    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_buffer_thresholds_complete() {
        for (threshold, c) in buffer_threshold_sweep(NetEnv::Lan) {
            assert_eq!(c.fetched, 43, "threshold {threshold}");
            assert_eq!(c.validated, 43, "threshold {threshold}");
        }
    }

    #[test]
    fn smaller_buffers_cost_packets() {
        let sweep = buffer_threshold_sweep(NetEnv::Lan);
        let tiny = sweep.first().unwrap().1.packets();
        let tuned = sweep.iter().find(|(t, _)| *t == 1024).unwrap().1.packets();
        assert!(
            tiny >= tuned,
            "128B buffer ({tiny}) should not beat 1024B ({tuned})"
        );
    }

    #[test]
    fn slow_flush_timer_hurts_untuned_clients() {
        let sweep = flush_timer_sweep(NetEnv::Lan);
        let fast = sweep.iter().find(|(ms, _)| *ms == 10).unwrap().1.secs;
        let slow = sweep.iter().find(|(ms, _)| *ms == 1000).unwrap().1.secs;
        assert!(
            slow > fast,
            "a 1s flush timer should cost elapsed time: {slow:.2} vs {fast:.2}"
        );
    }

    #[test]
    fn app_flush_beats_timer_only() {
        let (with, without) = app_flush_ablation(NetEnv::Wan);
        assert!(
            with.secs < without.secs,
            "explicit flush should win: {:.2} vs {:.2}",
            with.secs,
            without.secs
        );
    }

    #[test]
    fn larger_initial_cwnd_saves_round_trips_on_wan() {
        let sweep = initial_cwnd_ablation(NetEnv::Wan);
        let one = sweep.iter().find(|(c, _)| *c == 1).unwrap().1.secs;
        let four = sweep.iter().find(|(c, _)| *c == 4).unwrap().1.secs;
        assert!(
            four <= one,
            "bigger initial window cannot be slower: {four:.2} vs {one:.2}"
        );
        for (_, c) in &sweep {
            assert_eq!(c.fetched, 43);
        }
    }
}
