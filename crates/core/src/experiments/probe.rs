//! "Where the time goes": the flight-recorder stall decomposition over
//! the canonical protocol-matrix cells.
//!
//! The paper explains its elapsed-time tables mechanistically — slow
//! start here, a delayed-ACK interaction there, a Nagle stall in the
//! untuned pipeline — but every explanation came from a human reading
//! tcpdump output. This family re-runs the canonical cells with the
//! [`netsim::probe`] flight recorder enabled and reports the automatic
//! [`netsim::StallBuckets`] decomposition: nine disjoint causes that sum
//! to the measured elapsed time, plus the typed [`netsim::Diagnosis`]
//! pathologies.

use crate::env::NetEnv;
use crate::harness::{matrix_spec, run_cells_map, run_spec, ProtocolSetup, Scenario};
use crate::result::Table;
use httpserver::ServerKind;
use netsim::ProbeAnalysis;

/// Protocol setups the stall study decomposes (deflate changes byte
/// counts, not stall mechanics).
pub const SETUPS: [ProtocolSetup; 3] = [
    ProtocolSetup::Http10,
    ProtocolSetup::Http11,
    ProtocolSetup::Http11Pipelined,
];

/// One coordinate of the stall study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbePoint {
    /// Network environment.
    pub env: NetEnv,
    /// Protocol setup.
    pub setup: ProtocolSetup,
    /// Client scenario.
    pub scenario: Scenario,
}

impl ProbePoint {
    /// Stable identifier used in row labels and `PROBE_*.json` names.
    pub fn id(&self) -> String {
        let setup = match self.setup {
            ProtocolSetup::Http10 => "http10x4",
            ProtocolSetup::Http11 => "persistent",
            ProtocolSetup::Http11Pipelined => "pipelined",
            ProtocolSetup::Http11PipelinedDeflate => "pipelined_deflate",
            ProtocolSetup::Multiplexed => "mux",
            ProtocolSetup::MultiplexedPush => "mux_push",
        };
        let scenario = match self.scenario {
            Scenario::FirstTime => "first",
            Scenario::Revalidate => "reval",
        };
        format!("{}_{setup}_{scenario}", self.env.name().to_lowercase())
    }

    /// Row label used in the report table.
    pub fn label(&self) -> String {
        format!("{} {}", self.env.name(), self.setup.label())
    }

    /// The cell specification: the standard Apache protocol-matrix cell
    /// with the flight recorder switched on.
    pub fn spec(&self) -> crate::harness::CellSpec {
        let mut spec = matrix_spec(self.env, ServerKind::Apache, self.setup, self.scenario);
        spec.probe = true;
        spec
    }
}

/// One analysed cell: the coordinate plus the full attribution.
#[derive(Debug, Clone)]
pub struct ProbeCell {
    /// The coordinate.
    pub point: ProbePoint,
    /// Elapsed seconds of the run (trace-derived, same as `CellResult::secs`).
    pub secs: f64,
    /// The full stall attribution.
    pub analysis: ProbeAnalysis,
}

/// The canonical grid: {LAN, WAN, PPP} × {HTTP/1.0×4, persistent,
/// pipelined}, first-time retrieval (9 cells).
pub fn canonical_grid() -> Vec<ProbePoint> {
    let mut points = Vec::new();
    for env in NetEnv::ALL {
        for setup in SETUPS {
            points.push(ProbePoint {
                env,
                setup,
                scenario: Scenario::FirstTime,
            });
        }
    }
    points
}

/// A reduced LAN-only grid for CI smoke runs (3 cells).
pub fn reduced_grid() -> Vec<ProbePoint> {
    canonical_grid()
        .into_iter()
        .filter(|p| p.env == NetEnv::Lan)
        .collect()
}

/// Run a set of probe points on the work-stealing cell pool.
pub fn run_points(points: &[ProbePoint]) -> Vec<ProbeCell> {
    run_points_threaded(points, None)
}

/// [`run_points`] with an explicit thread count (`None` = automatic;
/// the determinism tests compare serial and parallel output).
pub fn run_points_threaded(points: &[ProbePoint], threads: Option<usize>) -> Vec<ProbeCell> {
    let specs = points.iter().map(|p| p.spec()).collect();
    let outputs = run_cells_map(specs, threads, |spec| {
        let out = run_spec(spec);
        (out.cell.secs, out.probe.expect("probe was enabled"))
    });
    points
        .iter()
        .zip(outputs)
        .map(|(&point, (secs, analysis))| ProbeCell {
            point,
            secs,
            analysis,
        })
        .collect()
}

/// Run one probe point.
pub fn run_point(point: ProbePoint) -> ProbeCell {
    run_points(&[point]).remove(0)
}

/// Render the "where the time goes" table: one row per cell, one column
/// per stall bucket, plus the bucket sum and the measured elapsed time.
pub fn report(cells: &[ProbeCell]) -> Table {
    let mut t = Table::new(
        "Where the time goes - Apache - first-time retrieval (secs)",
        &[
            "Conn", "SlowSt", "Nagle", "DelAck", "RTO", "RecvW", "Server", "Wire", "Idle", "Sum",
            "Sec",
        ],
    );
    for c in cells {
        let b = &c.analysis.report.buckets;
        t.push_row(
            &c.point.label(),
            vec![
                format!("{:.2}", b.connection_setup),
                format!("{:.2}", b.slow_start),
                format!("{:.2}", b.nagle_hold),
                format!("{:.2}", b.delayed_ack_wait),
                format!("{:.2}", b.rto_recovery),
                format!("{:.2}", b.recv_window),
                format!("{:.2}", b.server_think),
                format!("{:.2}", b.serialization),
                format!("{:.2}", b.idle),
                format!("{:.2}", b.sum()),
                format!("{:.2}", c.secs),
            ],
        );
    }
    t
}

/// FNV-1a over a byte string (the repo's stable digest hash).
fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A stable digest over the rendered report table *and* every cell's
/// `PROBE_*.json` document — two runs of the same grid must agree
/// bit-for-bit, regardless of thread count.
pub fn report_digest(cells: &[ProbeCell]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325;
    hash = fnv1a(report(cells).render().as_bytes(), hash);
    for c in cells {
        hash = fnv1a(c.analysis.render_json(&c.point.id()).as_bytes(), hash);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shapes_and_ids() {
        let grid = canonical_grid();
        assert_eq!(grid.len(), 9);
        assert_eq!(reduced_grid().len(), 3);
        assert_eq!(grid[0].id(), "lan_http10x4_first");
        let ids: std::collections::BTreeSet<String> = grid.iter().map(|p| p.id()).collect();
        assert_eq!(ids.len(), 9, "ids are unique");
    }

    #[test]
    fn lan_pipelined_buckets_sum_to_elapsed() {
        let cell = run_point(ProbePoint {
            env: NetEnv::Lan,
            setup: ProtocolSetup::Http11Pipelined,
            scenario: Scenario::FirstTime,
        });
        let sum = cell.analysis.report.buckets.sum();
        assert!(
            (sum - cell.secs).abs() <= cell.secs * 0.01,
            "buckets {sum} vs elapsed {}",
            cell.secs
        );
        assert!(cell.analysis.report.connections >= 1);
        assert_eq!(cell.analysis.report.requests, 43);
    }

    #[test]
    fn report_has_one_row_per_cell() {
        let cells = run_points(&reduced_grid());
        let t = report(&cells);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.columns.len(), 11);
    }
}
