//! The Nagle-interaction study.
//!
//! The paper (and Heidemann [7]) found that an application that buffers
//! its output interacts badly with the Nagle algorithm: the sub-MSS tail
//! of a buffered write is held by Nagle until earlier data is ACKed, and
//! the receiver's delayed-ACK timer can hold that ACK for up to 200 ms.
//! With *good* buffering the segments are large and Nagle rarely bites;
//! with per-request writes it bites constantly. The recommendation:
//! buffered pipelined implementations should set TCP_NODELAY.

use crate::env::NetEnv;
use crate::harness::{matrix_spec, run_cells, run_spec, CellSpec, ProtocolSetup, Scenario};
use crate::result::{CellResult, Table};
use httpserver::ServerKind;

/// One Nagle configuration: client/server TCP_NODELAY plus whether the
/// client buffers its pipeline writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NagleCase {
    /// TCP_NODELAY set on both ends.
    pub nodelay: bool,
    /// The client buffers its pipeline writes.
    pub buffered: bool,
}

impl NagleCase {
    /// Human-readable label for reports.
    pub fn label(self) -> String {
        format!(
            "{} / {}",
            if self.buffered {
                "buffered"
            } else {
                "per-request writes"
            },
            if self.nodelay {
                "TCP_NODELAY"
            } else {
                "Nagle on"
            },
        )
    }
}

/// Run the pipelined revalidation under one Nagle configuration.
///
/// Jigsaw is the server under test, as in the paper's tuning story: its
/// per-response writes outpace the client's request stream near the end
/// of the batch, so with Nagle enabled the sub-MSS responses wait on the
/// client's delayed ACK — "the first change to the server" was setting
/// TCP_NODELAY.
pub fn run_nagle_cell(env: NetEnv, case: NagleCase) -> CellResult {
    run_spec(nagle_spec(env, case)).cell
}

fn nagle_spec(env: NetEnv, case: NagleCase) -> CellSpec {
    let mut spec = matrix_spec(
        env,
        ServerKind::Jigsaw,
        ProtocolSetup::Http11Pipelined,
        Scenario::Revalidate,
    );
    spec.client = spec.client.with_nodelay(case.nodelay);
    spec.server = spec.server.with_nodelay(case.nodelay);
    if !case.buffered {
        // Defeat the pipeline buffer: every request is written to the
        // socket on its own.
        spec.client.pipeline_buffer = 1;
    }
    spec
}

/// All four combinations for one environment, run in parallel.
pub fn nagle_cells(env: NetEnv) -> Vec<(NagleCase, CellResult)> {
    let cases: Vec<NagleCase> = [true, false]
        .into_iter()
        .flat_map(|buffered| {
            [true, false]
                .into_iter()
                .map(move |nodelay| NagleCase { nodelay, buffered })
        })
        .collect();
    let specs = cases.iter().map(|&case| nagle_spec(env, case)).collect();
    cases.into_iter().zip(run_cells(specs)).collect()
}

/// Render the study.
pub fn nagle_table(env: NetEnv) -> Table {
    let mut t = Table::new(
        &format!(
            "Nagle interaction - pipelined revalidation, Jigsaw, {}",
            env.name()
        ),
        &["Pa", "Bytes", "Sec"],
    );
    for (case, cell) in nagle_cells(env) {
        t.push_row(
            &case.label(),
            vec![
                cell.packets().to_string(),
                cell.bytes.to_string(),
                format!("{:.3}", cell.secs),
            ],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cases_complete() {
        for (case, cell) in nagle_cells(NetEnv::Lan) {
            assert_eq!(cell.fetched, 43, "{}", case.label());
            assert_eq!(cell.validated, 43, "{}", case.label());
        }
    }

    #[test]
    fn buffered_plus_nagle_stalls_behind_delayed_acks() {
        // The paper: "These two buffering algorithms tend to interfere,
        // and using them together will often cause very significant
        // performance degradation" — the server's buffered sub-MSS
        // response writes wait on the client's delayed ACK (~200 ms).
        let nagle_on = run_nagle_cell(
            NetEnv::Lan,
            NagleCase {
                nodelay: false,
                buffered: true,
            },
        );
        let nagle_off = run_nagle_cell(
            NetEnv::Lan,
            NagleCase {
                nodelay: true,
                buffered: true,
            },
        );
        assert!(
            nagle_on.secs > nagle_off.secs + 0.15,
            "Nagle stall should add ~200ms: {:.3}s vs {:.3}s",
            nagle_on.secs,
            nagle_off.secs
        );
    }

    #[test]
    fn nagle_coalesces_unbuffered_writes() {
        // The flip side (and why the paper's *initial* unbuffered tests
        // saw no Nagle problem): with per-request writes, Nagle does the
        // batching itself — same packet count as explicit buffering —
        // because the pipelined client keeps ACKs flowing.
        let unbuffered_nagle = run_nagle_cell(
            NetEnv::Lan,
            NagleCase {
                nodelay: false,
                buffered: false,
            },
        );
        let buffered = run_nagle_cell(
            NetEnv::Lan,
            NagleCase {
                nodelay: true,
                buffered: true,
            },
        );
        assert!(
            unbuffered_nagle.packets() <= buffered.packets() + 8,
            "Nagle should coalesce the request trickle: {} vs {}",
            unbuffered_nagle.packets(),
            buffered.packets()
        );
    }

    #[test]
    fn unbuffered_writes_cost_packets() {
        let buffered = run_nagle_cell(
            NetEnv::Lan,
            NagleCase {
                nodelay: true,
                buffered: true,
            },
        );
        let unbuffered = run_nagle_cell(
            NetEnv::Lan,
            NagleCase {
                nodelay: true,
                buffered: false,
            },
        );
        assert!(
            unbuffered.packets() > buffered.packets() * 2,
            "per-request writes explode the packet count: {} vs {}",
            unbuffered.packets(),
            buffered.packets()
        );
    }
}
