//! The fleet/scale matrix: N concurrent clients behind one shared
//! bottleneck against one server.
//!
//! The paper's central argument for HTTP/1.1 is *server* scalability —
//! persistent and pipelined connections cut per-client connection and
//! packet counts so one server carries far more users — but its tables
//! measure a single robot on a private link. This family sweeps
//! N ∈ {1, 4, 16, 64, 256} clients × three protocol setups × the three
//! Table 1 environments, every client fetching the Microscape site
//! first-time through one shared bottleneck, and reports the quantities
//! the single-client tables cannot see: the per-client elapsed-time
//! distribution (p50/p95/p99), Jain's fairness index across clients,
//! the server's peak concurrent connection count, SYN-queue drops at the
//! listen socket, and aggregate packets.
//!
//! The N=1 column doubles as a regression anchor: with one client the
//! fleet topology is host-for-host the single-client matrix topology,
//! and its row must reproduce the unimpaired protocol-matrix numbers
//! exactly.

use crate::env::NetEnv;
use crate::harness::{microscape_store, run_fleet, FleetOutput, FleetSpec, ProtocolSetup};
use crate::result::Table;
use httpclient::Workload;
use httpserver::ServerConfig;
use netsim::{SimDuration, TraceMode};

/// Fleet sizes of the matrix.
pub const N_GRID: [usize; 5] = [1, 4, 16, 64, 256];

/// Protocol setups the scale matrix compares (deflate adds nothing to a
/// contention study).
pub const SETUPS: [ProtocolSetup; 3] = [
    ProtocolSetup::Http10,
    ProtocolSetup::Http11,
    ProtocolSetup::Http11Pipelined,
];

/// SYN-queue depth of the fleet server's listen socket. Deep enough that
/// fleets up to 64 clients handshake without loss; the 256-client burst
/// overflows it and must recover by SYN retransmission.
pub const LISTEN_BACKLOG: u32 = 64;

/// One coordinate of the scale matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalePoint {
    /// Network environment of the shared bottleneck.
    pub env: NetEnv,
    /// Protocol setup every client runs.
    pub setup: ProtocolSetup,
    /// Number of concurrent clients.
    pub n_clients: usize,
}

impl ScalePoint {
    /// Bottleneck buffer for this environment: comfortably above one
    /// client's maximum in-flight backlog (a 64 KB receive window), so
    /// the N=1 anchor never drops, while bounding the queue once many
    /// clients contend.
    pub fn buffer_bytes(&self) -> u64 {
        match self.env {
            // Fast links: a generous router buffer.
            NetEnv::Lan | NetEnv::Wan => 256 * 1024,
            // The modem's serial buffer was the scarce resource; keep it
            // above the single-flow window but far below N windows.
            NetEnv::Ppp => 128 * 1024,
        }
    }

    /// The fleet specification for this point.
    pub fn spec(&self) -> FleetSpec {
        let site = webcontent::microscape::site();
        FleetSpec {
            n_clients: self.n_clients,
            env: self.env,
            setup: self.setup,
            server: ServerConfig::apache(80)
                .with_listen_backlog(LISTEN_BACKLOG)
                .with_mux_push(self.setup.push()),
            store: microscape_store(site),
            workload: Workload::Browse {
                start: site.html_path().into(),
            },
            buffer_bytes: Some(self.buffer_bytes()),
            reset_backoff: SimDuration::ZERO,
            tcp: None,
            trace_mode: TraceMode::StatsOnly,
            telemetry: false,
        }
    }

    /// Row label used in reports and digests.
    pub fn label(&self) -> String {
        format!("{} @ N={}", self.setup.label(), self.n_clients)
    }
}

/// The aggregated outcome of one scale cell.
#[derive(Debug, Clone)]
pub struct ScaleCell {
    /// The coordinate.
    pub point: ScalePoint,
    /// Per-client elapsed seconds, in client order.
    pub client_secs: Vec<f64>,
    /// Median per-client elapsed time.
    pub p50: f64,
    /// 95th-percentile per-client elapsed time.
    pub p95: f64,
    /// 99th-percentile per-client elapsed time.
    pub p99: f64,
    /// Jain's fairness index over per-client elapsed times.
    pub jain: f64,
    /// Server peak concurrent connections (application-level).
    pub peak_connections: u64,
    /// SYNs dropped at the server's listen queue.
    pub syn_drops: u64,
    /// Aggregate packets across all clients, both directions.
    pub packets: u64,
    /// Aggregate TCP retransmissions across all clients.
    pub retransmits: u64,
    /// Total objects fetched across the fleet.
    pub fetched: u64,
}

/// Nearest-rank percentile (q in 0..=1) of an unsorted sample.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of an empty sample");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("comparable elapsed times"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Jain's fairness index (Σx)² / (n·Σx²): 1.0 when every client took the
/// same time, approaching 1/n as one client dominates.
pub fn jain_index(samples: &[f64]) -> f64 {
    let n = samples.len() as f64;
    let sum: f64 = samples.iter().sum();
    let sq: f64 = samples.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n * sq)
}

/// Reduce one fleet run to its scale-cell summary.
pub fn summarize(point: ScalePoint, out: &FleetOutput) -> ScaleCell {
    let client_secs: Vec<f64> = out.per_client.iter().map(|c| c.secs).collect();
    ScaleCell {
        point,
        p50: percentile(&client_secs, 0.50),
        p95: percentile(&client_secs, 0.95),
        p99: percentile(&client_secs, 0.99),
        jain: jain_index(&client_secs),
        peak_connections: out.server_stats.peak_connections,
        syn_drops: out.server_sockets.syn_drops,
        packets: out.per_client.iter().map(|c| c.packets()).sum(),
        retransmits: out.per_client.iter().map(|c| c.retransmits).sum(),
        fetched: out.per_client.iter().map(|c| c.fetched).sum(),
        client_secs,
    }
}

/// Run one scale cell.
pub fn run_point(point: ScalePoint) -> ScaleCell {
    let out = run_fleet(point.spec());
    summarize(point, &out)
}

/// Build a matrix over the given axes, env-major then setup then N.
pub fn grid(envs: &[NetEnv], setups: &[ProtocolSetup], ns: &[usize]) -> Vec<ScalePoint> {
    let mut points = Vec::new();
    for &env in envs {
        for &setup in setups {
            for &n_clients in ns {
                points.push(ScalePoint {
                    env,
                    setup,
                    n_clients,
                });
            }
        }
    }
    points
}

/// The full matrix: 3 environments × 3 setups × 5 fleet sizes (45 cells).
pub fn full_grid() -> Vec<ScalePoint> {
    grid(&NetEnv::ALL, &SETUPS, &N_GRID)
}

/// A reduced LAN+WAN grid for smoke tests and CI (18 cells).
pub fn reduced_grid() -> Vec<ScalePoint> {
    grid(&[NetEnv::Lan, NetEnv::Wan], &SETUPS, &[1, 16, 64])
}

/// Run a set of scale points. Fleet cells vary wildly in weight (N=256
/// PPP versus N=1 LAN), so they fan out on the same work-stealing pool
/// the cell runner uses, one fleet per worker.
pub fn run_points(points: &[ScalePoint]) -> Vec<ScaleCell> {
    run_points_threaded(points, None)
}

/// [`run_points`] with an explicit thread count (`None` = automatic;
/// `Some(1)` forces a serial loop — the differential tests compare the
/// two).
pub fn run_points_threaded(points: &[ScalePoint], threads: Option<usize>) -> Vec<ScaleCell> {
    let n = points.len();
    let threads = crate::harness::worker_threads(n).min(threads.unwrap_or(usize::MAX));
    if threads <= 1 || n <= 1 {
        return points.iter().map(|&p| run_point(p)).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<ScaleCell>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, run_point(points[i])));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, cell) in h.join().expect("scale worker panicked") {
                results[i] = Some(cell);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every point produced a cell"))
        .collect()
}

/// Render one table per environment present in `cells`, in grid order.
pub fn report(cells: &[ScaleCell]) -> Vec<Table> {
    let mut tables = Vec::new();
    for env in NetEnv::ALL {
        let group: Vec<&ScaleCell> = cells.iter().filter(|c| c.point.env == env).collect();
        if group.is_empty() {
            continue;
        }
        let mut t = Table::new(
            &format!(
                "Scale - Apache - {} shared bottleneck - first-time fleet",
                env.name()
            ),
            &[
                "P50s", "P95s", "P99s", "Jain", "PeakC", "SynDrop", "Pa", "Rexmit",
            ],
        );
        for c in group {
            t.push_row(
                &c.point.label(),
                vec![
                    format!("{:.2}", c.p50),
                    format!("{:.2}", c.p95),
                    format!("{:.2}", c.p99),
                    format!("{:.3}", c.jain),
                    c.peak_connections.to_string(),
                    c.syn_drops.to_string(),
                    c.packets.to_string(),
                    c.retransmits.to_string(),
                ],
            );
        }
        tables.push(t);
    }
    tables
}

/// FNV-1a over a byte string (the repo's stable digest hash).
fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A stable digest of a rendered scale report — two runs of the same
/// grid must agree bit-for-bit, regardless of thread count.
pub fn report_digest(cells: &[ScaleCell]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325;
    for t in report(cells) {
        hash = fnv1a(t.render().as_bytes(), hash);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shapes() {
        assert_eq!(full_grid().len(), 45);
        assert_eq!(reduced_grid().len(), 18);
    }

    #[test]
    fn percentiles_and_jain() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 0.50), 2.0);
        assert_eq!(percentile(&xs, 0.95), 4.0);
        assert_eq!(percentile(&xs, 0.99), 4.0);
        let even = [2.0, 2.0, 2.0];
        assert!((jain_index(&even) - 1.0).abs() < 1e-12);
        // One dominant client drags Jain toward 1/n.
        let skew = [1.0, 0.0, 0.0, 0.0];
        assert!((jain_index(&skew) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn single_client_lan_fleet_completes() {
        let cell = run_point(ScalePoint {
            env: NetEnv::Lan,
            setup: ProtocolSetup::Http11Pipelined,
            n_clients: 1,
        });
        assert_eq!(cell.fetched, 43);
        assert_eq!(cell.syn_drops, 0);
        assert!(
            (cell.jain - 1.0).abs() < 1e-12,
            "one client is trivially fair"
        );
        assert_eq!(cell.p50, cell.p99);
    }

    #[test]
    fn contention_slows_the_fleet_but_everyone_finishes() {
        let base = run_point(ScalePoint {
            env: NetEnv::Wan,
            setup: ProtocolSetup::Http11Pipelined,
            n_clients: 1,
        });
        let fleet = run_point(ScalePoint {
            env: NetEnv::Wan,
            setup: ProtocolSetup::Http11Pipelined,
            n_clients: 16,
        });
        assert_eq!(fleet.fetched, 16 * 43, "every client fetched the site");
        assert!(
            fleet.p99 > base.p50,
            "16 clients on one bottleneck must be slower than one ({} vs {})",
            fleet.p99,
            base.p50
        );
    }
}
