//! The compression experiments:
//!
//! * §"Changing Web Content Representation": deflating the Microscape
//!   HTML with default settings ("compressed more than a factor of three
//!   from 42K to 11K", ≈19% of the total payload);
//! * §"Further Compression Experiments": a single HTML GET over real
//!   28.8 k modems with V.42bis-style link compression, uncompressed vs
//!   pre-deflated ("Saved using compression: 68.7% of packets, ~64% of
//!   time"), and the tag-case study (lowercase tags compress to ≈.27,
//!   mixed case to ≈.35).

use crate::env::NetEnv;
use crate::harness::{microscape_store, run_spec, CellSpec};
use crate::result::{CellResult, Table};
use flate::{deflate, Level};
use httpclient::{ClientCache, ClientConfig, ProtocolMode, Workload};
use httpserver::{ServerConfig, ServerKind};
use netsim::{HostId, ModemCompressor, SockAddr, TraceMode};

/// Deflate statistics for the Microscape HTML — the paper's headline
/// compression claim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HtmlDeflateStudy {
    /// Size of the page as served.
    pub html_bytes: usize,
    /// Size after deflate at the default level.
    pub deflated_bytes: usize,
    /// Compression ratio of the page as authored (mixed-case tags).
    pub ratio_mixed: f64,
    /// Ratio after rewriting every tag to lowercase.
    pub ratio_lowercase: f64,
    /// Total payload reduction across the whole page fetch.
    pub payload_saving_pct: f64,
}

/// Run the HTML deflate study on the Microscape page.
pub fn html_deflate_study() -> HtmlDeflateStudy {
    let site = webcontent::microscape::site();
    let html = &site.html;
    let deflated = deflate(html.as_bytes(), Level::Default);
    let lowercase = site.html_lowercase();
    let deflated_lower = deflate(lowercase.as_bytes(), Level::Default);

    let total_payload = html.len() + site.images.iter().map(|o| o.body.len()).sum::<usize>();
    let saving = html.len() - deflated.len();

    HtmlDeflateStudy {
        html_bytes: html.len(),
        deflated_bytes: deflated.len(),
        ratio_mixed: deflated.len() as f64 / html.len() as f64,
        ratio_lowercase: deflated_lower.len() as f64 / lowercase.len() as f64,
        payload_saving_pct: saving as f64 * 100.0 / total_payload as f64,
    }
}

/// One row of the §8.2.1 modem experiment: a single GET of the HTML over
/// a 28.8k modem *with V.42bis link compression active* — once with the
/// plain HTML, once with the pre-deflated entity.
pub fn modem_cells(server_kind: ServerKind) -> (CellResult, CellResult) {
    let run_one = |deflate_on: bool| {
        let site = webcontent::microscape::site();
        let store = microscape_store(site);
        let server = match server_kind {
            ServerKind::Jigsaw => ServerConfig::jigsaw(80),
            ServerKind::Apache => ServerConfig::apache(80),
        }
        .with_deflate(deflate_on);
        let addr = SockAddr::new(HostId(1), 80);
        let client =
            ClientConfig::robot(ProtocolMode::Http11Pipelined, addr).with_deflate(deflate_on);
        let spec = CellSpec {
            env: NetEnv::Ppp,
            server,
            store,
            client,
            workload: Workload::FetchList {
                paths: vec![site.html_path().to_string()],
            },
            cache: ClientCache::new(),
            // The modem pair compresses the PPP stream either way.
            link_codec: Some(|| Box::new(ModemCompressor::new())),
            impair: None,
            tcp: None,
            trace_mode: TraceMode::StatsOnly,
            probe: false,
            telemetry: false,
        };
        run_spec(spec).cell
    };
    (run_one(false), run_one(true))
}

/// Render the §8.2.1 table for both servers.
pub fn modem_table() -> Table {
    let mut t = Table::new(
        "Modem compression vs deflate - single HTML GET over 28.8k with V.42bis",
        &["Jigsaw Pa", "Jigsaw Sec", "Apache Pa", "Apache Sec"],
    );
    let (j_plain, j_deflate) = modem_cells(ServerKind::Jigsaw);
    let (a_plain, a_deflate) = modem_cells(ServerKind::Apache);
    t.push_row(
        "Uncompressed HTML",
        vec![
            j_plain.packets().to_string(),
            format!("{:.2}", j_plain.secs),
            a_plain.packets().to_string(),
            format!("{:.2}", a_plain.secs),
        ],
    );
    t.push_row(
        "Compressed HTML",
        vec![
            j_deflate.packets().to_string(),
            format!("{:.2}", j_deflate.secs),
            a_deflate.packets().to_string(),
            format!("{:.2}", a_deflate.secs),
        ],
    );
    let pct = |plain: &CellResult, comp: &CellResult| {
        format!(
            "{:.1}%",
            (1.0 - comp.packets() as f64 / plain.packets() as f64) * 100.0
        )
    };
    let secpct = |plain: &CellResult, comp: &CellResult| {
        format!("{:.1}%", (1.0 - comp.secs / plain.secs) * 100.0)
    };
    t.push_row(
        "Saved using compression",
        vec![
            pct(&j_plain, &j_deflate),
            secpct(&j_plain, &j_deflate),
            pct(&a_plain, &a_deflate),
            secpct(&a_plain, &a_deflate),
        ],
    );
    t
}

/// Render the deflate study table.
pub fn deflate_table() -> Table {
    let s = html_deflate_study();
    let mut t = Table::new("HTML transport compression (zlib defaults)", &["Value"]);
    t.push_row("HTML bytes", vec![s.html_bytes.to_string()]);
    t.push_row("Deflated bytes", vec![s.deflated_bytes.to_string()]);
    t.push_row(
        "Ratio (mixed-case tags)",
        vec![format!("{:.3}", s.ratio_mixed)],
    );
    t.push_row(
        "Ratio (lowercase tags)",
        vec![format!("{:.3}", s.ratio_lowercase)],
    );
    t.push_row(
        "Share of total page payload saved",
        vec![format!("{:.1}%", s.payload_saving_pct)],
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn html_compresses_roughly_3x() {
        let s = html_deflate_study();
        assert!(
            s.ratio_mixed < 0.40,
            "paper: 42K -> ~11K; got ratio {:.3}",
            s.ratio_mixed
        );
        // ~19% of the total payload in the paper; ours depends on the
        // synthetic page but must be in the same region.
        assert!(
            (10.0..30.0).contains(&s.payload_saving_pct),
            "payload saving {:.1}%",
            s.payload_saving_pct
        );
    }

    #[test]
    fn lowercase_tags_compress_better() {
        let s = html_deflate_study();
        assert!(
            s.ratio_lowercase < s.ratio_mixed,
            "paper: .27 vs .35; got {:.3} vs {:.3}",
            s.ratio_lowercase,
            s.ratio_mixed
        );
    }

    #[test]
    fn deflate_beats_modem_compression() {
        // Paper: ~68.7% packet saving, ~64% elapsed-time saving even
        // though the modem compresses the plain HTML too.
        let (plain, deflated) = modem_cells(ServerKind::Apache);
        assert!(plain.packets() > 0 && deflated.packets() > 0);
        let pkt_saving = 1.0 - deflated.packets() as f64 / plain.packets() as f64;
        let sec_saving = 1.0 - deflated.secs / plain.secs;
        assert!(
            pkt_saving > 0.40,
            "packet saving should be large, got {:.2}",
            pkt_saving
        );
        assert!(
            sec_saving > 0.35,
            "time saving should be large, got {:.2}",
            sec_saving
        );
        // And the modem did help the plain run (physical < nominal bytes).
        assert!(plain.physical_bytes < plain.bytes);
    }
}
