//! The content-change experiments: Figure 1 and the CSS replacement
//! analysis, the GIF→PNG / GIF→MNG conversion study, and a full
//! end-to-end browse of the CSS-converted page.

use crate::env::NetEnv;
use crate::harness::{custom_store, microscape_store, run_spec, CellSpec};
use crate::result::{CellResult, Table};
use httpclient::{ClientCache, ClientConfig, ProtocolMode, Workload};
use httpserver::ServerConfig;
use netsim::{HostId, SockAddr, TraceMode};
use webcontent::convert::{convert_site, ConversionReport};
use webcontent::css;
use webcontent::synth::ImageRole;

/// Figure 1: the 682-byte "solutions" GIF and its ~150-byte HTML+CSS
/// replacement.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureOne {
    /// Size of the generated banner GIF.
    pub gif_bytes: usize,
    /// The stylesheet rule, serialized compactly.
    pub css_rule: String,
    /// The in-document replacement markup.
    pub markup: String,
    /// CSS rule plus markup, total bytes.
    pub replacement_bytes: usize,
}

/// Reproduce Figure 1 with the generated "solutions" banner.
pub fn figure1() -> FigureOne {
    let site = webcontent::microscape::site();
    let obj = site
        .object("/images/solutions.gif")
        .expect("solutions banner exists");
    let rule = css::banner_rule("banner");
    let css_rule = css::serialize(&css::Stylesheet { rules: vec![rule] });
    let markup = css::replacement_markup(ImageRole::TextBanner, "banner", "solutions")
        .expect("banners are replaceable");
    FigureOne {
        gif_bytes: obj.body.len(),
        replacement_bytes: css_rule.len() + markup.len(),
        css_rule,
        markup,
    }
}

/// The CSS replacement analysis over the whole page.
pub fn css_analysis_table() -> Table {
    let site = webcontent::microscape::site();
    let analysis = site.css_analysis();
    let mut t = Table::new(
        "CSS1 image replacement analysis (40 static images + 2 animations)",
        &["Value"],
    );
    t.push_row(
        "Images replaceable by HTML+CSS",
        vec![analysis.replaced_count().to_string()],
    );
    t.push_row(
        "HTTP requests eliminated",
        vec![analysis.requests_saved().to_string()],
    );
    t.push_row(
        "Net payload bytes saved",
        vec![analysis.bytes_saved().to_string()],
    );
    t.push_row(
        "Total image bytes on page",
        vec![analysis.total_gif_bytes().to_string()],
    );
    t
}

/// The GIF→PNG / GIF→MNG conversion report.
pub fn conversion_report() -> ConversionReport {
    let site = webcontent::microscape::site();
    ConversionReport::from_conversions(&convert_site(&site.images))
}

/// Render the conversion study.
pub fn conversion_table() -> Table {
    let r = conversion_report();
    let mut t = Table::new(
        "GIF -> PNG / MNG conversion",
        &["GIF bytes", "Converted", "Saved"],
    );
    t.push_row(
        "40 static images (PNG)",
        vec![
            r.static_gif_bytes.to_string(),
            r.static_png_bytes.to_string(),
            r.static_saved().to_string(),
        ],
    );
    t.push_row(
        "2 animations (MNG)",
        vec![
            r.anim_gif_bytes.to_string(),
            r.anim_mng_bytes.to_string(),
            r.anim_saved().to_string(),
        ],
    );
    t.push_row(
        "Images that grew",
        vec![r.grew.to_string(), String::new(), String::new()],
    );
    t
}

/// Simulated browse of the original vs the CSS-converted page over PPP:
/// what style sheets buy end-to-end, HTTP version unchanged.
pub fn css_browse_cells(pipelined: bool) -> (CellResult, CellResult) {
    let site = webcontent::microscape::site();
    let mode = if pipelined {
        ProtocolMode::Http11Pipelined
    } else {
        ProtocolMode::Http10Parallel { max_connections: 4 }
    };
    let addr = SockAddr::new(HostId(1), 80);

    let original = {
        let spec = CellSpec {
            env: NetEnv::Ppp,
            server: ServerConfig::apache(80),
            store: microscape_store(site),
            client: ClientConfig::robot(mode, addr),
            workload: Workload::Browse {
                start: site.html_path().into(),
            },
            cache: ClientCache::new(),
            link_codec: None,
            impair: None,
            tcp: None,
            trace_mode: TraceMode::StatsOnly,
            probe: false,
            telemetry: false,
        };
        run_spec(spec).cell
    };

    let converted = {
        let variant = site.css_variant();
        let mut objects: Vec<(String, Vec<u8>, &'static str)> = vec![(
            "/index.html".to_string(),
            variant.html.clone().into_bytes(),
            "text/html",
        )];
        for obj in &variant.kept {
            objects.push((obj.path.clone(), obj.body.clone(), "image/gif"));
        }
        let spec = CellSpec {
            env: NetEnv::Ppp,
            server: ServerConfig::apache(80),
            store: custom_store(&objects),
            client: ClientConfig::robot(mode, addr),
            workload: Workload::Browse {
                start: "/index.html".into(),
            },
            cache: ClientCache::new(),
            link_codec: None,
            impair: None,
            tcp: None,
            trace_mode: TraceMode::StatsOnly,
            probe: false,
            telemetry: false,
        };
        run_spec(spec).cell
    };
    (original, converted)
}

/// Render the CSS end-to-end comparison.
pub fn css_browse_table() -> Table {
    let (orig, conv) = css_browse_cells(true);
    let mut t = Table::new(
        "First-time browse, PPP, HTTP/1.1 pipelined: original vs CSS-converted page",
        &["Requests", "Pa", "Bytes", "Sec"],
    );
    for (label, c) in [("Original page", &orig), ("CSS-converted page", &conv)] {
        t.push_row(
            label,
            vec![
                c.fetched.to_string(),
                c.packets().to_string(),
                c.bytes.to_string(),
                format!("{:.2}", c.secs),
            ],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_reduction_factor() {
        let f = figure1();
        // Paper: 682-byte GIF vs ~150 bytes of HTML+CSS — a factor > 4.
        assert!(
            f.gif_bytes as f64 / f.replacement_bytes as f64 >= 3.0,
            "{} / {}",
            f.gif_bytes,
            f.replacement_bytes
        );
        assert!(f.css_rule.contains("P.banner"));
        assert!(f.markup.contains("solutions"));
    }

    #[test]
    fn conversion_matches_paper_direction() {
        let r = conversion_report();
        assert!(r.static_saved() > 0, "PNG saves overall");
        assert!(
            r.anim_saved() as f64 / r.anim_gif_bytes as f64 > 0.2,
            "MNG saves substantially"
        );
        assert!(r.grew > 0, "tiny images grow (the sub-200-byte effect)");
    }

    #[test]
    fn css_page_saves_requests_and_time() {
        let (orig, conv) = css_browse_cells(true);
        assert_eq!(orig.fetched, 43);
        assert!(
            conv.fetched < orig.fetched,
            "CSS removes requests: {} -> {}",
            orig.fetched,
            conv.fetched
        );
        assert!(conv.bytes < orig.bytes);
        assert!(conv.secs < orig.secs);
        assert!(conv.packets() < orig.packets());
    }
}
