//! The paper's future-work back-of-envelope: HTTP's text protocol is
//! verbose, and pipelined requests are highly redundant — "the actual
//! number of bytes that changes between requests can be as small as 10%.
//! Therefore, a more compact wire representation for HTTP could increase
//! pipelining's benefit for cache revalidation further up to an
//! additional factor of five or ten."
//!
//! This module quantifies that on the reproduction's own request stream:
//! the byte-level redundancy between consecutive requests, and what a
//! shared-dictionary compressor (deflate over the whole batch) achieves.

use crate::result::Table;
use flate::{deflate, Level};
use httpclient::{ClientConfig, ProtocolMode, RequestStyle};
use httpwire::{ETag, Method, Version};
use netsim::{HostId, SockAddr};

/// The redundancy analysis of one request batch.
#[derive(Debug, Clone, PartialEq)]
pub struct VerbosityStudy {
    /// Requests analyzed.
    pub requests: usize,
    /// Total request bytes on the wire.
    pub total_bytes: usize,
    /// Bytes that differ from the previous request (positional diff),
    /// summed over the batch — the paper's "bytes that change".
    pub changed_bytes: usize,
    /// The whole batch deflated with one shared dictionary.
    pub deflated_bytes: usize,
}

impl VerbosityStudy {
    /// Fraction of bytes that actually change between requests.
    pub fn change_fraction(&self) -> f64 {
        self.changed_bytes as f64 / self.total_bytes as f64
    }

    /// The compaction factor a dictionary coder achieves on the batch.
    pub fn compaction_factor(&self) -> f64 {
        self.total_bytes as f64 / self.deflated_bytes as f64
    }
}

/// Line-wise diff: bytes of `b`'s header lines that do not appear
/// verbatim in `a` — the natural unit of HTTP-request redundancy (most
/// header lines repeat exactly; the request line and validators differ).
fn diff_bytes(a: &[u8], b: &[u8]) -> usize {
    use std::collections::BTreeMap;
    let mut available: BTreeMap<&[u8], usize> = BTreeMap::new();
    for line in a.split(|&c| c == b'\n') {
        *available.entry(line).or_insert(0) += 1;
    }
    let mut changed = 0;
    for line in b.split(|&c| c == b'\n') {
        match available.get_mut(line) {
            Some(n) if *n > 0 => *n -= 1,
            _ => changed += line.len() + 1,
        }
    }
    changed
}

/// Build the 43 revalidation requests the pipelined robot sends and
/// analyze their redundancy.
pub fn revalidation_request_study(style: RequestStyle) -> VerbosityStudy {
    let site = webcontent::microscape::site();
    let addr = SockAddr::new(HostId(1), 80);
    let cfg = ClientConfig::robot(ProtocolMode::Http11Pipelined, addr).with_style(style);

    let mut wires: Vec<Vec<u8>> = Vec::new();
    let mut paths = vec![site.html_path().to_string()];
    paths.extend(webcontent::html::inline_image_sources(&site.html));
    for path in &paths {
        let obj = site.object(path).expect("site object");
        let etag = ETag::derive(&obj.body, obj.mtime);
        let req = cfg
            .style
            .request(Method::Get, path, Version::Http11, &cfg.host)
            .with_header("If-None-Match", etag.to_header_value());
        wires.push(req.to_bytes());
    }

    let total_bytes: usize = wires.iter().map(|w| w.len()).sum();
    let mut changed_bytes = wires[0].len(); // the first has no predecessor
    for pair in wires.windows(2) {
        changed_bytes += diff_bytes(&pair[0], &pair[1]);
    }
    let concatenated: Vec<u8> = wires.concat();
    let deflated_bytes = deflate(&concatenated, Level::Default).len();

    VerbosityStudy {
        requests: wires.len(),
        total_bytes,
        changed_bytes,
        deflated_bytes,
    }
}

/// Render the study for the robot and both browser header profiles.
pub fn verbosity_table() -> Table {
    let mut t = Table::new(
        "HTTP request verbosity - 43 pipelined revalidation requests",
        &[
            "Total B",
            "Changed B",
            "Change %",
            "Deflated B",
            "Compaction",
        ],
    );
    for (label, style) in [
        ("libwww robot", RequestStyle::Robot),
        ("Navigator headers", RequestStyle::Navigator),
        ("MSIE headers", RequestStyle::Explorer),
    ] {
        let s = revalidation_request_study(style);
        t.push_row(
            label,
            vec![
                s.total_bytes.to_string(),
                s.changed_bytes.to_string(),
                format!("{:.0}%", s.change_fraction() * 100.0),
                s.deflated_bytes.to_string(),
                format!("{:.1}x", s.compaction_factor()),
            ],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_are_highly_redundant() {
        let s = revalidation_request_study(RequestStyle::Robot);
        assert_eq!(s.requests, 43);
        // The paper: as little as ~10% of bytes change request-to-request.
        // Ours vary by path + ETag; the fraction must still be small.
        assert!(
            s.change_fraction() < 0.45,
            "change fraction {:.2}",
            s.change_fraction()
        );
        // With verbose product headers the fraction approaches the
        // paper's ~10%.
        let ie = revalidation_request_study(RequestStyle::Explorer);
        assert!(
            ie.change_fraction() < 0.30,
            "IE change fraction {:.2}",
            ie.change_fraction()
        );
        assert!(ie.change_fraction() < s.change_fraction());
    }

    #[test]
    fn dictionary_coding_gains_factor_five_or_more() {
        // "...could increase pipelining's benefit ... up to an additional
        // factor of five or ten".
        let s = revalidation_request_study(RequestStyle::Robot);
        assert!(
            s.compaction_factor() >= 3.0,
            "compaction {:.1}x",
            s.compaction_factor()
        );
    }

    #[test]
    fn verbose_browsers_compact_even_better() {
        // More boilerplate per request = more redundancy for the
        // dictionary to exploit.
        let robot = revalidation_request_study(RequestStyle::Robot);
        let ie = revalidation_request_study(RequestStyle::Explorer);
        assert!(ie.total_bytes > robot.total_bytes);
        assert!(ie.compaction_factor() > robot.compaction_factor());
    }

    #[test]
    fn diff_bytes_behaviour() {
        assert_eq!(diff_bytes(b"abc\ndef\n", b"abc\ndef\n"), 0);
        // One changed line costs its length (+1 for the newline unit).
        assert_eq!(diff_bytes(b"abc\ndef\n", b"abc\ndXf\n"), 4);
        // Reordered identical lines cost nothing.
        assert_eq!(diff_bytes(b"abc\ndef\n", b"def\nabc\n"), 0);
    }
}
