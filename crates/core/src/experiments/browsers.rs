//! Tables 10–11: shipping browsers (Netscape Navigator 4 and Microsoft
//! Internet Explorer 4 betas) over the PPP link against both servers.
//!
//! The browsers are HTTP/1.0 clients with four parallel Keep-Alive
//! connections and much more verbose request headers than the robot.
//! Their revalidation behaviour differs: Navigator conditionally GETs
//! everything with `If-Modified-Since`; IE re-fetches the page body
//! unconditionally and conditions only the images (the paper's Table 10
//! additionally caught an IE/Jigsaw interaction that re-transferred the
//! images too — see EXPERIMENTS.md for why we reproduce only the common
//! behaviour).

use crate::env::NetEnv;
use crate::harness::{microscape_store, primed_cache, run_cells, run_spec, CellSpec};
use crate::result::{CellResult, Table};
use httpclient::{
    ClientCache, ClientConfig, ProtocolMode, RequestStyle, RevalidationStyle, Workload,
};
use httpserver::{ServerConfig, ServerKind};
use netsim::{HostId, SockAddr, TraceMode};

/// The browser under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Browser {
    /// Netscape Navigator 4.0b5.
    Navigator,
    /// Microsoft Internet Explorer 4.0b1.
    Explorer,
}

impl Browser {
    /// Row label.
    pub fn label(self) -> &'static str {
        match self {
            Browser::Navigator => "Netscape Navigator",
            Browser::Explorer => "Internet Explorer",
        }
    }

    fn style(self) -> RequestStyle {
        match self {
            Browser::Navigator => RequestStyle::Navigator,
            Browser::Explorer => RequestStyle::Explorer,
        }
    }

    fn revalidation(self) -> RevalidationStyle {
        // Both browsers use If-Modified-Since conditionals against a
        // well-behaved server (Tables 10/11's Apache rows). The paper's
        // IE-vs-Jigsaw anomaly (full re-transfers from a validator
        // incompatibility) is intentionally not modelled; see
        // EXPERIMENTS.md. `ConditionalGetDateFullHtml` remains available
        // on the client for studying that behaviour.
        RevalidationStyle::ConditionalGetDate
    }
}

/// Build the browser client spec for one scenario.
fn browser_spec(browser: Browser, server_kind: ServerKind, first_time: bool) -> CellSpec {
    let site = webcontent::microscape::site();
    let store = microscape_store(site);
    let server = match server_kind {
        ServerKind::Jigsaw => ServerConfig::jigsaw(80),
        ServerKind::Apache => ServerConfig::apache(80),
    };
    let addr = SockAddr::new(HostId(1), 80);
    let client = ClientConfig::robot(ProtocolMode::Http10Parallel { max_connections: 4 }, addr)
        .with_style(browser.style());

    let (workload, cache) = if first_time {
        (
            Workload::Browse {
                start: site.html_path().into(),
            },
            ClientCache::new(),
        )
    } else {
        (
            Workload::Revalidate {
                start: site.html_path().into(),
                style: browser.revalidation(),
            },
            primed_cache(site),
        )
    };

    CellSpec {
        env: NetEnv::Ppp,
        server,
        store,
        client,
        workload,
        cache,
        link_codec: None,
        impair: None,
        tcp: None,
        trace_mode: TraceMode::StatsOnly,
        probe: false,
        telemetry: false,
    }
}

/// Run one browser cell.
pub fn run_browser_cell(browser: Browser, server: ServerKind, first_time: bool) -> CellResult {
    run_spec(browser_spec(browser, server, first_time)).cell
}

/// All cells of Table 10 (Jigsaw) or Table 11 (Apache), run in parallel.
pub fn browser_cells(server: ServerKind) -> Vec<(Browser, CellResult, CellResult)> {
    let browsers = [Browser::Navigator, Browser::Explorer];
    let specs = browsers
        .into_iter()
        .flat_map(|b| {
            [
                browser_spec(b, server, true),
                browser_spec(b, server, false),
            ]
        })
        .collect();
    let cells = run_cells(specs);
    browsers
        .into_iter()
        .zip(cells.chunks_exact(2))
        .map(|(b, pair)| (b, pair[0], pair[1]))
        .collect()
}

/// Render Table 10 or 11.
pub fn browser_table(server: ServerKind) -> Table {
    let (n, name) = match server {
        ServerKind::Jigsaw => (10, "Jigsaw"),
        ServerKind::Apache => (11, "Apache"),
    };
    let mut t = Table::new(
        &format!("Table {n} - {name} - Navigator and MSIE, Low Bandwidth, High Latency"),
        &[
            "FT Pa", "FT Bytes", "FT Sec", "FT %ov", "CV Pa", "CV Bytes", "CV Sec", "CV %ov",
        ],
    );
    for (b, first, reval) in browser_cells(server) {
        let mut cols = Table::cell_columns(&first);
        cols.extend(Table::cell_columns(&reval));
        t.push_row(b.label(), cols);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn browsers_complete_first_time_fetch() {
        for b in [Browser::Navigator, Browser::Explorer] {
            let cell = run_browser_cell(b, ServerKind::Apache, true);
            assert_eq!(cell.fetched, 43, "{b:?}");
            assert!(cell.body_bytes > 160_000, "{b:?}");
        }
    }

    #[test]
    fn navigator_revalidation_transfers_no_bodies() {
        let cell = run_browser_cell(Browser::Navigator, ServerKind::Apache, false);
        assert_eq!(cell.fetched, 43);
        assert_eq!(cell.validated, 43);
        assert_eq!(cell.body_bytes, 0);
    }

    #[test]
    fn explorer_revalidates_like_navigator_but_chattier() {
        let ie = run_browser_cell(Browser::Explorer, ServerKind::Apache, false);
        let nav = run_browser_cell(Browser::Navigator, ServerKind::Apache, false);
        assert_eq!(ie.fetched, 43);
        assert_eq!(ie.validated, 43);
        assert!(
            ie.bytes > nav.bytes,
            "IE's headers cost bytes: {} vs {}",
            ie.bytes,
            nav.bytes
        );
    }

    #[test]
    fn explorer_is_chattier_than_navigator() {
        // Table 10/11: IE's verbose headers cost bytes.
        let nav = run_browser_cell(Browser::Navigator, ServerKind::Apache, true);
        let ie = run_browser_cell(Browser::Explorer, ServerKind::Apache, true);
        assert!(
            ie.bytes > nav.bytes,
            "IE ({}) vs Nav ({})",
            ie.bytes,
            nav.bytes
        );
    }

    #[test]
    fn browsers_lose_to_pipelined_robot_on_revalidation() {
        // The paper's implicit comparison: Table 10/11 CV vs Tables 8/9
        // CV pipelined — the browsers use several times the packets.
        let nav = run_browser_cell(Browser::Navigator, ServerKind::Apache, false);
        let robot = crate::harness::run_matrix_cell(
            NetEnv::Ppp,
            ServerKind::Apache,
            crate::harness::ProtocolSetup::Http11Pipelined,
            crate::harness::Scenario::Revalidate,
        );
        assert!(nav.packets() > robot.packets() * 3);
    }
}
