//! Loss/jitter robustness: how the paper's protocol comparison shifts
//! once the network stops being perfect.
//!
//! The paper measured HTTP/1.0 (4 parallel connections), serialized
//! HTTP/1.1 and pipelined HTTP/1.1 over clean links. This family reruns
//! that matrix across a grid of packet-loss rates (uniform Bernoulli and
//! Gilbert–Elliott bursts) and a jitter/reordering study, reporting
//! elapsed-time inflation relative to the zero-loss baseline together
//! with the retransmission and drop counts behind it.
//!
//! Pipelining concentrates the whole page on a single TCP connection, so
//! every loss event stalls *all* outstanding objects (head-of-line
//! blocking), whereas HTTP/1.0's four parallel connections localize each
//! loss — the interesting question is at what loss rate that redundancy
//! overtakes pipelining's packet savings.
//!
//! Everything is seeded-deterministic: each grid point derives its
//! impairment seed from its own coordinates, so any cell can be re-run
//! bit-identically in isolation.

use crate::env::NetEnv;
use crate::harness::{matrix_spec, run_cells, CellSpec, ProtocolSetup, Scenario};
use crate::result::{CellResult, Table};
use httpserver::ServerKind;
use netsim::{CcVariant, ImpairConfig, JitterModel, LossModel, SimDuration};

/// Loss rates of the grid, in percent.
pub const LOSS_GRID_PCT: [f64; 4] = [0.0, 0.5, 2.0, 5.0];

/// Mean burst length (packets) of the Gilbert–Elliott shape.
pub const BURST_LEN: f64 = 4.0;

/// Protocol setups the robustness grid compares (deflate adds nothing to
/// a loss study).
pub const SETUPS: [ProtocolSetup; 3] = [
    ProtocolSetup::Http10,
    ProtocolSetup::Http11,
    ProtocolSetup::Http11Pipelined,
];

/// Both client scenarios.
pub const SCENARIOS: [Scenario; 2] = [Scenario::FirstTime, Scenario::Revalidate];

/// How loss events are distributed over time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LossShape {
    /// Independent per-packet (Bernoulli) loss.
    Uniform,
    /// Gilbert–Elliott bursts with mean length [`BURST_LEN`].
    Burst,
}

impl LossShape {
    /// Both shapes.
    pub const ALL: [LossShape; 2] = [LossShape::Uniform, LossShape::Burst];

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            LossShape::Uniform => "uniform",
            LossShape::Burst => "burst",
        }
    }

    /// The loss model for a mean loss rate in percent.
    pub fn model(self, loss_pct: f64) -> LossModel {
        match self {
            LossShape::Uniform => LossModel::Bernoulli {
                p: loss_pct / 100.0,
            },
            LossShape::Burst => LossModel::bursty(loss_pct / 100.0, BURST_LEN),
        }
    }
}

/// One coordinate of the robustness grid.
#[derive(Debug, Clone, Copy)]
pub struct RobustnessPoint {
    /// Network environment.
    pub env: NetEnv,
    /// Protocol setup under test.
    pub setup: ProtocolSetup,
    /// First fetch or cache validation.
    pub scenario: Scenario,
    /// Mean packet loss in percent.
    pub loss_pct: f64,
    /// Loss distribution shape.
    pub shape: LossShape,
    /// Congestion-control variant on both endpoints. [`CcVariant::Reno`]
    /// is the seed behavior and leaves seeds, labels and specs untouched
    /// so existing grid digests stay bit-identical.
    pub cc: CcVariant,
}

/// FNV-1a over a byte string — the stable seed/digest hash used here.
fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

impl RobustnessPoint {
    /// A stable per-point impairment seed derived from the coordinates,
    /// so any cell can be reproduced in isolation.
    /// The seed deliberately ignores [`Self::cc`]: variants compared at
    /// the same coordinate face the identical impairment draw sequence,
    /// so measured differences are recovery behavior, not luck.
    pub fn seed(&self) -> u64 {
        let key = format!(
            "{}|{}|{}|{:.3}|{}",
            self.env.name(),
            self.setup.label(),
            self.scenario.label(),
            self.loss_pct,
            self.shape.label(),
        );
        fnv1a(key.as_bytes(), FNV_OFFSET)
    }

    /// The impairment pipeline for this point. Zero loss still installs
    /// an (inert) pipeline — `Bernoulli {{ p: 0 }}` draws per packet but
    /// never drops — so the baseline row exercises the same code path.
    pub fn impairment(&self) -> ImpairConfig {
        ImpairConfig::none()
            .with_seed(self.seed())
            .with_loss(self.shape.model(self.loss_pct))
    }

    /// The cell specification: the standard Apache protocol-matrix cell
    /// with this point's impairment on the link.
    pub fn spec(&self) -> CellSpec {
        let mut spec = matrix_spec(self.env, ServerKind::Apache, self.setup, self.scenario);
        spec.impair = Some(self.impairment());
        if self.cc != CcVariant::Reno {
            spec.tcp = Some(netsim::TcpConfig {
                cc: self.cc,
                ..Default::default()
            });
        }
        spec
    }

    /// Row label used in reports and digests.
    pub fn label(&self) -> String {
        let mut label = format!(
            "{} @ {:.1}% {}",
            self.setup.label(),
            self.loss_pct,
            self.shape.label()
        );
        if self.cc != CcVariant::Reno {
            label.push_str(&format!(" [{}]", self.cc.label()));
        }
        label
    }
}

/// One measured grid point.
#[derive(Debug, Clone, Copy)]
pub struct RobustnessCell {
    /// The coordinate.
    pub point: RobustnessPoint,
    /// Its measurements.
    pub cell: CellResult,
}

/// Build a grid over the given axes. Zero-loss points appear once
/// (uniform shape only): with no loss events the shape is meaningless
/// and duplicate baselines would skew the tables.
pub fn grid(
    envs: &[NetEnv],
    losses_pct: &[f64],
    setups: &[ProtocolSetup],
    scenarios: &[Scenario],
) -> Vec<RobustnessPoint> {
    let mut points = Vec::new();
    for &env in envs {
        for &scenario in scenarios {
            for &setup in setups {
                for &loss_pct in losses_pct {
                    let shapes: &[LossShape] = if loss_pct == 0.0 {
                        &[LossShape::Uniform]
                    } else {
                        &LossShape::ALL
                    };
                    for &shape in shapes {
                        points.push(RobustnessPoint {
                            env,
                            setup,
                            scenario,
                            loss_pct,
                            shape,
                            cc: CcVariant::Reno,
                        });
                    }
                }
            }
        }
    }
    points
}

/// The full grid: every environment, every loss rate, both shapes, three
/// protocol setups, both scenarios (126 cells).
pub fn full_grid() -> Vec<RobustnessPoint> {
    grid(&NetEnv::ALL, &LOSS_GRID_PCT, &SETUPS, &SCENARIOS)
}

/// A reduced WAN-only grid for smoke tests and CI (18 cells).
pub fn reduced_grid() -> Vec<RobustnessPoint> {
    grid(&[NetEnv::Wan], &[0.0, 2.0], &SETUPS, &SCENARIOS)
}

/// Run a set of grid points (parallel via [`run_cells`]).
pub fn run_points(points: &[RobustnessPoint]) -> Vec<RobustnessCell> {
    let specs = points.iter().map(|p| p.spec()).collect();
    points
        .iter()
        .zip(run_cells(specs))
        .map(|(&point, cell)| RobustnessCell { point, cell })
        .collect()
}

/// Elapsed-time inflation of `cell` relative to the zero-loss baseline
/// for the same (env, setup, scenario), in percent. `None` when the
/// baseline is missing from the set.
pub fn inflation_pct(cells: &[RobustnessCell], of: &RobustnessCell) -> Option<f64> {
    let base = cells.iter().find(|c| {
        c.point.env == of.point.env
            && c.point.setup == of.point.setup
            && c.point.scenario == of.point.scenario
            && c.point.cc == of.point.cc
            && c.point.loss_pct == 0.0
    })?;
    (base.cell.secs > 0.0).then(|| (of.cell.secs / base.cell.secs - 1.0) * 100.0)
}

/// Render one table per (environment, scenario) present in `cells`, in
/// grid order: packet count, retransmissions, drops (total and split by
/// reason, loss/outage/queue), elapsed seconds and inflation over the
/// zero-loss row.
pub fn report(cells: &[RobustnessCell]) -> Vec<Table> {
    let mut tables = Vec::new();
    for env in NetEnv::ALL {
        for scenario in SCENARIOS {
            let group: Vec<&RobustnessCell> = cells
                .iter()
                .filter(|c| c.point.env == env && c.point.scenario == scenario)
                .collect();
            if group.is_empty() {
                continue;
            }
            let mut t = Table::new(
                &format!(
                    "Robustness - Apache - {} - {} under packet loss",
                    env.name(),
                    scenario.label()
                ),
                &["Pa", "Rexmit", "Drops", "L/O/Q", "Sec", "Infl%"],
            );
            for c in group {
                let infl = inflation_pct(cells, c)
                    .map(|v| format!("{v:+.1}"))
                    .unwrap_or_else(|| "-".to_string());
                t.push_row(
                    &c.point.label(),
                    vec![
                        c.cell.packets().to_string(),
                        c.cell.retransmits.to_string(),
                        c.cell.drops.to_string(),
                        format!(
                            "{}/{}/{}",
                            c.cell.drops_loss, c.cell.drops_outage, c.cell.drops_queue
                        ),
                        format!("{:.2}", c.cell.secs),
                        infl,
                    ],
                );
            }
            tables.push(t);
        }
    }
    tables
}

/// A stable digest of a rendered robustness report — two runs of the
/// same grid must agree bit-for-bit, regardless of thread count.
pub fn report_digest(cells: &[RobustnessCell]) -> u64 {
    let mut hash = FNV_OFFSET;
    for t in report(cells) {
        hash = fnv1a(t.render().as_bytes(), hash);
    }
    hash
}

// ---------------------------------------------------------------------
// Jitter / reordering study
// ---------------------------------------------------------------------

/// Jitter magnitudes of the study, in milliseconds (uniform 0..max, with
/// reordering allowed).
pub const JITTER_GRID_MS: [u64; 3] = [0, 5, 25];

/// One coordinate of the jitter study: WAN first-time retrieval with
/// uniform delay jitter and reordering enabled, zero loss.
#[derive(Debug, Clone, Copy)]
pub struct JitterPoint {
    /// Protocol setup under test.
    pub setup: ProtocolSetup,
    /// Maximum extra per-packet delay, in milliseconds.
    pub jitter_ms: u64,
}

impl JitterPoint {
    /// Stable per-point seed.
    pub fn seed(&self) -> u64 {
        let key = format!("jitter|{}|{}", self.setup.label(), self.jitter_ms);
        fnv1a(key.as_bytes(), FNV_OFFSET)
    }

    /// The cell specification.
    pub fn spec(&self) -> CellSpec {
        let mut spec = matrix_spec(
            NetEnv::Wan,
            ServerKind::Apache,
            self.setup,
            Scenario::FirstTime,
        );
        let mut impair = ImpairConfig::none().with_seed(self.seed());
        if self.jitter_ms > 0 {
            impair = impair
                .with_jitter(JitterModel::Uniform {
                    min: SimDuration::ZERO,
                    max: SimDuration::from_millis(self.jitter_ms),
                })
                .with_reorder(true);
        }
        spec.impair = Some(impair);
        spec
    }
}

/// Run the jitter study: every setup × every jitter magnitude.
pub fn jitter_study() -> Vec<(JitterPoint, CellResult)> {
    let points: Vec<JitterPoint> = SETUPS
        .iter()
        .flat_map(|&setup| {
            JITTER_GRID_MS
                .iter()
                .map(move |&jitter_ms| JitterPoint { setup, jitter_ms })
        })
        .collect();
    let specs = points.iter().map(|p| p.spec()).collect();
    points.into_iter().zip(run_cells(specs)).collect()
}

/// Render the jitter study.
pub fn jitter_table(results: &[(JitterPoint, CellResult)]) -> Table {
    let mut t = Table::new(
        "Robustness - Apache - WAN first-time retrieval under jitter/reordering",
        &["Pa", "Rexmit", "Reorders", "Sec"],
    );
    for (p, cell) in results {
        t.push_row(
            &format!("{} @ jitter 0..{}ms", p.setup.label(), p.jitter_ms),
            vec![
                cell.packets().to_string(),
                cell.retransmits.to_string(),
                cell.reorders.to_string(),
                format!("{:.2}", cell.secs),
            ],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_shape() {
        let g = full_grid();
        // 3 envs x 2 scenarios x 3 setups x (1 + 3*2) loss-shape combos.
        assert_eq!(g.len(), 126);
        // Zero-loss points exist exactly once per (env, scenario, setup).
        let zeros = g.iter().filter(|p| p.loss_pct == 0.0).count();
        assert_eq!(zeros, 18);
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        let g = reduced_grid();
        let seeds: Vec<u64> = g.iter().map(|p| p.seed()).collect();
        let again: Vec<u64> = g.iter().map(|p| p.seed()).collect();
        assert_eq!(seeds, again, "seed derivation is pure");
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "every point gets its own seed");
    }

    #[test]
    fn zero_loss_impairment_is_inert_but_installed() {
        let p = RobustnessPoint {
            env: NetEnv::Wan,
            setup: ProtocolSetup::Http11Pipelined,
            scenario: Scenario::FirstTime,
            loss_pct: 0.0,
            shape: LossShape::Uniform,
            cc: CcVariant::Reno,
        };
        let imp = p.impairment();
        assert!(
            !imp.is_passthrough(),
            "zero-loss rows still run the pipeline"
        );
        assert_eq!(imp.loss, LossModel::Bernoulli { p: 0.0 });
    }
}
