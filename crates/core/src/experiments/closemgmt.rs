//! The connection-management study (§"Connection Management").
//!
//! A server may close a persistent connection between any two responses;
//! the paper shows why it must close each half *independently* (stop
//! sending, keep draining) rather than closing both at once: the naive
//! close RSTs the client, and the RST destroys responses the client's
//! TCP had already received but not yet delivered. The client then
//! cannot tell which requests succeeded and must re-fetch defensively.

use crate::env::NetEnv;
use crate::harness::{matrix_spec, run_cells, run_spec, CellSpec, ProtocolSetup, Scenario};
use crate::result::{CellResult, Table};
use httpserver::ServerKind;

/// Outcome of a pipelined first-time fetch against a server that closes
/// after `limit` requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloseOutcome {
    /// Metrics of the run.
    pub cell: CellResult,
    /// Whether the server closed naively.
    pub naive: bool,
    /// Requests served per connection before closing.
    pub limit: u32,
}

/// Run the experiment: server closes after `limit` requests, either
/// naively (both halves at once) or correctly (half-close + drain).
pub fn run_close_cell(env: NetEnv, limit: u32, naive: bool) -> CloseOutcome {
    CloseOutcome {
        cell: run_spec(close_spec(env, limit, naive)).cell,
        naive,
        limit,
    }
}

fn close_spec(env: NetEnv, limit: u32, naive: bool) -> CellSpec {
    let mut spec = matrix_spec(
        env,
        ServerKind::Apache,
        ProtocolSetup::Http11Pipelined,
        Scenario::FirstTime,
    );
    spec.server = spec.server.with_max_requests(limit).with_naive_close(naive);
    spec
}

/// Compare unlimited / graceful-limited / naive-limited servers; the
/// three variants run in parallel.
pub fn close_study(env: NetEnv, limit: u32) -> (CellResult, CloseOutcome, CloseOutcome) {
    let specs = vec![
        matrix_spec(
            env,
            ServerKind::Apache,
            ProtocolSetup::Http11Pipelined,
            Scenario::FirstTime,
        ),
        close_spec(env, limit, false),
        close_spec(env, limit, true),
    ];
    let mut cells = run_cells(specs).into_iter();
    let unlimited = cells.next().unwrap();
    let graceful = CloseOutcome {
        cell: cells.next().unwrap(),
        naive: false,
        limit,
    };
    let naive = CloseOutcome {
        cell: cells.next().unwrap(),
        naive: true,
        limit,
    };
    (unlimited, graceful, naive)
}

/// Render the study.
pub fn close_table(env: NetEnv, limit: u32) -> Table {
    let (unlimited, graceful, naive) = close_study(env, limit);
    let mut t = Table::new(
        &format!(
            "Connection management - pipelined first-time fetch, server closes after {limit} requests ({})",
            env.name()
        ),
        &["Pa", "Sec", "Conns", "Retries", "RSTs seen"],
    );
    for (label, c) in [
        ("No limit", &unlimited),
        ("Limit, independent half-close", &graceful.cell),
        ("Limit, naive close", &naive.cell),
    ] {
        t.push_row(
            label,
            vec![
                c.packets().to_string(),
                format!("{:.2}", c.secs),
                c.sockets_used.to_string(),
                c.retries.to_string(),
                c.resets.to_string(),
            ],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_force_reconnects_but_work_completes() {
        let (unlimited, graceful, naive) = close_study(NetEnv::Ppp, 5);
        assert_eq!(unlimited.fetched, 43);
        assert_eq!(graceful.cell.fetched, 43);
        assert_eq!(
            naive.cell.fetched, 43,
            "all objects recovered even after RSTs"
        );
        assert_eq!(unlimited.sockets_used, 1);
        // 43 requests / 5 per connection => at least 9 connections.
        assert!(
            graceful.cell.sockets_used >= 8,
            "{}",
            graceful.cell.sockets_used
        );
    }

    #[test]
    fn naive_close_causes_resets_and_waste() {
        let (_, graceful, naive) = close_study(NetEnv::Ppp, 5);
        assert!(
            naive.cell.resets > 0,
            "naive close must RST the pipelined client"
        );
        assert_eq!(graceful.cell.resets, 0, "correct close never resets");
        // The naive server wastes work: retried requests and packets.
        assert!(naive.cell.retries >= graceful.cell.retries);
    }

    #[test]
    fn limits_cost_packets_versus_unlimited() {
        let (unlimited, graceful, _) = close_study(NetEnv::Ppp, 5);
        assert!(
            graceful.cell.packets() > unlimited.packets(),
            "extra handshakes and slow starts: {} vs {}",
            graceful.cell.packets(),
            unlimited.packets()
        );
    }
}
