//! The fleet observatory: render telemetry time-series as ASCII
//! sparkline timelines, and package the deterministic smoke artifacts
//! (JSON, CSV, pcapng) the CI gate compares byte-for-byte.
//!
//! Two scenes anchor the report:
//!
//! * **SYN burst** — the scale family's N=256 HTTP/1.0 LAN fleet slams
//!   a 64-entry listen backlog; the timeline shows the server's accept
//!   curve, the SYN-drop counter climbing during the burst, and the
//!   bottleneck queue draining.
//! * **RTO stall** — the robustness family's WAN pipelined 2%-loss cell
//!   run per congestion-control variant; cwnd timelines make the
//!   difference visible that the elapsed-time tables only imply (Reno's
//!   collapse vs NewReno/SACK riding through), and the same run exports
//!   a pcapng capture Wireshark opens directly.
//!
//! All rendering is integer arithmetic over the sink's tick/point data,
//! so the report is deterministic byte-for-byte.

use crate::env::NetEnv;
use crate::harness::{run_fleet, run_spec, ProtocolSetup, Scenario};
use crate::result::Table;
use netsim::telemetry::{Point, SeriesData, TelemetrySink};
use netsim::{CcVariant, HostId, Metric, Scope};

use super::robustness::{LossShape, RobustnessPoint};
use super::scale::ScalePoint;

/// Timeline width in columns.
pub const COLS: usize = 64;

const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render values as a Unicode block sparkline, scaled against the
/// maximum with integer arithmetic (`level = v·7 / max`).
pub fn sparkline(values: &[u64]) -> String {
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| BLOCKS[(v * 7).checked_div(max).unwrap_or(0) as usize])
        .collect()
}

/// Resample a gauge's sample-and-hold points onto `cols` columns
/// covering ticks `0..ticks`: each column shows the gauge's value at the
/// end of its tick range (0 before the first point).
pub fn resample_gauge(points: &[Point], ticks: u64, cols: usize) -> Vec<u64> {
    let ticks = ticks.max(1);
    let mut out = Vec::with_capacity(cols);
    let mut idx = 0;
    let mut held = 0;
    for c in 0..cols {
        // End tick of this column, exclusive.
        let end = (c as u64 + 1) * ticks / cols as u64;
        while idx < points.len() && points[idx].tick < end {
            held = points[idx].value;
            idx += 1;
        }
        out.push(held);
    }
    out
}

/// Resample a counter's cumulative points onto `cols` columns as
/// per-column increments (a rate view of the counter).
pub fn resample_counter(points: &[Point], ticks: u64, cols: usize) -> Vec<u64> {
    let totals = resample_gauge(points, ticks, cols);
    let mut out = Vec::with_capacity(cols);
    let mut prev = 0;
    for t in totals {
        out.push(t - prev);
        prev = t;
    }
    out
}

/// Highest tick index recorded in any time series of the sink.
pub fn last_tick(sink: &TelemetrySink) -> u64 {
    sink.series()
        .iter()
        .flat_map(|s| s.data.points().last())
        .map(|p| p.tick)
        .max()
        .unwrap_or(0)
}

fn timeline_row(out: &mut String, label: &str, values: &[u64], unit: &str) {
    let max = values.iter().copied().max().unwrap_or(0);
    out.push_str(&format!(
        "  {label:<26} {}  peak {max}{unit}\n",
        sparkline(values)
    ));
}

fn gauge_points(sink: &TelemetrySink, scope: Scope, metric: Metric) -> &[Point] {
    sink.get(scope, metric).map_or(&[], SeriesData::points)
}

/// The SYN-burst scene: N clients slam the server's bounded listen
/// backlog. Returns the rendered timeline block.
pub fn syn_burst_timeline(n_clients: usize) -> String {
    let point = ScalePoint {
        env: NetEnv::Lan,
        setup: ProtocolSetup::Http10,
        n_clients,
    };
    let mut spec = point.spec();
    spec.telemetry = true;
    let out = run_fleet(spec);
    let sink = out.sim.telemetry();
    let server = out.server_host;
    let ticks = last_tick(sink) + 1;
    let tick_ms = sink.tick_ns() / 1_000_000;

    let mut s = String::new();
    s.push_str(&format!(
        "--- SYN burst: {} HTTP/1.0 clients vs listen backlog {} (LAN, {} ticks x {} ms) ---\n",
        n_clients,
        super::scale::LISTEN_BACKLOG,
        ticks,
        tick_ms,
    ));
    timeline_row(
        &mut s,
        "server connections",
        &resample_gauge(
            gauge_points(sink, Scope::Host(server), Metric::ServerConnections),
            ticks,
            COLS,
        ),
        "",
    );
    timeline_row(
        &mut s,
        "syn drops (per col)",
        &resample_counter(
            gauge_points(sink, Scope::Host(server), Metric::SynDrops),
            ticks,
            COLS,
        ),
        "",
    );
    // The shared bottleneck is kernel link 0; spokes sit on the `a`
    // side, so a>b is client->server (the SYN direction) and b>a the
    // response direction.
    for (dir, a_to_b) in [("queue c->s bytes", true), ("queue s->c bytes", false)] {
        timeline_row(
            &mut s,
            dir,
            &resample_gauge(
                gauge_points(sink, Scope::Link { link: 0, a_to_b }, Metric::QueueBytes),
                ticks,
                COLS,
            ),
            "B",
        );
    }
    timeline_row(
        &mut s,
        "server buffered bytes",
        &resample_gauge(
            gauge_points(sink, Scope::Host(server), Metric::ServerBufferedBytes),
            ticks,
            COLS,
        ),
        "B",
    );
    let total_syn_drops = out.server_sockets.syn_drops;
    s.push_str(&format!("  total SYN drops: {total_syn_drops}\n"));
    s
}

/// The congestion-control variants the RTO-stall scene compares.
pub const RTO_VARIANTS: [CcVariant; 3] = [CcVariant::Reno, CcVariant::NewReno, CcVariant::Sack];

/// The RTO-stall coordinate: WAN pipelined first fetch at 2% uniform
/// loss (the robustness family's head-of-line-blocking showcase).
pub fn rto_point(cc: CcVariant) -> RobustnessPoint {
    RobustnessPoint {
        env: NetEnv::Wan,
        setup: ProtocolSetup::Http11Pipelined,
        scenario: Scenario::FirstTime,
        loss_pct: 2.0,
        shape: LossShape::Uniform,
        cc,
    }
}

/// First connection of `host` carrying the given per-connection metric,
/// in key order.
fn first_conn_points(sink: &TelemetrySink, host: HostId, metric: Metric) -> &[Point] {
    sink.series()
        .iter()
        .find(|s| {
            s.key.metric == metric
                && matches!(s.key.scope, Scope::Conn { host: h, .. } if h == host)
        })
        .map_or(&[], |s| s.data.points())
}

/// The RTO-stall scene: one cwnd timeline per congestion-control
/// variant over the identical loss draw sequence, plus recovery-episode
/// counts. Returns the rendered block.
pub fn rto_stall_timeline() -> String {
    let mut s = String::new();
    s.push_str("--- RTO stall: WAN pipelined @ 2.0% uniform loss, client cwnd by CC variant ---\n");
    for cc in RTO_VARIANTS {
        let mut spec = rto_point(cc).spec();
        spec.telemetry = true;
        let out = run_spec(spec);
        let sink = out.sim.telemetry();
        let ticks = last_tick(sink) + 1;
        let cwnd = resample_gauge(
            first_conn_points(sink, out.client_host, Metric::Cwnd),
            ticks,
            COLS,
        );
        let recoveries = sink
            .get(Scope::Global, Metric::CcRecoveries(cc))
            .map_or(0, |d| match d {
                SeriesData::Counter { total, .. } => *total,
                _ => 0,
            });
        let max = cwnd.iter().copied().max().unwrap_or(0);
        s.push_str(&format!(
            "  cwnd {:<8} {}  peak {}B, {} recoveries, {:.2}s\n",
            cc.label(),
            sparkline(&cwnd),
            max,
            recoveries,
            out.cell.secs,
        ));
    }
    s
}

/// The full observatory report for EXPERIMENTS.md.
pub fn report(n_clients: usize) -> String {
    let mut s = String::new();
    s.push_str(&syn_burst_timeline(n_clients));
    s.push('\n');
    s.push_str(&rto_stall_timeline());
    s
}

/// A summary table of telemetry volume for a handful of representative
/// cells — demonstrates the `CellResult` roll-up.
pub fn volume_table() -> Table {
    let mut t = Table::new(
        "Telemetry volume (series / points / histogram samples)",
        &["Series", "Points", "HistSamples"],
    );
    for cc in RTO_VARIANTS {
        let mut spec = rto_point(cc).spec();
        spec.telemetry = true;
        let out = run_spec(spec);
        let sum = out.cell.telemetry.expect("telemetry enabled");
        t.push_row(
            &format!("WAN pipelined 2% [{}]", cc.label()),
            vec![
                sum.series.to_string(),
                sum.points.to_string(),
                sum.hist_samples.to_string(),
            ],
        );
    }
    t
}

/// The deterministic artifacts the `telemetry_smoke` CI gate compares:
/// JSON and pcapng from a single WAN loss cell, CSV from a small fleet.
pub struct SmokeArtifacts {
    /// Telemetry series of the WAN cell, rendered as JSON.
    pub json: String,
    /// Telemetry series of the N=8 LAN fleet, rendered as CSV.
    pub csv: String,
    /// pcapng capture of the WAN cell.
    pub pcapng: Vec<u8>,
}

/// Produce the smoke artifacts (reduced grid: one cell + one small
/// fleet). Two invocations must agree byte-for-byte.
pub fn smoke_artifacts() -> SmokeArtifacts {
    let mut spec = rto_point(CcVariant::NewReno).spec();
    spec.telemetry = true;
    spec.trace_mode = netsim::TraceMode::Full;
    let cell = run_spec(spec);
    let json = cell
        .sim
        .telemetry()
        .render_json("wan-pipelined-2.0-newreno");
    let pcapng = netsim::pcapng::export_trace(cell.sim.trace()).expect("full trace");

    // Pipelined clients keep one connection each, so the CSV golden
    // stays small while still covering fleet/link/server series.
    let mut fleet_spec = ScalePoint {
        env: NetEnv::Lan,
        setup: ProtocolSetup::Http11Pipelined,
        n_clients: 8,
    }
    .spec();
    fleet_spec.telemetry = true;
    let fleet = run_fleet(fleet_spec);
    let csv = fleet.sim.telemetry().render_csv();

    SmokeArtifacts { json, csv, pcapng }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_by_integer_levels() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "▁▁");
        assert_eq!(sparkline(&[0, 7, 14]), "▁▄█");
        assert_eq!(sparkline(&[1, 1]), "██");
    }

    #[test]
    fn resample_holds_and_carries_gauge_values() {
        let points = [Point { tick: 0, value: 5 }, Point { tick: 10, value: 9 }];
        // 20 ticks over 4 columns: boundaries at tick 5, 10, 15, 20.
        assert_eq!(resample_gauge(&points, 20, 4), vec![5, 5, 9, 9]);
        // Before any point: zero.
        let late = [Point { tick: 15, value: 3 }];
        assert_eq!(resample_gauge(&late, 20, 4), vec![0, 0, 0, 3]);
    }

    #[test]
    fn resample_counter_yields_increments() {
        let points = [Point { tick: 0, value: 2 }, Point { tick: 12, value: 7 }];
        assert_eq!(resample_counter(&points, 16, 4), vec![2, 0, 0, 5]);
    }

    #[test]
    fn rto_cell_records_conn_series_and_exports_pcap() {
        let mut spec = rto_point(CcVariant::Reno).spec();
        spec.telemetry = true;
        spec.trace_mode = netsim::TraceMode::Full;
        let out = run_spec(spec);
        let sink = out.sim.telemetry();
        assert!(!first_conn_points(sink, out.client_host, Metric::Cwnd).is_empty());
        assert!(out.cell.telemetry.expect("summary").series > 0);
        let pcap = netsim::pcapng::export_trace(out.sim.trace()).expect("full trace");
        let packets = netsim::pcapng::parse(&pcap).expect("round trip");
        assert_eq!(packets.len(), out.sim.trace().records().len());
    }

    #[test]
    fn smoke_artifacts_are_deterministic() {
        let a = smoke_artifacts();
        let b = smoke_artifacts();
        assert_eq!(a.json, b.json);
        assert_eq!(a.csv, b.csv);
        assert_eq!(a.pcapng, b.pcapng);
        assert!(a.json.contains("\"metric\": \"cwnd_bytes\""));
        assert!(a.csv.contains("syn") || a.csv.contains("server_connections"));
        assert!(!a.pcapng.is_empty());
    }
}
