//! Beyond the paper: framed stream multiplexing with server push as a
//! fourth transport setup.
//!
//! The paper's future-work section points at exactly this design space —
//! a binary framing layer that removes pipelining's FIFO constraint and
//! lets the server volunteer the inline objects it knows the page needs.
//! This family reruns the repo's experiment surfaces with the `httpmux`
//! setups appended: the Tables 4–9 matrix, the robustness loss grid, the
//! many-client fleet matrix and the stall-attribution probe.
//!
//! The interesting shapes:
//!
//! * On clean links, multiplexing matches pipelining's packet counts
//!   (one connection, batched frames) and push removes the image-request
//!   round trip entirely — `requests_sent` collapses to 1 on a
//!   first-time page load.
//! * Under loss the single multiplexed connection is a shared-fate
//!   domain: every drop stalls *all* streams behind it, so elapsed-time
//!   inflation per lost packet exceeds HTTP/1.0's four parallel
//!   connections (which localize each loss) — the same head-of-line
//!   argument the robustness family makes for pipelining, sharpened by
//!   push putting even more bytes behind the same loss.

use crate::env::NetEnv;
use crate::experiments::robustness::{self, LossShape, RobustnessCell, RobustnessPoint};
use crate::experiments::{probe, scale};
use crate::harness::{matrix_spec, run_cells, ProtocolSetup, Scenario};
use crate::result::{CellResult, Table};
use httpserver::ServerKind;

/// Setups of the mux comparison tables: the paper's best setup
/// (pipelining) against multiplexing with and without push.
pub const SETUPS: [ProtocolSetup; 3] = [
    ProtocolSetup::Http11Pipelined,
    ProtocolSetup::Multiplexed,
    ProtocolSetup::MultiplexedPush,
];

/// Setups of the loss grid: HTTP/1.0's four parallel connections are the
/// shared-fate counterpoint, so they run alongside the single-connection
/// setups.
pub const LOSS_SETUPS: [ProtocolSetup; 4] = [
    ProtocolSetup::Http10,
    ProtocolSetup::Http11Pipelined,
    ProtocolSetup::Multiplexed,
    ProtocolSetup::MultiplexedPush,
];

// ---------------------------------------------------------------------
// Matrix (Tables 4–9 with the mux setups)
// ---------------------------------------------------------------------

/// The cells of one mux matrix table: every [`SETUPS`] entry for one
/// (environment, server) pair, both scenarios, run in parallel.
pub fn matrix_cells(
    env: NetEnv,
    server: ServerKind,
) -> Vec<(&'static str, CellResult, CellResult)> {
    let specs = SETUPS
        .iter()
        .flat_map(|&setup| {
            [
                matrix_spec(env, server, setup, Scenario::FirstTime),
                matrix_spec(env, server, setup, Scenario::Revalidate),
            ]
        })
        .collect();
    let cells = run_cells(specs);
    SETUPS
        .iter()
        .zip(cells.chunks_exact(2))
        .map(|(&setup, pair)| (setup.label(), pair[0], pair[1]))
        .collect()
}

/// Render one mux matrix table. The extra `PushB` column is the bytes
/// the server volunteered on promised streams (zero for non-push rows);
/// `CxlB` is the push DATA bytes already in flight when the client
/// cancelled the stream — pure wire waste.
pub fn matrix_table(env: NetEnv, server: ServerKind) -> Table {
    let server_name = match server {
        ServerKind::Jigsaw => "Jigsaw",
        ServerKind::Apache => "Apache",
    };
    let mut t = Table::new(
        &format!("Multiplexing - {server_name} - {}", env.channel()),
        &[
            "FT Pa", "FT Bytes", "FT Sec", "FT PushB", "FT CxlB", "CV Pa", "CV Bytes", "CV Sec",
            "CV PushB", "CV CxlB",
        ],
    );
    for (label, first, reval) in matrix_cells(env, server) {
        let mut cols = Vec::with_capacity(10);
        for cell in [&first, &reval] {
            cols.push(cell.packets().to_string());
            cols.push(cell.bytes.to_string());
            cols.push(format!("{:.2}", cell.secs));
            cols.push(cell.pushed_bytes.to_string());
            cols.push(cell.cancelled_push_bytes.to_string());
        }
        t.push_row(label, cols);
    }
    t
}

// ---------------------------------------------------------------------
// Loss grid and shared fate
// ---------------------------------------------------------------------

/// The mux loss grid: every environment, the full loss ladder, both
/// shapes, [`LOSS_SETUPS`], first-time retrieval (84 cells). Reuses the
/// robustness machinery point for point, so every cell is reproducible
/// in isolation from its coordinate-derived seed.
pub fn loss_grid() -> Vec<RobustnessPoint> {
    robustness::grid(
        &NetEnv::ALL,
        &robustness::LOSS_GRID_PCT,
        &LOSS_SETUPS,
        &[Scenario::FirstTime],
    )
}

/// A reduced WAN-only loss grid for smoke tests and CI (12 cells).
pub fn reduced_loss_grid() -> Vec<RobustnessPoint> {
    robustness::grid(
        &[NetEnv::Wan],
        &[0.0, 2.0],
        &LOSS_SETUPS,
        &[Scenario::FirstTime],
    )
}

/// One shared-fate comparison point: elapsed-time inflation over the
/// zero-loss baseline for HTTP/1.0×4 versus multiplexed, same loss rate
/// and shape.
#[derive(Debug, Clone, Copy)]
pub struct SharedFate {
    /// Mean packet loss in percent.
    pub loss_pct: f64,
    /// Loss distribution shape.
    pub shape: LossShape,
    /// HTTP/1.0×4 inflation over its zero-loss row, percent.
    pub http10_infl: f64,
    /// Multiplexed inflation over its zero-loss row, percent.
    pub mux_infl: f64,
}

/// Extract the shared-fate comparison from a set of loss-grid cells for
/// one environment: every lossy (rate, shape) where both the HTTP/1.0
/// and multiplexed rows (and their zero-loss baselines) are present.
pub fn shared_fate(cells: &[RobustnessCell], env: NetEnv) -> Vec<SharedFate> {
    let infl = |setup: ProtocolSetup, loss_pct: f64, shape: LossShape| -> Option<f64> {
        let cell = cells.iter().find(|c| {
            c.point.env == env
                && c.point.setup == setup
                && c.point.loss_pct == loss_pct
                && c.point.shape == shape
        })?;
        robustness::inflation_pct(cells, cell)
    };
    let mut out = Vec::new();
    for &loss_pct in &robustness::LOSS_GRID_PCT {
        if loss_pct == 0.0 {
            continue;
        }
        for shape in LossShape::ALL {
            if let (Some(h), Some(m)) = (
                infl(ProtocolSetup::Http10, loss_pct, shape),
                infl(ProtocolSetup::Multiplexed, loss_pct, shape),
            ) {
                out.push(SharedFate {
                    loss_pct,
                    shape,
                    http10_infl: h,
                    mux_infl: m,
                });
            }
        }
    }
    out
}

/// Render the shared-fate comparison for one environment.
pub fn shared_fate_table(cells: &[RobustnessCell], env: NetEnv) -> Table {
    let mut t = Table::new(
        &format!(
            "Shared fate - Apache - {} first-time - inflation per loss point",
            env.name()
        ),
        &["HTTP/1.0x4 Infl%", "HTTP/mux Infl%"],
    );
    for sf in shared_fate(cells, env) {
        t.push_row(
            &format!("{:.1}% {}", sf.loss_pct, sf.shape.label()),
            vec![
                format!("{:+.1}", sf.http10_infl),
                format!("{:+.1}", sf.mux_infl),
            ],
        );
    }
    t
}

// ---------------------------------------------------------------------
// Fleet and probe grids
// ---------------------------------------------------------------------

/// The mux fleet matrix: every environment × both mux setups × the
/// standard fleet sizes (30 fleets). [`scale::ScalePoint::spec`] wires
/// the push-enabled server config for the push setup.
pub fn fleet_grid() -> Vec<scale::ScalePoint> {
    scale::grid(&NetEnv::ALL, &ProtocolSetup::MUX, &scale::N_GRID)
}

/// A reduced LAN+WAN mux fleet grid for smoke tests (8 fleets).
pub fn reduced_fleet_grid() -> Vec<scale::ScalePoint> {
    scale::grid(&[NetEnv::Lan, NetEnv::Wan], &ProtocolSetup::MUX, &[1, 16])
}

/// The mux stall-attribution grid: every environment × both mux setups,
/// first-time retrieval (6 cells).
pub fn probe_grid() -> Vec<probe::ProbePoint> {
    let mut points = Vec::new();
    for env in NetEnv::ALL {
        for &setup in &ProtocolSetup::MUX {
            points.push(probe::ProbePoint {
                env,
                setup,
                scenario: Scenario::FirstTime,
            });
        }
    }
    points
}

/// A reduced LAN-only probe grid for CI smoke runs (2 cells).
pub fn reduced_probe_grid() -> Vec<probe::ProbePoint> {
    probe_grid()
        .into_iter()
        .filter(|p| p.env == NetEnv::Lan)
        .collect()
}

// ---------------------------------------------------------------------
// Reports and digests
// ---------------------------------------------------------------------

/// FNV-1a over a byte string (the repo's stable digest hash).
fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The reduced mux report for CI: the LAN Apache matrix table, the
/// reduced WAN loss grid with its shared-fate extract, and the LAN probe
/// decomposition. Cheap enough to run twice back to back.
pub fn reduced_report() -> Vec<Table> {
    let mut tables = vec![matrix_table(NetEnv::Lan, ServerKind::Apache)];
    let loss_cells = robustness::run_points(&reduced_loss_grid());
    tables.extend(robustness::report(&loss_cells));
    tables.push(shared_fate_table(&loss_cells, NetEnv::Wan));
    tables.push(probe::report(&probe::run_points(&reduced_probe_grid())));
    tables
}

/// A stable digest over rendered tables — two runs of the same grid must
/// agree bit-for-bit, regardless of thread count.
pub fn report_digest(tables: &[Table]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325;
    for t in tables {
        hash = fnv1a(t.render().as_bytes(), hash);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shapes() {
        assert_eq!(loss_grid().len(), 84);
        assert_eq!(reduced_loss_grid().len(), 12);
        assert_eq!(fleet_grid().len(), 30);
        assert_eq!(reduced_fleet_grid().len(), 8);
        assert_eq!(probe_grid().len(), 6);
        assert_eq!(reduced_probe_grid().len(), 2);
    }

    #[test]
    fn lan_matrix_shows_push_bytes() {
        let cells = matrix_cells(NetEnv::Lan, ServerKind::Apache);
        assert_eq!(cells.len(), 3);
        let (_, pipelined_ft, _) = &cells[0];
        let (_, mux_ft, _) = &cells[1];
        let (_, push_ft, _) = &cells[2];
        assert_eq!(pipelined_ft.pushed_bytes, 0);
        assert_eq!(mux_ft.pushed_bytes, 0);
        assert!(
            push_ft.pushed_bytes > 0,
            "push setup volunteered no bytes at all"
        );
        // Everything still arrives: same order of magnitude of payload.
        assert!(push_ft.bytes > 0 && mux_ft.bytes > 0);
    }
}
