//! "Poor man's multiplexing": the paper's range-request idiom.
//!
//! §"Range Requests and Validation" argues that an HTTP/1.1 browser
//! revisiting a page where content *changed* should combine cache
//! validation with `If-Range` plus a small leading `Range`, so a changed
//! object returns only its metadata-bearing first bytes instead of
//! monopolizing the single connection with a full transfer. The browser
//! can then progressively fetch the rest, interleaved as it pleases.
//!
//! The experiment: the site is revised (every image's bytes and
//! validators change), and the client revalidates. A naive client's
//! conditional GETs all miss and re-download everything; a range-savvy
//! client gets 206s of the first 256 bytes and learns every object's
//! metadata in a fraction of the bytes and time.

use crate::env::NetEnv;
use crate::harness::primed_cache;
use crate::result::{CellResult, Table};
use httpclient::{ClientConfig, HttpClient, ProtocolMode, Workload};
use httpserver::{Entity, HttpServer, ServerConfig, SiteStore};
use netsim::{HostId, SockAddr};
use webcontent::microscape::SITE_MTIME;

/// Build the *revised* site: same paths, all bodies perturbed so every
/// validator misses. (A realistic revision: one byte appended.)
fn revised_store() -> std::sync::Arc<SiteStore> {
    let site = webcontent::microscape::site();
    let mut store = SiteStore::new();
    let mut html = site.html.clone().into_bytes();
    html.extend_from_slice(b"<!-- rev2 -->");
    store.insert(
        site.html_path(),
        Entity::new(html, "text/html", SITE_MTIME + 86_400).with_deflate(),
    );
    for obj in &site.images {
        let mut body = obj.body.clone();
        body.push(0x3B); // still a valid GIF suffix-wise for our decoder's purposes
        store.insert(
            &obj.path,
            Entity::new(body, obj.content_type, SITE_MTIME + 86_400),
        );
    }
    store.into_shared()
}

/// The two client idioms under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RevisitIdiom {
    /// Plain conditional GETs: every miss transfers the full entity.
    FullOnChange,
    /// Conditional GET + `Range: bytes=0-255`: every miss transfers only
    /// the leading bytes (metadata), per the paper's idiom.
    RangeMetadata,
}

impl RevisitIdiom {
    /// Row label for reports.
    pub fn label(self) -> &'static str {
        match self {
            RevisitIdiom::FullOnChange => "Conditional GET (full on change)",
            RevisitIdiom::RangeMetadata => "Conditional GET + leading 256B range",
        }
    }
}

/// Run a revised-site revalidation with the given idiom over `env`.
pub fn run_revisit_cell(env: NetEnv, idiom: RevisitIdiom) -> CellResult {
    let site = webcontent::microscape::site();
    let cache = primed_cache(site);

    // Build the job list by hand: conditional GETs for every object, with
    // the range headers added for the range idiom.
    let mut paths = Vec::new();
    paths.push(site.html_path().to_string());
    paths.extend(webcontent::html::inline_image_sources(&site.html));

    let addr = SockAddr::new(HostId(1), 80);
    let client_cfg = ClientConfig::robot(ProtocolMode::Http11Pipelined, addr);

    // Express the idiom through the generic workload machinery: the
    // robot's Revalidate workload issues If-None-Match; the range variant
    // adds If-Range + Range per job via the conditional hook below.
    let workload = Workload::Revalidate {
        start: site.html_path().into(),
        style: httpclient::RevalidationStyle::ConditionalGetEtag,
    };

    let mut sim = netsim::Simulator::new();
    let ch = sim.add_host("client");
    let sh = sim.add_host("server");
    sim.add_link(ch, sh, env.link());
    sim.install_app(
        sh,
        Box::new(HttpServer::new(ServerConfig::apache(80), revised_store())),
    );
    let mut client = HttpClient::with_cache(client_cfg, workload, cache);
    if idiom == RevisitIdiom::RangeMetadata {
        // If-None-Match still yields 304 on unchanged entities; on
        // changed ones the bare Range applies and returns a 206 of the
        // leading bytes. (Adding If-Range with the *stale* validator
        // would correctly force full transfers — the opposite of the
        // idiom — so the range is sent unconditionally.)
        client.set_extra_conditionals(vec![("Range".to_string(), "bytes=0-255".to_string())]);
    }
    sim.install_app(ch, Box::new(client));
    sim.run_until_idle();

    let stats = sim.stats(ch, sh);
    let socket_stats = sim.socket_stats(ch);
    let cs = sim
        .app_mut::<HttpClient>(ch)
        .expect("client app")
        .stats
        .clone();
    crate::harness::cell_result(&stats, socket_stats, &cs)
}

/// Render the comparison.
pub fn range_table(env: NetEnv) -> Table {
    let mut t = Table::new(
        &format!(
            "Revised-site revalidation, pipelined HTTP/1.1, {}: full transfers vs leading ranges",
            env.name()
        ),
        &["Pa", "Bytes", "Sec", "Body bytes"],
    );
    for idiom in [RevisitIdiom::FullOnChange, RevisitIdiom::RangeMetadata] {
        let c = run_revisit_cell(env, idiom);
        t.push_row(
            idiom.label(),
            vec![
                c.packets().to_string(),
                c.bytes.to_string(),
                format!("{:.2}", c.secs),
                c.body_bytes.to_string(),
            ],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn revised_site_misses_every_validator() {
        let c = run_revisit_cell(NetEnv::Lan, RevisitIdiom::FullOnChange);
        assert_eq!(c.fetched, 43);
        assert_eq!(c.validated, 0, "every object changed");
        assert!(c.body_bytes > 160_000, "full re-download");
    }

    #[test]
    fn range_idiom_fetches_only_metadata() {
        let c = run_revisit_cell(NetEnv::Lan, RevisitIdiom::RangeMetadata);
        assert_eq!(c.fetched, 43);
        assert_eq!(c.validated, 0);
        // 43 objects x <=256 bytes of leading data.
        assert!(
            c.body_bytes <= 43 * 256,
            "only metadata moves: {} bytes",
            c.body_bytes
        );
    }

    #[test]
    fn range_idiom_wins_on_the_modem() {
        let full = run_revisit_cell(NetEnv::Ppp, RevisitIdiom::FullOnChange);
        let range = run_revisit_cell(NetEnv::Ppp, RevisitIdiom::RangeMetadata);
        assert!(
            range.secs < full.secs / 3.0,
            "ranges should transform revisit latency: {:.1}s vs {:.1}s",
            range.secs,
            full.secs
        );
        assert!(range.bytes < full.bytes / 3);
    }
}
