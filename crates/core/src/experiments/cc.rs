//! Congestion-control sensitivity: does the paper's loss-grid headline
//! survive a change of recovery algorithm?
//!
//! The robustness family measures the protocol comparison under packet
//! loss with exactly one loss-recovery algorithm — the Reno-style slow
//! start + fast retransmit the seed hard-coded in `netsim::tcp`. This
//! family reruns the WAN first-time loss grid under all four
//! [`CcVariant`]s (Reno, NewReno per RFC 6582, SACK per RFC 2018/6675,
//! CUBIC per RFC 8312) on both endpoints, plus a stall-attribution probe
//! pass, so the per-lost-packet penalty of pipelining's single
//! connection becomes a CC-sensitivity result.
//!
//! Every variant at a given coordinate faces the identical impairment
//! draw sequence ([`RobustnessPoint::seed`] ignores the variant), so
//! measured differences are recovery behavior, not luck. The shape to
//! notice: SACK-based recovery retransmits only the holes, recovering
//! part of pipelining's per-lost-packet penalty relative to Reno at 2%+
//! loss — the gated ordering in `crates/core/tests/cc_gate.rs`.

use crate::env::NetEnv;
use crate::experiments::robustness::{self, LossShape, RobustnessCell, RobustnessPoint};
use crate::harness::{matrix_spec, run_cells_map, run_spec, ProtocolSetup, Scenario};
use crate::result::Table;
use httpserver::ServerKind;
use netsim::{CcVariant, ImpairConfig, LossModel};

/// Every congestion-control variant, in comparison order.
pub const VARIANTS: [CcVariant; 4] = CcVariant::ALL;

/// Loss rates of the CC grid, in percent (uniform shape only — the
/// variant axis replaces the shape axis as the interesting dimension).
pub const LOSS_PCT: [f64; 3] = [0.0, 2.0, 5.0];

/// Build the CC grid over the given loss rates: WAN first-time
/// retrieval, the three robustness setups, uniform loss only, every
/// variant on both endpoints.
pub fn grid(losses_pct: &[f64]) -> Vec<RobustnessPoint> {
    let mut points = Vec::new();
    for &cc in &VARIANTS {
        for mut p in robustness::grid(
            &[NetEnv::Wan],
            losses_pct,
            &robustness::SETUPS,
            &[Scenario::FirstTime],
        ) {
            if p.shape != LossShape::Uniform {
                continue;
            }
            p.cc = cc;
            points.push(p);
        }
    }
    points
}

/// The full CC grid: 3 setups × {0, 2, 5}% uniform × 4 variants
/// (36 cells).
pub fn full_grid() -> Vec<RobustnessPoint> {
    grid(&LOSS_PCT)
}

/// A reduced grid for smoke tests and CI: 3 setups × {0, 2}% uniform ×
/// 4 variants (24 cells).
pub fn reduced_grid() -> Vec<RobustnessPoint> {
    grid(&[0.0, 2.0])
}

/// Elapsed-time inflation of the (setup, loss, variant) cell over its
/// own zero-loss baseline, in percent.
pub fn variant_inflation(
    cells: &[RobustnessCell],
    setup: ProtocolSetup,
    loss_pct: f64,
    cc: CcVariant,
) -> Option<f64> {
    let cell = cells
        .iter()
        .find(|c| c.point.setup == setup && c.point.loss_pct == loss_pct && c.point.cc == cc)?;
    robustness::inflation_pct(cells, cell)
}

/// The comparison table: one row per lossy (setup, loss) coordinate,
/// one inflation column per variant.
pub fn recovery_table(cells: &[RobustnessCell]) -> Table {
    let mut t = Table::new(
        "Recovery matters - Apache - WAN first-time - inflation per CC variant",
        &["Reno Infl%", "NewReno Infl%", "SACK Infl%", "CUBIC Infl%"],
    );
    for c in cells {
        if c.point.cc != CcVariant::Reno || c.point.loss_pct == 0.0 {
            continue;
        }
        let cols = VARIANTS
            .iter()
            .map(|&cc| {
                variant_inflation(cells, c.point.setup, c.point.loss_pct, cc)
                    .map(|v| format!("{v:+.1}"))
                    .unwrap_or_else(|| "-".to_string())
            })
            .collect();
        t.push_row(
            &format!(
                "{} @ {:.1}% uniform",
                c.point.setup.label(),
                c.point.loss_pct
            ),
            cols,
        );
    }
    t
}

/// The full report: the per-variant grid tables (robustness rendering,
/// rows labelled with the variant) followed by the comparison table.
pub fn report(cells: &[RobustnessCell]) -> Vec<Table> {
    let mut tables = robustness::report(cells);
    tables.push(recovery_table(cells));
    tables
}

// ---------------------------------------------------------------------
// Per-variant stall attribution
// ---------------------------------------------------------------------

/// Run the stall-attribution probe for pipelined WAN first-time
/// retrieval at 2% uniform loss under every variant: the
/// `rto_recovery`/`slow_start` buckets become per-variant comparable.
pub fn probe_rows() -> Vec<(CcVariant, f64, netsim::ProbeAnalysis)> {
    let specs = VARIANTS
        .iter()
        .map(|&cc| {
            let mut spec = matrix_spec(
                NetEnv::Wan,
                ServerKind::Apache,
                ProtocolSetup::Http11Pipelined,
                Scenario::FirstTime,
            );
            let seed = RobustnessPoint {
                env: NetEnv::Wan,
                setup: ProtocolSetup::Http11Pipelined,
                scenario: Scenario::FirstTime,
                loss_pct: 2.0,
                shape: LossShape::Uniform,
                cc,
            }
            .seed();
            spec.impair = Some(
                ImpairConfig::none()
                    .with_seed(seed)
                    .with_loss(LossModel::Bernoulli { p: 0.02 }),
            );
            spec.tcp = Some(netsim::TcpConfig {
                cc,
                ..Default::default()
            });
            spec.probe = true;
            spec
        })
        .collect();
    let outputs = run_cells_map(specs, None, |spec| {
        let out = run_spec(spec);
        (out.cell.secs, out.probe.expect("probe was enabled"))
    });
    VARIANTS
        .iter()
        .zip(outputs)
        .map(|(&cc, (secs, analysis))| (cc, secs, analysis))
        .collect()
}

/// Render the per-variant probe decomposition.
pub fn probe_table(rows: &[(CcVariant, f64, netsim::ProbeAnalysis)]) -> Table {
    let mut t = Table::new(
        "Recovery matters - pipelined WAN @ 2.0% uniform - where the time goes (secs)",
        &["Conn", "SlowSt", "RTO", "Wire", "Idle", "Sum", "Sec"],
    );
    for (cc, secs, analysis) in rows {
        let b = &analysis.report.buckets;
        let other = b.nagle_hold + b.delayed_ack_wait + b.recv_window + b.server_think;
        t.push_row(
            cc.label(),
            vec![
                format!("{:.2}", b.connection_setup),
                format!("{:.2}", b.slow_start),
                format!("{:.2}", b.rto_recovery),
                format!("{:.2}", b.serialization),
                format!("{:.2}", b.idle + other),
                format!("{:.2}", b.sum()),
                format!("{secs:.2}"),
            ],
        );
    }
    t
}

// ---------------------------------------------------------------------
// Digest
// ---------------------------------------------------------------------

/// FNV-1a over a byte string (the repo's stable digest hash).
fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A stable digest over rendered tables — two runs of the same grid must
/// agree bit-for-bit, regardless of thread count.
pub fn report_digest(tables: &[Table]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325;
    for t in tables {
        hash = fnv1a(t.render().as_bytes(), hash);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shapes() {
        assert_eq!(full_grid().len(), 36);
        assert_eq!(reduced_grid().len(), 24);
    }

    #[test]
    fn reno_points_match_seed_robustness_cells() {
        for p in reduced_grid() {
            if p.cc == CcVariant::Reno {
                // Reno rows must be spec-identical to the seed grid: no
                // TCP override, no variant suffix in the label.
                assert!(p.spec().tcp.is_none());
                assert!(!p.label().contains('['));
            } else {
                assert_eq!(p.spec().tcp.unwrap().cc, p.cc);
                assert!(p.label().ends_with(&format!("[{}]", p.cc.label())));
            }
        }
    }

    #[test]
    fn seeds_ignore_variant() {
        let g = reduced_grid();
        for p in &g {
            let mut reno = *p;
            reno.cc = CcVariant::Reno;
            assert_eq!(
                p.seed(),
                reno.seed(),
                "variants face the identical impairment draw sequence"
            );
        }
    }
}
