//! A counting [`GlobalAlloc`] for benchmark builds.
//!
//! The simulator's determinism crates (`netsim`, `bytes`) forbid
//! `unsafe`, so the one `unsafe impl` a counting allocator needs lives
//! here, in a crate nothing links against except bench binaries:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc::new();
//!
//! let before = counting_alloc::allocations();
//! run_workload();
//! let allocs = counting_alloc::allocations() - before;
//! ```
//!
//! Counters are process-global relaxed atomics: cheap enough to leave
//! enabled (one `fetch_add` per malloc), and exact for single-threaded
//! measured regions, which is how the microbench suite uses them
//! (allocations/packet is defined on the serial matrix run).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Forwards to the system allocator, counting every allocation.
///
/// `realloc` counts as one allocation (it may move); `dealloc` is not
/// counted — the suite measures allocation pressure, not live bytes.
pub struct CountingAlloc;

impl CountingAlloc {
    /// A new counting allocator (const, for `#[global_allocator]`).
    pub const fn new() -> Self {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: pure pass-through to `System`, plus relaxed counter bumps
// that cannot alias or unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total heap allocations since process start (monotonic).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Total bytes requested from the allocator since process start
/// (monotonic; freed bytes are not subtracted).
pub fn allocated_bytes() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    // The counters only tick when this allocator is installed as
    // `#[global_allocator]`, which a unit test inside the library can't
    // do without imposing it on every dependent; install it here for the
    // test binary only.
    #[global_allocator]
    static ALLOC: super::CountingAlloc = super::CountingAlloc::new();

    #[test]
    fn counts_allocations() {
        let before = (super::allocations(), super::allocated_bytes());
        let v: Vec<u8> = Vec::with_capacity(4096);
        std::hint::black_box(&v);
        let after = (super::allocations(), super::allocated_bytes());
        assert!(after.0 > before.0, "allocation not counted");
        assert!(after.1 >= before.1 + 4096, "bytes not counted");
    }
}
