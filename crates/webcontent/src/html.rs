//! A small HTML tokenizer: enough to find inline images (what an HTTP
//! client needs to drive the 43-request workload), rewrite tag case (the
//! paper's compression observation), and strip images for the CSS
//! experiment.

/// A token of an HTML byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HtmlToken {
    /// Raw text between tags.
    Text(String),
    /// A tag with its name and raw attribute string, e.g.
    /// `Tag { name: "img", attrs: " src=\"a.gif\" width=10", closing: false }`.
    Tag {
        /// Tag name as written.
        name: String,
        /// Raw attribute text (leading space included).
        attrs: String,
        /// True for `</...>` end tags.
        closing: bool,
    },
    /// `<!-- ... -->` comments and `<!DOCTYPE ...>` declarations.
    Decl(String),
}

/// Tokenize HTML. Unterminated trailing constructs are emitted as text,
/// which is what forgiving mid-90s parsers did.
pub fn tokenize(html: &str) -> Vec<HtmlToken> {
    let bytes = html.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut text_start = 0;
    while i < bytes.len() {
        if bytes[i] != b'<' {
            i += 1;
            continue;
        }
        if text_start < i {
            tokens.push(HtmlToken::Text(html[text_start..i].to_string()));
        }
        text_start = i;
        // Comment / declaration.
        if bytes[i..].starts_with(b"<!--") {
            if let Some(end) = html[i..].find("-->") {
                tokens.push(HtmlToken::Decl(html[i..i + end + 3].to_string()));
                i += end + 3;
                text_start = i;
                continue;
            }
        }
        if bytes[i..].starts_with(b"<!") {
            if let Some(end) = html[i..].find('>') {
                tokens.push(HtmlToken::Decl(html[i..i + end + 1].to_string()));
                i += end + 1;
                text_start = i;
                continue;
            }
        }
        // Ordinary tag.
        let Some(end) = html[i..].find('>') else {
            // Unterminated: emit the remainder as text.
            tokens.push(HtmlToken::Text(html[i..].to_string()));
            return tokens;
        };
        let inner = &html[i + 1..i + end];
        let (closing, inner) = match inner.strip_prefix('/') {
            Some(rest) => (true, rest),
            None => (false, inner),
        };
        let name_end = inner
            .find(|c: char| c.is_ascii_whitespace())
            .unwrap_or(inner.len());
        let name = inner[..name_end].to_string();
        let attrs = inner[name_end..].to_string();
        if name.is_empty() {
            // "<>" or "< " — treat as text.
            i += 1;
            continue;
        }
        tokens.push(HtmlToken::Tag {
            name,
            attrs,
            closing,
        });
        i += end + 1;
        text_start = i;
    }
    if text_start < html.len() {
        tokens.push(HtmlToken::Text(html[text_start..].to_string()));
    }
    tokens
}

/// Serialize tokens back to HTML.
pub fn serialize(tokens: &[HtmlToken]) -> String {
    let mut out = String::new();
    for t in tokens {
        match t {
            HtmlToken::Text(s) => out.push_str(s),
            HtmlToken::Decl(s) => out.push_str(s),
            HtmlToken::Tag {
                name,
                attrs,
                closing,
            } => {
                out.push('<');
                if *closing {
                    out.push('/');
                }
                out.push_str(name);
                out.push_str(attrs);
                out.push('>');
            }
        }
    }
    out
}

/// Byte offset of the first case-insensitive occurrence of `needle=`
/// in `haystack`, starting at `from`. ASCII case folding only, so byte
/// offsets are valid `str` indices.
fn find_attr_needle(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    let end = haystack.len().checked_sub(needle.len() + 1)?;
    (from..=end).find(|&i| {
        haystack[i + needle.len()] == b'='
            && haystack[i..i + needle.len()].eq_ignore_ascii_case(needle)
    })
}

/// Extract one attribute's value from a raw attribute string. Handles
/// quoted and unquoted values, case-insensitive names. Allocation-free:
/// the returned slice borrows from `attrs`.
pub fn attr_value<'a>(attrs: &'a str, name: &str) -> Option<&'a str> {
    let bytes = attrs.as_bytes();
    let needle = name.as_bytes();
    let mut search = 0;
    loop {
        let idx = find_attr_needle(bytes, needle, search)?;
        // Must be preceded by whitespace (or start).
        if idx > 0 && !bytes[idx - 1].is_ascii_whitespace() {
            search = idx + needle.len() + 1;
            continue;
        }
        let after = idx + needle.len() + 1;
        let rest = &attrs[after..];
        return Some(if let Some(stripped) = rest.strip_prefix('"') {
            let end = stripped.find('"').unwrap_or(stripped.len());
            &stripped[..end]
        } else if let Some(stripped) = rest.strip_prefix('\'') {
            let end = stripped.find('\'').unwrap_or(stripped.len());
            &stripped[..end]
        } else {
            let end = rest
                .find(|c: char| c.is_ascii_whitespace())
                .unwrap_or(rest.len());
            &rest[..end]
        });
    }
}

/// The `src` of every `<img>` tag, in document order — exactly what a
/// browser fetches after parsing the base document.
pub fn inline_image_sources(html: &str) -> Vec<String> {
    let mut out = Vec::new();
    for_each_inline_image_source(html, |src| out.push(src.to_string()));
    out
}

/// Visit the `src` of every `<img>` tag in document order without
/// building a token list — the hot path for streaming discovery, which
/// re-scans the received prefix on every arriving chunk. Mirrors
/// [`tokenize`]'s control flow exactly (comments and declarations are
/// skipped whole, an unterminated trailing tag is text) so it yields
/// precisely the sources [`inline_image_sources`] returns, with zero
/// allocations.
pub fn for_each_inline_image_source(html: &str, mut f: impl FnMut(&str)) {
    let bytes = html.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'<' {
            i += 1;
            continue;
        }
        // Comment / declaration: skipped whole, images inside don't count.
        if bytes[i..].starts_with(b"<!--") {
            if let Some(end) = html[i..].find("-->") {
                i += end + 3;
                continue;
            }
        }
        if bytes[i..].starts_with(b"<!") {
            if let Some(end) = html[i..].find('>') {
                i += end + 1;
                continue;
            }
        }
        // Ordinary tag.
        let Some(end) = html[i..].find('>') else {
            // Unterminated: the remainder is text.
            return;
        };
        let inner = &html[i + 1..i + end];
        let (closing, inner) = match inner.strip_prefix('/') {
            Some(rest) => (true, rest),
            None => (false, inner),
        };
        let name_end = inner
            .find(|c: char| c.is_ascii_whitespace())
            .unwrap_or(inner.len());
        let name = &inner[..name_end];
        if name.is_empty() {
            // "<>" or "< " — treat as text.
            i += 1;
            continue;
        }
        if !closing && name.eq_ignore_ascii_case("img") {
            if let Some(src) = attr_value(&inner[name_end..], "src") {
                f(src);
            }
        }
        i += end + 1;
    }
}

/// Visit every pushable subresource reference in document order: the
/// `src` of `<img>` tags plus the `href` of `<link rel=stylesheet>`
/// tags. This is the server-push discovery scan — same walk as
/// [`for_each_inline_image_source`], zero allocations.
pub fn for_each_subresource(html: &str, mut f: impl FnMut(&str)) {
    let bytes = html.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'<' {
            i += 1;
            continue;
        }
        if bytes[i..].starts_with(b"<!--") {
            if let Some(end) = html[i..].find("-->") {
                i += end + 3;
                continue;
            }
        }
        if bytes[i..].starts_with(b"<!") {
            if let Some(end) = html[i..].find('>') {
                i += end + 1;
                continue;
            }
        }
        let Some(end) = html[i..].find('>') else {
            return;
        };
        let inner = &html[i + 1..i + end];
        let (closing, inner) = match inner.strip_prefix('/') {
            Some(rest) => (true, rest),
            None => (false, inner),
        };
        let name_end = inner
            .find(|c: char| c.is_ascii_whitespace())
            .unwrap_or(inner.len());
        let name = &inner[..name_end];
        if name.is_empty() {
            i += 1;
            continue;
        }
        if !closing {
            let attrs = &inner[name_end..];
            if name.eq_ignore_ascii_case("img") {
                if let Some(src) = attr_value(attrs, "src") {
                    f(src);
                }
            } else if name.eq_ignore_ascii_case("link")
                && attr_value(attrs, "rel").is_some_and(|r| r.eq_ignore_ascii_case("stylesheet"))
            {
                if let Some(href) = attr_value(attrs, "href") {
                    f(href);
                }
            }
        }
        i += end + 1;
    }
}

/// Rewrite every tag and attribute name to the given case. Attribute
/// *values* are untouched. The paper found all-lowercase tags compress
/// noticeably better (ratio ≈ .27 vs ≈ .35).
pub fn rewrite_tag_case(html: &str, upper: bool) -> String {
    let mut tokens = tokenize(html);
    for t in &mut tokens {
        if let HtmlToken::Tag { name, attrs, .. } = t {
            *name = if upper {
                name.to_ascii_uppercase()
            } else {
                name.to_ascii_lowercase()
            };
            *attrs = rewrite_attr_names(attrs, upper);
        }
    }
    serialize(&tokens)
}

/// Case-rewrite attribute names, leaving values (especially quoted ones)
/// intact.
fn rewrite_attr_names(attrs: &str, upper: bool) -> String {
    let mut out = String::with_capacity(attrs.len());
    let mut chars = attrs.char_indices().peekable();
    let bytes = attrs.as_bytes();
    let mut in_name = false;
    while let Some((i, c)) = chars.next() {
        match c {
            '"' | '\'' => {
                // Copy the quoted value verbatim.
                out.push(c);
                for (_, c2) in chars.by_ref() {
                    out.push(c2);
                    if c2 == c {
                        break;
                    }
                }
                in_name = false;
            }
            '=' => {
                out.push(c);
                in_name = false;
                // Unquoted value: copy until whitespace.
                if let Some(&(_, next)) = chars.peek() {
                    if next != '"' && next != '\'' {
                        while let Some(&(_, c2)) = chars.peek() {
                            if c2.is_ascii_whitespace() {
                                break;
                            }
                            out.push(c2);
                            chars.next();
                        }
                    }
                }
            }
            c if c.is_ascii_whitespace() => {
                out.push(c);
                in_name = true;
            }
            _ => {
                let _ = (i, bytes);
                if in_name || out.is_empty() {
                    out.push(if upper {
                        c.to_ascii_uppercase()
                    } else {
                        c.to_ascii_lowercase()
                    });
                    in_name = true;
                } else {
                    out.push(c);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_roundtrip() {
        let html = r##"<HTML><Body bgcolor="#ffffff">Hello <B>world</B><!-- note --><IMG SRC="a.gif"></Body></HTML>"##;
        assert_eq!(serialize(&tokenize(html)), html);
    }

    #[test]
    fn finds_images_in_order() {
        let html = r#"<img src="one.gif"><p><IMG  Src='two.gif' width=3><img src=three.gif >"#;
        assert_eq!(
            inline_image_sources(html),
            vec!["one.gif", "two.gif", "three.gif"]
        );
    }

    #[test]
    fn closing_img_not_counted() {
        assert!(inline_image_sources("</img><imgx src=a.gif>").is_empty());
    }

    #[test]
    fn subresources_include_stylesheets_in_order() {
        let html = r#"<LINK REL="stylesheet" HREF="/site.css"><img src=a.gif>
            <link rel=icon href=/fav.ico><link rel=StyleSheet href='/p.css'><img src=b.gif>"#;
        let mut found = Vec::new();
        for_each_subresource(html, |s| found.push(s.to_string()));
        assert_eq!(found, vec!["/site.css", "a.gif", "/p.css", "b.gif"]);
    }

    #[test]
    fn attr_value_forms() {
        assert_eq!(attr_value(r#" src="a.gif" w=3"#, "src"), Some("a.gif"));
        assert_eq!(attr_value(r#" SRC='b.gif'"#, "src"), Some("b.gif"));
        assert_eq!(attr_value(" src=c.gif next", "src"), Some("c.gif"));
        assert_eq!(attr_value(" width=10", "src"), None);
        // Must not match inside another attribute name.
        assert_eq!(attr_value(" data-src=x.gif", "src"), None);
    }

    #[test]
    fn case_rewrite_lowers_tags_and_attrs_only() {
        let html = r#"<TABLE BORDER=0 WIDTH=600><TD ALIGN=LEFT><IMG SRC="Mixed/Case.GIF" ALT="Keep Me"></TD></TABLE>"#;
        let lower = rewrite_tag_case(html, false);
        // Attribute *values* (LEFT, the src path, the alt text) survive.
        assert_eq!(
            lower,
            r#"<table border=0 width=600><td align=LEFT><img src="Mixed/Case.GIF" alt="Keep Me"></td></table>"#
        );
        let upper = rewrite_tag_case(&lower, true);
        assert!(upper.contains("<TABLE BORDER=0"));
        assert!(upper.contains(r#"SRC="Mixed/Case.GIF""#), "{upper}");
    }

    #[test]
    fn unquoted_values_preserved_through_case_rewrite() {
        let html = "<a href=Index.HTML>x</a>";
        let lower = rewrite_tag_case(html, false);
        assert_eq!(lower, "<a href=Index.HTML>x</a>");
    }

    #[test]
    fn comments_and_doctype_preserved() {
        let html = "<!DOCTYPE HTML><!-- Keep CASE --><p>hi</p>";
        assert_eq!(rewrite_tag_case(html, false), html);
    }

    #[test]
    fn text_preserved_exactly() {
        let html = "Text with < unterminated";
        let tokens = tokenize(html);
        assert_eq!(serialize(&tokens), html);
    }

    #[test]
    fn lowercase_html_compresses_better() {
        // The paper's observation, checked against our own deflate.
        let mut html = String::new();
        for i in 0..400 {
            html.push_str(&format!(
                "<TABLE BORDER=0><TR><TD ALIGN=LEFT VALIGN=TOP>item {i} with some body text</TD></TR></TABLE>\n"
            ));
        }
        let lower = rewrite_tag_case(&html, false);
        let mixed_len = flate::deflate(html.as_bytes(), flate::Level::Default).len();
        let lower_len = flate::deflate(lower.as_bytes(), flate::Level::Default).len();
        assert!(
            lower_len < mixed_len,
            "lowercase ({lower_len}) must compress better than mixed ({mixed_len})"
        );
    }
}
