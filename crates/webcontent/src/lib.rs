//! # webcontent — the Microscape workload and its content transformations
//!
//! The content half of the SIGCOMM '97 reproduction:
//!
//! * [`microscape`] — the synthetic test site (42 KB HTML + 42 GIFs with
//!   the paper's exact size histogram);
//! * [`gif`] — a GIF87a/89a codec with a real LZW implementation;
//! * [`png`] — a PNG (RFC 2083) codec for indexed images, built on the
//!   from-scratch DEFLATE in `flate`;
//! * [`mng`] — a minimal MNG-style animation container with delta frames;
//! * [`html`] — a tokenizer for image extraction and tag-case rewriting;
//! * [`css`] — a CSS1 subset plus the image→HTML+CSS replacement model
//!   (the paper's Figure 1 analysis);
//! * [`synth`] — deterministic generators for period-typical images;
//! * [`convert`] — the GIF→PNG / GIF→MNG batch conversion study.
//!
//! ```
//! let site = webcontent::microscape::site();
//! assert_eq!(site.images.len(), 42);
//! assert_eq!(site.browse_order().len(), 43); // 1 HTML + 42 images
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
pub mod css;
pub mod gif;
pub mod html;
pub mod image;
pub mod microscape;
pub mod mng;
pub mod png;
pub mod synth;

pub use image::{Animation, Frame, IndexedImage};
pub use microscape::{Microscape, SiteObject};
pub use synth::ImageRole;
