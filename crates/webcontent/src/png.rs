//! A PNG codec (RFC 2083) for palette-indexed images.
//!
//! Implements the subset relevant to the paper's GIF→PNG conversion study:
//! indexed-color images at bit depths 1/2/4/8, all five scanline filters,
//! zlib-compressed IDAT (via the from-scratch `flate` crate), and the
//! `gAMA` chunk — which the paper calls out as adding 16 bytes per image
//! so converted images display identically on all platforms.

use crate::image::{IndexedImage, Rgb};
use flate::checksum::crc32;
use flate::Level;

/// PNG signature bytes.
pub const SIGNATURE: [u8; 8] = [0x89, b'P', b'N', b'G', 0x0D, 0x0A, 0x1A, 0x0A];

/// Errors reading a PNG stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PngError {
    /// Bad signature.
    BadSignature,
    /// Truncated.
    Truncated,
    /// Bad crc.
    BadCrc,
    /// Bad chunk order.
    BadChunkOrder,
    /// Bad filter.
    BadFilter(u8),
    /// Bad idat.
    BadIdat,
    /// Unsupported.
    Unsupported(&'static str),
}

impl std::fmt::Display for PngError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PngError::BadSignature => f.write_str("not a PNG file"),
            PngError::Truncated => f.write_str("truncated PNG stream"),
            PngError::BadCrc => f.write_str("chunk CRC mismatch"),
            PngError::BadChunkOrder => f.write_str("chunks out of order"),
            PngError::BadFilter(t) => write!(f, "unknown filter type {t}"),
            PngError::BadIdat => f.write_str("IDAT data corrupt"),
            PngError::Unsupported(what) => write!(f, "unsupported PNG feature: {what}"),
        }
    }
}

impl std::error::Error for PngError {}

/// Encoding options.
#[derive(Debug, Clone, Copy)]
pub struct PngOptions {
    /// Include a gAMA chunk (adds exactly 16 bytes), as the paper's
    /// conversion did.
    pub gamma: bool,
    /// DEFLATE effort for the IDAT stream.
    pub level: Level,
}

impl Default for PngOptions {
    fn default() -> Self {
        PngOptions {
            gamma: true,
            level: Level::Default,
        }
    }
}

fn chunk(out: &mut Vec<u8>, kind: &[u8; 4], data: &[u8]) {
    out.extend_from_slice(&(data.len() as u32).to_be_bytes());
    out.extend_from_slice(kind);
    out.extend_from_slice(data);
    let mut crc_input = Vec::with_capacity(4 + data.len());
    crc_input.extend_from_slice(kind);
    crc_input.extend_from_slice(data);
    out.extend_from_slice(&crc32(&crc_input).to_be_bytes());
}

/// Pack one scanline of indexed pixels at the given bit depth (MSB-first
/// within each byte, per PNG).
fn pack_scanline(pixels: &[u8], depth: u32) -> Vec<u8> {
    match depth {
        8 => pixels.to_vec(),
        1 | 2 | 4 => {
            let per_byte = 8 / depth as usize;
            let mut out = vec![0u8; pixels.len().div_ceil(per_byte)];
            for (i, &p) in pixels.iter().enumerate() {
                let byte = i / per_byte;
                let slot = i % per_byte;
                let shift = 8 - depth as usize * (slot + 1);
                out[byte] |= p << shift;
            }
            out
        }
        _ => unreachable!("indexed depth is 1/2/4/8"),
    }
}

fn unpack_scanline(bytes: &[u8], depth: u32, width: usize) -> Vec<u8> {
    match depth {
        8 => bytes[..width].to_vec(),
        1 | 2 | 4 => {
            let per_byte = 8 / depth as usize;
            let mask = (1u16 << depth) as u8 - 1;
            (0..width)
                .map(|i| {
                    let byte = bytes[i / per_byte];
                    let slot = i % per_byte;
                    let shift = 8 - depth as usize * (slot + 1);
                    (byte >> shift) & mask
                })
                .collect()
        }
        _ => unreachable!(),
    }
}

fn paeth(a: u8, b: u8, c: u8) -> u8 {
    let (a, b, c) = (a as i16, b as i16, c as i16);
    let p = a + b - c;
    let (pa, pb, pc) = ((p - a).abs(), (p - b).abs(), (p - c).abs());
    if pa <= pb && pa <= pc {
        a as u8
    } else if pb <= pc {
        b as u8
    } else {
        c as u8
    }
}

/// Apply filter `ft` to a raw scanline. `prev` is the previous raw line
/// (zeros for the first). Indexed images have one byte per filter unit.
fn filter_line(ft: u8, line: &[u8], prev: &[u8]) -> Vec<u8> {
    let n = line.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let raw = line[i];
        let a = if i > 0 { line[i - 1] } else { 0 };
        let b = prev[i];
        let c = if i > 0 { prev[i - 1] } else { 0 };
        let v = match ft {
            0 => raw,
            1 => raw.wrapping_sub(a),
            2 => raw.wrapping_sub(b),
            3 => raw.wrapping_sub(((a as u16 + b as u16) / 2) as u8),
            4 => raw.wrapping_sub(paeth(a, b, c)),
            _ => unreachable!(),
        };
        out.push(v);
    }
    out
}

fn unfilter_line(ft: u8, line: &mut [u8], prev: &[u8]) -> Result<(), PngError> {
    for i in 0..line.len() {
        let a = if i > 0 { line[i - 1] } else { 0 };
        let b = prev[i];
        let c = if i > 0 { prev[i - 1] } else { 0 };
        line[i] = match ft {
            0 => line[i],
            1 => line[i].wrapping_add(a),
            2 => line[i].wrapping_add(b),
            3 => line[i].wrapping_add(((a as u16 + b as u16) / 2) as u8),
            4 => line[i].wrapping_add(paeth(a, b, c)),
            t => return Err(PngError::BadFilter(t)),
        };
    }
    Ok(())
}

/// Encode an indexed image as a PNG file.
pub fn encode(img: &IndexedImage, opts: PngOptions) -> Vec<u8> {
    img.validate().expect("valid image");
    let depth = match img.bit_depth() {
        1 => 1,
        2 => 2,
        3 | 4 => 4,
        _ => 8,
    };

    let mut out = Vec::new();
    out.extend_from_slice(&SIGNATURE);

    // IHDR
    let mut ihdr = Vec::with_capacity(13);
    ihdr.extend_from_slice(&img.width.to_be_bytes());
    ihdr.extend_from_slice(&img.height.to_be_bytes());
    ihdr.push(depth as u8);
    ihdr.push(3); // indexed color
    ihdr.push(0); // deflate
    ihdr.push(0); // adaptive filtering
    ihdr.push(0); // no interlace
    chunk(&mut out, b"IHDR", &ihdr);

    if opts.gamma {
        // sRGB-era default: gamma 1/2.2 → 45455 in PNG's fixed point.
        chunk(&mut out, b"gAMA", &45_455u32.to_be_bytes());
    }

    // PLTE
    let mut plte = Vec::with_capacity(img.palette.len() * 3);
    for rgb in &img.palette {
        plte.extend_from_slice(rgb);
    }
    chunk(&mut out, b"PLTE", &plte);

    // IDAT: filter each packed scanline with the minimum-sum heuristic.
    let w = img.width as usize;
    let mut raw = Vec::new();
    let mut prev_line: Vec<u8> = Vec::new();
    for y in 0..img.height as usize {
        let line = pack_scanline(&img.pixels[y * w..(y + 1) * w], depth);
        if prev_line.is_empty() {
            prev_line = vec![0u8; line.len()];
        }
        let mut best: Option<(u8, Vec<u8>, u64)> = None;
        for ft in 0..=4u8 {
            let cand = filter_line(ft, &line, &prev_line);
            let score: u64 = cand.iter().map(|&b| (b as i8).unsigned_abs() as u64).sum();
            if best.as_ref().map_or(true, |(_, _, s)| score < *s) {
                best = Some((ft, cand, score));
            }
        }
        let (ft, filtered, _) = best.unwrap();
        raw.push(ft);
        raw.extend_from_slice(&filtered);
        prev_line = line;
    }
    let idat = flate::zlib::compress(&raw, opts.level);
    chunk(&mut out, b"IDAT", &idat);
    chunk(&mut out, b"IEND", &[]);
    out
}

/// A decoded PNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedPng {
    /// The decoded bitmap.
    pub image: IndexedImage,
    /// The gAMA value if present (PNG fixed-point: gamma × 100000).
    pub gamma: Option<u32>,
}

/// Decode an indexed-color PNG.
pub fn decode(data: &[u8]) -> Result<DecodedPng, PngError> {
    if data.len() < 8 || data[..8] != SIGNATURE {
        return Err(PngError::BadSignature);
    }
    let mut pos = 8;
    let mut width = 0u32;
    let mut height = 0u32;
    let mut depth = 0u32;
    let mut palette: Vec<Rgb> = Vec::new();
    let mut idat: Vec<u8> = Vec::new();
    let mut gamma = None;
    let mut seen_ihdr = false;
    let mut seen_iend = false;

    while pos + 8 <= data.len() {
        let len =
            u32::from_be_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]) as usize;
        let kind = &data[pos + 4..pos + 8];
        if pos + 8 + len + 4 > data.len() {
            return Err(PngError::Truncated);
        }
        let body = &data[pos + 8..pos + 8 + len];
        let crc_expect = u32::from_be_bytes([
            data[pos + 8 + len],
            data[pos + 8 + len + 1],
            data[pos + 8 + len + 2],
            data[pos + 8 + len + 3],
        ]);
        let mut crc_input = Vec::with_capacity(4 + len);
        crc_input.extend_from_slice(kind);
        crc_input.extend_from_slice(body);
        if crc32(&crc_input) != crc_expect {
            return Err(PngError::BadCrc);
        }
        match kind {
            b"IHDR" => {
                if body.len() != 13 {
                    return Err(PngError::Truncated);
                }
                width = u32::from_be_bytes([body[0], body[1], body[2], body[3]]);
                height = u32::from_be_bytes([body[4], body[5], body[6], body[7]]);
                depth = body[8] as u32;
                if body[9] != 3 {
                    return Err(PngError::Unsupported("non-indexed color type"));
                }
                if body[12] != 0 {
                    return Err(PngError::Unsupported("interlace"));
                }
                seen_ihdr = true;
            }
            b"PLTE" => {
                if !seen_ihdr {
                    return Err(PngError::BadChunkOrder);
                }
                palette = body.chunks(3).map(|c| [c[0], c[1], c[2]]).collect();
            }
            b"IDAT" => {
                if palette.is_empty() {
                    return Err(PngError::BadChunkOrder);
                }
                idat.extend_from_slice(body);
            }
            b"gAMA" if body.len() == 4 => {
                gamma = Some(u32::from_be_bytes([body[0], body[1], body[2], body[3]]));
            }
            b"IEND" => {
                seen_iend = true;
                break;
            }
            _ => {} // ancillary chunks ignored
        }
        pos += 8 + len + 4;
    }
    if !seen_ihdr || !seen_iend {
        return Err(PngError::Truncated);
    }

    let raw = flate::zlib::decompress(&idat).map_err(|_| PngError::BadIdat)?;
    let line_bytes = (width as usize * depth as usize).div_ceil(8);
    if raw.len() != (line_bytes + 1) * height as usize {
        return Err(PngError::BadIdat);
    }

    let mut pixels = Vec::with_capacity((width * height) as usize);
    let mut prev = vec![0u8; line_bytes];
    for y in 0..height as usize {
        let row = &raw[y * (line_bytes + 1)..(y + 1) * (line_bytes + 1)];
        let ft = row[0];
        let mut line = row[1..].to_vec();
        unfilter_line(ft, &mut line, &prev)?;
        pixels.extend(unpack_scanline(&line, depth, width as usize));
        prev = line;
    }

    let image = IndexedImage {
        width,
        height,
        palette,
        pixels,
    };
    image.validate().map_err(|_| PngError::BadIdat)?;
    Ok(DecodedPng { image, gamma })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{small_palette, IndexedImage};

    fn gradient(w: u32, h: u32, colors: usize) -> IndexedImage {
        let mut img = IndexedImage::solid(w, h, small_palette(colors));
        for y in 0..h {
            for x in 0..w {
                img.set(
                    x,
                    y,
                    (((x + y) * colors as u32 / (w + h)) % colors as u32) as u8,
                );
            }
        }
        img
    }

    #[test]
    fn roundtrip_various_depths() {
        for colors in [2, 3, 4, 9, 17, 200] {
            let img = gradient(37, 23, colors);
            let bytes = encode(&img, PngOptions::default());
            let dec = decode(&bytes).unwrap();
            assert_eq!(dec.image.pixels, img.pixels, "colors={colors}");
            assert_eq!(dec.image.width, 37);
            assert_eq!(&dec.image.palette[..colors], &img.palette[..]);
        }
    }

    #[test]
    fn gamma_chunk_is_exactly_16_bytes() {
        let img = gradient(10, 10, 4);
        let with = encode(
            &img,
            PngOptions {
                gamma: true,
                level: Level::Default,
            },
        );
        let without = encode(
            &img,
            PngOptions {
                gamma: false,
                level: Level::Default,
            },
        );
        assert_eq!(
            with.len() - without.len(),
            16,
            "the paper: gamma adds 16 bytes"
        );
        let dec = decode(&with).unwrap();
        assert_eq!(dec.gamma, Some(45_455));
        assert_eq!(decode(&without).unwrap().gamma, None);
    }

    #[test]
    fn crc_corruption_detected() {
        let img = gradient(8, 8, 4);
        let mut bytes = encode(&img, PngOptions::default());
        // Flip a bit inside the IHDR body.
        bytes[17] ^= 0x01;
        assert_eq!(decode(&bytes).unwrap_err(), PngError::BadCrc);
    }

    #[test]
    fn signature_checked() {
        assert_eq!(decode(b"JFIF....").unwrap_err(), PngError::BadSignature);
    }

    #[test]
    fn filters_roundtrip_each_type() {
        // Force specific content shapes that favour different filters.
        // Horizontal gradient favours Sub; vertical favours Up.
        let mut img = IndexedImage::solid(64, 64, small_palette(256));
        for y in 0..64 {
            for x in 0..64 {
                img.set(x, y, ((x * 4) % 256) as u8);
            }
        }
        let dec = decode(&encode(&img, PngOptions::default())).unwrap();
        assert_eq!(dec.image.pixels, img.pixels);

        for y in 0..64 {
            for x in 0..64 {
                img.set(x, y, ((y * 4) % 256) as u8);
            }
        }
        let dec = decode(&encode(&img, PngOptions::default())).unwrap();
        assert_eq!(dec.image.pixels, img.pixels);
    }

    #[test]
    fn one_by_one() {
        let img = IndexedImage::solid(1, 1, small_palette(2));
        let dec = decode(&encode(&img, PngOptions::default())).unwrap();
        assert_eq!(dec.image.pixels, vec![0]);
    }

    #[test]
    fn png_beats_gif_on_larger_images() {
        // The paper's central PNG claim: PNG is usually smaller than GIF
        // for non-tiny images.
        let img = gradient(120, 80, 32);
        let png = encode(&img, PngOptions::default()).len();
        let gif = crate::gif::encode(&img).len();
        assert!(
            png < gif,
            "PNG ({png}) should beat GIF ({gif}) on a 120x80 image"
        );
    }

    #[test]
    fn png_loses_to_gif_on_tiny_images() {
        // ...but "PNG does not perform as well on the very low bit depth
        // images in the sub-200 byte category" — fixed chunk overhead.
        let img = IndexedImage::solid(12, 12, small_palette(2));
        let png = encode(&img, PngOptions::default()).len();
        let gif = crate::gif::encode(&img).len();
        assert!(png > gif, "tiny PNG ({png}) should exceed tiny GIF ({gif})");
    }

    #[test]
    fn paeth_predictor_reference() {
        // From the PNG spec's definition.
        assert_eq!(paeth(0, 0, 0), 0);
        assert_eq!(paeth(10, 20, 10), 20);
        assert_eq!(paeth(20, 10, 10), 20);
        assert_eq!(paeth(10, 10, 30), 10);
    }
}
