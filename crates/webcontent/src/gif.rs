//! A GIF87a/89a codec with a real LZW implementation.
//!
//! Writes single-image GIF87a files and multi-frame GIF89a animations
//! (Netscape looping extension + per-frame graphic control blocks), and
//! reads back everything it writes. This is the baseline image format the
//! paper's test page uses: 40 static GIFs (103,299 bytes) and 2 animations
//! (24,988 bytes).

use crate::image::{Animation, Frame, IndexedImage, Rgb};

/// Maximum LZW code value in GIF (12-bit codes).
const MAX_CODE: u16 = 4096;

/// Errors reading a GIF stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GifError {
    /// Bad signature.
    BadSignature,
    /// Truncated.
    Truncated,
    /// Bad lzw code.
    BadLzwCode,
    /// Interlaced images are not produced by this encoder and unsupported.
    Unsupported(&'static str),
}

impl std::fmt::Display for GifError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GifError::BadSignature => f.write_str("not a GIF file"),
            GifError::Truncated => f.write_str("truncated GIF stream"),
            GifError::BadLzwCode => f.write_str("invalid LZW code"),
            GifError::Unsupported(what) => write!(f, "unsupported GIF feature: {what}"),
        }
    }
}

impl std::error::Error for GifError {}

// ---------------------------------------------------------------------
// LZW
// ---------------------------------------------------------------------

/// GIF-flavoured LZW compression of `data` with the given minimum code
/// size. Returns the raw code stream (before sub-block framing).
pub fn lzw_compress(data: &[u8], min_code_size: u32) -> Vec<u8> {
    let clear: u16 = 1 << min_code_size;
    let eoi: u16 = clear + 1;

    let mut out = BitPacker::new();
    let mut width = min_code_size + 1;
    let mut dict: std::collections::HashMap<(u16, u8), u16> = std::collections::HashMap::new();
    let mut next: u16 = eoi + 1;

    out.push(clear, width);
    let Some((&first, rest)) = data.split_first() else {
        out.push(eoi, width);
        return out.finish();
    };
    let mut cur: u16 = first as u16;

    for &k in rest {
        if let Some(&c) = dict.get(&(cur, k)) {
            cur = c;
            continue;
        }
        out.push(cur, width);
        if next < MAX_CODE {
            dict.insert((cur, k), next);
            next += 1;
            if next == (1 << width) && width < 12 {
                width += 1;
            }
            if next == MAX_CODE {
                out.push(clear, width);
                dict.clear();
                next = eoi + 1;
                width = min_code_size + 1;
            }
        }
        cur = k as u16;
    }
    out.push(cur, width);
    out.push(eoi, width);
    out.finish()
}

/// GIF-flavoured LZW decompression.
pub fn lzw_decompress(data: &[u8], min_code_size: u32) -> Result<Vec<u8>, GifError> {
    let clear: u16 = 1 << min_code_size;
    let eoi: u16 = clear + 1;

    let mut reader = BitUnpacker::new(data);
    let mut width = min_code_size + 1;
    // Dictionary of byte strings; entries < clear are single bytes.
    let mut dict: Vec<Vec<u8>> = (0..clear).map(|i| vec![i as u8]).collect();
    dict.push(Vec::new()); // clear
    dict.push(Vec::new()); // eoi
    let mut out = Vec::new();
    let mut prev: Option<u16> = None;

    loop {
        let Some(code) = reader.pull(width) else {
            // Streams are allowed to end right after EOI; anything else is
            // a truncation. Tolerate missing EOI like most readers.
            return Ok(out);
        };
        if code == clear {
            dict.truncate((eoi + 1) as usize);
            width = min_code_size + 1;
            prev = None;
            continue;
        }
        if code == eoi {
            return Ok(out);
        }
        let entry: Vec<u8> = match prev {
            None => {
                if (code as usize) >= dict.len() {
                    return Err(GifError::BadLzwCode);
                }
                dict[code as usize].clone()
            }
            Some(p) => {
                let prev_str = dict.get(p as usize).cloned().ok_or(GifError::BadLzwCode)?;
                let entry = if (code as usize) < dict.len() {
                    dict[code as usize].clone()
                } else if code as usize == dict.len() {
                    // The KwKwK case.
                    let mut e = prev_str.clone();
                    e.push(prev_str[0]);
                    e
                } else {
                    return Err(GifError::BadLzwCode);
                };
                if dict.len() < MAX_CODE as usize {
                    let mut new_entry = prev_str;
                    new_entry.push(entry[0]);
                    dict.push(new_entry);
                    // "Early change": the decoder runs one dictionary entry
                    // behind the encoder, so it widens one entry early to
                    // stay in sync with the encoder's width schedule.
                    if dict.len() + 1 == (1usize << width) && width < 12 {
                        width += 1;
                    }
                }
                entry
            }
        };
        out.extend_from_slice(&entry);
        prev = Some(code);
    }
}

/// Packs LZW codes LSB-first (GIF convention).
struct BitPacker {
    out: Vec<u8>,
    buf: u32,
    bits: u32,
}

impl BitPacker {
    fn new() -> Self {
        BitPacker {
            out: Vec::new(),
            buf: 0,
            bits: 0,
        }
    }

    fn push(&mut self, code: u16, width: u32) {
        self.buf |= (code as u32) << self.bits;
        self.bits += width;
        while self.bits >= 8 {
            self.out.push((self.buf & 0xFF) as u8);
            self.buf >>= 8;
            self.bits -= 8;
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.bits > 0 {
            self.out.push((self.buf & 0xFF) as u8);
        }
        self.out
    }
}

struct BitUnpacker<'a> {
    data: &'a [u8],
    pos: usize,
    buf: u32,
    bits: u32,
}

impl<'a> BitUnpacker<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitUnpacker {
            data,
            pos: 0,
            buf: 0,
            bits: 0,
        }
    }

    fn pull(&mut self, width: u32) -> Option<u16> {
        while self.bits < width {
            if self.pos >= self.data.len() {
                return None;
            }
            self.buf |= (self.data[self.pos] as u32) << self.bits;
            self.pos += 1;
            self.bits += 8;
        }
        let v = (self.buf & ((1 << width) - 1)) as u16;
        self.buf >>= width;
        self.bits -= width;
        Some(v)
    }
}

// ---------------------------------------------------------------------
// Container
// ---------------------------------------------------------------------

fn palette_table_bits(n: usize) -> u32 {
    // GIF color tables are sized 2^(k+1); find smallest k covering n.
    let mut bits = 1;
    while (1usize << bits) < n {
        bits += 1;
    }
    bits as u32
}

fn write_palette(out: &mut Vec<u8>, palette: &[Rgb]) {
    let bits = palette_table_bits(palette.len());
    for rgb in palette {
        out.extend_from_slice(rgb);
    }
    for _ in palette.len()..(1 << bits) {
        out.extend_from_slice(&[0, 0, 0]);
    }
}

fn write_sub_blocks(out: &mut Vec<u8>, data: &[u8]) {
    for chunk in data.chunks(255) {
        out.push(chunk.len() as u8);
        out.extend_from_slice(chunk);
    }
    out.push(0);
}

fn write_image_data(out: &mut Vec<u8>, img: &IndexedImage) {
    // Image descriptor.
    out.push(0x2C);
    out.extend_from_slice(&0u16.to_le_bytes()); // left
    out.extend_from_slice(&0u16.to_le_bytes()); // top
    out.extend_from_slice(&(img.width as u16).to_le_bytes());
    out.extend_from_slice(&(img.height as u16).to_le_bytes());
    out.push(0); // no local color table, not interlaced
    let mcs = img.bit_depth().max(2);
    out.push(mcs as u8);
    let lzw = lzw_compress(&img.pixels, mcs);
    write_sub_blocks(out, &lzw);
}

/// Encode a single-image GIF87a file.
pub fn encode(img: &IndexedImage) -> Vec<u8> {
    img.validate().expect("valid image");
    let mut out = Vec::new();
    out.extend_from_slice(b"GIF87a");
    write_screen_descriptor(&mut out, img.width, img.height, &img.palette);
    write_image_data(&mut out, img);
    out.push(0x3B);
    out
}

fn write_screen_descriptor(out: &mut Vec<u8>, w: u32, h: u32, palette: &[Rgb]) {
    out.extend_from_slice(&(w as u16).to_le_bytes());
    out.extend_from_slice(&(h as u16).to_le_bytes());
    let bits = palette_table_bits(palette.len());
    // Global color table present; color resolution = bits.
    out.push(0x80 | (((bits - 1) as u8) << 4) | ((bits - 1) as u8));
    out.push(0); // background color index
    out.push(0); // aspect ratio
    write_palette(out, palette);
}

/// Encode a looping GIF89a animation. All frames use the global palette of
/// the first frame.
pub fn encode_animation(anim: &Animation) -> Vec<u8> {
    let first = &anim.frames[0].image;
    let mut out = Vec::new();
    out.extend_from_slice(b"GIF89a");
    write_screen_descriptor(&mut out, first.width, first.height, &first.palette);

    // Netscape looping extension (loop forever).
    out.extend_from_slice(&[0x21, 0xFF, 0x0B]);
    out.extend_from_slice(b"NETSCAPE2.0");
    out.extend_from_slice(&[0x03, 0x01, 0x00, 0x00, 0x00]);

    for frame in &anim.frames {
        // Graphic control extension with the frame delay.
        out.extend_from_slice(&[0x21, 0xF9, 0x04, 0x00]);
        out.extend_from_slice(&frame.delay_cs.to_le_bytes());
        out.extend_from_slice(&[0x00, 0x00]);
        write_image_data(&mut out, &frame.image);
    }
    out.push(0x3B);
    out
}

/// A decoded GIF: one or more frames plus the screen palette.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedGif {
    /// Decoded frames in display order.
    pub frames: Vec<Frame>,
    /// True if the file was GIF89a with animation extensions.
    pub animated: bool,
}

/// Decode a GIF written by [`encode`] or [`encode_animation`] (plus the
/// common subset of files from other tools: no interlace, no local color
/// tables).
pub fn decode(data: &[u8]) -> Result<DecodedGif, GifError> {
    let mut r = Cursor { data, pos: 0 };
    let sig = r.take(6)?;
    if sig != b"GIF87a" && sig != b"GIF89a" {
        return Err(GifError::BadSignature);
    }
    let width = r.u16()? as u32;
    let height = r.u16()? as u32;
    let packed = r.u8()?;
    let _bg = r.u8()?;
    let _aspect = r.u8()?;
    let mut palette = Vec::new();
    if packed & 0x80 != 0 {
        let n = 1usize << ((packed & 0x07) + 1);
        for _ in 0..n {
            let rgb = r.take(3)?;
            palette.push([rgb[0], rgb[1], rgb[2]]);
        }
    }

    let mut frames = Vec::new();
    let mut animated = false;
    let mut pending_delay: u16 = 0;
    loop {
        match r.u8()? {
            0x3B => break,
            0x21 => {
                let label = r.u8()?;
                if label == 0xF9 {
                    animated = true;
                    let block = r.sub_blocks()?;
                    if block.len() >= 4 {
                        pending_delay = u16::from_le_bytes([block[1], block[2]]);
                    }
                } else {
                    let _ = r.sub_blocks()?;
                }
            }
            0x2C => {
                let _left = r.u16()?;
                let _top = r.u16()?;
                let w = r.u16()? as u32;
                let h = r.u16()? as u32;
                let ipacked = r.u8()?;
                if ipacked & 0x40 != 0 {
                    return Err(GifError::Unsupported("interlace"));
                }
                let local_palette = if ipacked & 0x80 != 0 {
                    let n = 1usize << ((ipacked & 0x07) + 1);
                    let mut p = Vec::with_capacity(n);
                    for _ in 0..n {
                        let rgb = r.take(3)?;
                        p.push([rgb[0], rgb[1], rgb[2]]);
                    }
                    Some(p)
                } else {
                    None
                };
                let mcs = r.u8()? as u32;
                let lzw = r.sub_blocks()?;
                let pixels = lzw_decompress(&lzw, mcs)?;
                if pixels.len() != (w * h) as usize {
                    return Err(GifError::Truncated);
                }
                let pal = local_palette.unwrap_or_else(|| palette.clone());
                frames.push(Frame {
                    image: IndexedImage {
                        width: w,
                        height: h,
                        palette: pal,
                        pixels,
                    },
                    delay_cs: pending_delay,
                });
                pending_delay = 0;
            }
            _ => return Err(GifError::Unsupported("unknown block")),
        }
    }
    if frames.is_empty() {
        return Err(GifError::Truncated);
    }
    let _ = (width, height);
    Ok(DecodedGif { frames, animated })
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], GifError> {
        if self.pos + n > self.data.len() {
            return Err(GifError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, GifError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, GifError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    fn sub_blocks(&mut self) -> Result<Vec<u8>, GifError> {
        let mut out = Vec::new();
        loop {
            let len = self.u8()? as usize;
            if len == 0 {
                return Ok(out);
            }
            out.extend_from_slice(self.take(len)?);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{small_palette, IndexedImage};

    fn checker(w: u32, h: u32, colors: usize) -> IndexedImage {
        let mut img = IndexedImage::solid(w, h, small_palette(colors));
        for y in 0..h {
            for x in 0..w {
                img.set(x, y, (((x / 4) + (y / 4)) % colors as u32) as u8);
            }
        }
        img
    }

    #[test]
    fn lzw_roundtrip_simple() {
        for mcs in 2..=8 {
            let data: Vec<u8> = (0..500u32).map(|i| (i % (1 << mcs.min(4))) as u8).collect();
            let c = lzw_compress(&data, mcs);
            assert_eq!(lzw_decompress(&c, mcs).unwrap(), data, "mcs={mcs}");
        }
    }

    #[test]
    fn lzw_roundtrip_empty_and_single() {
        let c = lzw_compress(&[], 2);
        assert_eq!(lzw_decompress(&c, 2).unwrap(), Vec::<u8>::new());
        let c = lzw_compress(&[3], 2);
        assert_eq!(lzw_decompress(&c, 2).unwrap(), vec![3]);
    }

    #[test]
    fn lzw_kwkwk_case() {
        // "aaaa..." exercises the code == next (KwKwK) path immediately.
        let data = vec![1u8; 100];
        let c = lzw_compress(&data, 2);
        assert_eq!(lzw_decompress(&c, 2).unwrap(), data);
    }

    #[test]
    fn lzw_dictionary_overflow_reset() {
        // Enough distinct material to fill the 4096-entry dictionary.
        let mut x = 7u64;
        let data: Vec<u8> = (0..200_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 56) as u8
            })
            .collect();
        let c = lzw_compress(&data, 8);
        assert_eq!(lzw_decompress(&c, 8).unwrap(), data);
    }

    #[test]
    fn lzw_compresses_repetitive_data() {
        let data = b"webwebwebweb".repeat(100);
        let c = lzw_compress(&data, 8);
        assert!(c.len() < data.len() / 4);
    }

    #[test]
    fn gif_roundtrip() {
        let img = checker(33, 17, 5);
        let bytes = encode(&img);
        assert_eq!(&bytes[..6], b"GIF87a");
        assert_eq!(*bytes.last().unwrap(), 0x3B);
        let dec = decode(&bytes).unwrap();
        assert!(!dec.animated);
        assert_eq!(dec.frames.len(), 1);
        assert_eq!(dec.frames[0].image.pixels, img.pixels);
        assert_eq!(dec.frames[0].image.width, 33);
        assert_eq!(dec.frames[0].image.height, 17);
        // Palette is padded to a power of two: compare the leading entries.
        assert_eq!(&dec.frames[0].image.palette[..5], &img.palette[..]);
    }

    #[test]
    fn tiny_one_by_one() {
        let img = IndexedImage::solid(1, 1, small_palette(2));
        let dec = decode(&encode(&img)).unwrap();
        assert_eq!(dec.frames[0].image.pixels, vec![0]);
    }

    #[test]
    fn animation_roundtrip() {
        let frames: Vec<Frame> = (0..4)
            .map(|i| {
                let mut img = checker(16, 16, 4);
                img.set(i, 0, 3);
                Frame {
                    image: img,
                    delay_cs: 10 + i as u16,
                }
            })
            .collect();
        let anim = Animation::new(frames.clone());
        let bytes = encode_animation(&anim);
        assert_eq!(&bytes[..6], b"GIF89a");
        let dec = decode(&bytes).unwrap();
        assert!(dec.animated);
        assert_eq!(dec.frames.len(), 4);
        for (got, want) in dec.frames.iter().zip(&frames) {
            assert_eq!(got.image.pixels, want.image.pixels);
            assert_eq!(got.delay_cs, want.delay_cs);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode(b"NOTAGIF").unwrap_err(), GifError::BadSignature);
        assert_eq!(decode(b"GIF87a").unwrap_err(), GifError::Truncated);
    }

    #[test]
    fn overhead_is_small_for_tiny_images() {
        // The fixed cost of a 2-color 1x1 GIF: header(6) + LSD(7) +
        // palette(6) + descriptor(10) + mcs(1) + data + trailer(1) ≈ 35B.
        let img = IndexedImage::solid(1, 1, small_palette(2));
        let n = encode(&img).len();
        assert!(n < 50, "tiny GIF is {n} bytes");
    }
}
