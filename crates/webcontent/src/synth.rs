//! Deterministic synthetic image generators.
//!
//! The paper's Microscape page merges two real 1997 home pages; its images
//! are text banners, bullets, spacers, navigation icons, photographic
//! thumbnails and two animations. These generators produce images with the
//! same *statistical* character (run lengths, palette sizes, noise levels)
//! so the GIF/PNG/MNG size comparisons behave like the paper's. Everything
//! is seeded — the same inputs always produce the same bytes.

use crate::image::{small_palette, Animation, Frame, IndexedImage};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// What an image depicts, which determines both its compressibility and
/// whether CSS can replace it (see [`crate::css`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImageRole {
    /// A word or phrase rendered in a styled font (Figure 1's
    /// "solutions" GIF): replaceable by HTML+CSS.
    TextBanner,
    /// A list bullet / arrow glyph: replaceable by CSS or Unicode.
    Bullet,
    /// An invisible layout spacer: replaceable by CSS padding/margins.
    Spacer,
    /// A decorative horizontal rule: replaceable by CSS borders.
    Rule,
    /// A navigation icon with real artwork: not replaceable.
    Icon,
    /// A photographic image: not replaceable.
    Photo,
    /// An animated element.
    Animation,
}

impl ImageRole {
    /// Whether HTML+CSS can reproduce the visual effect without an image.
    pub fn css_replaceable(self) -> bool {
        matches!(
            self,
            ImageRole::TextBanner | ImageRole::Bullet | ImageRole::Spacer | ImageRole::Rule
        )
    }
}

/// A text banner: fg-colored word-like runs over a solid background, like
/// anti-aliasing-free mid-90s text GIFs.
pub fn banner(width: u32, height: u32, seed: u64) -> IndexedImage {
    let mut rng = SmallRng::seed_from_u64(seed);
    let palette = vec![[0xFC, 0xC0, 0x00], [0xFF, 0xFF, 0xFF], [0x80, 0x60, 0x00]];
    let mut img = IndexedImage::solid(width, height, palette);
    // Text occupies a vertical band in the middle.
    let top = height / 4;
    let bottom = height - height / 4;
    let mut x = width / 16 + 1;
    while x + 3 < width - width / 16 {
        let word_len = rng.gen_range(3..9).min(width - x - 1);
        for y in top..bottom {
            for dx in 0..word_len {
                // Letter strokes: vertical-ish runs with gaps.
                let lit = (dx + y) % 3 != 0 && rng.gen_bool(0.8);
                if lit {
                    img.set(x + dx, y, 1);
                }
                if (dx + y) % 5 == 0 && y > top {
                    img.set(x + dx, y - 1, 2); // shadow
                }
            }
        }
        x += word_len + rng.gen_range(2..5);
    }
    img
}

/// A round list bullet.
pub fn bullet(diameter: u32, seed: u64) -> IndexedImage {
    let mut rng = SmallRng::seed_from_u64(seed);
    let palette = vec![[0xFF, 0xFF, 0xFF], [0x00, 0x33, 0x99], [0x66, 0x99, 0xFF]];
    let mut img = IndexedImage::solid(diameter, diameter, palette);
    let r = diameter as i32 / 2;
    let hi = rng.gen_range(0..r.max(1));
    for y in 0..diameter as i32 {
        for x in 0..diameter as i32 {
            let (dx, dy) = (x - r, y - r);
            if dx * dx + dy * dy <= r * r {
                let c = if dx + dy < -hi { 2 } else { 1 };
                img.set(x as u32, y as u32, c);
            }
        }
    }
    img
}

/// A single-color spacer (the classic invisible layout GIF).
pub fn spacer(width: u32, height: u32) -> IndexedImage {
    IndexedImage::solid(width, height, vec![[0xFF, 0xFF, 0xFF], [0, 0, 0]])
}

/// A horizontal rule with a bevel.
pub fn rule(width: u32, height: u32) -> IndexedImage {
    let palette = vec![[0xC0, 0xC0, 0xC0], [0x80, 0x80, 0x80], [0xFF, 0xFF, 0xFF]];
    let mut img = IndexedImage::solid(width, height, palette);
    for x in 0..width {
        img.set(x, 0, 1);
        if height > 1 {
            img.set(x, height - 1, 2);
        }
    }
    img
}

/// A navigation icon: random rectangles and diagonals over a small
/// palette — structured but not trivially compressible.
pub fn icon(width: u32, height: u32, colors: usize, seed: u64) -> IndexedImage {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut img = IndexedImage::solid(width, height, small_palette(colors));
    for _ in 0..(colors * 2) {
        let x0 = rng.gen_range(0..width);
        let y0 = rng.gen_range(0..height);
        let w = rng.gen_range(1..=(width - x0));
        let h = rng.gen_range(1..=(height - y0));
        let c = rng.gen_range(0..colors) as u8;
        for y in y0..y0 + h {
            for x in x0..x0 + w {
                img.set(x, y, c);
            }
        }
    }
    // A diagonal accent.
    for i in 0..width.min(height) {
        img.set(i, i, (colors - 1) as u8);
    }
    img
}

/// A photographic thumbnail: low-frequency gradients plus per-pixel noise,
/// quantized to a medium palette. `detail` in [0,1] scales the noise.
// 6.28 is frozen: substituting `f64::consts::TAU` would change every
// generated byte and invalidate the calibrated content sizes.
#[allow(clippy::approx_constant)]
pub fn photo(width: u32, height: u32, colors: usize, detail: f64, seed: u64) -> IndexedImage {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut img = IndexedImage::solid(width, height, small_palette(colors));
    // Low-frequency field from a handful of random cosine waves.
    let waves: Vec<(f64, f64, f64)> = (0..4)
        .map(|_| {
            (
                rng.gen_range(0.3..2.5),
                rng.gen_range(0.3..2.5),
                rng.gen_range(0.0..6.28),
            )
        })
        .collect();
    for y in 0..height {
        for x in 0..width {
            let (fx, fy) = (
                x as f64 / width as f64 * 6.28,
                y as f64 / height as f64 * 6.28,
            );
            let mut v = 0.0;
            for &(a, b, ph) in &waves {
                v += ((fx * a) + (fy * b) + ph).cos();
            }
            let v = (v / 8.0 + 0.5).clamp(0.0, 1.0);
            let noise = rng.gen_range(-0.5..0.5) * detail;
            let q = ((v + noise).clamp(0.0, 0.999) * colors as f64) as usize;
            img.set(x, y, q as u8);
        }
    }
    img
}

/// Screenshot/artwork-like graphic: flat gradient bands overlaid with
/// small rectangles and dithered strips — the mix of flat runs and local
/// detail typical of mid-90s web art. `detail` in [0,1] controls how much
/// of the area the busy features cover, which makes encoded size close to
/// monotone in `detail` for *both* LZW and DEFLATE (the property the
/// GIF-vs-PNG comparison needs).
pub fn graphic(width: u32, height: u32, colors: usize, detail: f64, seed: u64) -> IndexedImage {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut img = IndexedImage::solid(width, height, small_palette(colors));
    // Base: horizontal gradient bands (long flat runs).
    let bands = 4 + (colors / 8).min(8) as u32;
    for y in 0..height {
        let base = ((y * bands / height) as usize * (colors - 1) / bands as usize) as u8;
        for x in 0..width {
            img.set(x, y, base);
        }
    }
    // Busy features: small rectangles with 1-px borders.
    let area = (width * height) as f64;
    let rects = (area * detail / 9.0) as usize;
    for _ in 0..rects {
        let w = rng.gen_range(2..7).min(width);
        let h = rng.gen_range(2..6).min(height);
        let x0 = rng.gen_range(0..=width - w);
        let y0 = rng.gen_range(0..=height - h);
        let fill = rng.gen_range(0..colors) as u8;
        let edge = rng.gen_range(0..colors) as u8;
        for y in y0..y0 + h {
            for x in x0..x0 + w {
                let border = x == x0 || x + 1 == x0 + w || y == y0 || y + 1 == y0 + h;
                img.set(x, y, if border { edge } else { fill });
            }
        }
    }
    // Dithered strips: adjacent-level checker dithering over a band of
    // rows, like quantized photo areas.
    let strips = (detail * 14.0) as u32;
    for _ in 0..strips {
        let y0 = rng.gen_range(0..height);
        let rows = rng.gen_range(2..8).min(height - y0);
        let level = rng.gen_range(0..colors.saturating_sub(2).max(1)) as u8;
        for y in y0..y0 + rows {
            for x in 0..width {
                if (x + y) % 2 == 0 && rng.gen_bool(0.7) {
                    img.set(x, y, level + 1);
                }
            }
        }
    }
    img
}

/// A looping animation: a sprite orbiting a patterned background whose
/// texture shimmers between frames (as dithered mid-90s animations did).
/// A substantial fraction of pixels changes each frame, so inter-frame
/// coding helps but is no free lunch — matching the paper's observed
/// GIF→MNG ratio rather than a degenerate all-static one.
// 6.28318 is frozen: substituting `f64::consts::TAU` would change every
// generated byte and invalidate the calibrated content sizes.
#[allow(clippy::approx_constant)]
pub fn animation(width: u32, height: u32, frames: usize, seed: u64) -> Animation {
    let mut rng = SmallRng::seed_from_u64(seed);
    let background = icon(width, height, 8, rng.gen());
    let sprite = rng.gen_range(4..8).min(width / 2).max(2);
    let mut out = Vec::with_capacity(frames);
    for f in 0..frames {
        let mut img = background.clone();
        // Shimmer: rotate the palette index of a dithered subset of the
        // background, different subset each frame.
        for y in 0..height {
            for x in 0..width {
                if (x * 31 + y * 17 + f as u32 * 7) % 5 == 0 {
                    let v = img.get(x, y);
                    img.set(x, y, (v + 1) % 8);
                }
            }
        }
        let t = f as f64 / frames as f64 * 6.28318;
        let cx = (width as f64 / 2.0 + (width as f64 / 3.0) * t.cos()) as u32;
        let cy = (height as f64 / 2.0 + (height as f64 / 3.0) * t.sin()) as u32;
        for dy in 0..sprite {
            for dx in 0..sprite {
                let x = (cx + dx).min(width - 1);
                let y = (cy + dy).min(height - 1);
                img.set(x, y, 7);
            }
        }
        out.push(Frame {
            image: img,
            delay_cs: 10,
        });
    }
    Animation::new(out)
}

/// Search a `detail` knob in [0,1] so that the encoded GIF produced by
/// `make(detail)` lands within `tolerance` (fractional) of `target_bytes`.
/// Returns the image and its actual GIF size — the closest found if the
/// target is unreachable.
pub fn fit_to_gif_size(
    target_bytes: usize,
    tolerance: f64,
    make: impl Fn(f64) -> IndexedImage,
) -> (IndexedImage, usize) {
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    let mut best: Option<(IndexedImage, usize)> = None;
    for _ in 0..16 {
        let mid = (lo + hi) / 2.0;
        let img = make(mid);
        let size = crate::gif::encode(&img).len();
        let better = match &best {
            None => true,
            Some((_, s)) => {
                (size as i64 - target_bytes as i64).abs() < (*s as i64 - target_bytes as i64).abs()
            }
        };
        if better {
            best = Some((img, size));
        }
        if (size as f64 - target_bytes as f64).abs() / target_bytes as f64 <= tolerance {
            break;
        }
        if size < target_bytes {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    best.expect("at least one iteration")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gif;

    #[test]
    fn generators_produce_valid_images() {
        banner(100, 25, 1).validate().unwrap();
        bullet(12, 2).validate().unwrap();
        spacer(50, 1).validate().unwrap();
        rule(400, 3).validate().unwrap();
        icon(32, 32, 8, 3).validate().unwrap();
        photo(64, 48, 32, 0.5, 4).validate().unwrap();
        graphic(90, 60, 32, 0.5, 4).validate().unwrap();
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(banner(80, 20, 42), banner(80, 20, 42));
        assert_eq!(photo(32, 32, 16, 0.3, 7), photo(32, 32, 16, 0.3, 7));
        assert_ne!(photo(32, 32, 16, 0.3, 7), photo(32, 32, 16, 0.3, 8));
    }

    #[test]
    fn spacer_compresses_to_near_nothing() {
        let g = gif::encode(&spacer(100, 10)).len();
        assert!(g < 100, "spacer GIF is {g} bytes");
    }

    #[test]
    fn detail_increases_size() {
        let small = gif::encode(&photo(64, 64, 32, 0.0, 1)).len();
        let big = gif::encode(&photo(64, 64, 32, 1.0, 1)).len();
        assert!(
            big > small * 3 / 2,
            "noise must inflate GIF size: {small} -> {big}"
        );
        let small = gif::encode(&graphic(120, 90, 32, 0.0, 1)).len();
        let big = gif::encode(&graphic(120, 90, 32, 1.0, 1)).len();
        assert!(
            big > small * 3,
            "detail must inflate GIF size: {small} -> {big}"
        );
    }

    #[test]
    fn fit_hits_typical_targets() {
        for (w, h, colors, target) in [
            (80u32, 60u32, 16usize, 1500usize),
            (140, 100, 32, 4000),
            (56, 40, 8, 700),
        ] {
            let (_img, size) = fit_to_gif_size(target, 0.05, |d| graphic(w, h, colors, d, 99));
            let err = (size as f64 - target as f64).abs() / target as f64;
            assert!(err <= 0.25, "target {target}: got {size} (err {err:.2})");
        }
    }

    #[test]
    fn animation_frames_differ() {
        let anim = animation(32, 32, 6, 5);
        assert_eq!(anim.frames.len(), 6);
        assert_ne!(anim.frames[0].image.pixels, anim.frames[3].image.pixels);
    }

    #[test]
    fn roles_classify_replaceability() {
        assert!(ImageRole::TextBanner.css_replaceable());
        assert!(ImageRole::Spacer.css_replaceable());
        assert!(!ImageRole::Photo.css_replaceable());
        assert!(!ImageRole::Animation.css_replaceable());
    }
}
