//! A CSS1 subset: parsing, compact serialization, and the image→HTML+CSS
//! replacement model behind the paper's style-sheet savings analysis.
//!
//! The paper's Figure 1: a 682-byte "solutions" GIF is visually replaced
//! by ~150 bytes of HTML+CSS (a `P.banner` rule plus `<P CLASS=banner>`).
//! This module reproduces that analysis across the Microscape page's 40
//! static images: each image role that CSS can replace gets a concrete
//! rule + markup cost, and [`ReplacementAnalysis`] totals the byte and
//! request savings.

use crate::synth::ImageRole;
use std::fmt;

/// One CSS declaration, e.g. `color: white`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Declaration {
    /// Property name, lowercased.
    pub property: String,
    /// Value with normalized whitespace.
    pub value: String,
}

/// One CSS rule: selectors and a declaration block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Comma-separated selectors, one entry each.
    pub selectors: Vec<String>,
    /// Declarations in source order.
    pub declarations: Vec<Declaration>,
}

/// A parsed stylesheet.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stylesheet {
    /// Rules in source order.
    pub rules: Vec<Rule>,
}

/// CSS parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CssError {
    /// A `{` without matching `}`.
    UnterminatedBlock,
    /// A declaration without a `:` separator.
    BadDeclaration(String),
    /// A block with no selector.
    MissingSelector,
}

impl fmt::Display for CssError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CssError::UnterminatedBlock => f.write_str("unterminated declaration block"),
            CssError::BadDeclaration(d) => write!(f, "malformed declaration: {d}"),
            CssError::MissingSelector => f.write_str("rule without selector"),
        }
    }
}

impl std::error::Error for CssError {}

fn strip_comments(css: &str) -> String {
    let mut out = String::with_capacity(css.len());
    let mut rest = css;
    while let Some(start) = rest.find("/*") {
        out.push_str(&rest[..start]);
        match rest[start + 2..].find("*/") {
            Some(end) => rest = &rest[start + 2 + end + 2..],
            None => return out, // unterminated comment swallows the rest
        }
    }
    out.push_str(rest);
    out
}

/// Parse a CSS1 stylesheet (selectors with class/element syntax,
/// declaration blocks; at-rules are not part of the subset).
pub fn parse(css: &str) -> Result<Stylesheet, CssError> {
    let css = strip_comments(css);
    let mut rules = Vec::new();
    let mut rest = css.as_str();
    loop {
        let Some(open) = rest.find('{') else {
            if !rest.trim().is_empty() {
                return Err(CssError::UnterminatedBlock);
            }
            break;
        };
        let selector_src = rest[..open].trim();
        if selector_src.is_empty() {
            return Err(CssError::MissingSelector);
        }
        let close = rest[open..].find('}').ok_or(CssError::UnterminatedBlock)? + open;
        let block = &rest[open + 1..close];
        let selectors: Vec<String> = selector_src
            .split(',')
            .map(|s| s.split_whitespace().collect::<Vec<_>>().join(" "))
            .filter(|s| !s.is_empty())
            .collect();
        let mut declarations = Vec::new();
        for decl in block.split(';') {
            let decl = decl.trim();
            if decl.is_empty() {
                continue;
            }
            let (prop, value) = decl
                .split_once(':')
                .ok_or_else(|| CssError::BadDeclaration(decl.to_string()))?;
            declarations.push(Declaration {
                property: prop.trim().to_ascii_lowercase(),
                value: value.split_whitespace().collect::<Vec<_>>().join(" "),
            });
        }
        rules.push(Rule {
            selectors,
            declarations,
        });
        rest = &rest[close + 1..];
    }
    Ok(Stylesheet { rules })
}

/// Serialize compactly (no pretty-printing — byte counts matter here).
pub fn serialize(sheet: &Stylesheet) -> String {
    let mut out = String::new();
    for rule in &sheet.rules {
        out.push_str(&rule.selectors.join(","));
        out.push('{');
        for (i, d) in rule.declarations.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            out.push_str(&d.property);
            out.push(':');
            out.push_str(&d.value);
        }
        out.push('}');
    }
    out
}

// ---------------------------------------------------------------------
// The image-replacement model
// ---------------------------------------------------------------------

/// The paper's Figure 1 stylesheet for a text banner.
pub fn banner_rule(class: &str) -> Rule {
    Rule {
        selectors: vec![format!("P.{class}")],
        declarations: vec![
            Declaration {
                property: "color".into(),
                value: "white".into(),
            },
            Declaration {
                property: "background".into(),
                value: "#FC0".into(),
            },
            Declaration {
                property: "font".into(),
                value: "bold oblique 20px sans-serif".into(),
            },
            Declaration {
                property: "padding".into(),
                value: "0.2em 10em 0.2em 1em".into(),
            },
        ],
    }
}

/// The CSS rule that replaces an image of the given role, or `None` when
/// the role needs real raster data.
pub fn replacement_rule(role: ImageRole, class: &str) -> Option<Rule> {
    match role {
        ImageRole::TextBanner => Some(banner_rule(class)),
        ImageRole::Bullet => Some(Rule {
            selectors: vec![format!("LI.{class}")],
            declarations: vec![Declaration {
                property: "list-style".into(),
                value: "disc".into(),
            }],
        }),
        ImageRole::Spacer => Some(Rule {
            selectors: vec![format!(".{class}")],
            declarations: vec![Declaration {
                property: "margin-left".into(),
                value: "1em".into(),
            }],
        }),
        ImageRole::Rule => Some(Rule {
            selectors: vec![format!("HR.{class}")],
            declarations: vec![
                Declaration {
                    property: "border".into(),
                    value: "1px solid #888".into(),
                },
                Declaration {
                    property: "height".into(),
                    value: "2px".into(),
                },
            ],
        }),
        ImageRole::Icon | ImageRole::Photo | ImageRole::Animation => None,
    }
}

/// In-document markup that replaces the `<IMG ...>` element, e.g.
/// `<P CLASS=banner> solutions` for Figure 1.
pub fn replacement_markup(role: ImageRole, class: &str, label: &str) -> Option<String> {
    match role {
        ImageRole::TextBanner => Some(format!("<P CLASS={class}> {label}")),
        ImageRole::Bullet => Some(format!("<LI CLASS={class}>")),
        ImageRole::Spacer => Some(format!("<SPAN CLASS={class}></SPAN>")),
        ImageRole::Rule => Some(format!("<HR CLASS={class}>")),
        _ => None,
    }
}

/// One image's replacement outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replacement {
    /// Image path on the site.
    pub path: String,
    /// What the image depicted.
    pub role: ImageRole,
    /// Size of the original GIF.
    pub gif_bytes: usize,
    /// Bytes of `<IMG ...>` markup removed from the HTML.
    pub img_tag_bytes: usize,
    /// Bytes of CSS rule added to the shared stylesheet (0 if kept).
    pub css_bytes: usize,
    /// Bytes of replacement markup added to the HTML (0 if kept).
    pub markup_bytes: usize,
    /// Whether CSS replaced the image.
    pub replaced: bool,
}

/// Totals over a page.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplacementAnalysis {
    /// Per-image outcomes.
    pub items: Vec<Replacement>,
}

impl ReplacementAnalysis {
    /// Analyze a page's images. `images` is (path, role, gif bytes,
    /// img-tag bytes, label).
    pub fn analyze(images: &[(String, ImageRole, usize, usize, String)]) -> Self {
        let mut items = Vec::with_capacity(images.len());
        for (i, (path, role, gif_bytes, img_tag_bytes, label)) in images.iter().enumerate() {
            let class = format!("c{i}");
            let (css_bytes, markup_bytes, replaced) = match (
                replacement_rule(*role, &class),
                replacement_markup(*role, &class, label),
            ) {
                (Some(rule), Some(markup)) => {
                    let css = serialize(&Stylesheet { rules: vec![rule] });
                    (css.len(), markup.len(), true)
                }
                _ => (0, 0, false),
            };
            items.push(Replacement {
                path: path.clone(),
                role: *role,
                gif_bytes: *gif_bytes,
                img_tag_bytes: *img_tag_bytes,
                css_bytes,
                markup_bytes,
                replaced,
            });
        }
        ReplacementAnalysis { items }
    }

    /// How many images were replaced by HTML+CSS.
    pub fn replaced_count(&self) -> usize {
        self.items.iter().filter(|i| i.replaced).count()
    }

    /// HTTP requests eliminated (one per replaced image).
    pub fn requests_saved(&self) -> usize {
        self.replaced_count()
    }

    /// Net payload bytes saved: removed GIFs and img tags, minus added CSS
    /// and markup.
    pub fn bytes_saved(&self) -> i64 {
        self.items
            .iter()
            .filter(|i| i.replaced)
            .map(|i| {
                i.gif_bytes as i64 + i.img_tag_bytes as i64
                    - i.css_bytes as i64
                    - i.markup_bytes as i64
            })
            .sum()
    }

    /// Total image bytes on the original page.
    pub fn total_gif_bytes(&self) -> usize {
        self.items.iter().map(|i| i.gif_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_figure_one() {
        let css = r#"
            P.banner {
              color: white;
              background: #FC0;
              font: bold oblique 20px sans-serif;
              padding: 0.2em 10em 0.2em 1em;
            }
        "#;
        let sheet = parse(css).unwrap();
        assert_eq!(sheet.rules.len(), 1);
        assert_eq!(sheet.rules[0].selectors, vec!["P.banner"]);
        assert_eq!(sheet.rules[0].declarations.len(), 4);
        assert_eq!(sheet.rules[0].declarations[0].property, "color");
    }

    #[test]
    fn serialize_is_compact_and_reparses() {
        let css = "P.banner { color: white; background: #FC0 }\nH1, H2 { font-size : 20px; }";
        let sheet = parse(css).unwrap();
        let compact = serialize(&sheet);
        assert!(!compact.contains('\n'));
        assert_eq!(parse(&compact).unwrap(), sheet);
    }

    #[test]
    fn comments_stripped() {
        let sheet = parse("/* note */ P { /* inner */ color: red }").unwrap();
        assert_eq!(sheet.rules[0].declarations[0].value, "red");
    }

    #[test]
    fn errors_reported() {
        assert_eq!(
            parse("P { color: red").unwrap_err(),
            CssError::UnterminatedBlock
        );
        assert_eq!(
            parse("{ color: red }").unwrap_err(),
            CssError::MissingSelector
        );
        assert!(matches!(
            parse("P { colorred }").unwrap_err(),
            CssError::BadDeclaration(_)
        ));
    }

    #[test]
    fn figure_one_size_claim() {
        // "The HTML and CSS version only takes up around 150 bytes" for a
        // 682-byte GIF: a >4x reduction.
        let rule = banner_rule("banner");
        let css = serialize(&Stylesheet { rules: vec![rule] });
        let markup = replacement_markup(ImageRole::TextBanner, "banner", "solutions").unwrap();
        let total = css.len() + markup.len();
        assert!(
            (100..=200).contains(&total),
            "HTML+CSS replacement should be ~150 bytes, got {total}"
        );
        assert!(682 / total >= 4, "reduction factor of more than 4");
    }

    #[test]
    fn analysis_totals() {
        let images = vec![
            (
                "banner.gif".to_string(),
                ImageRole::TextBanner,
                682,
                60,
                "solutions".to_string(),
            ),
            (
                "photo.gif".to_string(),
                ImageRole::Photo,
                40_000,
                60,
                String::new(),
            ),
            (
                "dot.gif".to_string(),
                ImageRole::Bullet,
                120,
                50,
                String::new(),
            ),
        ];
        let a = ReplacementAnalysis::analyze(&images);
        assert_eq!(a.replaced_count(), 2);
        assert_eq!(a.requests_saved(), 2);
        assert!(a.bytes_saved() > 0);
        assert_eq!(a.total_gif_bytes(), 40_802);
        // The photo was kept.
        assert!(!a.items[1].replaced);
    }

    #[test]
    fn unreplaceable_roles_have_no_rule() {
        assert!(replacement_rule(ImageRole::Photo, "x").is_none());
        assert!(replacement_rule(ImageRole::Animation, "x").is_none());
        assert!(replacement_markup(ImageRole::Icon, "x", "y").is_none());
    }
}
