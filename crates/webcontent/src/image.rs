//! The in-memory image model shared by the GIF, PNG and MNG codecs.
//!
//! Mid-90s web images are palette-indexed (GIF is always ≤256 colors), so
//! the common model is an indexed bitmap plus an RGB palette.

/// An RGB palette entry.
pub type Rgb = [u8; 3];

/// A palette-indexed bitmap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexedImage {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// 2..=256 RGB entries.
    pub palette: Vec<Rgb>,
    /// Row-major pixel indices into `palette`, `width * height` entries.
    pub pixels: Vec<u8>,
}

impl IndexedImage {
    /// Create a solid-color image using palette index 0.
    pub fn solid(width: u32, height: u32, palette: Vec<Rgb>) -> Self {
        assert!(!palette.is_empty() && palette.len() <= 256);
        IndexedImage {
            width,
            height,
            palette,
            pixels: vec![0; (width * height) as usize],
        }
    }

    /// Pixel accessor (row-major).
    pub fn get(&self, x: u32, y: u32) -> u8 {
        self.pixels[(y * self.width + x) as usize]
    }

    /// Pixel mutator.
    pub fn set(&mut self, x: u32, y: u32, index: u8) {
        debug_assert!((index as usize) < self.palette.len());
        self.pixels[(y * self.width + x) as usize] = index;
    }

    /// The minimum bits needed to represent every palette index (1..=8).
    pub fn bit_depth(&self) -> u32 {
        let n = self.palette.len().max(2);
        (usize::BITS - (n - 1).leading_zeros()).max(1)
    }

    /// Validity check: every pixel indexes into the palette and dimensions
    /// match the pixel count.
    pub fn validate(&self) -> Result<(), String> {
        if self.palette.is_empty() || self.palette.len() > 256 {
            return Err(format!("palette size {} out of range", self.palette.len()));
        }
        if self.pixels.len() != (self.width * self.height) as usize {
            return Err(format!(
                "pixel count {} does not match {}x{}",
                self.pixels.len(),
                self.width,
                self.height
            ));
        }
        if let Some(&bad) = self
            .pixels
            .iter()
            .find(|&&p| p as usize >= self.palette.len())
        {
            return Err(format!("pixel index {bad} exceeds palette"));
        }
        Ok(())
    }
}

/// A frame of an animation: an image plus a display delay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame bitmap.
    pub image: IndexedImage,
    /// Delay before the next frame, in centiseconds (GIF's unit).
    pub delay_cs: u16,
}

/// A multi-frame animation. All frames share dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Animation {
    /// Frames in display order.
    pub frames: Vec<Frame>,
}

impl Animation {
    /// Create a new, empty instance.
    pub fn new(frames: Vec<Frame>) -> Self {
        assert!(!frames.is_empty());
        let (w, h) = (frames[0].image.width, frames[0].image.height);
        assert!(
            frames.iter().all(|f| f.image.width == w && f.image.height == h),
            "all frames must share dimensions"
        );
        Animation { frames }
    }

    /// Frame width in pixels.
    pub fn width(&self) -> u32 {
        self.frames[0].image.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> u32 {
        self.frames[0].image.height
    }
}

/// The standard 216-color web-safe palette plus grays, commonly used by
/// mid-90s tools.
pub fn web_safe_palette() -> Vec<Rgb> {
    let mut p = Vec::with_capacity(256);
    for r in 0..6u8 {
        for g in 0..6u8 {
            for b in 0..6u8 {
                p.push([r * 51, g * 51, b * 51]);
            }
        }
    }
    for i in 0..40u8 {
        let v = (i as u16 * 255 / 39) as u8;
        p.push([v, v, v]);
    }
    p
}

/// A small palette of `n` visually-distinct colors for simple graphics.
pub fn small_palette(n: usize) -> Vec<Rgb> {
    assert!((2..=256).contains(&n));
    let mut p = Vec::with_capacity(n);
    for i in 0..n {
        let t = i as f64 / n as f64;
        let r = (127.0 + 127.0 * (t * 6.28318).cos()) as u8;
        let g = (127.0 + 127.0 * ((t + 0.33) * 6.28318).cos()) as u8;
        let b = (127.0 + 127.0 * ((t + 0.66) * 6.28318).cos()) as u8;
        p.push([r, g, b]);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solid_image_valid() {
        let img = IndexedImage::solid(10, 5, small_palette(4));
        img.validate().unwrap();
        assert_eq!(img.pixels.len(), 50);
        assert_eq!(img.get(3, 2), 0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut img = IndexedImage::solid(4, 4, small_palette(8));
        img.set(2, 3, 5);
        assert_eq!(img.get(2, 3), 5);
        assert_eq!(img.get(3, 2), 0);
    }

    #[test]
    fn bit_depth_computation() {
        let mk = |n| IndexedImage::solid(1, 1, small_palette(n));
        assert_eq!(mk(2).bit_depth(), 1);
        assert_eq!(mk(3).bit_depth(), 2);
        assert_eq!(mk(4).bit_depth(), 2);
        assert_eq!(mk(5).bit_depth(), 3);
        assert_eq!(mk(16).bit_depth(), 4);
        assert_eq!(mk(17).bit_depth(), 5);
        assert_eq!(mk(256).bit_depth(), 8);
    }

    #[test]
    fn validate_catches_bad_pixels() {
        let mut img = IndexedImage::solid(2, 2, small_palette(2));
        img.pixels[0] = 7;
        assert!(img.validate().is_err());
    }

    #[test]
    fn validate_catches_dimension_mismatch() {
        let mut img = IndexedImage::solid(2, 2, small_palette(2));
        img.pixels.pop();
        assert!(img.validate().is_err());
    }

    #[test]
    fn web_safe_palette_size() {
        let p = web_safe_palette();
        assert_eq!(p.len(), 256);
        assert_eq!(p[0], [0, 0, 0]);
        assert_eq!(p[215], [255, 255, 255]);
    }

    #[test]
    fn animation_dimension_check() {
        let f = |w, h| Frame {
            image: IndexedImage::solid(w, h, small_palette(2)),
            delay_cs: 10,
        };
        let anim = Animation::new(vec![f(8, 8), f(8, 8)]);
        assert_eq!(anim.width(), 8);
    }

    #[test]
    #[should_panic(expected = "share dimensions")]
    fn animation_rejects_mismatched_frames() {
        let f = |w, h| Frame {
            image: IndexedImage::solid(w, h, small_palette(2)),
            delay_cs: 10,
        };
        Animation::new(vec![f(8, 8), f(9, 8)]);
    }
}
