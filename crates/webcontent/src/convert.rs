//! The GIF→PNG / animated-GIF→MNG conversion pipeline and its savings
//! report — the paper's "Converting images from GIF to PNG and MNG"
//! experiment (batch `giftopnm | pnmtopng` in the original).

use crate::gif;
use crate::mng;
use crate::png::{self, PngOptions};

/// Outcome of converting one image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conversion {
    /// Image path on the site.
    pub path: String,
    /// Size as a GIF.
    pub gif_bytes: usize,
    /// Size after conversion (PNG or MNG).
    pub converted_bytes: usize,
    /// True for the animation/MNG path.
    pub animated: bool,
}

impl Conversion {
    /// Bytes saved (negative when the conversion grew the file, which the
    /// paper observed for sub-200-byte GIFs).
    pub fn saved(&self) -> i64 {
        self.gif_bytes as i64 - self.converted_bytes as i64
    }
}

/// Errors during conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvertError {
    /// Gif.
    Gif(gif::GifError),
    /// Not animated.
    NotAnimated,
}

impl std::fmt::Display for ConvertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvertError::Gif(e) => write!(f, "gif decode failed: {e}"),
            ConvertError::NotAnimated => f.write_str("expected an animated gif"),
        }
    }
}

impl std::error::Error for ConvertError {}

/// Convert a static GIF to PNG (with the gamma chunk, as the paper's
/// conversion produced). `pnmtopng` compresses hard; so do we.
pub fn gif_to_png(data: &[u8]) -> Result<Vec<u8>, ConvertError> {
    let dec = gif::decode(data).map_err(ConvertError::Gif)?;
    Ok(png::encode(
        &dec.frames[0].image,
        PngOptions {
            gamma: true,
            level: flate::Level::Best,
        },
    ))
}

/// Convert an animated GIF to MNG.
pub fn gif_to_mng(data: &[u8]) -> Result<Vec<u8>, ConvertError> {
    let dec = gif::decode(data).map_err(ConvertError::Gif)?;
    if dec.frames.len() < 2 && !dec.animated {
        return Err(ConvertError::NotAnimated);
    }
    let anim = crate::image::Animation::new(dec.frames);
    Ok(mng::encode(&anim))
}

/// Convert every image of a site inventory; static images go to PNG,
/// animations to MNG.
pub fn convert_site(images: &[crate::microscape::SiteObject]) -> Vec<Conversion> {
    images
        .iter()
        .map(|obj| {
            let animated = obj.role == Some(crate::synth::ImageRole::Animation);
            let converted = if animated {
                gif_to_mng(&obj.body).expect("site animations convert")
            } else {
                gif_to_png(&obj.body).expect("site images convert")
            };
            Conversion {
                path: obj.path.clone(),
                gif_bytes: obj.body.len(),
                converted_bytes: converted.len(),
                animated,
            }
        })
        .collect()
}

/// Aggregated report matching the paper's numbers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConversionReport {
    /// Total GIF bytes of the static images.
    pub static_gif_bytes: usize,
    /// Their total after PNG conversion.
    pub static_png_bytes: usize,
    /// Total animated-GIF bytes.
    pub anim_gif_bytes: usize,
    /// Their total after MNG conversion.
    pub anim_mng_bytes: usize,
    /// Count of images that grew (the tiny-image penalty).
    pub grew: usize,
}

impl ConversionReport {
    /// Aggregate per-image conversions into totals.
    pub fn from_conversions(conversions: &[Conversion]) -> Self {
        let mut r = ConversionReport::default();
        for c in conversions {
            if c.animated {
                r.anim_gif_bytes += c.gif_bytes;
                r.anim_mng_bytes += c.converted_bytes;
            } else {
                r.static_gif_bytes += c.gif_bytes;
                r.static_png_bytes += c.converted_bytes;
            }
            if c.saved() < 0 {
                r.grew += 1;
            }
        }
        r
    }

    /// Bytes saved converting the static images to PNG.
    pub fn static_saved(&self) -> i64 {
        self.static_gif_bytes as i64 - self.static_png_bytes as i64
    }

    /// Bytes saved converting the animations to MNG.
    pub fn anim_saved(&self) -> i64 {
        self.anim_gif_bytes as i64 - self.anim_mng_bytes as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::small_palette;
    use crate::microscape;
    use crate::synth;

    #[test]
    fn static_conversion_roundtrip() {
        let img = synth::photo(80, 60, 32, 0.4, 5);
        let gif_bytes = gif::encode(&img);
        let png_bytes = gif_to_png(&gif_bytes).unwrap();
        let dec = png::decode(&png_bytes).unwrap();
        assert_eq!(dec.image.pixels, img.pixels);
        assert_eq!(dec.gamma, Some(45_455), "conversion adds gamma info");
    }

    #[test]
    fn animation_conversion_roundtrip() {
        let anim = synth::animation(40, 40, 6, 9);
        let gif_bytes = gif::encode_animation(&anim);
        let mng_bytes = gif_to_mng(&gif_bytes).unwrap();
        let dec = mng::decode(&mng_bytes).unwrap();
        assert_eq!(dec.frames.len(), 6);
        for (got, want) in dec.frames.iter().zip(&anim.frames) {
            assert_eq!(got.image.pixels, want.image.pixels);
        }
    }

    #[test]
    fn site_conversion_report_matches_paper_shape() {
        // Paper: 103,299 B of static GIF -> 92,096 B of PNG (~11% saving,
        // "modest because many images are very small"); 24,988 B of
        // animation -> 16,329 B of MNG (~35%).
        let s = microscape::site();
        let conversions = convert_site(&s.images);
        let r = ConversionReport::from_conversions(&conversions);
        let png_ratio = r.static_png_bytes as f64 / r.static_gif_bytes as f64;
        assert!(
            (0.70..=0.99).contains(&png_ratio),
            "PNG should save modestly overall, ratio {png_ratio:.3}"
        );
        let mng_ratio = r.anim_mng_bytes as f64 / r.anim_gif_bytes as f64;
        assert!(
            mng_ratio < 0.80,
            "MNG should save substantially, ratio {mng_ratio:.3}"
        );
        assert!(r.grew >= 1, "some tiny images must grow under PNG");
    }

    #[test]
    fn tiny_gif_grows_under_png() {
        let img = crate::image::IndexedImage::solid(10, 10, small_palette(2));
        let g = gif::encode(&img);
        let p = gif_to_png(&g).unwrap();
        assert!(p.len() > g.len());
    }

    #[test]
    fn garbage_rejected() {
        assert!(gif_to_png(b"not a gif").is_err());
        assert!(gif_to_mng(b"not a gif").is_err());
    }
}
