//! A minimal MNG-style animation container.
//!
//! MNG (Multiple-image Network Graphics) is PNG's animation sibling; the
//! paper converts its two GIF animations to MNG for a ~35% saving. This
//! module implements the subset that delivers that saving:
//!
//! * the MNG signature, `MHDR` header and `MEND` trailer (per the 1997
//!   draft the paper cites);
//! * a full PNG-encoded first frame;
//! * subsequent frames as *delta* objects in the spirit of MNG's
//!   Delta-PNG: a deflate-compressed per-pixel difference against the
//!   previous frame, which is where animation formats beat GIF's
//!   full-frame LZW re-encoding.
//!
//! The chunk framing (length / type / data / CRC-32) is exactly PNG's.

use crate::image::{Animation, Frame, IndexedImage};
use crate::png::{self, PngOptions};
use flate::checksum::crc32;
use flate::Level;

/// MNG signature bytes (like PNG's, with "MNG").
pub const SIGNATURE: [u8; 8] = [0x8A, b'M', b'N', b'G', 0x0D, 0x0A, 0x1A, 0x0A];

/// Errors reading an MNG stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MngError {
    /// Bad signature.
    BadSignature,
    /// Truncated.
    Truncated,
    /// Bad crc.
    BadCrc,
    /// Bad frame.
    BadFrame,
    /// Unsupported.
    Unsupported(&'static str),
}

impl std::fmt::Display for MngError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MngError::BadSignature => f.write_str("not an MNG file"),
            MngError::Truncated => f.write_str("truncated MNG stream"),
            MngError::BadCrc => f.write_str("chunk CRC mismatch"),
            MngError::BadFrame => f.write_str("frame reconstruction failed"),
            MngError::Unsupported(w) => write!(f, "unsupported MNG feature: {w}"),
        }
    }
}

impl std::error::Error for MngError {}

fn chunk(out: &mut Vec<u8>, kind: &[u8; 4], data: &[u8]) {
    out.extend_from_slice(&(data.len() as u32).to_be_bytes());
    out.extend_from_slice(kind);
    out.extend_from_slice(data);
    let mut crc_input = Vec::with_capacity(4 + data.len());
    crc_input.extend_from_slice(kind);
    crc_input.extend_from_slice(data);
    out.extend_from_slice(&crc32(&crc_input).to_be_bytes());
}

/// Encode a delta frame: positions where the frame differs from `prev`
/// are run-encoded as (skip, run of replacement bytes), then deflated.
fn encode_delta(prev: &IndexedImage, cur: &IndexedImage) -> Vec<u8> {
    debug_assert_eq!(prev.pixels.len(), cur.pixels.len());
    let mut runs = Vec::new();
    let mut i = 0;
    let n = cur.pixels.len();
    while i < n {
        // Skip identical pixels.
        let start = i;
        while i < n && cur.pixels[i] == prev.pixels[i] {
            i += 1;
        }
        let skip = i - start;
        // Collect a run of changed pixels.
        let run_start = i;
        while i < n && cur.pixels[i] != prev.pixels[i] {
            i += 1;
        }
        let run = &cur.pixels[run_start..i];
        if run.is_empty() && i >= n {
            break;
        }
        runs.extend_from_slice(&(skip as u32).to_be_bytes());
        runs.extend_from_slice(&(run.len() as u32).to_be_bytes());
        runs.extend_from_slice(run);
    }
    flate::zlib::compress(&runs, Level::Default)
}

fn decode_delta(prev: &IndexedImage, data: &[u8]) -> Result<IndexedImage, MngError> {
    let runs = flate::zlib::decompress(data).map_err(|_| MngError::BadFrame)?;
    let mut img = prev.clone();
    let mut pos = 0usize; // position in pixels
    let mut i = 0usize; // position in runs
    while i + 8 <= runs.len() {
        let skip = u32::from_be_bytes([runs[i], runs[i + 1], runs[i + 2], runs[i + 3]]) as usize;
        let len = u32::from_be_bytes([runs[i + 4], runs[i + 5], runs[i + 6], runs[i + 7]]) as usize;
        i += 8;
        pos += skip;
        if i + len > runs.len() || pos + len > img.pixels.len() {
            return Err(MngError::BadFrame);
        }
        img.pixels[pos..pos + len].copy_from_slice(&runs[i..i + len]);
        pos += len;
        i += len;
    }
    Ok(img)
}

/// Encode an animation as an MNG stream.
pub fn encode(anim: &Animation) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&SIGNATURE);

    // MHDR: width, height, ticks/sec, layers, frames, play time, simplicity.
    let mut mhdr = Vec::with_capacity(28);
    mhdr.extend_from_slice(&anim.width().to_be_bytes());
    mhdr.extend_from_slice(&anim.height().to_be_bytes());
    mhdr.extend_from_slice(&100u32.to_be_bytes()); // centiseconds
    mhdr.extend_from_slice(&(anim.frames.len() as u32).to_be_bytes());
    mhdr.extend_from_slice(&(anim.frames.len() as u32).to_be_bytes());
    let play: u32 = anim.frames.iter().map(|f| f.delay_cs as u32).sum();
    mhdr.extend_from_slice(&play.to_be_bytes());
    mhdr.extend_from_slice(&1u32.to_be_bytes()); // simplicity profile
    chunk(&mut out, b"MHDR", &mhdr);

    // First frame: a complete embedded PNG datastream.
    let first_png = png::encode(
        &anim.frames[0].image,
        PngOptions {
            gamma: false,
            level: Level::Default,
        },
    );
    let mut fram = Vec::with_capacity(2 + first_png.len());
    fram.extend_from_slice(&anim.frames[0].delay_cs.to_be_bytes());
    fram.extend_from_slice(&first_png);
    chunk(&mut out, b"FRAM", &fram);

    // Remaining frames: Delta-PNG-style difference objects.
    for w in anim.frames.windows(2) {
        let delta = encode_delta(&w[0].image, &w[1].image);
        let mut dfrm = Vec::with_capacity(2 + delta.len());
        dfrm.extend_from_slice(&w[1].delay_cs.to_be_bytes());
        dfrm.extend_from_slice(&delta);
        chunk(&mut out, b"DFRM", &dfrm);
    }

    chunk(&mut out, b"MEND", &[]);
    out
}

/// Decode an MNG stream written by [`encode`].
pub fn decode(data: &[u8]) -> Result<Animation, MngError> {
    if data.len() < 8 || data[..8] != SIGNATURE {
        return Err(MngError::BadSignature);
    }
    let mut pos = 8;
    let mut frames: Vec<Frame> = Vec::new();
    let mut ended = false;
    while pos + 8 <= data.len() {
        let len =
            u32::from_be_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]) as usize;
        let kind: [u8; 4] = data[pos + 4..pos + 8].try_into().unwrap();
        if pos + 8 + len + 4 > data.len() {
            return Err(MngError::Truncated);
        }
        let body = &data[pos + 8..pos + 8 + len];
        let crc_expect = u32::from_be_bytes([
            data[pos + 8 + len],
            data[pos + 8 + len + 1],
            data[pos + 8 + len + 2],
            data[pos + 8 + len + 3],
        ]);
        let mut crc_input = Vec::with_capacity(4 + len);
        crc_input.extend_from_slice(&kind);
        crc_input.extend_from_slice(body);
        if crc32(&crc_input) != crc_expect {
            return Err(MngError::BadCrc);
        }
        match &kind {
            b"MHDR" => {}
            b"FRAM" => {
                if body.len() < 2 {
                    return Err(MngError::Truncated);
                }
                let delay = u16::from_be_bytes([body[0], body[1]]);
                let dec = png::decode(&body[2..]).map_err(|_| MngError::BadFrame)?;
                frames.push(Frame {
                    image: dec.image,
                    delay_cs: delay,
                });
            }
            b"DFRM" => {
                if body.len() < 2 {
                    return Err(MngError::Truncated);
                }
                let delay = u16::from_be_bytes([body[0], body[1]]);
                let prev = &frames.last().ok_or(MngError::BadFrame)?.image;
                let img = decode_delta(prev, &body[2..])?;
                frames.push(Frame {
                    image: img,
                    delay_cs: delay,
                });
            }
            b"MEND" => {
                ended = true;
                break;
            }
            _ => return Err(MngError::Unsupported("unknown chunk")),
        }
        pos += 8 + len + 4;
    }
    if !ended || frames.is_empty() {
        return Err(MngError::Truncated);
    }
    Ok(Animation::new(frames))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn roundtrip() {
        let anim = synth::animation(48, 48, 8, 11);
        let bytes = encode(&anim);
        let dec = decode(&bytes).unwrap();
        assert_eq!(dec.frames.len(), anim.frames.len());
        for (got, want) in dec.frames.iter().zip(&anim.frames) {
            assert_eq!(got.image.pixels, want.image.pixels);
            assert_eq!(got.delay_cs, want.delay_cs);
        }
    }

    #[test]
    fn mng_beats_animated_gif() {
        // The paper: 24,988 bytes of GIF animation -> 16,329 bytes of MNG
        // (~35% saving) thanks to inter-frame coding.
        let anim = synth::animation(64, 64, 10, 3);
        let gif = crate::gif::encode_animation(&anim).len();
        let mng = encode(&anim).len();
        assert!(
            (mng as f64) < gif as f64 * 0.8,
            "MNG ({mng}) should be well under animated GIF ({gif})"
        );
    }

    #[test]
    fn signature_checked() {
        assert_eq!(decode(b"XXXXXXXX").unwrap_err(), MngError::BadSignature);
    }

    #[test]
    fn crc_checked() {
        let anim = synth::animation(16, 16, 3, 1);
        let mut bytes = encode(&anim);
        let n = bytes.len();
        bytes[n / 2] ^= 0xFF;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn truncation_detected() {
        let anim = synth::animation(16, 16, 3, 1);
        let bytes = encode(&anim);
        assert!(decode(&bytes[..bytes.len() - 5]).is_err());
    }

    #[test]
    fn single_frame_animation() {
        let anim = synth::animation(16, 16, 1, 2);
        let dec = decode(&encode(&anim)).unwrap();
        assert_eq!(dec.frames.len(), 1);
    }

    #[test]
    fn identical_frames_cost_almost_nothing() {
        let base = synth::icon(32, 32, 8, 9);
        let frames: Vec<_> = (0..5)
            .map(|_| crate::image::Frame {
                image: base.clone(),
                delay_cs: 10,
            })
            .collect();
        let anim = Animation::new(frames);
        let one = encode(&Animation::new(vec![anim.frames[0].clone()])).len();
        let five = encode(&anim).len();
        assert!(
            five < one + 200,
            "static frames must be cheap: {one} -> {five}"
        );
    }
}
